// Mobility scenario (the paper's stated future work): nodes move under
// random waypoint while a link spoofing attack runs. Shows that the
// log-based detection keeps working as the topology churns, and how the
// investigation copes with verifiers drifting out of reach.

#include <cstdio>
#include <cstdlib>

#include "attacks/link_spoofing.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

using namespace manet;
using scenario::Network;

int main(int argc, char** argv) {
  // argv[1] scales the simulated durations (CTest smoke runs pass 0.2; the
  // detection outcome is only asserted at full scale).
  double scale = 1.0;
  if (argc > 1) {
    char* rest = nullptr;
    scale = std::strtod(argv[1], &rest);
    if (rest == nullptr || *rest != '\0' || !(scale > 0.0)) {
      std::fprintf(stderr, "usage: %s [time-scale > 0]\n", argv[0]);
      return 2;
    }
  }
  const auto secs = [scale](double s) {
    return sim::Duration::from_seconds(s * scale);
  };
  Network::Config cfg;
  cfg.seed = 13;
  cfg.radio.range_m = 220.0;
  cfg.positions = net::grid_layout(12, 90.0);
  Network net{cfg};

  const net::NodeId phantom{404};
  net.set_hooks(6, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<net::NodeId>{phantom}));

  net::RandomWaypoint::Config mc;
  mc.area_width = 3 * 90.0;
  mc.area_height = 4 * 90.0;
  mc.speed_min_mps = 0.5;
  mc.speed_max_mps = 2.0;
  for (std::size_t i = 0; i < 12; ++i)
    net.set_mobility(i, std::make_unique<net::RandomWaypoint>(
                            net.medium().position(Network::id_of(i)), mc));

  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(secs(25.0));
  detector.start();
  net.run_for(secs(120.0));

  std::size_t intruder = 0, unrecognized = 0, timeouts = 0;
  for (const auto& r : detector.reports()) {
    timeouts += r.timeouts;
    if (r.verdict == trust::Verdict::kIntruder &&
        r.suspect == Network::id_of(6))
      ++intruder;
    if (r.verdict == trust::Verdict::kUnrecognized) ++unrecognized;
  }
  std::printf("reports: %zu (intruder verdicts against n6: %zu, "
              "unrecognized: %zu, answer timeouts: %zu)\n",
              detector.reports().size(), intruder, unrecognized, timeouts);
  std::printf("trust in the spoofer n6: %.3f\n",
              detector.trust_store().trust(Network::id_of(6)));
  std::printf("investigation retries: %llu, route failures: %llu\n",
              static_cast<unsigned long long>(
                  net.investigations(0).stats().retries),
              static_cast<unsigned long long>(
                  net.investigations(0).stats().route_failures));
  return (intruder > 0 || scale < 1.0) ? 0 : 1;
}
