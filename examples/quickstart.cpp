// Quickstart: build a small MANET, let OLSR converge, launch a link
// spoofing attack, and watch the trust-enabled detector confirm it.
//
// This is the 60-second tour of the library: Network wires the simulator,
// radio medium, OLSR agents and investigation endpoints together; the
// attacker gets a LinkSpoofingAttack hook; the victim gets a Detector.

#include <cstdio>
#include <cstdlib>

#include "attacks/link_spoofing.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

using namespace manet;

int main(int argc, char** argv) {
  // argv[1] scales the simulated durations (CTest smoke runs pass 0.2; the
  // detection outcome is only asserted at full scale).
  double scale = 1.0;
  if (argc > 1) {
    char* rest = nullptr;
    scale = std::strtod(argv[1], &rest);
    if (rest == nullptr || *rest != '\0' || !(scale > 0.0)) {
      std::fprintf(stderr, "usage: %s [time-scale > 0]\n", argv[0]);
      return 2;
    }
  }
  const auto secs = [scale](double s) {
    return sim::Duration::from_seconds(s * scale);
  };
  // 9 nodes in a 3x3 grid, 100 m spacing, 160 m radio range: nodes talk to
  // their row/column/diagonal neighbors only, so MPR flooding matters.
  scenario::Network::Config cfg;
  cfg.seed = 7;
  cfg.radio.range_m = 160.0;
  cfg.positions = net::grid_layout(9, 100.0);
  scenario::Network net{cfg};

  // Node 4 (the grid center) is the attacker: it advertises a phantom node
  // n77 as a symmetric neighbor — the paper's Expression 1 variant, which
  // guarantees the attacker gets picked as an MPR.
  const net::NodeId phantom{77};
  auto spoof = std::make_unique<attacks::LinkSpoofingAttack>(
      attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
      std::set<net::NodeId>{phantom});
  auto* spoof_ptr = spoof.get();
  net.set_hooks(4, std::move(spoof));

  // Node 0 (a corner) runs the IDS.
  auto& detector = net.add_detector(0);
  detector.set_report_callback([](const core::DetectionReport& r) {
    std::printf("[%8s] report: suspect=%s subject=%s detect=%+.3f (%s)\n",
                r.time.to_string().c_str(), r.suspect.to_string().c_str(),
                r.subject.to_string().c_str(), r.detect,
                trust::to_string(r.verdict).c_str());
  });

  net.start_all();
  net.run_for(secs(20.0));
  std::printf("converged after 20 s: %s\n", net.converged() ? "yes" : "no");
  std::printf("attacker forged %llu HELLOs so far\n",
              static_cast<unsigned long long>(spoof_ptr->forged_count()));

  // The detector scans its audit log autonomously.
  detector.start();
  net.run_for(secs(60.0));

  // Summarize what the IDS concluded.
  std::size_t intruder_verdicts = 0;
  for (const auto& r : detector.reports())
    if (r.verdict == trust::Verdict::kIntruder &&
        r.suspect == scenario::Network::id_of(4))
      ++intruder_verdicts;

  std::printf("reports: %zu, intruder verdicts against n4: %zu\n",
              detector.reports().size(), intruder_verdicts);
  std::printf("trust in attacker n4 is now %.3f (default %.3f)\n",
              detector.trust_store().trust(scenario::Network::id_of(4)),
              detector.trust_store().params().default_trust);
  return (intruder_verdicts > 0 || scale < 1.0) ? 0 : 1;
}
