// Blackhole (drop attack) scenario: a relay silently discards the control
// traffic it should flood. The E2 evidence path fires — the victim notices
// its own TCs are never retransmitted by the selected MPR, synthesizes an
// mpr_fwd_timeout, matches the drop signature, and investigates with a
// kForwarding query.

#include <cstdio>
#include <cstdlib>

#include "attacks/drop.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

using namespace manet;
using scenario::Network;

int main(int argc, char** argv) {
  // argv[1] scales the simulated durations (CTest smoke runs pass 0.2; the
  // detection outcome is only asserted at full scale).
  double scale = 1.0;
  if (argc > 1) {
    char* rest = nullptr;
    scale = std::strtod(argv[1], &rest);
    if (rest == nullptr || *rest != '\0' || !(scale > 0.0)) {
      std::fprintf(stderr, "usage: %s [time-scale > 0]\n", argv[0]);
      return 2;
    }
  }
  const auto secs = [scale](double s) {
    return sim::Duration::from_seconds(s * scale);
  };
  // Chain n0-n1-n2-n3-n4: n2 is the only bridge and will blackhole.
  Network::Config cfg;
  cfg.seed = 5;
  cfg.radio.range_m = 120.0;
  cfg.positions = net::chain_layout(5, 100.0);
  Network net{cfg};

  auto drop = std::make_unique<attacks::DropAttack>(sim::Rng{1}, 1.0);
  auto* drop_ptr = drop.get();
  drop_ptr->set_active(false);  // let the network converge honestly first
  net.set_hooks(2, std::move(drop));

  auto& detector = net.add_detector(1);  // n1 selects n2 as MPR
  detector.set_report_callback([](const core::DetectionReport& r) {
    std::string tags;
    for (auto t : r.tags) tags += core::to_string(t) + " ";
    std::printf("[%7.1fs] suspect=%s detect=%+.2f verdict=%s tags=%s\n",
                r.time.seconds(), r.suspect.to_string().c_str(), r.detect,
                trust::to_string(r.verdict).c_str(), tags.c_str());
  });

  net.start_all();
  net.run_for(secs(30.0));
  std::printf("converged: %s; n1's MPRs include n2: %s\n",
              net.converged() ? "yes" : "no",
              net.agent(1).is_mpr(Network::id_of(2)) ? "yes"
                                                                 : "no");

  detector.start();
  drop_ptr->set_active(true);
  std::printf("-- n2 starts blackholing --\n");
  net.run_for(secs(60.0));

  std::printf("n2 dropped %llu control messages\n",
              static_cast<unsigned long long>(drop_ptr->dropped_control()));
  std::printf("n1's trust in n2: %.3f\n",
              detector.trust_store().trust(Network::id_of(2)));

  bool e2 = false;
  for (const auto& r : detector.reports())
    for (auto t : r.tags)
      if (t == core::EvidenceTag::kE2MprMisbehaving) e2 = true;
  std::printf("E2 (MPR misbehaving) evidence raised: %s\n", e2 ? "yes" : "no");
  return (e2 || scale < 1.0) ? 0 : 1;
}
