// Trust dynamics walkthrough: the §V experiment driven round by round,
// printing the investigator's view — Eq. 8 aggregate, Eq. 9 margin, Eq. 10
// verdict and the trust table — so you can watch liars lose influence.

#include <cstdio>

#include "scenario/trust_experiment.hpp"

using namespace manet;

int main() {
  scenario::TrustExperiment::Config cfg;
  cfg.seed = 17;
  cfg.num_nodes = 16;
  cfg.num_liars = 4;
  scenario::TrustExperiment exp{cfg};
  exp.setup();

  std::printf("attacker: %s, phantom neighbor: %s\n",
              exp.attacker().to_string().c_str(),
              exp.phantom().to_string().c_str());
  std::printf("liars: ");
  for (auto l : exp.liars()) std::printf("%s ", l.to_string().c_str());
  std::printf("\n\n");

  for (int round = 1; round <= 12; ++round) {
    const auto snap = exp.run_round();
    double liar_avg = 0.0, honest_avg = 0.0;
    for (auto l : exp.liars()) liar_avg += snap.trust.at(l);
    for (auto h : exp.honest()) honest_avg += snap.trust.at(h);
    liar_avg /= static_cast<double>(exp.liars().size());
    honest_avg /= static_cast<double>(exp.honest().size());
    std::printf(
        "round %2d: detect=%+.3f margin=%.3f verdict=%-13s "
        "avg_trust honest=%.3f liars=%.3f\n",
        round, snap.detect, snap.margin,
        trust::to_string(snap.verdict).c_str(), honest_avg, liar_avg);
  }

  std::printf("\nattack ceases; forgetting factor takes over:\n");
  exp.cease_attack();
  for (int round = 1; round <= 10; ++round) {
    const auto snap = exp.run_idle_round();
    double liar_avg = 0.0;
    for (auto l : exp.liars()) liar_avg += snap.trust.at(l);
    liar_avg /= static_cast<double>(exp.liars().size());
    std::printf("idle %2d: former-liar avg trust=%.3f (default %.1f)\n", round,
                liar_avg, 0.4);
  }
  return 0;
}
