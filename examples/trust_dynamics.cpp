// Trust dynamics walkthrough: the §V experiment driven round by round,
// printing the investigator's view — Eq. 8 aggregate, Eq. 9 margin, Eq. 10
// verdict and the trust table — so you can watch liars lose influence.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "scenario/trust_experiment.hpp"

using namespace manet;

int main(int argc, char** argv) {
  // argv[1] scales the number of rounds (CTest smoke runs pass 0.2).
  double scale = 1.0;
  if (argc > 1) {
    char* rest = nullptr;
    scale = std::strtod(argv[1], &rest);
    if (rest == nullptr || *rest != '\0' || !(scale > 0.0)) {
      std::fprintf(stderr, "usage: %s [time-scale > 0]\n", argv[0]);
      return 2;
    }
  }
  const int attack_rounds = std::max(1, static_cast<int>(12 * scale));
  const int idle_rounds = std::max(1, static_cast<int>(10 * scale));
  scenario::TrustExperiment::Config cfg;
  cfg.seed = 17;
  cfg.num_nodes = 16;
  cfg.num_liars = 4;
  scenario::TrustExperiment exp{cfg};
  exp.setup();

  std::printf("attacker: %s, phantom neighbor: %s\n",
              exp.attacker().to_string().c_str(),
              exp.phantom().to_string().c_str());
  std::printf("liars: ");
  for (auto l : exp.liars()) std::printf("%s ", l.to_string().c_str());
  std::printf("\n\n");

  for (int round = 1; round <= attack_rounds; ++round) {
    const auto snap = exp.run_round();
    double liar_avg = 0.0, honest_avg = 0.0;
    for (auto l : exp.liars()) liar_avg += snap.trust.at(l);
    for (auto h : exp.honest()) honest_avg += snap.trust.at(h);
    liar_avg /= static_cast<double>(exp.liars().size());
    honest_avg /= static_cast<double>(exp.honest().size());
    std::printf(
        "round %2d: detect=%+.3f margin=%.3f verdict=%-13s "
        "avg_trust honest=%.3f liars=%.3f\n",
        round, snap.detect, snap.margin,
        trust::to_string(snap.verdict).c_str(), honest_avg, liar_avg);
  }

  std::printf("\nattack ceases; forgetting factor takes over:\n");
  exp.cease_attack();
  for (int round = 1; round <= idle_rounds; ++round) {
    const auto snap = exp.run_idle_round();
    double liar_avg = 0.0;
    for (auto l : exp.liars()) liar_avg += snap.trust.at(l);
    liar_avg /= static_cast<double>(exp.liars().size());
    std::printf("idle %2d: former-liar avg trust=%.3f (default %.1f)\n", round,
                liar_avg, 0.4);
  }
  return 0;
}
