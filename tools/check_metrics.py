#!/usr/bin/env python3
"""Prometheus text-format lint for the CI obs-smoke job. Entirely offline.

Validates a metrics file emitted by `manet_experiments --metrics` or
`manet_detect --metrics`:

1. Structure: every line is a `# manifest key=value` header line, a
   `# TYPE name kind` declaration, another comment, or a sample.
2. Names: metric names match the Prometheus regex and every sample's base
   name was declared by a preceding # TYPE line.
3. Kinds: counters end in `_total` and carry non-negative integers;
   gauges parse as finite floats; histograms expose cumulative
   `_bucket{le="..."}` series (monotone counts, +Inf last and equal to
   `_count`) plus `_sum` and `_count`.
4. Manifest: at least `tool` and `version` keys when any manifest line is
   present (the CLIs always stamp one).

Usage:  check_metrics.py FILE...       lint one or more exposition files
        check_metrics.py --selftest    run the built-in fixture checks

Exit code 0 = clean, 1 = findings (printed one per line).
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
MANIFEST_RE = re.compile(r"^# manifest ([A-Za-z0-9_.-]+)=(.*)$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # name
    r"(?:\{([^}]*)\})?"                  # optional label set
    r" (\S+)$")                          # value
LABEL_RE = re.compile(r'^le="([^"]*)"$')


def parse_le(text):
    """The bucket bound as a float; +Inf sorts last."""
    return math.inf if text == "+Inf" else float(text)


def lint_text(text, where="metrics"):
    findings = []
    types = {}          # metric name -> kind
    manifest = {}
    seen_manifest = False
    # histogram name -> list of (le, count); plus _sum/_count presence
    buckets = {}
    hist_sum = set()
    hist_count = {}

    def base_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)], suffix
        return name, ""

    for lineno, line in enumerate(text.splitlines(), 1):
        loc = f"{where}:{lineno}"
        if not line:
            findings.append(f"{loc}: blank line in exposition")
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                name, kind = m.groups()
                if name in types:
                    findings.append(f"{loc}: duplicate # TYPE for {name}")
                types[name] = kind
                continue
            m = MANIFEST_RE.match(line)
            if m:
                seen_manifest = True
                manifest[m.group(1)] = m.group(2)
                continue
            if line.startswith("# HELP "):
                continue
            findings.append(f"{loc}: unrecognized comment line: {line!r}")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            findings.append(f"{loc}: malformed sample line: {line!r}")
            continue
        name, labels, value = m.groups()
        if not NAME_RE.match(name):
            findings.append(f"{loc}: bad metric name {name!r}")
            continue
        base, suffix = base_of(name)
        if base not in types:
            findings.append(f"{loc}: sample {name} has no preceding # TYPE")
            continue
        kind = types[base]
        try:
            number = float(value)
        except ValueError:
            findings.append(f"{loc}: non-numeric value {value!r} for {name}")
            continue
        if not math.isfinite(number):
            findings.append(f"{loc}: non-finite value {value!r} for {name}")
            continue

        if kind == "counter":
            if not base.endswith("_total"):
                findings.append(f"{loc}: counter {base} should end in _total")
            if number < 0 or number != int(number):
                findings.append(
                    f"{loc}: counter {name} must be a non-negative integer")
        elif kind == "gauge":
            if labels:
                findings.append(f"{loc}: unexpected labels on gauge {name}")
        elif kind == "histogram":
            if suffix == "_bucket":
                lm = LABEL_RE.match(labels or "")
                if not lm:
                    findings.append(
                        f"{loc}: histogram bucket needs exactly le=\"...\"")
                    continue
                try:
                    le = parse_le(lm.group(1))
                except ValueError:
                    findings.append(f"{loc}: bad le bound {lm.group(1)!r}")
                    continue
                buckets.setdefault(base, []).append((le, number, lineno))
            elif suffix == "_sum":
                hist_sum.add(base)
            elif suffix == "_count":
                hist_count[base] = number
            else:
                findings.append(
                    f"{loc}: bare sample {name} for histogram {base}")

    for base, series in sorted(buckets.items()):
        les = [le for le, _, _ in series]
        if les != sorted(les):
            findings.append(f"{where}: {base} buckets not ordered by le")
        counts = [c for _, c, _ in series]
        if counts != sorted(counts):
            findings.append(f"{where}: {base} bucket counts not cumulative")
        if not les or les[-1] != math.inf:
            findings.append(f"{where}: {base} missing le=\"+Inf\" bucket")
        elif base in hist_count and counts[-1] != hist_count[base]:
            findings.append(
                f"{where}: {base} +Inf bucket {counts[-1]:g} != _count "
                f"{hist_count[base]:g}")
        if base not in hist_sum:
            findings.append(f"{where}: {base} missing _sum sample")
        if base not in hist_count:
            findings.append(f"{where}: {base} missing _count sample")
    for base, kind in sorted(types.items()):
        if kind == "histogram" and base not in buckets:
            findings.append(f"{where}: histogram {base} has no buckets")

    if seen_manifest:
        for key in ("tool", "version"):
            if key not in manifest:
                findings.append(f"{where}: manifest missing {key}= entry")
    return findings


GOOD = """\
# manifest tool=selftest
# manifest version=unknown
# manifest seeds=2
# TYPE manet_pipeline_lines_total counter
manet_pipeline_lines_total 336
# TYPE manet_replication_rounds gauge
manet_replication_rounds 4
# TYPE manet_round_detect histogram
manet_round_detect_bucket{le="0"} 1
manet_round_detect_bucket{le="1"} 3
manet_round_detect_bucket{le="+Inf"} 3
manet_round_detect_sum 1.5
manet_round_detect_count 3
"""

BAD_CASES = [
    ("undeclared sample", "manet_x_total 1\n", "no preceding # TYPE"),
    ("negative counter",
     "# TYPE manet_x_total counter\nmanet_x_total -1\n", "non-negative"),
    ("counter suffix",
     "# TYPE manet_x counter\nmanet_x 1\n", "_total"),
    ("non-numeric",
     "# TYPE manet_x_total counter\nmanet_x_total abc\n", "non-numeric"),
    ("non-cumulative buckets",
     "# TYPE manet_h histogram\n"
     'manet_h_bucket{le="1"} 5\nmanet_h_bucket{le="2"} 3\n'
     'manet_h_bucket{le="+Inf"} 5\nmanet_h_sum 1\nmanet_h_count 5\n',
     "not cumulative"),
    ("missing +Inf",
     "# TYPE manet_h histogram\n"
     'manet_h_bucket{le="1"} 1\nmanet_h_sum 1\nmanet_h_count 1\n',
     "+Inf"),
    ("count mismatch",
     "# TYPE manet_h histogram\n"
     'manet_h_bucket{le="+Inf"} 2\nmanet_h_sum 1\nmanet_h_count 3\n',
     "_count"),
    ("manifest incomplete",
     "# manifest tool=x\n# TYPE manet_x_total counter\nmanet_x_total 0\n",
     "version"),
    ("garbage line", "!!!\n", "malformed"),
]


def selftest():
    failures = []
    good = lint_text(GOOD, "GOOD")
    if good:
        failures.append(f"clean fixture flagged: {good}")
    for label, text, expect in BAD_CASES:
        found = lint_text(text, label)
        if not any(expect in f for f in found):
            failures.append(
                f"fixture {label!r}: expected a finding matching {expect!r}, "
                f"got {found}")
    for f in failures:
        print(f"selftest: {f}")
    print(f"selftest: {len(BAD_CASES) + 1} fixtures, "
          f"{len(failures)} failures")
    return 1 if failures else 0


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 1
    if argv[1] == "--selftest":
        return selftest()
    findings = []
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as fh:
                findings.extend(lint_text(fh.read(), path))
        except OSError as e:
            findings.append(f"{path}: {e}")
    for f in findings:
        print(f)
    if not findings:
        print(f"check_metrics: {len(argv) - 1} file(s) clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
