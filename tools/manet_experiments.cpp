// manet_experiments — parallel scenario sweeps over the §V trust experiment.
//
// Reproduces the paper-style evaluations in one invocation: a Table A style
// accuracy sweep over liar ratios (--sweep table-a) or a Fig. 3 style
// round-by-round detection trajectory (--sweep fig3), or any custom grid of
// seeds x node counts x liar fractions x mobility presets. Replications run
// in parallel across --threads workers; aggregate output is byte-identical
// for every thread count.
//
//   manet_experiments --sweep table-a --seeds 32 --threads 4
//   manet_experiments --nodes 16,24 --liar-fractions 0,0.25 --seeds 8
//       --format json --out sweep.json
//   manet_experiments --sweep fig3 --per-round --out fig3.csv
//   manet_experiments --sweep chaos --seeds 8 --degradation --out chaos.csv

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/runner.hpp"

using namespace manet;

namespace {

void usage() {
  std::fprintf(stderr, R"(usage: manet_experiments [options]

grid options
  --seeds N             replications per grid point (default 8)
  --seed-base B         base for the SplitMix64 seed stream (default 42)
  --nodes LIST          comma-separated node counts (default 16)
  --liar-fractions LIST comma-separated bystander liar fractions (default 0,0.25)
  --mobility LIST       comma-separated presets: static,low,high (default static)
  --rounds N            investigation rounds per replication (default 12)

presets (override the grid; --seeds still applies)
  --sweep table-a       liar-ratio accuracy sweep (fractions 0,0.15,0.3,0.45)
  --sweep fig3          Fig. 3 liar trajectory (fractions 0.07,0.29,0.43, 25 rounds)
  --sweep scale-256     paper-plus scale: 256 nodes, fractions 0,0.25, 6 rounds
                        (minutes per replication -- use --threads 0 on a real host)
  --sweep scale-1024    1024 nodes, fraction 0.25, 3 rounds (a long-haul run:
                        tens of minutes per replication, meant for multicore hosts)
  --sweep chaos         graceful-degradation run: 16 nodes, fraction 0.25,
                        12 rounds, per-seed chaos fault plans (node churn,
                        brown-out, netsplit); pair with --degradation
  --sweep grayhole      forwarding-audit run: 16-node multi-hop grid, node 1
                        drops the floods it attracted as everyone's MPR;
                        exits 3 if any honest node is ever convicted
  --drop-fraction F     grayhole drop probability (default 1.0 = blackhole)

fault injection
  --faults chaos|FILE   chaos = derive a seeded fault plan per replication;
                        FILE = one explicit plan (FaultPlan text form) shared
                        by every replication. Faulted runs audit the safety
                        invariants and exit 3 if any violation is recorded.

execution / output
  --engine NAME         discrete-event engine per replication (default sequential):
                        sequential = single-threaded, byte-stable legacy traces
                        sharded    = psim conservative parallel engine; results
                                     are identical for any thread/shard count
  --shards N            sharded engine: spatial shards per replication, 0 = auto
                        (default 0; output-invariant, pure perf knob)
  --threads N           worker threads, 0 = hardware concurrency (default 0);
                        with --engine sharded the runner splits the budget
                        between replications and shard lanes by node count
  --confidence L        CI level for the aggregates (default 0.95)
  --format csv|json     aggregate output format (default csv)
  --per-round           emit the per-round Eq. 8 trajectory CSV instead
  --degradation         emit the per-round graceful-degradation CSV instead
                        (down/false-conviction/suppression/convergence means)
  --out FILE            write output to FILE instead of stdout
  --quiet               suppress progress on stderr
  --help                this text

observability (see docs/ARCHITECTURE.md, "Observability")
  --metrics FILE        collect the metrics registry and write a Prometheus
                        text exposition (run manifest in the header). Never
                        changes any other output byte.
  --trace FILE          record sim-time trace spans into the per-thread
                        flight recorders and dump Chrome trace_event JSON
                        (chrome://tracing / Perfetto; pid = task index,
                        tid = shard lane). Written on failure exits too.
  --trace-wallclock     profiling overlay: stamp wall-clock durations on
                        trace events (non-deterministic; off by default)
)");
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    items.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return items;
}

// Strict scalar parses: the whole string must be consumed and the value must
// be a plain non-negative decimal, so typos like "--threads 4x" and
// wrap-arounds like "--seeds -1" error out instead of silently running.
bool parse_u64(const std::string& item, std::uint64_t& out) {
  if (item.empty() || !std::isdigit(static_cast<unsigned char>(item[0])))
    return false;
  errno = 0;
  char* rest = nullptr;
  out = std::strtoull(item.c_str(), &rest, 10);
  return rest != nullptr && *rest == '\0' && errno == 0;
}

bool parse_f64(const std::string& item, double& out) {
  if (item.empty()) return false;
  char* rest = nullptr;
  out = std::strtod(item.c_str(), &rest);
  return rest != nullptr && *rest == '\0';
}

bool parse_size_list(const std::string& text, std::vector<std::size_t>& out) {
  out.clear();
  for (const auto& item : split_commas(text)) {
    std::uint64_t value = 0;
    if (!parse_u64(item, value) || value < 4 || value > 4096) return false;
    out.push_back(static_cast<std::size_t>(value));
  }
  return !out.empty();
}

bool parse_double_list(const std::string& text, std::vector<double>& out) {
  out.clear();
  for (const auto& item : split_commas(text)) {
    double value = 0.0;
    // The negated >= form also rejects NaN.
    if (!parse_f64(item, value) || !(value >= 0.0 && value <= 1.0))
      return false;
    out.push_back(value);
  }
  return !out.empty();
}

bool parse_preset_list(const std::string& text,
                       std::vector<runtime::MobilityPreset>& out) {
  out.clear();
  for (const auto& item : split_commas(text)) {
    runtime::MobilityPreset preset;
    if (!runtime::parse_mobility_preset(item, preset)) return false;
    out.push_back(preset);
  }
  return !out.empty();
}

template <class T, class Fn>
std::string join_list(const std::vector<T>& items, Fn render) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ',';
    out += render(items[i]);
  }
  return out;
}

// The invocation's provenance stamp. Every field is a pure function of the
// arguments (no timestamps, no resolved thread counts beyond the request),
// so identical invocations stamp identical manifests; thread-determinism
// diffs must still filter "^#" because --threads is recorded as requested.
obs::RunManifest build_manifest(const runtime::ExperimentSpec& spec,
                                std::uint64_t seed_base, unsigned threads,
                                double confidence) {
  obs::RunManifest m{"manet_experiments"};
  m.add("engine", spec.engine == sim::EngineKind::kSharded ? "sharded"
                                                           : "sequential");
  m.add("threads", static_cast<std::uint64_t>(threads));
  m.add("shards", static_cast<std::uint64_t>(spec.shards));
  m.add("nodes", join_list(spec.node_counts, [](std::size_t n) {
          return std::to_string(n);
        }));
  m.add("liar_fractions", join_list(spec.attacker_fractions, [](double f) {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%g", f);
          return std::string{buf};
        }));
  m.add("mobility", join_list(spec.mobility_presets, [](auto p) {
          return runtime::to_string(p);
        }));
  m.add("rounds", static_cast<std::uint64_t>(spec.rounds));
  m.add("seeds", static_cast<std::uint64_t>(spec.seeds.size()));
  m.add("seed_base", seed_base);
  m.add("attack",
        spec.attack == scenario::TrustExperiment::AttackKind::kGrayhole
            ? "grayhole"
            : "spoof");
  if (spec.attack == scenario::TrustExperiment::AttackKind::kGrayhole)
    m.add("drop_fraction", spec.drop_fraction);
  m.add("faulted", spec.chaos                    ? "chaos"
                   : !spec.fault_plan.empty()    ? "plan"
                                                 : "none");
  char conf[32];
  std::snprintf(conf, sizeof conf, "%g", confidence);
  m.add("confidence", std::string{conf});
  return m;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::ExperimentSpec spec;
  spec.attacker_fractions = {0.0, 0.25};
  std::size_t num_seeds = 8;
  std::uint64_t seed_base = 42;
  unsigned threads = 0;
  double confidence = 0.95;
  std::string format = "csv";
  std::string out_path;
  std::string metrics_path;
  std::string trace_path;
  bool per_round = false;
  bool degradation = false;
  bool quiet = false;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--seeds") {
      std::uint64_t value = 0;
      ok = parse_u64(need_value(i++), value) && value > 0 && value <= 1000000;
      num_seeds = static_cast<std::size_t>(value);
    } else if (arg == "--seed-base") {
      ok = parse_u64(need_value(i++), seed_base);
    } else if (arg == "--nodes") {
      ok = parse_size_list(need_value(i++), spec.node_counts);
    } else if (arg == "--liar-fractions") {
      ok = parse_double_list(need_value(i++), spec.attacker_fractions);
    } else if (arg == "--mobility") {
      ok = parse_preset_list(need_value(i++), spec.mobility_presets);
    } else if (arg == "--rounds") {
      std::uint64_t value = 0;
      ok = parse_u64(need_value(i++), value) && value > 0 && value <= 100000;
      spec.rounds = static_cast<int>(value);
    } else if (arg == "--sweep") {
      const std::string sweep = need_value(i++);
      if (sweep == "table-a") {
        spec.node_counts = {16};
        spec.attacker_fractions = {0.0, 0.15, 0.30, 0.45};
        spec.rounds = 12;
      } else if (sweep == "fig3") {
        spec.node_counts = {16};
        // 1, 4 and 6 liars out of 14 bystanders — the paper's ratios.
        spec.attacker_fractions = {0.07, 0.29, 0.43};
        spec.rounds = 25;
      } else if (sweep == "scale-256") {
        // Paper-plus scale: the batched HELLO fast path and spatial index
        // carry the control plane; each replication is still minutes of
        // CPU (the dense cluster gives every node ~70 OLSR neighbors).
        spec.node_counts = {256};
        spec.attacker_fractions = {0.0, 0.25};
        spec.rounds = 6;
      } else if (sweep == "scale-1024") {
        spec.node_counts = {1024};
        spec.attacker_fractions = {0.25};
        spec.rounds = 3;
      } else if (sweep == "chaos") {
        spec.node_counts = {16};
        spec.attacker_fractions = {0.25};
        spec.rounds = 12;
        spec.chaos = true;
        spec.fault_plan = {};
      } else if (sweep == "grayhole") {
        spec.node_counts = {16};
        spec.attacker_fractions = {0.0, 0.25};
        spec.rounds = 12;
        spec.attack = scenario::TrustExperiment::AttackKind::kGrayhole;
      } else {
        std::fprintf(stderr, "error: unknown sweep '%s'\n", sweep.c_str());
        return 2;
      }
    } else if (arg == "--drop-fraction") {
      double value = 1.0;
      ok = parse_f64(need_value(i++), value) && value >= 0.0 && value <= 1.0;
      spec.drop_fraction = value;
    } else if (arg == "--faults") {
      const std::string value = need_value(i++);
      if (value == "chaos") {
        spec.chaos = true;
        spec.fault_plan = {};
      } else {
        std::ifstream in{value};
        if (!in) {
          std::fprintf(stderr, "error: cannot read fault plan '%s'\n",
                       value.c_str());
          return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        try {
          spec.fault_plan = faults::FaultPlan::parse(text.str());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "error: bad fault plan '%s': %s\n",
                       value.c_str(), e.what());
          return 2;
        }
        spec.chaos = false;
      }
    } else if (arg == "--engine") {
      const std::string engine = need_value(i++);
      if (engine == "sequential") {
        spec.engine = sim::EngineKind::kSequential;
      } else if (engine == "sharded") {
        spec.engine = sim::EngineKind::kSharded;
      } else {
        ok = false;
      }
    } else if (arg == "--shards") {
      std::uint64_t value = 0;
      ok = parse_u64(need_value(i++), value) && value <= 4096;
      spec.shards = static_cast<unsigned>(value);
    } else if (arg == "--threads") {
      std::uint64_t value = 0;
      ok = parse_u64(need_value(i++), value) && value <= 4096;
      threads = static_cast<unsigned>(value);
    } else if (arg == "--confidence") {
      ok = parse_f64(need_value(i++), confidence) && confidence > 0.0 &&
           confidence < 1.0;
    } else if (arg == "--format") {
      format = need_value(i++);
      ok = format == "csv" || format == "json";
    } else if (arg == "--per-round") {
      per_round = true;
    } else if (arg == "--degradation") {
      degradation = true;
    } else if (arg == "--out") {
      out_path = need_value(i++);
    } else if (arg == "--metrics") {
      metrics_path = need_value(i++);
      ok = !metrics_path.empty();
    } else if (arg == "--trace") {
      trace_path = need_value(i++);
      ok = !trace_path.empty();
    } else if (arg == "--trace-wallclock") {
      spec.trace_wallclock = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "error: bad value for %s\n", arg.c_str());
      return 2;
    }
  }

  spec.seeds = runtime::ExperimentSpec::seed_range(seed_base, num_seeds);
  spec.metrics = !metrics_path.empty();
  spec.tracing = !trace_path.empty();
  if (spec.trace_wallclock && trace_path.empty()) {
    std::fprintf(stderr, "error: --trace-wallclock needs --trace FILE\n");
    return 2;
  }

  if (degradation && !spec.chaos && spec.fault_plan.empty()) {
    std::fprintf(stderr,
                 "error: --degradation needs a faulted run "
                 "(--faults or --sweep chaos)\n");
    return 2;
  }

  runtime::Runner::Config rc;
  rc.threads = threads;
  runtime::Runner runner{rc};
  const auto total = spec.replication_count();
  if (!quiet) {
    std::fprintf(stderr,
                 "running %zu replications (%zu grid points x %zu seeds, "
                 "%d rounds) on %u thread(s)\n",
                 total, spec.grid().size(), spec.seeds.size(), spec.rounds,
                 runner.effective_threads(total));
    runner.set_progress([](std::size_t done, std::size_t all) {
      std::fprintf(stderr, "\r  %zu/%zu", done, all);
      if (done == all) std::fprintf(stderr, "\n");
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<runtime::ReplicationResult> results;
  try {
    results = runner.run(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: replication failed: %s\n", e.what());
    return 1;
  }
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Manifests are stamped here, at the CLI layer only: the library CSV
  // renderers (Aggregator, verdict_csv, trust_csv) stay manifest-free so
  // golden fixtures and record/replay byte-comparisons never see them.
  const auto manifest = build_manifest(spec, seed_base, threads, confidence);

  runtime::Aggregator aggregator{confidence};
  std::string output;
  if (degradation) {
    output = manifest.comment_header() +
             runtime::Aggregator::degradation_csv(aggregator.degradation(results));
  } else if (per_round) {
    output = manifest.comment_header() +
             runtime::Aggregator::per_round_csv(aggregator.per_round(results));
  } else {
    const auto rows = aggregator.aggregate(results);
    output = format == "json"
                 ? "{\"manifest\":" + manifest.json_object() +
                       ",\"results\":" + runtime::Aggregator::to_json(rows) +
                       "}\n"
                 : manifest.comment_header() +
                       runtime::Aggregator::to_csv(rows);
  }

  if (out_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else if (!write_file(out_path, output)) {
    return 1;
  }

  // Observability exposition, written before the safety audits below so a
  // failing run still leaves its metrics and flight-recorder dump behind.
  if (!metrics_path.empty()) {
    obs::MetricsSnapshot merged;
    for (const auto& r : results) merged.merge(r.metrics);
    if (!write_file(metrics_path,
                    merged.to_prometheus(manifest.comment_header())))
      return 1;
  }
  if (!trace_path.empty()) {
    std::vector<std::pair<std::uint64_t, std::vector<obs::TraceEvent>>> groups;
    groups.reserve(results.size());
    std::uint64_t dropped = 0;
    for (const auto& r : results) {
      groups.emplace_back(r.task_index, r.trace);
      dropped += r.trace_dropped;
    }
    if (!write_file(trace_path, obs::trace_json_multi(groups))) return 1;
    if (dropped > 0 && !quiet)
      std::fprintf(stderr,
                   "note: flight recorder dropped %llu event(s) to ring wrap "
                   "(oldest first)\n",
                   static_cast<unsigned long long>(dropped));
  }

  if (!quiet)
    std::fprintf(stderr, "done: %zu replications in %.2f s (%.1f repl/s)\n",
                 total, wall, wall > 0 ? static_cast<double>(total) / wall : 0.0);

  // Faulted runs double as safety audits: any invariant violation (a down
  // node convicted, a route naming a dead or partitioned next hop, trust
  // out of bounds) fails the invocation so chaos smoke jobs catch it.
  std::uint64_t violations = 0;
  for (const auto& r : results) violations += r.invariant_violations;
  if (violations > 0) {
    std::fprintf(stderr,
                 "error: %llu invariant violation(s) during faulted run\n",
                 static_cast<unsigned long long>(violations));
    return 3;
  }
  // Grayhole sweeps carry the same contract through the forwarding audit:
  // a conviction of any honest node fails the invocation.
  if (spec.attack == scenario::TrustExperiment::AttackKind::kGrayhole) {
    std::uint64_t false_convictions = 0;
    for (const auto& r : results) false_convictions += r.false_convictions;
    if (false_convictions > 0) {
      std::fprintf(stderr,
                   "error: %llu false conviction(s) during grayhole sweep\n",
                   static_cast<unsigned long long>(false_convictions));
      return 3;
    }
  }
  return 0;
}
