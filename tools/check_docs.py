#!/usr/bin/env python3
"""Documentation lint for the CI docs job. Three checks, all offline:

1. Markdown links: every relative link target in *.md exists (external
   http(s)/mailto links are skipped — CI must not depend on the network).
2. Equation-table anchors: every `path:line` / `path#Lline` reference in
   docs/ARCHITECTURE.md points at an existing file, a line inside it, and
   — when the reference is preceded by a `backticked symbol` on the same
   markdown line — the symbol's last component must appear within a few
   lines of the anchor, so the paper-equation-to-code table cannot rot
   silently when edits shift line numbers.
3. Doxygen coverage: every public class/struct declared in src/net,
   src/sim and src/psim headers carries a `///` doc comment (the
   determinism-contract surface the batching and sharding work relies on).

Exit code 0 = clean, 1 = findings (printed one per line).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ANCHOR_RE = re.compile(r"\(((?:\.\./)?(?:src|tests|tools|bench)/[\w/.-]+\.(?:cpp|hpp))#L(\d+)\)")
ANCHOR_SLACK = 3  # lines of drift tolerated before a symbol anchor fails
DOC_DIRS = ["src/net", "src/sim", "src/psim", "src/obs"]
DECL_RE = re.compile(
    r"^(?:template\s*<[^>]*>\s*)?(class|struct)\s+([A-Z]\w+)"
    r"(?:\s+final)?\s*(?::[^;{]*)?\{")


def fail(findings, msg):
    findings.append(msg)


def check_markdown_links(findings):
    for md in sorted(ROOT.rglob("*.md")):
        if any(part in ("build", "build-asan", ".git") for part in md.parts):
            continue
        rel = md.relative_to(ROOT)
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    fail(findings, f"{rel}:{lineno}: broken link -> {target}")


def check_architecture_anchors(findings):
    arch = ROOT / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        fail(findings, "docs/ARCHITECTURE.md missing")
        return
    text = arch.read_text()
    anchors = []
    for md_line in text.splitlines():
        for m in ANCHOR_RE.finditer(md_line):
            # The symbol the anchor claims to point at is the last
            # `backticked` token before it on the same markdown line
            # (e.g. "`TrustStore::apply_evidence`, [src/...#L27]").
            ticked = re.findall(r"`([^`]+)`", md_line[:m.start()])
            symbol = ticked[-1] if ticked else None
            anchors.append((m.group(1), int(m.group(2)), symbol))
    if not anchors:
        fail(findings, "docs/ARCHITECTURE.md: no file#Lline anchors found "
                       "(equation table must reference code lines)")
    for path, line, symbol in anchors:
        resolved = (arch.parent / path).resolve()
        if not resolved.exists():
            fail(findings, f"docs/ARCHITECTURE.md: anchor file missing -> {path}")
            continue
        src_lines = resolved.read_text().splitlines()
        if not 1 <= line <= len(src_lines):
            fail(findings,
                 f"docs/ARCHITECTURE.md: {path}#L{line} out of range (file has "
                 f"{len(src_lines)} lines)")
            continue
        if symbol is None:
            continue
        # Anchor drift: the named symbol must appear near the anchored line,
        # otherwise inserting code above it silently mis-points the table.
        name = symbol.split("::")[-1].strip("()")
        lo, hi = max(0, line - 1 - ANCHOR_SLACK), line + ANCHOR_SLACK
        if not any(name in s for s in src_lines[lo:hi]):
            fail(findings,
                 f"docs/ARCHITECTURE.md: {path}#L{line} drifted — `{name}` "
                 f"not found within {ANCHOR_SLACK} lines of the anchor")
    # The table must cover all of Eqs. 5-10.
    for eq in range(5, 11):
        if f"Eq. {eq}" not in text:
            fail(findings, f"docs/ARCHITECTURE.md: equation table misses Eq. {eq}")


def check_doxygen_coverage(findings):
    for d in DOC_DIRS:
        for header in sorted((ROOT / d).glob("*.hpp")):
            lines = header.read_text().splitlines()
            rel = header.relative_to(ROOT)
            depth = 0
            for i, line in enumerate(lines):
                stripped = line.strip()
                # Namespace braces don't nest scope for this purpose: the
                # types directly inside a namespace are the public surface.
                is_namespace = stripped.startswith("namespace ") or (
                    stripped.startswith("}") and "// namespace" in stripped)
                if depth == 0 and (m := DECL_RE.match(stripped)):
                    prev = lines[i - 1].strip() if i else ""
                    if not (prev.startswith("///") or prev.endswith("*/")):
                        fail(findings,
                             f"{rel}:{i + 1}: public {m.group(1)} {m.group(2)} "
                             f"lacks a /// doc comment")
                if not is_namespace:
                    depth += line.count("{") - line.count("}")


def main():
    findings = []
    check_markdown_links(findings)
    check_architecture_anchors(findings)
    check_doxygen_coverage(findings)
    for f in findings:
        print(f)
    print(f"check_docs: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
