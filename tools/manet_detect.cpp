// manet_detect — offline detection over recorded binary audit logs.
//
// The detection pipeline (core/pipeline.hpp) consumes an abstract
// audit-event stream; the live simulator is one producer, a recorded log is
// another. This tool closes the loop:
//
//   manet_detect record --out run.mntaudit --seed 7
//       runs the §V trust experiment with audit recording on and writes the
//       investigator's stream (header + line/round/decay frames) to disk;
//       --verdicts/--trust additionally dump the LIVE run's canonical CSVs.
//
//   manet_detect replay --log run.mntaudit --verdicts replay.csv
//       mmaps the log, rebuilds the pipeline from the header, feeds every
//       frame back, and reports throughput. The CSVs are byte-identical to
//       the live run's: cmp(1) is the equivalence check.
//
// Exit codes: 0 ok, 1 usage/IO error, 2 corrupt or version-skewed log.

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "logging/audit_log.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "scenario/trust_experiment.hpp"

using namespace manet;

namespace {

void usage() {
  std::fprintf(stderr, R"(usage: manet_detect <record|replay> [options]

record options (live run with audit recording)
  --out FILE        write the binary audit log here (required)
  --seed N          replication seed (default 1)
  --nodes N         cluster size incl. attacker+investigator (default 16)
  --liars N         colluding liars among the bystanders (default 4)
  --rounds N        attack investigation rounds (default 12)
  --idle N          idle decay rounds after the attack ceases (default 4)
  --attack KIND     spoof (default) or grayhole (forwarding-audit workload)
  --drop-fraction F grayhole drop probability (default 1.0 = blackhole)
  --verdicts FILE   also dump the live run's verdict CSV
  --trust FILE      also dump the live run's final trust CSV

replay options (offline detection)
  --log FILE        recorded audit log to replay (required)
  --verdicts FILE   dump the replayed verdict CSV
  --trust FILE      dump the replayed final trust CSV

both commands
  --metrics FILE    write the run's metrics registry as Prometheus text
                    (run manifest in the header). Record and replay emit the
                    same manet_pipeline_* counters for the same log — the
                    snapshot is part of the equivalence surface.

exit codes: 0 ok, 1 usage/IO error, 2 corrupt log
)");
}

bool write_file(const std::string& path, const void* data, std::size_t size) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  return static_cast<bool>(out);
}

bool write_file(const std::string& path, const std::string& text) {
  return write_file(path, text.data(), text.size());
}

/// A read-only view of a whole file: mmapped when possible (the reader is
/// bounds-checked, so a corrupt frame never walks past the mapping), with a
/// plain read() fallback for filesystems that refuse to map.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error{path + ": " + std::strerror(errno)};
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw std::runtime_error{path + ": fstat failed"};
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        mapped_ = p;
      } else {
        fallback_.resize(size_);
        std::size_t got = 0;
        while (got < size_) {
          const ::ssize_t n =
              ::read(fd, fallback_.data() + got, size_ - got);
          if (n <= 0) {
            ::close(fd);
            throw std::runtime_error{path + ": short read"};
          }
          got += static_cast<std::size_t>(n);
        }
      }
    }
    ::close(fd);
  }
  ~MappedFile() {
    if (mapped_ != nullptr) ::munmap(mapped_, size_);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const {
    return mapped_ != nullptr ? static_cast<const std::uint8_t*>(mapped_)
                              : fallback_.data();
  }
  std::size_t size() const { return size_; }

 private:
  void* mapped_ = nullptr;
  std::vector<std::uint8_t> fallback_;
  std::size_t size_ = 0;
};

struct Args {
  std::string out, log, verdicts, trust, metrics;
  std::string attack = "spoof";
  double drop_fraction = 1.0;
  std::uint64_t seed = 1;
  std::size_t nodes = 16;
  std::size_t liars = 4;
  int rounds = 12;
  int idle = 4;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "manet_detect: %s needs a value\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--out") {
      if ((v = value()) == nullptr) return false;
      args.out = v;
    } else if (flag == "--log") {
      if ((v = value()) == nullptr) return false;
      args.log = v;
    } else if (flag == "--verdicts") {
      if ((v = value()) == nullptr) return false;
      args.verdicts = v;
    } else if (flag == "--trust") {
      if ((v = value()) == nullptr) return false;
      args.trust = v;
    } else if (flag == "--metrics") {
      if ((v = value()) == nullptr) return false;
      args.metrics = v;
    } else if (flag == "--seed") {
      if ((v = value()) == nullptr) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--nodes") {
      if ((v = value()) == nullptr) return false;
      args.nodes = std::strtoull(v, nullptr, 10);
    } else if (flag == "--liars") {
      if ((v = value()) == nullptr) return false;
      args.liars = std::strtoull(v, nullptr, 10);
    } else if (flag == "--rounds") {
      if ((v = value()) == nullptr) return false;
      args.rounds = std::atoi(v);
    } else if (flag == "--idle") {
      if ((v = value()) == nullptr) return false;
      args.idle = std::atoi(v);
    } else if (flag == "--attack") {
      if ((v = value()) == nullptr) return false;
      args.attack = v;
      if (args.attack != "spoof" && args.attack != "grayhole") {
        std::fprintf(stderr, "manet_detect: --attack must be spoof|grayhole\n");
        return false;
      }
    } else if (flag == "--drop-fraction") {
      if ((v = value()) == nullptr) return false;
      args.drop_fraction = std::strtod(v, nullptr);
    } else if (flag == "--help" || flag == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "manet_detect: unknown option %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

obs::RunManifest detect_manifest(const char* command, const Args& args) {
  obs::RunManifest m{"manet_detect"};
  m.add("command", command);
  if (std::strcmp(command, "record") == 0) {
    m.add("seed", args.seed);
    m.add("nodes", static_cast<std::uint64_t>(args.nodes));
    m.add("liars", static_cast<std::uint64_t>(args.liars));
    m.add("rounds", static_cast<std::uint64_t>(args.rounds));
    m.add("idle", static_cast<std::uint64_t>(args.idle));
    m.add("attack", args.attack);
  } else {
    m.add("log", args.log);
  }
  return m;
}

int cmd_record(const Args& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "manet_detect record: --out is required\n");
    return 1;
  }
  // The metrics registry records for the whole live run; the pipeline
  // counters it collects are the same ones cmd_replay collects from the
  // recorded stream, so the two snapshots are directly diffable.
  obs::Context obs_ctx;
  obs::Scope obs_scope{&obs_ctx};

  scenario::TrustExperiment::Config config;
  config.seed = args.seed;
  config.num_nodes = args.nodes;
  config.num_liars = args.liars;
  config.rounds = args.rounds;
  config.record_audit = true;
  if (args.attack == "grayhole") {
    config.attack = scenario::TrustExperiment::AttackKind::kGrayhole;
    config.drop_fraction = args.drop_fraction;
  }

  scenario::TrustExperiment exp{config};
  exp.setup();
  exp.run_attack_rounds(args.rounds);
  exp.cease_attack();
  for (int i = 0; i < args.idle; ++i) exp.run_idle_round();
  // Flush log lines recorded after the last scan into the live pipeline so
  // its kPipelineLines counter covers the same frames a replay consumes.
  // Pure liveness-map bookkeeping — no RNG, trust, or audit-log effects.
  exp.detector().feed_log_growth();

  const auto bytes = exp.audit_log();
  if (!write_file(args.out, bytes.data(), bytes.size())) {
    std::fprintf(stderr, "manet_detect record: cannot write %s\n",
                 args.out.c_str());
    return 1;
  }
  if (!args.verdicts.empty() &&
      !write_file(args.verdicts, core::verdict_csv(exp.detector().reports()))) {
    std::fprintf(stderr, "manet_detect record: cannot write %s\n",
                 args.verdicts.c_str());
    return 1;
  }
  if (!args.trust.empty() &&
      !write_file(args.trust, core::trust_csv(exp.detector().trust_store()))) {
    std::fprintf(stderr, "manet_detect record: cannot write %s\n",
                 args.trust.c_str());
    return 1;
  }
  if (!args.metrics.empty()) {
    const auto snap = obs_ctx.snapshot();
    const auto manifest = detect_manifest("record", args);
    if (!write_file(args.metrics,
                    snap.to_prometheus(manifest.comment_header()))) {
      std::fprintf(stderr, "manet_detect record: cannot write %s\n",
                   args.metrics.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "recorded %zu bytes (%d rounds + %d idle, seed %llu) to %s\n",
               bytes.size(), args.rounds, args.idle,
               static_cast<unsigned long long>(args.seed), args.out.c_str());
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.log.empty()) {
    std::fprintf(stderr, "manet_detect replay: --log is required\n");
    return 1;
  }
  try {
    const MappedFile file{args.log};
    const auto start = std::chrono::steady_clock::now();

    // The replay's frame tallies come from the same metrics registry the
    // live run feeds — one instrumentation point (the pipeline's consume_*
    // paths), two producers, identical named counters.
    obs::Context obs_ctx;
    obs::Scope obs_scope{&obs_ctx};

    core::AuditStreamReader stream{file.data(), file.size()};
    auto pipeline = core::pipeline_from_header(stream.header());
    core::AuditEvent event;
    while (stream.next(event)) pipeline.consume(event);

    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const auto snap = obs_ctx.snapshot();
    const auto lines =
        snap.counter_value(obs::hot_name(obs::Hot::kPipelineLines));
    const auto rounds =
        snap.counter_value(obs::hot_name(obs::Hot::kPipelineRounds));
    const auto decays =
        snap.counter_value(obs::hot_name(obs::Hot::kPipelineDecays));
    const auto audits =
        snap.counter_value(obs::hot_name(obs::Hot::kPipelineForwardAudits));
    if (!args.verdicts.empty() &&
        !write_file(args.verdicts, core::verdict_csv(pipeline.reports()))) {
      std::fprintf(stderr, "manet_detect replay: cannot write %s\n",
                   args.verdicts.c_str());
      return 1;
    }
    if (!args.trust.empty() &&
        !write_file(args.trust, core::trust_csv(pipeline.trust_store()))) {
      std::fprintf(stderr, "manet_detect replay: cannot write %s\n",
                   args.trust.c_str());
      return 1;
    }
    if (!args.metrics.empty()) {
      const auto manifest = detect_manifest("replay", args);
      if (!write_file(args.metrics,
                      snap.to_prometheus(manifest.comment_header()))) {
        std::fprintf(stderr, "manet_detect replay: cannot write %s\n",
                     args.metrics.c_str());
        return 1;
      }
    }

    std::uint64_t convictions = 0;
    for (const auto& r : pipeline.reports())
      if (r.verdict == trust::Verdict::kIntruder) ++convictions;
    const std::uint64_t total = lines + rounds + decays + audits;
    std::fprintf(stderr,
                 "replayed %llu frames (%llu lines, %llu rounds, %llu decays, "
                 "%llu audits) in %.3fs — %.0f records/s; %zu reports, "
                 "%llu convictions, %llu suppressed\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(lines),
                 static_cast<unsigned long long>(rounds),
                 static_cast<unsigned long long>(decays),
                 static_cast<unsigned long long>(audits), elapsed,
                 elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0,
                 pipeline.reports().size(),
                 static_cast<unsigned long long>(convictions),
                 static_cast<unsigned long long>(
                     pipeline.degradation().suppressed_convictions));
    return 0;
  } catch (const logging::AuditError& e) {
    std::fprintf(stderr, "manet_detect replay: corrupt log: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "manet_detect replay: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  Args args;
  if (!parse_args(argc, argv, args)) return 1;
  if (command == "record") return cmd_record(args);
  if (command == "replay") return cmd_replay(args);
  usage();
  return 1;
}
