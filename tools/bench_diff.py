#!/usr/bin/env python3
"""Print median deltas between consecutive BENCH_N.json gauge reports.

The repo records its perf trajectory as BENCH_N.json files produced by
tools/bench_report (Google Benchmark JSON with median aggregates; see
docs/BENCHMARKING.md for the series and its comparability rules). This tool
walks every consecutive pair (N, M) of recorded reports — consecutive in
the sense of "next recorded", so a gap like BENCH_3 missing pairs 2 with
4 — and prints, per benchmark present in both, the median CPU-time delta.

Usage:
    tools/bench_diff.py [--dir DIR] [--last] [--selftest]

    --dir DIR   directory holding BENCH_N.json files (default: repo root)
    --last      only diff the last recorded pair
    --selftest  run the built-in unit checks (synthetic reports covering
                added/removed gauges, raw-only reports, missing fields) and
                exit non-zero on any failure — CI's bench-smoke runs this

Benchmarks appearing on only one side are listed as added/removed — gauges
come and go as subsystems land and retire, so neither direction is an
error. Reports without median aggregates (e.g. a single-repetition smoke
run) fall back to their raw iteration entries. A comparability break
(different machine in the JSON context) is flagged but not fatal, mirroring
the BENCHMARKING.md caveat that cross-host numbers are indicative only.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def load_medians(path: Path) -> tuple[dict[str, tuple[float, str]], dict]:
    """Map run_name -> (median cpu_time, unit) from one report.

    Prefers median aggregates; a report with none (single-repetition runs
    emit only raw iteration entries) falls back to those raw entries.
    Entries without a cpu_time are skipped rather than fatal.
    """
    with path.open() as fh:
        data = json.load(fh)
    benches = data.get("benchmarks", [])
    picked = [b for b in benches if b.get("aggregate_name") == "median"]
    if not picked:
        picked = [b for b in benches if "aggregate_name" not in b]
    medians: dict[str, tuple[float, str]] = {}
    for bench in picked:
        if "cpu_time" not in bench:
            continue
        name = (bench.get("run_name")
                or bench.get("name", "?").removesuffix("_median"))
        medians[name] = (bench["cpu_time"], bench.get("time_unit", "ns"))
    return medians, data.get("context", {})


def fmt_time(value: float, unit: str) -> str:
    return f"{value:,.1f} {unit}"


def diff_pair(old_path: Path, new_path: Path) -> None:
    old, old_ctx = load_medians(old_path)
    new, new_ctx = load_medians(new_path)
    print(f"== {old_path.name} -> {new_path.name} ==")
    if old_ctx.get("host_name") != new_ctx.get("host_name"):
        print("   (context differs: recorded on different hosts — "
              "deltas are indicative only)")

    shared = sorted(set(old) & set(new))
    # Width over every name on either side, so added/removed rows align
    # even when no gauge is shared between the two reports.
    width = max((len(n) for n in set(old) | set(new)), default=0)
    for name in shared:
        o_val, o_unit = old[name]
        n_val, n_unit = new[name]
        if o_unit != n_unit:
            print(f"  {name:<{width}}  unit changed ({o_unit} -> {n_unit})")
            continue
        ratio = n_val / o_val if o_val else float("inf")
        direction = "faster" if ratio < 1.0 else "slower"
        factor = (1.0 / ratio) if ratio < 1.0 else ratio
        print(f"  {name:<{width}}  {fmt_time(o_val, o_unit):>15} -> "
              f"{fmt_time(n_val, n_unit):>15}   {factor:6.2f}x {direction}")
    for name in sorted(set(new) - set(old)):
        print(f"  {name:<{width}}  [new gauge: {fmt_time(*new[name])}]")
    for name in sorted(set(old) - set(new)):
        print(f"  {name:<{width}}  [gauge removed]")
    print()


def selftest() -> int:
    """Unit checks over synthetic reports; returns 0 when all pass."""
    import contextlib
    import io
    import tempfile

    def report(benches: list[dict], host: str = "ci") -> dict:
        return {"context": {"host_name": host}, "benchmarks": benches}

    def median(name: str, cpu: float) -> dict:
        return {"name": f"{name}_median", "run_name": name,
                "aggregate_name": "median", "cpu_time": cpu,
                "time_unit": "ns"}

    def raw(name: str, cpu: float) -> dict:
        return {"name": name, "run_name": name, "cpu_time": cpu,
                "time_unit": "ns"}

    cases_failed = 0

    def check(label: str, cond: bool) -> None:
        nonlocal cases_failed
        if not cond:
            cases_failed += 1
            print(f"selftest FAIL: {label}", file=sys.stderr)

    with tempfile.TemporaryDirectory() as tmp:
        d = Path(tmp)

        def run_diff(old: dict, new: dict) -> str:
            (d / "a.json").write_text(json.dumps(old))
            (d / "b.json").write_text(json.dumps(new))
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                diff_pair(d / "a.json", d / "b.json")
            return out.getvalue()

        # Gauges added and retired between reports: new/removed rows, no
        # crash, shared gauge still diffed.
        text = run_diff(
            report([median("BM_Kept", 100.0), median("BM_Retired", 50.0)]),
            report([median("BM_Kept", 200.0), median("BM_Added", 10.0)]))
        check("added gauge listed", "[new gauge: 10.0 ns]" in text)
        check("retired gauge listed", "BM_Retired" in text
              and "[gauge removed]" in text)
        check("shared gauge diffed", "2.00x slower" in text)

        # Disjoint gauge sets: nothing shared, still prints both sides.
        text = run_diff(report([median("BM_OnlyOld", 5.0)]),
                        report([median("BM_OnlyNew", 7.0)]))
        check("disjoint sets ok", "[new gauge:" in text
              and "[gauge removed]" in text)

        # Raw-only report (single repetition, no aggregates): falls back.
        text = run_diff(report([raw("BM_Raw", 10.0)]),
                        report([raw("BM_Raw", 30.0)]))
        check("raw fallback diffed", "3.00x slower" in text)

        # Entries without cpu_time are skipped, not fatal.
        text = run_diff(
            report([{"name": "BM_NoTime", "run_name": "BM_NoTime"},
                    median("BM_Ok", 10.0)]),
            report([median("BM_Ok", 10.0)]))
        check("missing cpu_time skipped", "BM_Ok" in text
              and "BM_NoTime" not in text)

        # Host change is flagged but not fatal.
        text = run_diff(report([median("BM_Ok", 1.0)], host="a"),
                        report([median("BM_Ok", 1.0)], host="b"))
        check("host change flagged", "context differs" in text)

    if cases_failed == 0:
        print("bench_diff selftest: all checks passed")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Median deltas between consecutive BENCH_N.json reports")
    parser.add_argument("--dir", default=str(Path(__file__).resolve().parent.parent),
                        help="directory holding BENCH_N.json files")
    parser.add_argument("--last", action="store_true",
                        help="only diff the most recent pair")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    bench_dir = Path(args.dir)
    numbered = sorted(
        (int(m.group(1)), p)
        for p in bench_dir.glob("BENCH_*.json")
        if (m := BENCH_RE.match(p.name)))
    if len(numbered) < 2:
        print(f"need at least two BENCH_N.json files in {bench_dir}",
              file=sys.stderr)
        return 1

    pairs = list(zip(numbered, numbered[1:]))
    if args.last:
        pairs = pairs[-1:]
    for (_, old_path), (_, new_path) in pairs:
        diff_pair(old_path, new_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
