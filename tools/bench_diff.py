#!/usr/bin/env python3
"""Print median deltas between consecutive BENCH_N.json gauge reports.

The repo records its perf trajectory as BENCH_N.json files produced by
tools/bench_report (Google Benchmark JSON with median aggregates; see
docs/BENCHMARKING.md for the series and its comparability rules). This tool
walks every consecutive pair (N, M) of recorded reports — consecutive in
the sense of "next recorded", so a gap like BENCH_3 missing pairs 2 with
4 — and prints, per benchmark present in both, the median CPU-time delta.

Usage:
    tools/bench_diff.py [--dir DIR] [--last]

    --dir DIR   directory holding BENCH_N.json files (default: repo root)
    --last      only diff the last recorded pair

Benchmarks appearing on only one side are listed as added/removed; a
comparability break (different machine in the JSON context) is flagged but
not fatal, mirroring the BENCHMARKING.md caveat that cross-host numbers are
indicative only.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def load_medians(path: Path) -> tuple[dict[str, tuple[float, str]], dict]:
    """Map run_name -> (median cpu_time, unit) from one report."""
    with path.open() as fh:
        data = json.load(fh)
    medians: dict[str, tuple[float, str]] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        name = bench.get("run_name") or bench["name"].removesuffix("_median")
        medians[name] = (bench["cpu_time"], bench.get("time_unit", "ns"))
    return medians, data.get("context", {})


def fmt_time(value: float, unit: str) -> str:
    return f"{value:,.1f} {unit}"


def diff_pair(old_path: Path, new_path: Path) -> None:
    old, old_ctx = load_medians(old_path)
    new, new_ctx = load_medians(new_path)
    print(f"== {old_path.name} -> {new_path.name} ==")
    if old_ctx.get("host_name") != new_ctx.get("host_name"):
        print("   (context differs: recorded on different hosts — "
              "deltas are indicative only)")

    shared = sorted(set(old) & set(new))
    width = max((len(n) for n in shared), default=0)
    for name in shared:
        o_val, o_unit = old[name]
        n_val, n_unit = new[name]
        if o_unit != n_unit:
            print(f"  {name:<{width}}  unit changed ({o_unit} -> {n_unit})")
            continue
        ratio = n_val / o_val if o_val else float("inf")
        direction = "faster" if ratio < 1.0 else "slower"
        factor = (1.0 / ratio) if ratio < 1.0 else ratio
        print(f"  {name:<{width}}  {fmt_time(o_val, o_unit):>15} -> "
              f"{fmt_time(n_val, n_unit):>15}   {factor:6.2f}x {direction}")
    for name in sorted(set(new) - set(old)):
        print(f"  {name:<{width}}  [new gauge: {fmt_time(*new[name])}]")
    for name in sorted(set(old) - set(new)):
        print(f"  {name:<{width}}  [gauge removed]")
    print()


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Median deltas between consecutive BENCH_N.json reports")
    parser.add_argument("--dir", default=str(Path(__file__).resolve().parent.parent),
                        help="directory holding BENCH_N.json files")
    parser.add_argument("--last", action="store_true",
                        help="only diff the most recent pair")
    args = parser.parse_args()

    bench_dir = Path(args.dir)
    numbered = sorted(
        (int(m.group(1)), p)
        for p in bench_dir.glob("BENCH_*.json")
        if (m := BENCH_RE.match(p.name)))
    if len(numbered) < 2:
        print(f"need at least two BENCH_N.json files in {bench_dir}",
              file=sys.stderr)
        return 1

    pairs = list(zip(numbered, numbered[1:]))
    if args.last:
        pairs = pairs[-1:]
    for (_, old_path), (_, new_path) in pairs:
        diff_pair(old_path, new_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
