// Runs the perf-gauge micro benchmarks — medium broadcast (spatial grid and
// the seed full-scan baseline), batched vs per-sender HELLO rounds,
// event-queue churn, MPR selection and link-set scans, routing recompute
// (full rebuild, identical-graph refresh and edge-addition churn), wire
// round-trip, the flat-slab trust store at >= 10k subjects, and the psim
// sharded-engine gauges (full-stack slabs, synthetic window throughput,
// serial-fraction counters), and the fault-subsystem checkpoint codec
// (save/restore throughput at 256 and 1024 nodes), plus the audit-event
// detection pipeline (in-memory consume and binary-log replay at 256 and
// 1024 peer streams, the kForwardAudit frame path, and the end-to-end
// grayhole detection round), and the observability-layer gauges (disabled
// and enabled counter record, span record, registry snapshot) — with
// repeated runs and median aggregates, and
// writes the results to BENCH_10.json: the current point of this repo's
// recorded perf trajectory (see docs/BENCHMARKING.md for the whole series
// and its comparability rules; tools/bench_diff.py prints median deltas
// between consecutive BENCH_N files).
//
// Extra --benchmark_* flags are appended after the defaults, so e.g.
//   bench_report --benchmark_min_time=0.01s --benchmark_repetitions=2
// gives a quick CI smoke run.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::vector<std::string> args = {
      argv[0],
      "--benchmark_out=BENCH_10.json",
      "--benchmark_out_format=json",
      "--benchmark_repetitions=5",
      "--benchmark_report_aggregates_only=true",
      "--benchmark_filter=BM_MediumBroadcast|BM_EventQueueChurn|"
      "BM_MprSelection|BM_HelloSerializeParse|BM_BatchedRound|"
      "BM_PerSenderRound|BM_RoundWithDrain|BM_LinkSetScan|"
      "BM_RoutingRecompute|BM_SequentialSlab|BM_ShardedSlab|"
      "BM_SequentialWindows|BM_ShardedWindows|"
      "BM_TrustUpdateLarge|BM_TrustDecayAllLarge|"
      "BM_CheckpointSave|BM_CheckpointRestore|"
      "BM_DetectConsume|BM_AuditReplay|BM_AuditDecode|"
      "BM_ForwardAuditConsume|BM_GrayholeRound|"
      "BM_CounterInc|BM_SpanEnterExit|BM_SpanDisabled|BM_RegistrySnapshot",
  };
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());

  benchmark::Initialize(&argc2, argv2.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
