#include "olsr/messages.hpp"

#include <algorithm>

namespace manet::olsr {

std::vector<NodeId> HelloMessage::symmetric_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [code, addrs] : link_groups) {
    const bool sym_link = link_type_of(code) == LinkType::kSym;
    const auto nt = neighbor_type_of(code);
    const bool sym_neigh =
        nt == NeighborType::kSymNeigh || nt == NeighborType::kMprNeigh;
    if (sym_link || sym_neigh) {
      for (auto a : addrs)
        if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
    }
  }
  return out;
}

std::vector<NodeId> HelloMessage::all_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [code, addrs] : link_groups)
    for (auto a : addrs)
      if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
  return out;
}

}  // namespace manet::olsr
