#include "olsr/agent.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "olsr/wire.hpp"

namespace manet::olsr {

Agent::Agent(sim::Engine& sim, net::Medium& medium, NodeId id,
             Config config, AgentHooks* hooks)
    : sim_{sim},
      medium_{medium},
      id_{id},
      config_{std::move(config)},
      hooks_{hooks},
      log_{config_.log_capacity},
      hello_timer_{sim, config_.hello_interval, config_.jitter,
                   [this] { emit_hello(); }},
      tc_timer_{sim, config_.tc_interval, config_.jitter,
                [this] { emit_tc(); }},
      mid_timer_{sim, config_.mid_interval, config_.jitter,
                 [this] {
                   emit_mid();
                   emit_hna();
                 }},
      housekeeping_timer_{sim, config_.housekeeping_interval, sim::Duration{},
                          [this] { housekeep(); }} {
  if (config_.batched_hello) {
    // The HELLO scheduler drives the Medium's batched broadcast rounds:
    // every arming of the jittered emission announces the sender for the
    // upcoming window. Enrollment is pure bookkeeping (no RNG draws, no
    // events), so it cannot perturb the trace.
    hello_timer_.set_on_schedule(
        [this](sim::Time) { medium_.hello_batch().enroll(id_); });
  }
  if (config_.batched_floods) {
    // TC emissions cluster inside the same kind of jitter window as HELLOs
    // (tc_interval - U[0, jitter] per MPR), so they join the shared
    // per-cell snapshot path the same way.
    tc_timer_.set_on_schedule(
        [this](sim::Time) { medium_.hello_batch().enroll(id_); });
  }
}

Agent::~Agent() { stop(); }

void Agent::start() {
  if (running_) return;
  running_ = true;
  auto handler = [this](const net::Packet& p) { handle_packet(p); };
  if (medium_.attached(id_)) {
    medium_.set_handler(id_, std::move(handler));
  } else {
    medium_.attach(id_, net::Position{}, std::move(handler));
  }
  hello_timer_.start();
  tc_timer_.start();
  if (!config_.extra_interfaces.empty() || !config_.hna_networks.empty())
    mid_timer_.start();
  housekeeping_timer_.start();
  log_.append(make_record("daemon_start"));
}

void Agent::stop() {
  if (!running_) return;
  running_ = false;
  hello_timer_.stop();
  tc_timer_.stop();
  mid_timer_.stop();
  housekeeping_timer_.stop();
  if (medium_.attached(id_)) medium_.set_handler(id_, {});
  log_.append(make_record("daemon_stop"));
}

logging::LogRecord Agent::make_record(std::string event) const {
  logging::LogRecord r;
  r.time = sim_.now();
  r.node = id_;
  r.event = std::move(event);
  return r;
}

std::vector<NodeId> Agent::mpr_selectors() const {
  std::vector<NodeId> out;
  for (const auto& [n, until] : mpr_selectors_)
    if (until > sim_.now()) out.push_back(n);
  return out;
}

bool Agent::is_symmetric_neighbor(NodeId n) const {
  return links_.is_symmetric(sim_.now(), n);
}

bool Agent::is_mpr(NodeId n) const {
  return std::binary_search(mprs_.begin(), mprs_.end(), n);
}

void Agent::build_knowledge_graph(KnowledgeGraph& g) const {
  g.clear();
  const auto now = sim_.now();
  // Edges touching ourselves come exclusively from the link set: RFC 3626
  // §10 requires the first hop of any route to be a *symmetric* neighbor,
  // so stale TC tuples must not resurrect a dead local link.
  links_.symmetric_neighbors(now, sym_scratch_);
  for (auto n : sym_scratch_) g.add_edge(id_, n);
  for (const auto& t : neighbors_.two_hop_tuples()) {
    if (t.two_hop == id_) continue;
    g.add_edge(t.via, t.two_hop);
  }
  for (const auto& t : topology_.tuples()) {
    if (t.dest == id_ || t.last_hop == id_) continue;
    g.add_edge(t.last_hop, t.dest);
  }
}

KnowledgeGraph Agent::knowledge_graph() const {
  KnowledgeGraph g;
  build_knowledge_graph(g);
  return g;
}

// ---------------------------------------------------------------- emission

void Agent::emit_hello() {
  if (hooks_) hooks_->on_tick();

  HelloMessage h;
  h.htime = config_.hello_interval;
  h.willingness = config_.willingness;
  const auto now = sim_.now();

  // Every link tuple is advertised with its current state (§6.2):
  // SYM links carry the neighbor type (MPR if selected), heard-only links
  // are advertised ASYM so the peer can upgrade them to symmetric.
  links_.symmetric_neighbors(now, sym_scratch_);
  links_.asymmetric_neighbors(now, asym_scratch_);
  for (auto n : sym_scratch_) {
    const auto nt =
        is_mpr(n) ? NeighborType::kMprNeigh : NeighborType::kSymNeigh;
    h.add(LinkType::kSym, nt, n);
  }
  for (auto n : asym_scratch_) h.add(LinkType::kAsym, NeighborType::kNotNeigh, n);

  if (hooks_) hooks_->on_build_hello(h);

  Message m;
  m.header.type = MessageType::kHello;
  m.header.vtime = config_.neighb_hold;
  m.header.originator = id_;
  m.header.ttl = 1;  // HELLOs are never forwarded (§6.1)
  m.header.seq_num = next_msg_seq();
  m.body = h;

  auto rec = make_record("hello_sent");
  rec.with("seq", static_cast<std::int64_t>(m.header.seq_num))
      .with("neigh", logging::join_node_list(h.symmetric_neighbors()))
      .with("asym", logging::join_node_list(asym_scratch_))
      .with("will", static_cast<std::int64_t>(h.willingness));
  log_.append(std::move(rec));

  ++stats_.hello_sent;
  broadcast_message(std::move(m), config_.batched_hello);
}

void Agent::emit_tc() {
  const auto selectors = mpr_selectors();
  if (selectors.empty()) return;  // §9.3: only MPRs originate TCs

  TcMessage tc;
  tc.ansn = ansn_;
  tc.advertised = selectors;
  if (hooks_) hooks_->on_build_tc(tc);

  Message m;
  m.header.type = MessageType::kTc;
  m.header.vtime = config_.top_hold;
  m.header.originator = id_;
  m.header.ttl = kDefaultTtl;
  m.header.seq_num = next_msg_seq();
  m.body = tc;

  auto rec = make_record("tc_sent");
  rec.with("seq", static_cast<std::int64_t>(m.header.seq_num))
      .with("ansn", static_cast<std::int64_t>(tc.ansn))
      .with("adv", logging::join_node_list(tc.advertised));
  log_.append(std::move(rec));

  ++stats_.tc_sent;
  duplicates_.record(sim_.now(), id_, m.header.seq_num, true,
                     config_.dup_hold);
  broadcast_message(std::move(m), config_.batched_floods);
}

void Agent::emit_mid() {
  if (config_.extra_interfaces.empty()) return;
  MidMessage mid;
  mid.interfaces = config_.extra_interfaces;

  Message m;
  m.header.type = MessageType::kMid;
  m.header.vtime = kMidHoldTime;
  m.header.originator = id_;
  m.header.ttl = kDefaultTtl;
  m.header.seq_num = next_msg_seq();
  m.body = mid;

  auto rec = make_record("mid_sent");
  rec.with("seq", static_cast<std::int64_t>(m.header.seq_num))
      .with("ifaces", logging::join_node_list(mid.interfaces));
  log_.append(std::move(rec));

  duplicates_.record(sim_.now(), id_, m.header.seq_num, true,
                     config_.dup_hold);
  broadcast_message(std::move(m));
}

void Agent::emit_hna() {
  if (config_.hna_networks.empty()) return;
  HnaMessage hna;
  hna.entries = config_.hna_networks;

  Message m;
  m.header.type = MessageType::kHna;
  m.header.vtime = kHnaHoldTime;
  m.header.originator = id_;
  m.header.ttl = kDefaultTtl;
  m.header.seq_num = next_msg_seq();
  m.body = hna;

  auto rec = make_record("hna_sent");
  rec.with("seq", static_cast<std::int64_t>(m.header.seq_num))
      .with("count", static_cast<std::int64_t>(hna.entries.size()));
  log_.append(std::move(rec));

  duplicates_.record(sim_.now(), id_, m.header.seq_num, true,
                     config_.dup_hold);
  broadcast_message(std::move(m));
}

void Agent::broadcast_message(Message m, bool batched) {
  OlsrPacket p;
  p.seq_num = next_pkt_seq();
  p.messages.push_back(std::move(m));
  if (batched) {
    medium_.hello_batch().broadcast(id_, serialize_packet(p));
  } else {
    medium_.broadcast(id_, serialize_packet(p));
  }
}

void Agent::raw_broadcast(Message message) {
  OlsrPacket p;
  p.seq_num = next_pkt_seq();
  p.messages.push_back(std::move(message));
  medium_.broadcast(id_, serialize_packet(p));
}

// ---------------------------------------------------------------- reception

void Agent::handle_packet(const net::Packet& packet) {
  OlsrPacket parsed;
  try {
    parsed = parse_packet(packet.payload());
  } catch (const WireError&) {
    ++stats_.parse_errors;
    auto rec = make_record("packet_parse_error");
    rec.with("from", packet.transmitter);
    log_.append(std::move(rec));
    return;
  }

  for (const auto& m : parsed.messages) {
    if (hooks_) hooks_->on_receive(m);
    if (m.header.originator == id_) {
      // A retransmission of our own message: evidence that the transmitter
      // actually forwards our traffic (used by E2 drop detection).
      if (m.header.hop_count > 0) {
        auto rec = make_record("own_fwd_heard");
        rec.with("by", packet.transmitter)
            .with("seq", static_cast<std::int64_t>(m.header.seq_num))
            .with("type",
                  static_cast<std::int64_t>(static_cast<int>(m.header.type)));
        log_.append(std::move(rec));
      }
      continue;
    }
    switch (m.header.type) {
      case MessageType::kHello:
        process_hello(m, packet.transmitter);
        break;
      case MessageType::kTc:
        process_tc(m, packet.transmitter);
        break;
      case MessageType::kMid:
        process_mid(m, packet.transmitter);
        break;
      case MessageType::kHna:
        process_hna(m, packet.transmitter);
        break;
      case MessageType::kData:
        process_data(m, packet.transmitter);
        break;
    }
  }
}

void Agent::process_hello(const Message& m, NodeId /*transmitter*/) {
  const auto* hello = m.as_hello();
  if (!hello) return;
  // HELLOs are link-local (never forwarded), so the originator IS the
  // transmitter; link sensing keys off the originator address.
  const NodeId from = m.header.originator;
  ++stats_.hello_recv;

  // Link sensing: does the HELLO list us, and with which code?
  bool lists_us = false;
  bool lost_us = false;
  bool selects_us_mpr = false;
  for (const auto& [code, addrs] : hello->link_groups) {
    const bool has_us =
        std::find(addrs.begin(), addrs.end(), id_) != addrs.end();
    if (!has_us) continue;
    if (link_type_of(code) == LinkType::kLost) {
      lost_us = true;
    } else {
      lists_us = true;
    }
    if (neighbor_type_of(code) == NeighborType::kMprNeigh) selects_us_mpr = true;
  }

  const auto change =
      links_.on_hello(sim_.now(), from, lists_us, lost_us, m.header.vtime);
  const bool now_sym = links_.is_symmetric(sim_.now(), from);
  bool tables_changed = change != LinkSet::Change::kNone;
  if (neighbors_.upsert_neighbor(from, hello->willingness, now_sym))
    tables_changed = true;

  const auto advertised_sym = hello->symmetric_neighbors();
  std::vector<NodeId> advertised_asym;
  for (const auto& [code, addrs] : hello->link_groups) {
    if (link_type_of(code) == LinkType::kAsym &&
        neighbor_type_of(code) == NeighborType::kNotNeigh)
      advertised_asym.insert(advertised_asym.end(), addrs.begin(),
                             addrs.end());
  }
  auto rec = make_record("hello_recv");
  rec.with("from", from)
      .with("seq", static_cast<std::int64_t>(m.header.seq_num))
      .with("sym", logging::join_node_list(advertised_sym))
      .with("asym", logging::join_node_list(advertised_asym))
      .with("lists_us", lists_us ? "1" : "0")
      .with("will", static_cast<std::int64_t>(hello->willingness));
  log_.append(std::move(rec));

  if (change == LinkSet::Change::kBecameSym) {
    auto r = make_record("link_sym");
    r.with("nbr", from);
    log_.append(std::move(r));
  } else if (change == LinkSet::Change::kLost) {
    auto r = make_record("link_lost");
    r.with("nbr", from);
    log_.append(std::move(r));
  }

  // 2-hop set (§8.1.1): symmetric neighbors advertised by a symmetric
  // neighbor, ourselves excluded.
  if (now_sym) {
    std::vector<NodeId> two_hops;
    for (auto n : advertised_sym)
      if (n != id_) two_hops.push_back(n);
    if (neighbors_.set_two_hops_via(from, two_hops,
                                    sim_.now() + m.header.vtime)) {
      tables_changed = true;
      auto r = make_record("two_hop_update");
      r.with("via", from)
          .with("nodes",
                logging::join_node_list(neighbors_.two_hops_via(from)));
      log_.append(std::move(r));
    }
  }

  // MPR selector set (§8.4.1).
  const bool was_selector =
      mpr_selectors_.contains(from) && mpr_selectors_[from] > sim_.now();
  if (selects_us_mpr && now_sym) {
    mpr_selectors_[from] = sim_.now() + m.header.vtime;
    if (!was_selector) {
      ++ansn_;
      auto r = make_record("mpr_selector_add");
      r.with("nbr", from);
      log_.append(std::move(r));
    }
  } else if (was_selector && lists_us && !selects_us_mpr) {
    mpr_selectors_.erase(from);
    ++ansn_;
    auto r = make_record("mpr_selector_del");
    r.with("nbr", from);
    log_.append(std::move(r));
  }

  // MPR selector changes do not feed MPR selection or routing, so they do
  // not raise the dirty flags.
  if (tables_changed) {
    mprs_dirty_ = true;
    routes_dirty_ = true;
  }
  maybe_recompute_mprs();
  maybe_recompute_routes();
}

void Agent::process_tc(const Message& m, NodeId transmitter) {
  const auto* tc = m.as_tc();
  if (!tc) return;
  // §9.5 rule 1: discard unless the sender interface is a symmetric neighbor.
  if (!links_.is_symmetric(sim_.now(), transmitter)) return;
  // Forwarding-audit raw material: a neighbor re-broadcasting somebody
  // else's TC is direct evidence it forwards. Logged before the duplicate
  // check — re-hearings of an already-seen flood are exactly the MPR
  // re-broadcasts the audit credits, and they produce no tc_recv record.
  if (config_.log_fwd_echo && transmitter != m.header.originator) {
    auto echo = make_record("fwd_echo");
    echo.with("by", transmitter)
        .with("orig", m.header.originator)
        .with("seq", static_cast<std::int64_t>(m.header.seq_num));
    log_.append(std::move(echo));
  }
  if (duplicates_.seen(m.header.originator, m.header.seq_num)) {
    maybe_forward(m, transmitter);
    return;
  }
  ++stats_.tc_recv;

  const NodeId origin = mid_set_.main_address_of(m.header.originator);
  const auto tc_result = topology_.on_tc(sim_.now(), origin, tc->ansn,
                                         tc->advertised, m.header.vtime);
  auto rec = make_record("tc_recv");
  rec.with("orig", origin)
      .with("via", transmitter)
      .with("seq", static_cast<std::int64_t>(m.header.seq_num))
      .with("ansn", static_cast<std::int64_t>(tc->ansn))
      .with("adv", logging::join_node_list(tc->advertised))
      .with("applied", tc_result.applied ? "1" : "0");
  log_.append(std::move(rec));

  // A steady-state TC readvertising the same destination set (fresh ANSN,
  // same edges) refreshes validity only — nothing routing consumes changed.
  if (tc_result.changed) routes_dirty_ = true;
  maybe_recompute_routes();
  maybe_forward(m, transmitter);
}

void Agent::process_mid(const Message& m, NodeId transmitter) {
  const auto* mid = m.as_mid();
  if (!mid) return;
  if (!links_.is_symmetric(sim_.now(), transmitter)) return;
  if (!duplicates_.seen(m.header.originator, m.header.seq_num)) {
    mid_set_.on_mid(sim_.now(), m.header.originator, mid->interfaces,
                    m.header.vtime);
    auto rec = make_record("mid_recv");
    rec.with("orig", m.header.originator)
        .with("ifaces", logging::join_node_list(mid->interfaces));
    log_.append(std::move(rec));
  }
  maybe_forward(m, transmitter);
}

void Agent::process_hna(const Message& m, NodeId transmitter) {
  const auto* hna = m.as_hna();
  if (!hna) return;
  if (!links_.is_symmetric(sim_.now(), transmitter)) return;
  if (!duplicates_.seen(m.header.originator, m.header.seq_num)) {
    hna_set_.on_hna(sim_.now(), m.header.originator, hna->entries,
                    m.header.vtime);
    auto rec = make_record("hna_recv");
    rec.with("orig", m.header.originator)
        .with("count", static_cast<std::int64_t>(hna->entries.size()));
    log_.append(std::move(rec));
  }
  maybe_forward(m, transmitter);
}

void Agent::maybe_forward(const Message& m, NodeId transmitter) {
  // Default forwarding algorithm (§3.4.1).
  if (!links_.is_symmetric(sim_.now(), transmitter)) return;
  if (duplicates_.forwarded(m.header.originator, m.header.seq_num)) return;

  const bool transmitter_selected_us = [&] {
    auto it = mpr_selectors_.find(transmitter);
    return it != mpr_selectors_.end() && it->second > sim_.now();
  }();

  const bool forward =
      transmitter_selected_us && m.header.ttl > 1;
  duplicates_.record(sim_.now(), m.header.originator, m.header.seq_num,
                     forward, config_.dup_hold);
  if (!forward) return;

  Message copy = m;
  copy.header.ttl = static_cast<std::uint8_t>(copy.header.ttl - 1);
  copy.header.hop_count = static_cast<std::uint8_t>(copy.header.hop_count + 1);

  if (hooks_) {
    if (!hooks_->should_forward(copy)) {
      // A silent drop: the daemon of an attacker does not log its own
      // misbehaviour; detection must come from neighbors' logs.
      return;
    }
    hooks_->on_forward(copy);
  }

  ++stats_.msgs_forwarded;
  auto rec = make_record("msg_fwd");
  rec.with("type", static_cast<std::int64_t>(static_cast<int>(m.header.type)))
      .with("orig", m.header.originator)
      .with("seq", static_cast<std::int64_t>(m.header.seq_num));
  log_.append(std::move(rec));

  // Small forwarding jitter (§3.4.1 note). A TC flooding storm is every
  // MPR re-broadcasting within one duplicate window: with batched_floods
  // the relays enroll here (arming time, no draws) and emit through the
  // shared per-cell snapshots, exactly like a HELLO round.
  if (config_.batched_floods) medium_.hello_batch().enroll(id_);
  const auto delay = sim::Duration::from_us(sim_.rng().uniform_int(0, 100'000));
  arm_forward(std::move(copy), sim_.now() + delay);
}

void Agent::arm_forward(Message copy, sim::Time at) {
  // schedule_at(now + delay) is what both engines' schedule(delay) resolves
  // to, so routing everything through here is trace-neutral. The untracked
  // branch is the original closure verbatim.
  if (!track_pending_forwards_) {
    sim_.schedule_at(at, [this, copy = std::move(copy)]() mutable {
      if (running_) broadcast_message(std::move(copy), config_.batched_floods);
    });
    return;
  }
  const std::uint64_t token = next_forward_token_++;
  PendingForward pf{copy, at, 0};
  const sim::EventId ev =
      sim_.schedule_at(at, [this, token, copy = std::move(copy)]() mutable {
        pending_forwards_reg_.erase(token);
        if (running_)
          broadcast_message(std::move(copy), config_.batched_floods);
      });
  pf.seq = ev.raw();
  pending_forwards_reg_.emplace(token, std::move(pf));
}

void Agent::set_track_pending_forwards(bool on) {
  track_pending_forwards_ = on;
  if (!on) pending_forwards_reg_.clear();
}

std::vector<Agent::PendingForward> Agent::pending_forwards() const {
  std::vector<PendingForward> out;
  out.reserve(pending_forwards_reg_.size());
  for (const auto& [token, pf] : pending_forwards_reg_) out.push_back(pf);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });
  return out;
}

void Agent::restore_pending_forward(Message message, sim::Time at) {
  arm_forward(std::move(message), at);
}

void Agent::reset_tables() {
  links_ = LinkSet{};
  neighbors_ = NeighborTable{};
  topology_ = TopologySet{};
  duplicates_ = DuplicateSet{};
  mid_set_ = MidSet{};
  hna_set_ = HnaSet{};
  routing_ = RoutingTable{};
  mprs_.clear();
  mpr_selectors_.clear();
  mprs_dirty_ = true;
  routes_dirty_ = true;
  mprs_links_hint_ = sim::Time{};
  routes_links_hint_ = sim::Time{};
  // msg_seq_/pkt_seq_/ansn_ intentionally keep counting (see header).
  log_.append(make_record("tables_reset"));
}

void Agent::resume_running() {
  if (running_) return;
  running_ = true;
  auto handler = [this](const net::Packet& p) { handle_packet(p); };
  if (medium_.attached(id_)) {
    medium_.set_handler(id_, std::move(handler));
  } else {
    medium_.attach(id_, net::Position{}, std::move(handler));
  }
}

Agent::ProtocolScalars Agent::protocol_scalars() const {
  ProtocolScalars s;
  s.mprs = mprs_;
  s.mpr_selectors.assign(mpr_selectors_.begin(), mpr_selectors_.end());
  s.mprs_dirty = mprs_dirty_;
  s.routes_dirty = routes_dirty_;
  s.mprs_links_hint = mprs_links_hint_;
  s.routes_links_hint = routes_links_hint_;
  s.msg_seq = msg_seq_;
  s.pkt_seq = pkt_seq_;
  s.ansn = ansn_;
  s.stats = stats_;
  return s;
}

void Agent::restore_protocol_scalars(const ProtocolScalars& s) {
  mprs_ = s.mprs;
  mpr_selectors_.clear();
  mpr_selectors_.insert(s.mpr_selectors.begin(), s.mpr_selectors.end());
  mprs_dirty_ = s.mprs_dirty;
  routes_dirty_ = s.routes_dirty;
  mprs_links_hint_ = s.mprs_links_hint;
  routes_links_hint_ = s.routes_links_hint;
  msg_seq_ = s.msg_seq;
  pkt_seq_ = s.pkt_seq;
  ansn_ = s.ansn;
  stats_ = s.stats;
}

// ---------------------------------------------------------------- data plane

Agent::SendStatus Agent::send_data(NodeId dest, std::uint16_t protocol,
                                   std::vector<std::uint8_t> payload,
                                   std::span<const NodeId> avoid) {
  build_knowledge_graph(kg_scratch_);
  auto path = RoutingTable::shortest_path(kg_scratch_, id_, dest, avoid);
  if (!path) {
    auto rec = make_record("data_no_route");
    rec.with("dest", dest);
    log_.append(std::move(rec));
    return SendStatus::kNoRoute;
  }
  send_data_via(std::move(*path), protocol, std::move(payload));
  return SendStatus::kSent;
}

void Agent::send_data_via(std::vector<NodeId> route, std::uint16_t protocol,
                          std::vector<std::uint8_t> payload) {
  if (route.empty()) return;
  DataMessage d;
  d.source = id_;
  d.destination = route.back();
  d.protocol = protocol;
  d.payload = std::move(payload);
  const NodeId next = route.front();
  d.route.assign(route.begin() + 1, route.end());

  Message m;
  m.header.type = MessageType::kData;
  m.header.vtime = config_.top_hold;
  m.header.originator = id_;
  m.header.ttl = kDefaultTtl;
  m.header.seq_num = next_msg_seq();

  auto rec = make_record("data_sent");
  rec.with("dest", d.destination)
      .with("proto", static_cast<std::int64_t>(protocol))
      .with("route", logging::join_node_list(route));
  log_.append(std::move(rec));

  m.body = std::move(d);
  ++stats_.data_sent;
  OlsrPacket p;
  p.seq_num = next_pkt_seq();
  p.messages.push_back(std::move(m));
  medium_.unicast(id_, next, serialize_packet(p));
}

void Agent::process_data(const Message& m, NodeId transmitter) {
  const auto* data = m.as_data();
  if (!data) return;

  if (data->destination == id_) {
    ++stats_.data_delivered;
    auto rec = make_record("data_recv");
    rec.with("src", data->source)
        .with("proto", static_cast<std::int64_t>(data->protocol))
        .with("via", transmitter);
    log_.append(std::move(rec));
    if (data_handler_) data_handler_(*data);
    return;
  }

  if (data->route.empty() || m.header.ttl <= 1) {
    ++stats_.data_dropped;
    auto rec = make_record("data_drop");
    rec.with("src", data->source).with("reason", "route_exhausted");
    log_.append(std::move(rec));
    return;
  }

  if (hooks_ && !hooks_->should_relay_data(*data)) {
    // Attacker silently discards; no log (its own daemon hides misconduct).
    ++stats_.data_dropped;
    return;
  }

  Message copy = m;
  auto& d = std::get<DataMessage>(copy.body);
  const NodeId next = d.route.front();
  d.route.erase(d.route.begin());
  d.trace.push_back(id_);
  copy.header.ttl = static_cast<std::uint8_t>(copy.header.ttl - 1);
  copy.header.hop_count = static_cast<std::uint8_t>(copy.header.hop_count + 1);

  ++stats_.data_relayed;
  auto rec = make_record("data_fwd");
  rec.with("src", d.source).with("dest", d.destination).with("next", next);
  log_.append(std::move(rec));

  OlsrPacket p;
  p.seq_num = next_pkt_seq();
  p.messages.push_back(std::move(copy));
  medium_.unicast(id_, next, serialize_packet(p));
}

// ---------------------------------------------------------------- upkeep

void Agent::housekeep() {
  const auto now = sim_.now();
  const auto lost = links_.expire(now);
  if (!lost.empty()) {
    mprs_dirty_ = true;
    routes_dirty_ = true;
  }
  for (auto n : lost) {
    neighbors_.remove_neighbor(n);
    auto rec = make_record("link_lost");
    rec.with("nbr", n);
    log_.append(std::move(rec));
  }
  if (neighbors_.expire_two_hops(now)) {
    mprs_dirty_ = true;
    routes_dirty_ = true;
  }
  if (topology_.expire(now)) routes_dirty_ = true;
  duplicates_.expire(now);
  mid_set_.expire(now);
  hna_set_.expire(now);
  for (auto it = mpr_selectors_.begin(); it != mpr_selectors_.end();) {
    if (it->second <= now) {
      auto rec = make_record("mpr_selector_del");
      rec.with("nbr", it->first);
      log_.append(std::move(rec));
      it = mpr_selectors_.erase(it);
      ++ansn_;
    } else {
      ++it;
    }
  }
  maybe_recompute_mprs();
  maybe_recompute_routes();
}

void Agent::maybe_recompute_mprs() {
  const auto now = sim_.now();
  if (!mprs_dirty_ && now < mprs_links_hint_) return;
  recompute_mprs();
  mprs_dirty_ = false;
  mprs_links_hint_ = links_.next_transition(now);
}

void Agent::maybe_recompute_routes() {
  const auto now = sim_.now();
  if (!routes_dirty_ && now < routes_links_hint_) return;
  recompute_routes();
  routes_dirty_ = false;
  routes_links_hint_ = links_.next_transition(now);
}

void Agent::recompute_mprs() {
  const auto now = sim_.now();
  mpr_inputs_.neighbors.clear();
  links_.symmetric_neighbors(now, sym_scratch_);
  for (auto n : sym_scratch_)
    mpr_inputs_.neighbors.emplace_back(n, neighbors_.willingness_of(n));
  neighbors_.reachability(id_, mpr_inputs_.reach);

  select_mprs(mpr_inputs_, config_.prune_redundant_mprs, mpr_scratch_,
              fresh_mprs_);
  if (fresh_mprs_ == mprs_) return;

  std::vector<NodeId> added, removed;
  std::set_difference(fresh_mprs_.begin(), fresh_mprs_.end(), mprs_.begin(),
                      mprs_.end(), std::back_inserter(added));
  std::set_difference(mprs_.begin(), mprs_.end(), fresh_mprs_.begin(),
                      fresh_mprs_.end(), std::back_inserter(removed));

  mprs_ = fresh_mprs_;
  obs::hit(obs::Hot::kMprRecomputes);
  auto rec = make_record("mpr_changed");
  rec.with("mprs", logging::join_node_list(mprs_))
      .with("added", logging::join_node_list(added))
      .with("removed", logging::join_node_list(removed));
  log_.append(std::move(rec));
}

void Agent::recompute_routes() {
  build_knowledge_graph(kg_scratch_);
  const auto [added, removed] = routing_.recompute(id_, kg_scratch_);
  if (added.empty() && removed.empty()) return;
  obs::hit(obs::Hot::kRouteRecomputes);
  obs::instant(obs::SpanName::kRoutingRecompute, sim_.now(), id_.value());
  auto rec = make_record("routes_changed");
  rec.with("added", logging::join_node_list(added))
      .with("removed", logging::join_node_list(removed))
      .with("size", static_cast<std::int64_t>(routing_.size()));
  log_.append(std::move(rec));
}

}  // namespace manet::olsr
