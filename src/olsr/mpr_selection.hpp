#pragma once

#include <map>
#include <set>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"

namespace manet::olsr {

using net::NodeId;

/// Inputs to MPR selection (RFC 3626 §8.3.1), decoupled from the tables so
/// the heuristic is a pure, property-testable function.
struct MprInputs {
  /// Symmetric 1-hop neighbors and their willingness (N in the RFC).
  std::map<NodeId, Willingness> neighbors;
  /// For each 1-hop neighbor, the strict 2-hop nodes reachable through it
  /// (derived from N2). Neighbors with willingness NEVER must be excluded by
  /// the caller (NeighborTable::reachability already does).
  std::map<NodeId, std::set<NodeId>> reach;
};

/// RFC 3626 §8.3.1 heuristic:
///  1. WILL_ALWAYS neighbors are always MPRs.
///  2. A neighbor that is the only one covering some 2-hop node is an MPR.
///  3. Remaining uncovered 2-hop nodes are covered greedily by descending
///     reachability (number of still-uncovered 2-hop nodes), ties broken by
///     higher willingness, then larger total reach (degree), then lower id
///     (for determinism).
/// An optional final pass drops redundant MPRs (coverage preserved).
std::set<NodeId> select_mprs(const MprInputs& inputs,
                             bool prune_redundant = false);

/// True if `mprs` covers every strict 2-hop node of `inputs` — the safety
/// property the paper's attack breaks from the victim's point of view.
bool covers_all_two_hops(const MprInputs& inputs, const std::set<NodeId>& mprs);

}  // namespace manet::olsr
