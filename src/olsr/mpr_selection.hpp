#pragma once

#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"

namespace manet::olsr {

using net::NodeId;

/// Inputs to MPR selection (RFC 3626 §8.3.1), decoupled from the tables so
/// the heuristic is a pure, property-testable function. Both lists are flat
/// sorted slabs (ascending by id / by via, inner lists ascending) so the
/// selection runs on contiguous memory and the Agent can reuse the buffers
/// across recomputes.
struct MprInputs {
  /// Symmetric 1-hop neighbors and their willingness (N in the RFC),
  /// ascending by id.
  std::vector<std::pair<NodeId, Willingness>> neighbors;
  /// For each 1-hop neighbor, the strict 2-hop nodes reachable through it
  /// (derived from N2), ascending by via with sorted inner lists. Neighbors
  /// with willingness NEVER must be excluded by the caller
  /// (NeighborTable::reachability already does).
  std::vector<std::pair<NodeId, std::vector<NodeId>>> reach;
};

/// Reusable working memory for select_mprs: the greedy cover repeatedly
/// builds uncovered-sets and provider lists, and a per-agent scratch keeps
/// those allocations out of the per-HELLO path.
struct MprScratch {
  std::vector<NodeId> uncovered;                    // sorted
  std::vector<NodeId> tmp;                          // set-difference staging
  std::vector<std::pair<NodeId, NodeId>> providers; // (two_hop, via)
};

/// RFC 3626 §8.3.1 heuristic:
///  1. WILL_ALWAYS neighbors are always MPRs.
///  2. A neighbor that is the only one covering some 2-hop node is an MPR.
///  3. Remaining uncovered 2-hop nodes are covered greedily by descending
///     reachability (number of still-uncovered 2-hop nodes), ties broken by
///     higher willingness, then larger total reach (degree), then lower id
///     (for determinism).
/// An optional final pass drops redundant MPRs (coverage preserved).
/// The result is sorted ascending.
std::vector<NodeId> select_mprs(const MprInputs& inputs,
                                bool prune_redundant = false);

/// Scratch-buffer variant: `out` is replaced with the selected set.
void select_mprs(const MprInputs& inputs, bool prune_redundant,
                 MprScratch& scratch, std::vector<NodeId>& out);

/// True if `mprs` (sorted ascending) covers every strict 2-hop node of
/// `inputs` — the safety property the paper's attack breaks from the
/// victim's point of view.
bool covers_all_two_hops(const MprInputs& inputs,
                         const std::vector<NodeId>& mprs);

}  // namespace manet::olsr
