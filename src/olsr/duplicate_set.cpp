#include "olsr/duplicate_set.hpp"

#include <algorithm>

namespace manet::olsr {
namespace {

bool key_less(NodeId ao, std::uint16_t as, NodeId bo, std::uint16_t bs) {
  return ao != bo ? ao < bo : as < bs;
}

}  // namespace

const DuplicateSet::Entry* DuplicateSet::find(NodeId originator,
                                              std::uint16_t seq) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::pair{originator, seq},
      [](const Entry& e, const std::pair<NodeId, std::uint16_t>& k) {
        return key_less(e.originator, e.seq, k.first, k.second);
      });
  if (it == entries_.end() || it->originator != originator || it->seq != seq)
    return nullptr;
  return &*it;
}

bool DuplicateSet::seen(NodeId originator, std::uint16_t seq) const {
  return find(originator, seq) != nullptr;
}

bool DuplicateSet::forwarded(NodeId originator, std::uint16_t seq) const {
  const auto* e = find(originator, seq);
  return e != nullptr && e->forwarded;
}

void DuplicateSet::record(sim::Time now, NodeId originator, std::uint16_t seq,
                          bool forwarded, sim::Duration hold) {
  const sim::Time until = now + hold;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::pair{originator, seq},
      [](const Entry& e, const std::pair<NodeId, std::uint16_t>& k) {
        return key_less(e.originator, e.seq, k.first, k.second);
      });
  if (it != entries_.end() && it->originator == originator && it->seq == seq) {
    it->valid_until = until;
    it->forwarded = it->forwarded || forwarded;
  } else {
    entries_.insert(it, Entry{originator, seq, until, forwarded});
  }
  ring_.push_back(RingSlot{originator, seq, until});
}

void DuplicateSet::expire(sim::Time now) {
  while (!ring_.empty() && ring_.front().expiry <= now) {
    const auto slot = ring_.front();
    ring_.pop_front();
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), std::pair{slot.originator, slot.seq},
        [](const Entry& e, const std::pair<NodeId, std::uint16_t>& k) {
          return key_less(e.originator, e.seq, k.first, k.second);
        });
    if (it == entries_.end() || it->originator != slot.originator ||
        it->seq != slot.seq)
      continue;  // already removed via an earlier ring slot
    // A refresh since this slot was pushed keeps the entry alive; the
    // refresh's own ring slot will retire it.
    if (it->valid_until <= now) entries_.erase(it);
  }
}

}  // namespace manet::olsr
