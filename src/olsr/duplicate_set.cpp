#include "olsr/duplicate_set.hpp"

namespace manet::olsr {

bool DuplicateSet::seen(NodeId originator, std::uint16_t seq) const {
  return tuples_.contains({originator, seq});
}

bool DuplicateSet::forwarded(NodeId originator, std::uint16_t seq) const {
  auto it = tuples_.find({originator, seq});
  return it != tuples_.end() && it->second.forwarded;
}

void DuplicateSet::record(sim::Time now, NodeId originator, std::uint16_t seq,
                          bool forwarded, sim::Duration hold) {
  auto& t = tuples_[{originator, seq}];
  t.valid_until = now + hold;
  t.forwarded = t.forwarded || forwarded;
}

void DuplicateSet::expire(sim::Time now) {
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.valid_until <= now)
      it = tuples_.erase(it);
    else
      ++it;
  }
}

}  // namespace manet::olsr
