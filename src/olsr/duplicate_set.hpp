#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Duplicate set (§3.4.1): remembers processed/forwarded messages so the
/// default forwarding algorithm floods each message at most once per node.
class DuplicateSet {
 public:
  /// True if (originator, seq) was already processed.
  bool seen(NodeId originator, std::uint16_t seq) const;

  /// True if it was already retransmitted by this node.
  bool forwarded(NodeId originator, std::uint16_t seq) const;

  /// Records a processed message; optionally marks it forwarded.
  void record(sim::Time now, NodeId originator, std::uint16_t seq,
              bool forwarded, sim::Duration hold);

  void expire(sim::Time now);
  std::size_t size() const { return tuples_.size(); }

 private:
  struct Tuple {
    sim::Time valid_until{};
    bool forwarded = false;
  };
  std::map<std::pair<NodeId, std::uint16_t>, Tuple> tuples_;
};

}  // namespace manet::olsr
