#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Duplicate set (§3.4.1): remembers processed/forwarded messages so the
/// default forwarding algorithm floods each message at most once per node.
///
/// Lookups go through a flat (originator, seq)-sorted index; expiry is
/// bounded by a time-ordered FIFO ring instead of a whole-table scan. Every
/// record() pushes a ring entry stamped with its expiry, so expire() only
/// pops the already-due prefix — entries refreshed since their ring stamp
/// are skipped lazily (the refresh pushed a later entry). With the
/// constant per-agent hold time the ring is exactly expiry-ordered and the
/// removal set matches the old full-scan behavior entry for entry.
class DuplicateSet {
 public:
  /// True if (originator, seq) was already processed.
  bool seen(NodeId originator, std::uint16_t seq) const;

  /// True if it was already retransmitted by this node.
  bool forwarded(NodeId originator, std::uint16_t seq) const;

  /// Records a processed message; optionally marks it forwarded.
  void record(sim::Time now, NodeId originator, std::uint16_t seq,
              bool forwarded, sim::Duration hold);

  void expire(sim::Time now);
  std::size_t size() const { return entries_.size(); }

  /// One indexed record: a processed (originator, seq) with its expiry.
  struct Entry {
    NodeId originator;
    std::uint16_t seq = 0;
    sim::Time valid_until{};
    bool forwarded = false;
  };
  /// One FIFO expiry-ring stamp (may be stale if the entry was refreshed).
  struct RingSlot {
    NodeId originator;
    std::uint16_t seq = 0;
    sim::Time expiry{};
  };

  /// Checkpoint surface: both the sorted index and the expiry ring are
  /// persisted verbatim, so post-restore expire() pops the same prefix the
  /// uninterrupted run would.
  const std::vector<Entry>& entries() const { return entries_; }
  const std::deque<RingSlot>& ring() const { return ring_; }
  void restore(std::vector<Entry> entries, std::deque<RingSlot> ring) {
    entries_ = std::move(entries);
    ring_ = std::move(ring);
  }

 private:
  const Entry* find(NodeId originator, std::uint16_t seq) const;

  std::vector<Entry> entries_;  // sorted by (originator, seq)
  std::deque<RingSlot> ring_;   // FIFO, expiry-ordered for constant holds
};

}  // namespace manet::olsr
