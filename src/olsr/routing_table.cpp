#include "olsr/routing_table.hpp"

#include <algorithm>

namespace manet::olsr {

// ------------------------------------------------------------ KnowledgeGraph

void KnowledgeGraph::build() const {
  if (built_) return;
  built_ = true;
  std::sort(arcs_.begin(), arcs_.end());
  arcs_.erase(std::unique(arcs_.begin(), arcs_.end()), arcs_.end());

  nodes_.clear();
  nodes_.reserve(arcs_.size());
  for (const auto& [from, to] : arcs_) {
    nodes_.push_back(from);
    nodes_.push_back(to);
  }
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());

  offsets_.assign(nodes_.size() + 1, 0);
  targets_.clear();
  targets_.reserve(arcs_.size());
  // arcs_ is (from, to)-sorted and nodes_ ascending, so one forward sweep
  // fills the CSR with adjacency ascending by target id.
  std::size_t node = 0;
  for (const auto& [from, to] : arcs_) {
    while (nodes_[node] != from) offsets_[++node] = targets_.size();
    targets_.push_back(static_cast<std::uint32_t>(
        std::lower_bound(nodes_.begin(), nodes_.end(), to) - nodes_.begin()));
  }
  while (node < nodes_.size()) offsets_[++node] = targets_.size();
}

std::uint32_t KnowledgeGraph::index_of(NodeId id) const {
  build();
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), id);
  if (it == nodes_.end() || *it != id) return kNpos;
  return static_cast<std::uint32_t>(it - nodes_.begin());
}

std::span<const std::uint32_t> KnowledgeGraph::arcs_from(
    std::uint32_t node_index) const {
  build();
  return {targets_.data() + offsets_[node_index],
          targets_.data() + offsets_[node_index + 1]};
}

// -------------------------------------------------------------- RoutingTable

std::uint32_t RoutingTable::index_of(NodeId id) const {
  auto it = std::lower_bound(node_ids_.begin(), node_ids_.end(), id);
  if (it == node_ids_.end() || *it != id) return KnowledgeGraph::kNpos;
  return static_cast<std::uint32_t>(it - node_ids_.begin());
}

void RoutingTable::rebuild_dests(std::vector<NodeId>& out) const {
  out.clear();
  for (std::size_t i = 0; i < node_ids_.size(); ++i)
    if (dist_[i] >= 0 && node_ids_[i] != self_) out.push_back(node_ids_[i]);
}

void RoutingTable::full_rebuild(const KnowledgeGraph& graph) {
  const std::size_t n = graph.node_count();
  dist_.assign(n, kUnreachable);
  parent_.assign(n, NodeId{});
  queue_.clear();

  const auto self_idx = graph.index_of(self_);
  if (self_idx != KnowledgeGraph::kNpos) {
    dist_[self_idx] = 0;
    queue_.push_back(self_idx);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const auto u = queue_[head];
      for (const auto v : graph.arcs_from(u)) {
        if (dist_[v] >= 0) continue;  // self has dist 0: never re-entered
        dist_[v] = dist_[u] + 1;
        parent_[v] = graph.id_at(u);
        queue_.push_back(v);
      }
    }
  }
}

void RoutingTable::relax_additions(
    const KnowledgeGraph& graph,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& seeds) {
  const auto self_idx = graph.index_of(self_);
  if (self_idx == KnowledgeGraph::kNpos) return;
  queue_.clear();
  // A previously absent/unreachable self roots the wave itself: every old
  // distance is then stale-unreachable and the sweep degenerates into a
  // label-correcting BFS from scratch.
  if (dist_[self_idx] < 0) {
    dist_[self_idx] = 0;
    parent_[self_idx] = NodeId{};
    queue_.push_back(self_idx);
  }
  auto relax = [&](std::uint32_t u, std::uint32_t v) {
    if (v == self_idx) return;
    if (dist_[u] < 0) return;
    if (dist_[v] >= 0 && dist_[v] <= dist_[u] + 1) return;
    dist_[v] = dist_[u] + 1;
    parent_[v] = graph.id_at(u);
    queue_.push_back(v);
  };
  for (const auto& [u, v] : seeds) relax(u, v);
  // Label-correcting sweep: added arcs can only shorten paths, so the wave
  // settles at the true BFS distances without touching unaffected nodes.
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const auto u = queue_[head];
    for (const auto v : graph.arcs_from(u)) relax(u, v);
  }
}

std::pair<std::vector<NodeId>, std::vector<NodeId>> RoutingTable::recompute(
    NodeId self, const KnowledgeGraph& graph) {
  const auto& nodes = graph.nodes();
  const auto offsets = graph.offsets();
  const auto targets = graph.targets();

  const bool same_self = self == self_;
  const bool same_graph =
      same_self && nodes == node_ids_ &&
      std::equal(offsets.begin(), offsets.end(), offsets_.begin(),
                 offsets_.end()) &&
      std::equal(targets.begin(), targets.end(), targets_.begin(),
                 targets_.end());
  if (same_graph) return {{}, {}};

  bool incremental = same_self && !node_ids_.empty();
  // Additions-only check: stream both arc lists in (from, to) id order and
  // collect arcs present only in the new graph. Any old arc missing from
  // the new graph voids the fast path.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seeds;
  if (incremental) {
    std::size_t o_node = 0, o_arc = 0;
    auto skip_empty_old = [&] {
      while (o_node < node_ids_.size() && o_arc >= offsets_[o_node + 1])
        ++o_node;
    };
    auto old_arc = [&] {
      return std::pair{node_ids_[o_node], node_ids_[targets_[o_arc]]};
    };
    skip_empty_old();
    for (std::uint32_t ni = 0; ni < nodes.size() && incremental; ++ni) {
      for (const auto nv : graph.arcs_from(ni)) {
        const std::pair arc{nodes[ni], nodes[nv]};
        if (o_arc < targets_.size() && old_arc() == arc) {
          ++o_arc;
          skip_empty_old();
        } else if (o_arc < targets_.size() && old_arc() < arc) {
          incremental = false;  // an old arc disappeared
          break;
        } else {
          seeds.emplace_back(ni, nv);  // new arc
        }
      }
    }
    if (o_arc < targets_.size()) incremental = false;  // old arcs left over
  }

  std::vector<NodeId> old_dests = std::move(dests_);

  if (incremental) {
    // Remap distances/parents from the old node list onto the new one
    // (a superset): both are sorted, one merge pass.
    std::vector<std::int32_t> dist(nodes.size(), kUnreachable);
    std::vector<NodeId> parent(nodes.size(), NodeId{});
    std::size_t o = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (o < node_ids_.size() && node_ids_[o] == nodes[i]) {
        dist[i] = dist_[o];
        parent[i] = parent_[o];
        ++o;
      }
    }
    dist_ = std::move(dist);
    parent_ = std::move(parent);
    node_ids_ = nodes;
    relax_additions(graph, seeds);
  } else {
    self_ = self;
    node_ids_ = nodes;
    full_rebuild(graph);
  }
  offsets_.assign(offsets.begin(), offsets.end());
  targets_.assign(targets.begin(), targets.end());

  rebuild_dests(dests_);
  std::vector<NodeId> added, removed;
  std::set_difference(dests_.begin(), dests_.end(), old_dests.begin(),
                      old_dests.end(), std::back_inserter(added));
  std::set_difference(old_dests.begin(), old_dests.end(), dests_.begin(),
                      dests_.end(), std::back_inserter(removed));
  return {std::move(added), std::move(removed)};
}

std::optional<RoutingTable::Entry> RoutingTable::route_to(NodeId dest) const {
  const auto idx = index_of(dest);
  if (idx == KnowledgeGraph::kNpos || dist_[idx] < 0 || dest == self_)
    return std::nullopt;
  // The next hop is the first relay on the path from self.
  NodeId hop = dest;
  while (parent_[index_of(hop)].valid() &&
         parent_[index_of(hop)] != self_)
    hop = parent_[index_of(hop)];
  return Entry{dest, hop, dist_[idx]};
}

std::vector<RoutingTable::Entry> RoutingTable::entries() const {
  std::vector<Entry> out;
  out.reserve(dests_.size());
  for (const auto dest : dests_)
    if (auto e = route_to(dest)) out.push_back(*e);
  return out;
}

std::optional<std::vector<NodeId>> RoutingTable::path_to(NodeId dest) const {
  const auto idx = index_of(dest);
  if (idx == KnowledgeGraph::kNpos || dist_[idx] < 0 || dest == self_)
    return std::nullopt;
  std::vector<NodeId> reversed{dest};
  NodeId cur = dest;
  while (parent_[index_of(cur)].valid() && parent_[index_of(cur)] != self_) {
    cur = parent_[index_of(cur)];
    reversed.push_back(cur);
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

std::optional<std::vector<NodeId>> RoutingTable::shortest_path(
    const KnowledgeGraph& graph, NodeId from, NodeId to,
    std::span<const NodeId> avoid) {
  if (from == to) return std::vector<NodeId>{};
  const auto from_idx = graph.index_of(from);
  const auto to_idx = graph.index_of(to);
  if (from_idx == KnowledgeGraph::kNpos || to_idx == KnowledgeGraph::kNpos)
    return std::nullopt;

  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> parent(n, KnowledgeGraph::kNpos);
  std::vector<char> seen(n, 0);
  std::vector<std::uint32_t> queue{from_idx};
  seen[from_idx] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto u = queue[head];
    for (const auto v : graph.arcs_from(u)) {
      if (seen[v]) continue;
      // Avoided nodes cannot relay; they may only terminate the path.
      if (v != to_idx &&
          std::binary_search(avoid.begin(), avoid.end(), graph.id_at(v)))
        continue;
      parent[v] = u;
      if (v == to_idx) {
        std::vector<NodeId> reversed{to};
        std::uint32_t cur = to_idx;
        while (parent[cur] != from_idx) {
          cur = parent[cur];
          reversed.push_back(graph.id_at(cur));
        }
        std::reverse(reversed.begin(), reversed.end());
        return reversed;
      }
      seen[v] = 1;
      queue.push_back(v);
    }
  }
  return std::nullopt;
}

}  // namespace manet::olsr
