#include "olsr/routing_table.hpp"

#include <algorithm>
#include <deque>

namespace manet::olsr {

std::pair<std::vector<NodeId>, std::vector<NodeId>> RoutingTable::recompute(
    NodeId self, const KnowledgeGraph& graph) {
  self_ = self;
  std::map<NodeId, Entry> fresh;
  std::map<NodeId, NodeId> parent;

  std::deque<NodeId> frontier{self};
  std::map<NodeId, int> dist{{self, 0}};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    auto it = graph.find(u);
    if (it == graph.end()) continue;
    for (NodeId v : it->second) {
      if (v == self || dist.contains(v)) continue;
      dist[v] = dist[u] + 1;
      parent[v] = u;
      // The next hop is the first relay on the path from self.
      NodeId hop = v;
      while (parent.contains(hop) && parent.at(hop) != self)
        hop = parent.at(hop);
      fresh[v] = Entry{v, hop, dist[v]};
      frontier.push_back(v);
    }
  }

  std::vector<NodeId> added, removed;
  for (const auto& [dest, _] : fresh)
    if (!routes_.contains(dest)) added.push_back(dest);
  for (const auto& [dest, _] : routes_)
    if (!fresh.contains(dest)) removed.push_back(dest);

  routes_ = std::move(fresh);
  parent_ = std::move(parent);
  return {added, removed};
}

std::optional<RoutingTable::Entry> RoutingTable::route_to(NodeId dest) const {
  auto it = routes_.find(dest);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

std::vector<RoutingTable::Entry> RoutingTable::entries() const {
  std::vector<Entry> out;
  out.reserve(routes_.size());
  for (const auto& [_, e] : routes_) out.push_back(e);
  return out;
}

std::optional<std::vector<NodeId>> RoutingTable::path_to(NodeId dest) const {
  if (!routes_.contains(dest)) return std::nullopt;
  std::vector<NodeId> reversed{dest};
  NodeId cur = dest;
  while (parent_.contains(cur) && parent_.at(cur) != self_) {
    cur = parent_.at(cur);
    reversed.push_back(cur);
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

std::optional<std::vector<NodeId>> RoutingTable::shortest_path(
    const KnowledgeGraph& graph, NodeId from, NodeId to,
    const std::set<NodeId>& avoid) {
  if (from == to) return std::vector<NodeId>{};
  std::deque<NodeId> frontier{from};
  std::map<NodeId, NodeId> parent;
  std::set<NodeId> seen{from};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    auto it = graph.find(u);
    if (it == graph.end()) continue;
    for (NodeId v : it->second) {
      if (seen.contains(v)) continue;
      // Avoided nodes cannot relay; they may only terminate the path.
      if (avoid.contains(v) && v != to) continue;
      parent[v] = u;
      if (v == to) {
        std::vector<NodeId> reversed{to};
        NodeId cur = to;
        while (parent.at(cur) != from) {
          cur = parent.at(cur);
          reversed.push_back(cur);
        }
        std::reverse(reversed.begin(), reversed.end());
        return reversed;
      }
      seen.insert(v);
      frontier.push_back(v);
    }
  }
  return std::nullopt;
}

}  // namespace manet::olsr
