#pragma once

#include <map>
#include <optional>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// A link tuple (RFC 3626 §4.2): local view of the link to one neighbor
/// interface. The link is ASYM while only we hear them, SYM once the
/// neighbor's HELLO lists us.
struct LinkTuple {
  NodeId neighbor;
  sim::Time asym_until{};  ///< L_ASYM_time
  sim::Time sym_until{};   ///< L_SYM_time
  sim::Time valid_until{}; ///< L_time

  bool symmetric(sim::Time now) const { return sym_until > now; }
  bool asymmetric(sim::Time now) const {
    return !symmetric(now) && asym_until > now;
  }
  bool lost(sim::Time now) const { return !symmetric(now) && !asymmetric(now); }
};

/// Link sensing repository (§7). Pure state machine over HELLO receptions;
/// the Agent feeds it and reacts to the reported transitions.
class LinkSet {
 public:
  enum class Change { kNone, kBecameSym, kBecameAsym, kLost };

  /// Processes one received HELLO from `neighbor`. `lists_us` is whether our
  /// own address appears in the HELLO (with a non-LOST link code), which
  /// upgrades the link to symmetric. `lost_us` means the neighbor explicitly
  /// advertised our link as LOST.
  Change on_hello(sim::Time now, NodeId neighbor, bool lists_us, bool lost_us,
                  sim::Duration vtime);

  /// Expires stale tuples; returns neighbors whose link was dropped or
  /// downgraded from symmetric since the last call.
  std::vector<NodeId> expire(sim::Time now);

  bool is_symmetric(sim::Time now, NodeId neighbor) const;
  std::optional<LinkTuple> get(NodeId neighbor) const;
  std::vector<NodeId> symmetric_neighbors(sim::Time now) const;
  /// Heard-only (ASYM) links — advertised so the peer can upgrade them.
  std::vector<NodeId> asymmetric_neighbors(sim::Time now) const;
  std::size_t size() const { return links_.size(); }

 private:
  std::map<NodeId, LinkTuple> links_;
  std::map<NodeId, bool> was_symmetric_;
};

}  // namespace manet::olsr
