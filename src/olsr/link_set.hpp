#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// A link tuple (RFC 3626 §4.2): local view of the link to one neighbor
/// interface. The link is ASYM while only we hear them, SYM once the
/// neighbor's HELLO lists us.
struct LinkTuple {
  NodeId neighbor;
  sim::Time asym_until{};  ///< L_ASYM_time
  sim::Time sym_until{};   ///< L_SYM_time
  sim::Time valid_until{}; ///< L_time

  bool symmetric(sim::Time now) const { return sym_until > now; }
  bool asymmetric(sim::Time now) const {
    return !symmetric(now) && asym_until > now;
  }
  bool lost(sim::Time now) const { return !symmetric(now) && !asymmetric(now); }
};

/// Link sensing repository (§7). Pure state machine over HELLO receptions;
/// the Agent feeds it and reacts to the reported transitions.
///
/// Storage is a flat slab: one vector of tuples sorted by neighbor id
/// (lookup by binary search, scans are contiguous sweeps). The previous
/// symmetry flag rides inside the tuple instead of a side map, and expiry
/// is a single in-place compaction sweep. This is the hottest OLSR table —
/// `symmetric_neighbors` runs on every HELLO build and every recompute —
/// so the slab layout is what `BM_LinkSetScan` gauges.
class LinkSet {
 public:
  enum class Change { kNone, kBecameSym, kBecameAsym, kLost };

  /// Sentinel for "no pending timer-driven transition".
  static constexpr sim::Time kNoTransition =
      sim::Time::from_us(std::numeric_limits<std::int64_t>::max());

  /// Processes one received HELLO from `neighbor`. `lists_us` is whether our
  /// own address appears in the HELLO (with a non-LOST link code), which
  /// upgrades the link to symmetric. `lost_us` means the neighbor explicitly
  /// advertised our link as LOST.
  Change on_hello(sim::Time now, NodeId neighbor, bool lists_us, bool lost_us,
                  sim::Duration vtime);

  /// Expires stale tuples; returns neighbors whose link was dropped or
  /// downgraded from symmetric since the last call.
  std::vector<NodeId> expire(sim::Time now);

  bool is_symmetric(sim::Time now, NodeId neighbor) const;
  std::optional<LinkTuple> get(NodeId neighbor) const;
  std::vector<NodeId> symmetric_neighbors(sim::Time now) const;
  /// Heard-only (ASYM) links — advertised so the peer can upgrade them.
  std::vector<NodeId> asymmetric_neighbors(sim::Time now) const;
  /// Scratch-buffer variants (ascending neighbor id, `out` is replaced):
  /// the Agent reuses per-instance buffers so HELLO build and recompute
  /// never allocate in steady state.
  void symmetric_neighbors(sim::Time now, std::vector<NodeId>& out) const;
  void asymmetric_neighbors(sim::Time now, std::vector<NodeId>& out) const;
  std::size_t size() const { return links_.size(); }

  /// Earliest future instant at which some tuple's *symmetry status* can
  /// change without any new HELLO (a `sym_until`/`valid_until` boundary
  /// crossing). Conservative: may under-estimate (triggering a recompute
  /// that finds nothing changed) but never over-estimates, which is what
  /// lets the Agent skip MPR/route recomputation between boundaries while
  /// staying trace-identical to eager recomputation. The hint refreshes
  /// itself (one O(n) sweep) once `now` passes it.
  sim::Time next_transition(sim::Time now);

  /// One slab row as persisted by a checkpoint: the RFC tuple plus the
  /// previous-symmetry flag the transition reporting keys off.
  struct Slot {
    LinkTuple tuple;
    bool was_symmetric = false;
  };

  /// Checkpoint surface: the raw slab (ascending neighbor id) and the
  /// symmetry-boundary hint, restored verbatim so post-restore recompute
  /// skipping matches the uninterrupted run decision for decision.
  /// (Every skip/recompute choice after restore is byte-identical.)
  const std::vector<Slot>& slots() const { return links_; }
  sim::Time transition_hint() const { return transition_hint_; }
  void restore(std::vector<Slot> slots, sim::Time hint) {
    links_ = std::move(slots);
    transition_hint_ = hint;
  }

 private:
  // Sorted ascending by tuple.neighbor.
  std::vector<Slot> links_;
  sim::Time transition_hint_ = kNoTransition;

  Slot* find(NodeId neighbor);
  const Slot* find(NodeId neighbor) const;
  void note_boundary(sim::Time now, const LinkTuple& t);
  void rescan_hint(sim::Time now);
};

}  // namespace manet::olsr
