#include "olsr/link_set.hpp"

namespace manet::olsr {

LinkSet::Change LinkSet::on_hello(sim::Time now, NodeId neighbor,
                                  bool lists_us, bool lost_us,
                                  sim::Duration vtime) {
  auto& tuple = links_[neighbor];
  const bool was_sym = tuple.neighbor.valid() && tuple.symmetric(now);
  tuple.neighbor = neighbor;

  // §7.1.1: hearing any HELLO refreshes the asymmetric timer.
  tuple.asym_until = now + vtime;
  if (lost_us) {
    tuple.sym_until = now;  // link declared lost by the neighbor
  } else if (lists_us) {
    tuple.sym_until = now + vtime;
  }
  tuple.valid_until = std::max(tuple.asym_until, tuple.sym_until);

  const bool is_sym = tuple.symmetric(now);
  was_symmetric_[neighbor] = is_sym;
  if (is_sym && !was_sym) return Change::kBecameSym;
  if (!is_sym && was_sym) return Change::kLost;
  if (!is_sym) return Change::kBecameAsym;
  return Change::kNone;
}

std::vector<NodeId> LinkSet::expire(sim::Time now) {
  std::vector<NodeId> downgraded;
  for (auto it = links_.begin(); it != links_.end();) {
    const auto id = it->first;
    const bool was_sym = was_symmetric_[id];
    const bool now_sym = it->second.symmetric(now);
    if (it->second.valid_until <= now) {
      if (was_sym) downgraded.push_back(id);
      was_symmetric_.erase(id);
      it = links_.erase(it);
      continue;
    }
    if (was_sym && !now_sym) {
      downgraded.push_back(id);
      was_symmetric_[id] = false;
    }
    ++it;
  }
  return downgraded;
}

bool LinkSet::is_symmetric(sim::Time now, NodeId neighbor) const {
  auto it = links_.find(neighbor);
  return it != links_.end() && it->second.symmetric(now);
}

std::optional<LinkTuple> LinkSet::get(NodeId neighbor) const {
  auto it = links_.find(neighbor);
  if (it == links_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> LinkSet::symmetric_neighbors(sim::Time now) const {
  std::vector<NodeId> out;
  for (const auto& [id, tuple] : links_)
    if (tuple.symmetric(now)) out.push_back(id);
  return out;
}

std::vector<NodeId> LinkSet::asymmetric_neighbors(sim::Time now) const {
  std::vector<NodeId> out;
  for (const auto& [id, tuple] : links_)
    if (tuple.asymmetric(now)) out.push_back(id);
  return out;
}

}  // namespace manet::olsr
