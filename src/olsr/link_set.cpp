#include "olsr/link_set.hpp"

#include <algorithm>

namespace manet::olsr {

LinkSet::Slot* LinkSet::find(NodeId neighbor) {
  auto it = std::lower_bound(
      links_.begin(), links_.end(), neighbor,
      [](const Slot& s, NodeId id) { return s.tuple.neighbor < id; });
  if (it == links_.end() || it->tuple.neighbor != neighbor) return nullptr;
  return &*it;
}

const LinkSet::Slot* LinkSet::find(NodeId neighbor) const {
  return const_cast<LinkSet*>(this)->find(neighbor);
}

void LinkSet::note_boundary(sim::Time now, const LinkTuple& t) {
  // Track the earliest strictly-future boundary at which this tuple's
  // symmetry status could flip on its own: a symmetric link stops being
  // symmetric at sym_until; any tuple leaves the set at valid_until.
  if (t.sym_until > now && t.sym_until < transition_hint_)
    transition_hint_ = t.sym_until;
  if (t.valid_until > now && t.valid_until < transition_hint_)
    transition_hint_ = t.valid_until;
}

void LinkSet::rescan_hint(sim::Time now) {
  transition_hint_ = kNoTransition;
  for (const auto& s : links_) note_boundary(now, s.tuple);
}

sim::Time LinkSet::next_transition(sim::Time now) {
  if (now >= transition_hint_) rescan_hint(now);
  return transition_hint_;
}

LinkSet::Change LinkSet::on_hello(sim::Time now, NodeId neighbor,
                                  bool lists_us, bool lost_us,
                                  sim::Duration vtime) {
  auto it = std::lower_bound(
      links_.begin(), links_.end(), neighbor,
      [](const Slot& s, NodeId id) { return s.tuple.neighbor < id; });
  if (it == links_.end() || it->tuple.neighbor != neighbor)
    it = links_.insert(it, Slot{LinkTuple{neighbor}, false});

  auto& tuple = it->tuple;
  const bool was_sym = tuple.valid_until > sim::Time{} && tuple.symmetric(now);

  // §7.1.1: hearing any HELLO refreshes the asymmetric timer.
  tuple.asym_until = now + vtime;
  if (lost_us) {
    tuple.sym_until = now;  // link declared lost by the neighbor
  } else if (lists_us) {
    tuple.sym_until = now + vtime;
  }
  tuple.valid_until = std::max(tuple.asym_until, tuple.sym_until);
  note_boundary(now, tuple);

  const bool is_sym = tuple.symmetric(now);
  it->was_symmetric = is_sym;
  if (is_sym && !was_sym) return Change::kBecameSym;
  if (!is_sym && was_sym) return Change::kLost;
  if (!is_sym) return Change::kBecameAsym;
  return Change::kNone;
}

std::vector<NodeId> LinkSet::expire(sim::Time now) {
  std::vector<NodeId> downgraded;
  transition_hint_ = kNoTransition;
  auto keep = links_.begin();
  for (auto& s : links_) {
    const bool now_sym = s.tuple.symmetric(now);
    if (s.tuple.valid_until <= now) {
      if (s.was_symmetric) downgraded.push_back(s.tuple.neighbor);
      continue;  // drop: not copied to the keep prefix
    }
    if (s.was_symmetric && !now_sym) {
      downgraded.push_back(s.tuple.neighbor);
      s.was_symmetric = false;
    }
    note_boundary(now, s.tuple);
    *keep++ = s;
  }
  links_.erase(keep, links_.end());
  return downgraded;
}

bool LinkSet::is_symmetric(sim::Time now, NodeId neighbor) const {
  const auto* s = find(neighbor);
  return s != nullptr && s->tuple.symmetric(now);
}

std::optional<LinkTuple> LinkSet::get(NodeId neighbor) const {
  const auto* s = find(neighbor);
  if (s == nullptr) return std::nullopt;
  return s->tuple;
}

std::vector<NodeId> LinkSet::symmetric_neighbors(sim::Time now) const {
  std::vector<NodeId> out;
  symmetric_neighbors(now, out);
  return out;
}

std::vector<NodeId> LinkSet::asymmetric_neighbors(sim::Time now) const {
  std::vector<NodeId> out;
  asymmetric_neighbors(now, out);
  return out;
}

void LinkSet::symmetric_neighbors(sim::Time now,
                                  std::vector<NodeId>& out) const {
  out.clear();
  for (const auto& s : links_)
    if (s.tuple.symmetric(now)) out.push_back(s.tuple.neighbor);
}

void LinkSet::asymmetric_neighbors(sim::Time now,
                                   std::vector<NodeId>& out) const {
  out.clear();
  for (const auto& s : links_)
    if (s.tuple.asymmetric(now)) out.push_back(s.tuple.neighbor);
}

}  // namespace manet::olsr
