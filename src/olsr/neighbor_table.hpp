#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Neighbor tuple (§4.3): status follows the link set; willingness comes
/// from the neighbor's HELLOs.
struct NeighborTuple {
  NodeId id;
  Willingness willingness = Willingness::kDefault;
  bool symmetric = false;
};

/// 2-hop tuple (§4.4): `via` is the symmetric 1-hop neighbor that advertised
/// `two_hop` as one of its own symmetric neighbors.
struct TwoHopTuple {
  NodeId via;
  NodeId two_hop;
  sim::Time valid_until{};
};

/// 1-hop and 2-hop neighborhood repository. Fed by the Agent from HELLOs.
class NeighborTable {
 public:
  void upsert_neighbor(NodeId id, Willingness will, bool symmetric);
  void remove_neighbor(NodeId id);
  std::optional<NeighborTuple> neighbor(NodeId id) const;
  std::vector<NodeId> symmetric_neighbors() const;
  Willingness willingness_of(NodeId id) const;

  /// Replaces the set of 2-hop neighbors advertised by `via` (the
  /// paper-relevant part: this is exactly the content an attacker forges).
  void set_two_hops_via(NodeId via, const std::vector<NodeId>& two_hops,
                        sim::Time valid_until);
  void drop_two_hops_via(NodeId via);
  void expire_two_hops(sim::Time now);

  /// Strict 2-hop neighbors: advertised by some symmetric neighbor,
  /// excluding `self` and excluding nodes that are themselves symmetric
  /// 1-hop neighbors.
  std::set<NodeId> strict_two_hops(NodeId self) const;

  /// For MPR selection: via-neighbor -> set of strict 2-hop nodes reachable.
  std::map<NodeId, std::set<NodeId>> reachability(NodeId self) const;

  /// All (via, two_hop) pairs currently valid (for logging/inspection).
  std::vector<TwoHopTuple> two_hop_tuples() const;

  /// 2-hop neighbors advertised by a specific neighbor.
  std::set<NodeId> two_hops_via(NodeId via) const;

 private:
  std::map<NodeId, NeighborTuple> neighbors_;
  // Keyed by (via, two_hop).
  std::map<std::pair<NodeId, NodeId>, TwoHopTuple> two_hops_;
};

}  // namespace manet::olsr
