#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Neighbor tuple (§4.3): status follows the link set; willingness comes
/// from the neighbor's HELLOs.
struct NeighborTuple {
  NodeId id;
  Willingness willingness = Willingness::kDefault;
  bool symmetric = false;
};

/// 2-hop tuple (§4.4): `via` is the symmetric 1-hop neighbor that advertised
/// `two_hop` as one of its own symmetric neighbors.
struct TwoHopTuple {
  NodeId via;
  NodeId two_hop;
  sim::Time valid_until{};
};

/// 1-hop and 2-hop neighborhood repository. Fed by the Agent from HELLOs.
///
/// Both tables are flat sorted slabs: neighbors ascending by id, 2-hop
/// tuples ascending by (via, two_hop). All lookups are binary searches, the
/// per-via 2-hop set is one contiguous range, and iteration order matches
/// the previous std::map layout exactly (the audit log depends on it).
/// Mutators report whether they materially changed the table so the Agent
/// can coalesce MPR/route recomputation behind dirty flags.
class NeighborTable {
 public:
  /// Returns true when the tuple is new or its willingness/symmetry differ.
  bool upsert_neighbor(NodeId id, Willingness will, bool symmetric);
  void remove_neighbor(NodeId id);
  std::optional<NeighborTuple> neighbor(NodeId id) const;
  std::vector<NodeId> symmetric_neighbors() const;
  Willingness willingness_of(NodeId id) const;

  /// Replaces the set of 2-hop neighbors advertised by `via` (the
  /// paper-relevant part: this is exactly the content an attacker forges).
  /// Returns true when the *membership* changed — a pure validity refresh
  /// (same nodes, newer expiry) returns false.
  bool set_two_hops_via(NodeId via, const std::vector<NodeId>& two_hops,
                        sim::Time valid_until);
  void drop_two_hops_via(NodeId via);
  /// Returns true when any tuple was removed.
  bool expire_two_hops(sim::Time now);

  /// Strict 2-hop neighbors: advertised by some symmetric neighbor,
  /// excluding `self` and excluding nodes that are themselves symmetric
  /// 1-hop neighbors. Sorted ascending.
  std::vector<NodeId> strict_two_hops(NodeId self) const;

  /// For MPR selection: (via neighbor, strict 2-hop nodes reachable through
  /// it), ascending by via, inner lists sorted ascending. The scratch
  /// overload fills caller-owned buffers so steady-state recomputes do not
  /// allocate.
  using Reachability = std::vector<std::pair<NodeId, std::vector<NodeId>>>;
  Reachability reachability(NodeId self) const;
  void reachability(NodeId self, Reachability& out) const;

  /// All (via, two_hop) pairs currently valid (for logging/inspection),
  /// ascending by (via, two_hop).
  const std::vector<TwoHopTuple>& two_hop_tuples() const { return two_hops_; }

  /// 2-hop neighbors advertised by a specific neighbor, sorted ascending.
  std::vector<NodeId> two_hops_via(NodeId via) const;

  /// Checkpoint surface: raw slabs in their sorted storage order.
  const std::vector<NeighborTuple>& neighbor_tuples() const {
    return neighbors_;
  }
  void restore(std::vector<NeighborTuple> neighbors,
               std::vector<TwoHopTuple> two_hops) {
    neighbors_ = std::move(neighbors);
    two_hops_ = std::move(two_hops);
  }

 private:
  bool is_symmetric_neighbor(NodeId id) const;
  // Iterator range of two_hops_ advertised by `via`.
  std::pair<std::size_t, std::size_t> via_range(NodeId via) const;

  std::vector<NeighborTuple> neighbors_;  // sorted by id
  std::vector<TwoHopTuple> two_hops_;     // sorted by (via, two_hop)
  mutable std::vector<NodeId> scratch_;   // set_two_hops_via staging
};

}  // namespace manet::olsr
