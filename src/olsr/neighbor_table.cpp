#include "olsr/neighbor_table.hpp"

namespace manet::olsr {

void NeighborTable::upsert_neighbor(NodeId id, Willingness will,
                                    bool symmetric) {
  auto& t = neighbors_[id];
  t.id = id;
  t.willingness = will;
  t.symmetric = symmetric;
}

void NeighborTable::remove_neighbor(NodeId id) {
  neighbors_.erase(id);
  drop_two_hops_via(id);
}

std::optional<NeighborTuple> NeighborTable::neighbor(NodeId id) const {
  auto it = neighbors_.find(id);
  if (it == neighbors_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> NeighborTable::symmetric_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& [id, t] : neighbors_)
    if (t.symmetric) out.push_back(id);
  return out;
}

Willingness NeighborTable::willingness_of(NodeId id) const {
  auto it = neighbors_.find(id);
  return it == neighbors_.end() ? Willingness::kDefault
                                : it->second.willingness;
}

void NeighborTable::set_two_hops_via(NodeId via,
                                     const std::vector<NodeId>& two_hops,
                                     sim::Time valid_until) {
  drop_two_hops_via(via);
  for (auto th : two_hops)
    two_hops_[{via, th}] = TwoHopTuple{via, th, valid_until};
}

void NeighborTable::drop_two_hops_via(NodeId via) {
  for (auto it = two_hops_.begin(); it != two_hops_.end();) {
    if (it->first.first == via)
      it = two_hops_.erase(it);
    else
      ++it;
  }
}

void NeighborTable::expire_two_hops(sim::Time now) {
  for (auto it = two_hops_.begin(); it != two_hops_.end();) {
    if (it->second.valid_until <= now)
      it = two_hops_.erase(it);
    else
      ++it;
  }
}

std::set<NodeId> NeighborTable::strict_two_hops(NodeId self) const {
  std::set<NodeId> out;
  for (const auto& [key, t] : two_hops_) {
    const auto th = key.second;
    if (th == self) continue;
    auto nb = neighbors_.find(th);
    if (nb != neighbors_.end() && nb->second.symmetric) continue;
    // Only count 2-hop links advertised by currently-symmetric neighbors.
    auto via = neighbors_.find(key.first);
    if (via == neighbors_.end() || !via->second.symmetric) continue;
    out.insert(th);
  }
  return out;
}

std::map<NodeId, std::set<NodeId>> NeighborTable::reachability(
    NodeId self) const {
  const auto strict = strict_two_hops(self);
  std::map<NodeId, std::set<NodeId>> out;
  for (const auto& [key, t] : two_hops_) {
    const auto [via, th] = key;
    if (!strict.contains(th)) continue;
    auto nb = neighbors_.find(via);
    if (nb == neighbors_.end() || !nb->second.symmetric) continue;
    if (nb->second.willingness == Willingness::kNever) continue;
    out[via].insert(th);
  }
  return out;
}

std::vector<TwoHopTuple> NeighborTable::two_hop_tuples() const {
  std::vector<TwoHopTuple> out;
  out.reserve(two_hops_.size());
  for (const auto& [_, t] : two_hops_) out.push_back(t);
  return out;
}

std::set<NodeId> NeighborTable::two_hops_via(NodeId via) const {
  std::set<NodeId> out;
  for (const auto& [key, _] : two_hops_)
    if (key.first == via) out.insert(key.second);
  return out;
}

}  // namespace manet::olsr
