#include "olsr/neighbor_table.hpp"

#include <algorithm>

namespace manet::olsr {

bool NeighborTable::upsert_neighbor(NodeId id, Willingness will,
                                    bool symmetric) {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborTuple& t, NodeId n) { return t.id < n; });
  if (it == neighbors_.end() || it->id != id) {
    neighbors_.insert(it, NeighborTuple{id, will, symmetric});
    return true;
  }
  const bool changed = it->willingness != will || it->symmetric != symmetric;
  it->willingness = will;
  it->symmetric = symmetric;
  return changed;
}

void NeighborTable::remove_neighbor(NodeId id) {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborTuple& t, NodeId n) { return t.id < n; });
  if (it != neighbors_.end() && it->id == id) neighbors_.erase(it);
  drop_two_hops_via(id);
}

std::optional<NeighborTuple> NeighborTable::neighbor(NodeId id) const {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborTuple& t, NodeId n) { return t.id < n; });
  if (it == neighbors_.end() || it->id != id) return std::nullopt;
  return *it;
}

std::vector<NodeId> NeighborTable::symmetric_neighbors() const {
  std::vector<NodeId> out;
  for (const auto& t : neighbors_)
    if (t.symmetric) out.push_back(t.id);
  return out;
}

Willingness NeighborTable::willingness_of(NodeId id) const {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborTuple& t, NodeId n) { return t.id < n; });
  return (it == neighbors_.end() || it->id != id) ? Willingness::kDefault
                                                  : it->willingness;
}

bool NeighborTable::is_symmetric_neighbor(NodeId id) const {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborTuple& t, NodeId n) { return t.id < n; });
  return it != neighbors_.end() && it->id == id && it->symmetric;
}

std::pair<std::size_t, std::size_t> NeighborTable::via_range(
    NodeId via) const {
  const auto lo = std::lower_bound(
      two_hops_.begin(), two_hops_.end(), via,
      [](const TwoHopTuple& t, NodeId v) { return t.via < v; });
  auto hi = lo;
  while (hi != two_hops_.end() && hi->via == via) ++hi;
  return {static_cast<std::size_t>(lo - two_hops_.begin()),
          static_cast<std::size_t>(hi - two_hops_.begin())};
}

bool NeighborTable::set_two_hops_via(NodeId via,
                                     const std::vector<NodeId>& two_hops,
                                     sim::Time valid_until) {
  scratch_.assign(two_hops.begin(), two_hops.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());

  const auto [lo, hi] = via_range(via);
  const bool same_membership =
      hi - lo == scratch_.size() &&
      std::equal(scratch_.begin(), scratch_.end(), two_hops_.begin() + lo,
                 [](NodeId n, const TwoHopTuple& t) { return n == t.two_hop; });
  if (same_membership) {
    for (std::size_t i = lo; i < hi; ++i)
      two_hops_[i].valid_until = valid_until;
    return false;
  }

  // Replace the contiguous per-via range wholesale; the staged list is
  // sorted, so the slab stays ordered by (via, two_hop).
  std::vector<TwoHopTuple> fresh;
  fresh.reserve(scratch_.size());
  for (auto th : scratch_) fresh.push_back(TwoHopTuple{via, th, valid_until});
  auto it = two_hops_.erase(two_hops_.begin() + lo, two_hops_.begin() + hi);
  two_hops_.insert(it, fresh.begin(), fresh.end());
  return true;
}

void NeighborTable::drop_two_hops_via(NodeId via) {
  const auto [lo, hi] = via_range(via);
  two_hops_.erase(two_hops_.begin() + lo, two_hops_.begin() + hi);
}

bool NeighborTable::expire_two_hops(sim::Time now) {
  const auto before = two_hops_.size();
  std::erase_if(two_hops_,
                [now](const TwoHopTuple& t) { return t.valid_until <= now; });
  return two_hops_.size() != before;
}

std::vector<NodeId> NeighborTable::strict_two_hops(NodeId self) const {
  std::vector<NodeId> out;
  for (const auto& t : two_hops_) {
    if (t.two_hop == self) continue;
    if (is_symmetric_neighbor(t.two_hop)) continue;
    // Only count 2-hop links advertised by currently-symmetric neighbors.
    if (!is_symmetric_neighbor(t.via)) continue;
    out.push_back(t.two_hop);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

NeighborTable::Reachability NeighborTable::reachability(NodeId self) const {
  Reachability out;
  reachability(self, out);
  return out;
}

void NeighborTable::reachability(NodeId self, Reachability& out) const {
  out.clear();
  const auto strict = strict_two_hops(self);
  // two_hops_ is (via, two_hop)-sorted, so each via's entries form one run
  // and the output comes out via-ascending with sorted inner lists — the
  // same shape the old map<NodeId, set<NodeId>> produced.
  for (std::size_t i = 0; i < two_hops_.size();) {
    const NodeId via = two_hops_[i].via;
    std::size_t j = i;
    while (j < two_hops_.size() && two_hops_[j].via == via) ++j;
    const auto* nb = [&]() -> const NeighborTuple* {
      auto it = std::lower_bound(
          neighbors_.begin(), neighbors_.end(), via,
          [](const NeighborTuple& t, NodeId n) { return t.id < n; });
      return (it != neighbors_.end() && it->id == via) ? &*it : nullptr;
    }();
    if (nb != nullptr && nb->symmetric &&
        nb->willingness != Willingness::kNever) {
      std::vector<NodeId> reached;
      for (std::size_t k = i; k < j; ++k)
        if (std::binary_search(strict.begin(), strict.end(),
                               two_hops_[k].two_hop))
          reached.push_back(two_hops_[k].two_hop);
      if (!reached.empty()) out.emplace_back(via, std::move(reached));
    }
    i = j;
  }
}

std::vector<NodeId> NeighborTable::two_hops_via(NodeId via) const {
  const auto [lo, hi] = via_range(via);
  std::vector<NodeId> out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) out.push_back(two_hops_[i].two_hop);
  return out;
}

}  // namespace manet::olsr
