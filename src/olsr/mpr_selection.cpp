#include "olsr/mpr_selection.hpp"

#include <algorithm>

namespace manet::olsr {
namespace {

Willingness will_of(const MprInputs& in, NodeId n) {
  auto it = std::lower_bound(
      in.neighbors.begin(), in.neighbors.end(), n,
      [](const auto& p, NodeId id) { return p.first < id; });
  return (it != in.neighbors.end() && it->first == n) ? it->second
                                                      : Willingness::kDefault;
}

const std::vector<NodeId>* reach_of(const MprInputs& in, NodeId via) {
  auto it = std::lower_bound(
      in.reach.begin(), in.reach.end(), via,
      [](const auto& p, NodeId id) { return p.first < id; });
  return (it != in.reach.end() && it->first == via) ? &it->second : nullptr;
}

bool sorted_contains(const std::vector<NodeId>& v, NodeId n) {
  return std::binary_search(v.begin(), v.end(), n);
}

void sorted_insert(std::vector<NodeId>& v, NodeId n) {
  auto it = std::lower_bound(v.begin(), v.end(), n);
  if (it == v.end() || *it != n) v.insert(it, n);
}

void all_two_hops(const MprInputs& in, std::vector<NodeId>& out) {
  out.clear();
  for (const auto& [via, reach] : in.reach)
    out.insert(out.end(), reach.begin(), reach.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

// Number of elements of `reach` still present in `uncovered` (both sorted).
std::size_t gain_of(const std::vector<NodeId>& reach,
                    const std::vector<NodeId>& uncovered) {
  std::size_t gain = 0;
  auto u = uncovered.begin();
  for (auto th : reach) {
    u = std::lower_bound(u, uncovered.end(), th);
    if (u == uncovered.end()) break;
    if (*u == th) ++gain;
  }
  return gain;
}

}  // namespace

void select_mprs(const MprInputs& in, bool prune_redundant,
                 MprScratch& scratch, std::vector<NodeId>& out) {
  out.clear();
  auto& uncovered = scratch.uncovered;
  auto& tmp = scratch.tmp;
  all_two_hops(in, uncovered);

  auto cover_with = [&](NodeId n) {
    sorted_insert(out, n);
    const auto* reach = reach_of(in, n);
    if (reach == nullptr) return;
    tmp.clear();
    std::set_difference(uncovered.begin(), uncovered.end(), reach->begin(),
                        reach->end(), std::back_inserter(tmp));
    uncovered.swap(tmp);
  };

  // Step 1: WILL_ALWAYS neighbors.
  for (const auto& [n, will] : in.neighbors)
    if (will == Willingness::kAlways) cover_with(n);

  // Step 2: sole providers. A 2-hop node with exactly one reaching neighbor
  // forces that neighbor into the MPR set.
  {
    auto& providers = scratch.providers;
    providers.clear();
    for (const auto& [via, reach] : in.reach)
      for (auto th : reach) providers.emplace_back(th, via);
    std::sort(providers.begin(), providers.end());
    providers.erase(std::unique(providers.begin(), providers.end()),
                    providers.end());
    for (std::size_t i = 0; i < providers.size();) {
      std::size_t j = i;
      while (j < providers.size() &&
             providers[j].first == providers[i].first)
        ++j;
      if (j - i == 1 && sorted_contains(uncovered, providers[i].first))
        cover_with(providers[i].second);
      i = j;
    }
  }

  // Step 3: greedy by reachability.
  while (!uncovered.empty()) {
    NodeId best;
    std::size_t best_gain = 0;
    Willingness best_will = Willingness::kNever;
    std::size_t best_degree = 0;

    for (const auto& [via, reach] : in.reach) {
      if (sorted_contains(out, via)) continue;
      const std::size_t gain = gain_of(reach, uncovered);
      if (gain == 0) continue;
      const auto will = will_of(in, via);
      const std::size_t degree = reach.size();
      const bool better =
          gain > best_gain ||
          (gain == best_gain &&
           (static_cast<int>(will) > static_cast<int>(best_will) ||
            (will == best_will &&
             (degree > best_degree ||
              (degree == best_degree && (!best.valid() || via < best))))));
      if (better) {
        best = via;
        best_gain = gain;
        best_will = will;
        best_degree = degree;
      }
    }

    if (!best.valid()) break;  // remaining 2-hop nodes are unreachable
    cover_with(best);
  }

  if (prune_redundant) {
    // Drop MPRs (lowest willingness first) whose removal keeps full coverage.
    std::vector<NodeId> candidates = out;
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      const auto wa = will_of(in, a);
      const auto wb = will_of(in, b);
      if (wa != wb) return static_cast<int>(wa) < static_cast<int>(wb);
      return a < b;
    });
    std::vector<NodeId> trial;
    for (auto n : candidates) {
      if (will_of(in, n) == Willingness::kAlways) continue;
      trial = out;
      trial.erase(std::lower_bound(trial.begin(), trial.end(), n));
      if (covers_all_two_hops(in, trial)) out = trial;
    }
  }
}

std::vector<NodeId> select_mprs(const MprInputs& in, bool prune_redundant) {
  MprScratch scratch;
  std::vector<NodeId> out;
  select_mprs(in, prune_redundant, scratch, out);
  return out;
}

bool covers_all_two_hops(const MprInputs& in,
                         const std::vector<NodeId>& mprs) {
  std::vector<NodeId> covered;
  for (auto m : mprs) {
    const auto* reach = reach_of(in, m);
    if (reach == nullptr) continue;
    covered.insert(covered.end(), reach->begin(), reach->end());
  }
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  std::vector<NodeId> all;
  all_two_hops(in, all);
  return std::includes(covered.begin(), covered.end(), all.begin(), all.end());
}

}  // namespace manet::olsr
