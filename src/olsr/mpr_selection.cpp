#include "olsr/mpr_selection.hpp"

#include <algorithm>
#include <vector>

namespace manet::olsr {
namespace {

std::set<NodeId> all_two_hops(const MprInputs& in) {
  std::set<NodeId> out;
  for (const auto& [via, reach] : in.reach) out.insert(reach.begin(), reach.end());
  return out;
}

}  // namespace

std::set<NodeId> select_mprs(const MprInputs& in, bool prune_redundant) {
  std::set<NodeId> mprs;
  std::set<NodeId> uncovered = all_two_hops(in);

  auto cover_with = [&](NodeId n) {
    mprs.insert(n);
    auto it = in.reach.find(n);
    if (it == in.reach.end()) return;
    for (auto th : it->second) uncovered.erase(th);
  };

  // Step 1: WILL_ALWAYS neighbors.
  for (const auto& [n, will] : in.neighbors)
    if (will == Willingness::kAlways) cover_with(n);

  // Step 2: sole providers. A 2-hop node with exactly one reaching neighbor
  // forces that neighbor into the MPR set.
  {
    std::map<NodeId, std::vector<NodeId>> providers;
    for (const auto& [via, reach] : in.reach)
      for (auto th : reach) providers[th].push_back(via);
    for (const auto& [th, provs] : providers) {
      if (provs.size() == 1 && uncovered.contains(th)) cover_with(provs[0]);
    }
  }

  // Step 3: greedy by reachability.
  while (!uncovered.empty()) {
    NodeId best;
    std::size_t best_gain = 0;
    Willingness best_will = Willingness::kNever;
    std::size_t best_degree = 0;

    for (const auto& [via, reach] : in.reach) {
      if (mprs.contains(via)) continue;
      std::size_t gain = 0;
      for (auto th : reach)
        if (uncovered.contains(th)) ++gain;
      if (gain == 0) continue;
      const auto will = in.neighbors.contains(via)
                            ? in.neighbors.at(via)
                            : Willingness::kDefault;
      const std::size_t degree = reach.size();
      const bool better =
          gain > best_gain ||
          (gain == best_gain &&
           (static_cast<int>(will) > static_cast<int>(best_will) ||
            (will == best_will &&
             (degree > best_degree ||
              (degree == best_degree && (!best.valid() || via < best))))));
      if (better) {
        best = via;
        best_gain = gain;
        best_will = will;
        best_degree = degree;
      }
    }

    if (!best.valid()) break;  // remaining 2-hop nodes are unreachable
    cover_with(best);
  }

  if (prune_redundant) {
    // Drop MPRs (lowest willingness first) whose removal keeps full coverage.
    std::vector<NodeId> candidates{mprs.begin(), mprs.end()};
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
      const auto wa = in.neighbors.contains(a) ? in.neighbors.at(a)
                                               : Willingness::kDefault;
      const auto wb = in.neighbors.contains(b) ? in.neighbors.at(b)
                                               : Willingness::kDefault;
      if (wa != wb) return static_cast<int>(wa) < static_cast<int>(wb);
      return a < b;
    });
    for (auto n : candidates) {
      const auto will = in.neighbors.contains(n) ? in.neighbors.at(n)
                                                 : Willingness::kDefault;
      if (will == Willingness::kAlways) continue;
      auto trial = mprs;
      trial.erase(n);
      if (covers_all_two_hops(in, trial)) mprs = trial;
    }
  }

  return mprs;
}

bool covers_all_two_hops(const MprInputs& in, const std::set<NodeId>& mprs) {
  std::set<NodeId> covered;
  for (auto m : mprs) {
    auto it = in.reach.find(m);
    if (it == in.reach.end()) continue;
    covered.insert(it->second.begin(), it->second.end());
  }
  for (const auto& th : all_two_hops(in))
    if (!covered.contains(th)) return false;
  return true;
}

}  // namespace manet::olsr
