#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace manet::olsr {

// RFC 3626 §18.2/§18.3 protocol constants (defaults; all are configurable
// per-agent through Agent::Config).

inline constexpr sim::Duration kHelloInterval = sim::Duration::from_seconds(2.0);
inline constexpr sim::Duration kRefreshInterval = sim::Duration::from_seconds(2.0);
inline constexpr sim::Duration kTcInterval = sim::Duration::from_seconds(5.0);
inline constexpr sim::Duration kMidInterval = kTcInterval;
inline constexpr sim::Duration kHnaInterval = kTcInterval;

inline constexpr sim::Duration kNeighbHoldTime =
    sim::Duration::from_seconds(6.0);  // 3 x REFRESH_INTERVAL
inline constexpr sim::Duration kTopHoldTime =
    sim::Duration::from_seconds(15.0);  // 3 x TC_INTERVAL
inline constexpr sim::Duration kDupHoldTime = sim::Duration::from_seconds(30.0);
inline constexpr sim::Duration kMidHoldTime =
    sim::Duration::from_seconds(15.0);  // 3 x MID_INTERVAL
inline constexpr sim::Duration kHnaHoldTime =
    sim::Duration::from_seconds(15.0);

// Message types (§18.4). kData is a local extension used as the carrier of
// the IDS investigation protocol (outside the RFC-reserved 0..127 range).
enum class MessageType : std::uint8_t {
  kHello = 1,
  kTc = 2,
  kMid = 3,
  kHna = 4,
  kData = 200,
};

// Willingness (§18.8).
enum class Willingness : std::uint8_t {
  kNever = 0,
  kLow = 1,
  kDefault = 3,
  kHigh = 6,
  kAlways = 7,
};

// Link codes (§18.5/§18.6).
enum class LinkType : std::uint8_t {
  kUnspec = 0,
  kAsym = 1,
  kSym = 2,
  kLost = 3,
};

enum class NeighborType : std::uint8_t {
  kNotNeigh = 0,
  kSymNeigh = 1,
  kMprNeigh = 2,
};

/// Packs (neighbor type, link type) into the wire link code (§6.1.1).
constexpr std::uint8_t make_link_code(LinkType lt, NeighborType nt) {
  return static_cast<std::uint8_t>((static_cast<unsigned>(nt) << 2) |
                                   static_cast<unsigned>(lt));
}
constexpr LinkType link_type_of(std::uint8_t code) {
  return static_cast<LinkType>(code & 0x03);
}
constexpr NeighborType neighbor_type_of(std::uint8_t code) {
  return static_cast<NeighborType>((code >> 2) & 0x03);
}

inline constexpr std::uint8_t kDefaultTtl = 255;

}  // namespace manet::olsr
