#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "logging/log_store.hpp"
#include "net/medium.hpp"
#include "olsr/assoc_sets.hpp"
#include "olsr/constants.hpp"
#include "olsr/duplicate_set.hpp"
#include "olsr/hooks.hpp"
#include "olsr/link_set.hpp"
#include "olsr/messages.hpp"
#include "olsr/mpr_selection.hpp"
#include "olsr/neighbor_table.hpp"
#include "olsr/routing_table.hpp"
#include "olsr/topology_set.hpp"
#include "sim/engine.hpp"
#include "sim/timer.hpp"

namespace manet::olsr {

/// Per-message-type traffic counters (overhead bench, Table B).
struct AgentStats {
  std::uint64_t hello_sent = 0;
  std::uint64_t hello_recv = 0;
  std::uint64_t tc_sent = 0;
  std::uint64_t tc_recv = 0;
  std::uint64_t msgs_forwarded = 0;
  std::uint64_t data_sent = 0;
  std::uint64_t data_relayed = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t parse_errors = 0;
};

/// One OLSR routing daemon (RFC 3626 core: link sensing, HELLO/TC/MID/HNA,
/// MPR selection and flooding, routing-table calculation), attached to the
/// shared medium. Every protocol-relevant action is appended to the node's
/// audit LogStore — the paper's IDS consumes *only* that log plus the
/// investigation answers, never the agent's in-memory state.
///
/// MPR and route recomputation is coalesced behind dirty flags: table
/// mutations mark the derived state dirty, and the recompute runs at the
/// same protocol points as before (end of HELLO/TC processing,
/// housekeeping) only when an input actually changed — or when a link-set
/// symmetry timer boundary (LinkSet::next_transition) has passed, which is
/// the one way inputs change without an event. Skipped recomputes are
/// exactly those that would have produced identical state and no log
/// record, so traces are byte-identical to the eager behavior.
class Agent {
 public:
  struct Config {
    sim::Duration hello_interval = kHelloInterval;
    sim::Duration tc_interval = kTcInterval;
    sim::Duration mid_interval = kMidInterval;
    /// Emission jitter, subtracted uniformly from each interval (§18.3).
    sim::Duration jitter = sim::Duration::from_ms(100);
    sim::Duration neighb_hold = kNeighbHoldTime;
    sim::Duration top_hold = kTopHoldTime;
    sim::Duration dup_hold = kDupHoldTime;
    sim::Duration housekeeping_interval = sim::Duration::from_ms(500);
    Willingness willingness = Willingness::kDefault;
    /// Additional interface addresses; a non-empty list enables MID
    /// emission (multi-homed node).
    std::vector<NodeId> extra_interfaces;
    /// External networks this node gateways for; enables HNA emission.
    std::vector<HnaMessage::Entry> hna_networks;
    bool prune_redundant_mprs = false;
    /// Route HELLO emissions through the Medium's BroadcastBatch: the HELLO
    /// scheduler enrolls each jittered emission when it is armed, and the
    /// emission shares the per-cell receiver gather + sort with every other
    /// HELLO of the same jitter window. Trace-equivalent to the per-sender
    /// path (tests/medium_batch_test.cpp pins this); off reproduces the
    /// unbatched PR-2 behavior exactly, draw for draw.
    bool batched_hello = true;
    /// Same fast path for the TC flood: jittered TC emissions and the MPR
    /// re-broadcasts of forwarded messages (every relay firing within one
    /// duplicate window sees the same topology) share the per-cell
    /// snapshots too. Trace-equivalent like batched_hello — the batch path
    /// is observationally identical to Medium::broadcast, and enrollment
    /// never draws or schedules.
    bool batched_floods = true;
    /// Log an fwd_echo record (by/orig/seq) whenever a neighbor is heard
    /// re-broadcasting a *third-party* flood — the raw material of the
    /// forwarding audit (core/signatures_forwarding.hpp). Off by default:
    /// the record is chatty and the golden spoofing traces pin logs that
    /// never contained it.
    bool log_fwd_echo = false;
    std::size_t log_capacity = 100'000;
  };

  /// Receives the full DATA message: source, protocol and payload plus the
  /// relay trace (needed by responders answering over the reverse path).
  using DataHandler = std::function<void(const DataMessage& message)>;

  Agent(sim::Engine& sim, net::Medium& medium, NodeId id, Config config,
        AgentHooks* hooks = nullptr);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Re-points the interposition hooks (must not outlive the hooks object).
  void set_hooks(AgentHooks* hooks) { hooks_ = hooks; }

  NodeId id() const { return id_; }
  const Config& config() const { return config_; }

  // --- state inspection (tests, responder answers, benches) ---
  const LinkSet& links() const { return links_; }
  const NeighborTable& neighbors() const { return neighbors_; }
  const TopologySet& topology() const { return topology_; }
  const RoutingTable& routes() const { return routing_; }
  const MidSet& mid_set() const { return mid_set_; }
  const HnaSet& hna_set() const { return hna_set_; }
  /// Current MPR set, sorted ascending.
  const std::vector<NodeId>& mpr_set() const { return mprs_; }
  bool is_mpr(NodeId n) const;
  std::vector<NodeId> mpr_selectors() const;
  bool is_symmetric_neighbor(NodeId n) const;
  const AgentStats& stats() const { return stats_; }

  /// The adjacency this node believes in (link set + 2-hop + TC topology).
  KnowledgeGraph knowledge_graph() const;

  // --- audit log (the IDS's only window into the daemon) ---
  logging::LogStore& log() { return log_; }
  const logging::LogStore& log() const { return log_; }

  // --- application data plane (carrier of the investigation protocol) ---
  enum class SendStatus { kSent, kNoRoute };
  /// Source-routes a unicast payload to `dest`, avoiding `avoid` as relays.
  /// `avoid` must be sorted ascending.
  SendStatus send_data(NodeId dest, std::uint16_t protocol,
                       std::vector<std::uint8_t> payload,
                       std::span<const NodeId> avoid = {});
  SendStatus send_data(NodeId dest, std::uint16_t protocol,
                       std::vector<std::uint8_t> payload,
                       std::initializer_list<NodeId> avoid) {
    return send_data(dest, protocol, std::move(payload),
                     std::span<const NodeId>{avoid.begin(), avoid.size()});
  }
  /// Sends along an explicit relay list (destination last).
  void send_data_via(std::vector<NodeId> route, std::uint16_t protocol,
                     std::vector<std::uint8_t> payload);
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }

  /// Injects a raw, attacker-crafted message into the medium as if this
  /// agent emitted it (used by forge attacks; normal code has no use for it).
  void raw_broadcast(Message message);

  // --- fault / checkpoint surface ------------------------------------
  // Everything below exists so the faults subsystem can crash, amnesia-
  // restart, snapshot and resume a daemon without perturbing the RNG/event
  // trace. None of it is for protocol logic.

  /// One jittered §3.4.1 re-broadcast still in flight: the already-mutated
  /// message copy, its scheduled emission time and the engine sequence
  /// number of the pending event (checkpoint ordering key). Only populated
  /// while pending-forward tracking is enabled.
  struct PendingForward {
    Message message;
    sim::Time at{};
    std::uint64_t seq = 0;
  };

  /// Enables/disables registry bookkeeping for jittered forwards. Enabling
  /// changes only which closure wraps the identical schedule call — draws
  /// and event ordering are untouched. Disabling clears the registry.
  void set_track_pending_forwards(bool on);
  bool track_pending_forwards() const { return track_pending_forwards_; }
  /// Pending jittered forwards, sorted ascending by (at, seq).
  std::vector<PendingForward> pending_forwards() const;
  /// Re-schedules one persisted forward at its original emission time.
  /// Exactly one schedule, zero RNG draws; requires tracking enabled.
  void restore_pending_forward(Message message, sim::Time at);

  /// Amnesia rejoin: drops every protocol table and all derived state, but
  /// keeps the msg/pkt/ANSN sequence counters monotonic — a rebooted node
  /// must never reuse an (originator, seq) pair a peer's DuplicateSet may
  /// still remember as forwarded. Logs "tables_reset". The daemon must be
  /// stopped; call start() afterwards to rejoin.
  void reset_tables();

  /// Checkpoint-restore entry: marks the daemon running and installs the
  /// medium receive handler WITHOUT starting timers, appending log records
  /// or drawing from the RNG — the restore path re-arms each timer at its
  /// persisted deadline via PeriodicTimer::resume_at.
  void resume_running();

  /// Scalar protocol state persisted by a checkpoint (tables, audit log,
  /// timers and pending forwards go through their own surfaces).
  struct ProtocolScalars {
    std::vector<NodeId> mprs;
    std::vector<std::pair<NodeId, sim::Time>> mpr_selectors;
    bool mprs_dirty = true;
    bool routes_dirty = true;
    sim::Time mprs_links_hint{};
    sim::Time routes_links_hint{};
    std::uint16_t msg_seq = 1;
    std::uint16_t pkt_seq = 1;
    std::uint16_t ansn = 1;
    AgentStats stats;
  };
  ProtocolScalars protocol_scalars() const;
  void restore_protocol_scalars(const ProtocolScalars& s);

  /// Read access for checkpoint save (the other tables already have const
  /// accessors above).
  const DuplicateSet& duplicates() const { return duplicates_; }

  /// Mutable table access for checkpoint restore only.
  LinkSet& restore_links() { return links_; }
  NeighborTable& restore_neighbors() { return neighbors_; }
  TopologySet& restore_topology() { return topology_; }
  DuplicateSet& restore_duplicates() { return duplicates_; }
  MidSet& restore_mid_set() { return mid_set_; }
  HnaSet& restore_hna_set() { return hna_set_; }
  RoutingTable& restore_routes() { return routing_; }

  /// Timer access for checkpoint save (next_fire/pending_seq) and restore
  /// (resume_at). The MID timer only runs for multi-homed/gateway configs.
  sim::PeriodicTimer& hello_timer() { return hello_timer_; }
  sim::PeriodicTimer& tc_timer() { return tc_timer_; }
  sim::PeriodicTimer& mid_timer() { return mid_timer_; }
  sim::PeriodicTimer& housekeeping_timer() { return housekeeping_timer_; }
  const sim::PeriodicTimer& hello_timer() const { return hello_timer_; }
  const sim::PeriodicTimer& tc_timer() const { return tc_timer_; }
  const sim::PeriodicTimer& mid_timer() const { return mid_timer_; }
  const sim::PeriodicTimer& housekeeping_timer() const {
    return housekeeping_timer_;
  }

 private:
  void arm_forward(Message copy, sim::Time at);

  void handle_packet(const net::Packet& packet);
  void process_hello(const Message& m, NodeId transmitter);
  void process_tc(const Message& m, NodeId transmitter);
  void process_mid(const Message& m, NodeId transmitter);
  void process_hna(const Message& m, NodeId transmitter);
  void process_data(const Message& m, NodeId transmitter);
  void maybe_forward(const Message& m, NodeId transmitter);

  void emit_hello();
  void emit_tc();
  void emit_mid();
  void emit_hna();
  void housekeep();

  void maybe_recompute_mprs();
  void maybe_recompute_routes();
  void recompute_mprs();
  void recompute_routes();
  void build_knowledge_graph(KnowledgeGraph& g) const;
  void broadcast_message(Message m, bool batched = false);

  std::uint16_t next_msg_seq() { return msg_seq_++; }
  std::uint16_t next_pkt_seq() { return pkt_seq_++; }

  logging::LogRecord make_record(std::string event) const;

  sim::Engine& sim_;
  net::Medium& medium_;
  NodeId id_;
  Config config_;
  AgentHooks* hooks_;

  logging::LogStore log_;
  LinkSet links_;
  NeighborTable neighbors_;
  TopologySet topology_;
  DuplicateSet duplicates_;
  MidSet mid_set_;
  HnaSet hna_set_;
  RoutingTable routing_;
  std::vector<NodeId> mprs_;  // sorted ascending
  std::map<NodeId, sim::Time> mpr_selectors_;  // -> valid_until

  // Recompute coalescing: dirty flags raised by table mutations, plus a
  // per-consumer snapshot of the link set's next symmetry-timer boundary
  // taken at its last recompute. Initial values force the first recompute.
  bool mprs_dirty_ = true;
  bool routes_dirty_ = true;
  sim::Time mprs_links_hint_{};
  sim::Time routes_links_hint_{};

  // Reusable scratch: per-HELLO/recompute work runs allocation-free in
  // steady state.
  mutable std::vector<NodeId> sym_scratch_;
  mutable std::vector<NodeId> asym_scratch_;
  mutable KnowledgeGraph kg_scratch_;
  MprInputs mpr_inputs_;
  MprScratch mpr_scratch_;
  std::vector<NodeId> fresh_mprs_;

  std::uint16_t msg_seq_ = 1;
  std::uint16_t pkt_seq_ = 1;
  std::uint16_t ansn_ = 1;
  bool running_ = false;

  // Pending-forward registry (checkpoint support). Tokens are internal
  // handles; ordering for persistence comes from the event seq.
  bool track_pending_forwards_ = false;
  std::uint64_t next_forward_token_ = 1;
  std::unordered_map<std::uint64_t, PendingForward> pending_forwards_reg_;

  sim::PeriodicTimer hello_timer_;
  sim::PeriodicTimer tc_timer_;
  sim::PeriodicTimer mid_timer_;
  sim::PeriodicTimer housekeeping_timer_;

  DataHandler data_handler_;
  AgentStats stats_;
};

}  // namespace manet::olsr
