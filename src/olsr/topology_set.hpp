#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Topology tuple (§4.5): `last_hop` (T_last_addr) declared reachability to
/// `dest` (T_dest_addr) in a TC with sequence ANSN.
struct TopologyTuple {
  NodeId dest;
  NodeId last_hop;
  std::uint16_t ansn = 0;
  sim::Time valid_until{};
};

/// Topology information base built from TC flooding (§9.5 processing rules).
///
/// Tuples live in one flat slab sorted by (last_hop, dest): an originator's
/// advertisements form a contiguous range, so a TC replaces one range
/// in-place and `advertised_by` is a single range scan. Iteration order
/// matches the previous (last_hop, dest)-keyed std::map exactly.
class TopologySet {
 public:
  struct TcResult {
    /// False when the TC was stale (older ANSN than already recorded for
    /// this originator) and was ignored.
    bool applied = false;
    /// True when the originator's advertised edge *set* materially changed
    /// (not a mere ANSN/validity refresh of the same destinations) — the
    /// signal the Agent's route-recompute dirty flag keys off.
    bool changed = false;
  };

  /// Applies one received TC (§9.5).
  TcResult on_tc(sim::Time now, NodeId originator, std::uint16_t ansn,
                 const std::vector<NodeId>& advertised, sim::Duration vtime);

  /// Returns true when any tuple was removed.
  bool expire(sim::Time now);

  /// Edges (last_hop -> dest) currently valid, sorted by (last_hop, dest).
  const std::vector<TopologyTuple>& tuples() const { return tuples_; }

  /// Destinations advertised by one originator, sorted ascending.
  std::vector<NodeId> advertised_by(NodeId last_hop) const;

  std::size_t size() const { return tuples_.size(); }

  /// Checkpoint surface: the tuple slab plus the per-originator latest-ANSN
  /// index (both in sorted storage order).
  const std::vector<std::pair<NodeId, std::uint16_t>>& latest_ansn() const {
    return latest_ansn_;
  }
  void restore(std::vector<TopologyTuple> tuples,
               std::vector<std::pair<NodeId, std::uint16_t>> latest_ansn) {
    tuples_ = std::move(tuples);
    latest_ansn_ = std::move(latest_ansn);
  }

 private:
  std::pair<std::size_t, std::size_t> origin_range(NodeId originator) const;

  std::vector<TopologyTuple> tuples_;  // sorted by (last_hop, dest)
  std::vector<std::pair<NodeId, std::uint16_t>> latest_ansn_;  // sorted by id
  std::vector<NodeId> scratch_before_;  // dest sets for change detection
  std::vector<NodeId> scratch_after_;
};

}  // namespace manet::olsr
