#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Topology tuple (§4.5): `last_hop` (T_last_addr) declared reachability to
/// `dest` (T_dest_addr) in a TC with sequence ANSN.
struct TopologyTuple {
  NodeId dest;
  NodeId last_hop;
  std::uint16_t ansn = 0;
  sim::Time valid_until{};
};

/// Topology information base built from TC flooding (§9.5 processing rules).
class TopologySet {
 public:
  /// Applies one received TC. Returns false when the TC is stale (older
  /// ANSN than already recorded for this originator) and was ignored.
  bool on_tc(sim::Time now, NodeId originator, std::uint16_t ansn,
             const std::vector<NodeId>& advertised, sim::Duration vtime);

  void expire(sim::Time now);

  /// Edges (last_hop -> dest) currently valid.
  std::vector<TopologyTuple> tuples() const;

  /// Destinations advertised by one originator.
  std::vector<NodeId> advertised_by(NodeId last_hop) const;

  std::size_t size() const { return tuples_.size(); }

 private:
  // Keyed by (last_hop, dest).
  std::map<std::pair<NodeId, NodeId>, TopologyTuple> tuples_;
  std::map<NodeId, std::uint16_t> latest_ansn_;
};

}  // namespace manet::olsr
