#pragma once

#include "olsr/messages.hpp"

namespace manet::olsr {

/// Interposition points an attacker implementation can override. The
/// well-behaving agent uses the no-op defaults; src/attacks provides the
/// misbehaving variants. Keeping the interface here lets olsr stay
/// independent of the attacks library.
class AgentHooks {
 public:
  virtual ~AgentHooks() = default;

  /// Called after the agent builds its truthful HELLO, before serialization.
  /// Link spoofing and willingness manipulation rewrite the message here.
  virtual void on_build_hello(HelloMessage& hello) { (void)hello; }

  /// Called after the agent builds its truthful TC.
  virtual void on_build_tc(TcMessage& tc) { (void)tc; }

  /// Return false to silently drop instead of forwarding a flooded control
  /// message (blackhole / grayhole).
  virtual bool should_forward(const Message& message) {
    (void)message;
    return true;
  }

  /// Mutate a message about to be forwarded (modify-and-forward attacks,
  /// e.g. sequence-number inflation).
  virtual void on_forward(Message& message) { (void)message; }

  /// Return false to drop a source-routed DATA message instead of relaying
  /// it (an attacker starving the investigation of answers).
  virtual bool should_relay_data(const DataMessage& data) {
    (void)data;
    return true;
  }

  /// Called once per HELLO emission tick, letting an attacker inject extra
  /// forged traffic (broadcast storm, replay).
  virtual void on_tick() {}

  /// Observes every message the agent receives and parses (before normal
  /// processing). A wormhole endpoint records messages here for replay at
  /// the colluding end.
  virtual void on_receive(const Message& message) { (void)message; }
};

}  // namespace manet::olsr
