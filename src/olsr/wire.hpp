#pragma once

#include <cstdint>
#include <stdexcept>

#include "net/packet.hpp"
#include "olsr/messages.hpp"

namespace manet::olsr {

/// RFC 3626 wire (de)serialization, big-endian, including the
/// mantissa/exponent encoding of validity times (§18.3). Deserialization
/// throws WireError on truncated or inconsistent input — a receiver drops
/// such packets, exactly like a real daemon.

struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Vtime/Htime 8-bit encoding: value = C * (1 + a/16) * 2^b seconds with
/// C = 1/16 s, a = high nibble, b = low nibble.
std::uint8_t encode_vtime(sim::Duration d);
sim::Duration decode_vtime(std::uint8_t encoded);

net::Bytes serialize_packet(const OlsrPacket& packet);
OlsrPacket parse_packet(const net::Bytes& bytes);

/// Size in bytes a message will occupy on the wire (header included).
std::size_t wire_size(const Message& message);

}  // namespace manet::olsr
