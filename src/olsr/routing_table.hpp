#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/node_id.hpp"

namespace manet::olsr {

using net::NodeId;

/// Directed adjacency a node *believes* in: its link set, 2-hop set and
/// the TC-derived topology set merged (§10). Keys may be absent for leaf
/// nodes.
using KnowledgeGraph = std::map<NodeId, std::set<NodeId>>;

/// Routing table (§10): hop-count shortest paths over the knowledge graph.
class RoutingTable {
 public:
  struct Entry {
    NodeId dest;
    NodeId next_hop;
    int distance = 0;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Rebuilds all routes via BFS from `self`. Returns (added, removed)
  /// destination sets relative to the previous table — the agent logs these.
  std::pair<std::vector<NodeId>, std::vector<NodeId>> recompute(
      NodeId self, const KnowledgeGraph& graph);

  std::optional<Entry> route_to(NodeId dest) const;
  std::vector<Entry> entries() const;
  std::size_t size() const { return routes_.size(); }

  /// Full relay sequence to `dest` (next hop first, dest last); nullopt if
  /// unreachable. Recomputed from the stored parent chain.
  std::optional<std::vector<NodeId>> path_to(NodeId dest) const;

  /// Shortest path over an arbitrary graph with nodes to avoid as relays
  /// (the destination itself may not be avoided). Used by the cooperative
  /// investigation to route around the suspicious MPR and colluders.
  static std::optional<std::vector<NodeId>> shortest_path(
      const KnowledgeGraph& graph, NodeId from, NodeId to,
      const std::set<NodeId>& avoid = {});

 private:
  std::map<NodeId, Entry> routes_;
  std::map<NodeId, NodeId> parent_;
  NodeId self_;
};

}  // namespace manet::olsr
