#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/node_id.hpp"

namespace manet::olsr {

using net::NodeId;

/// Directed adjacency a node *believes* in: its link set, 2-hop set and
/// the TC-derived topology set merged (§10).
///
/// Arcs accumulate in a raw edge list; the first query compacts them into a
/// CSR (sorted unique node list + offset/target arrays with dense indices),
/// so building the graph per recompute is append-only and the BFS consumers
/// run over contiguous index arrays instead of a map of sets. Adjacency
/// lists come out ascending by node id — the same iteration order the old
/// std::map<NodeId, std::set<NodeId>> gave, which the trace-pinned BFS
/// tie-breaks rely on. Not thread-safe: the lazy build mutates cached
/// state (one graph belongs to one replication).
class KnowledgeGraph {
 public:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  /// Adds the directed arc from -> to (duplicates are compacted away).
  void add_arc(NodeId from, NodeId to) {
    arcs_.emplace_back(from, to);
    built_ = false;
  }
  /// Adds both directions of an undirected edge.
  void add_edge(NodeId a, NodeId b) {
    add_arc(a, b);
    add_arc(b, a);
  }
  void reserve(std::size_t arcs) { arcs_.reserve(arcs); }
  void clear() {
    arcs_.clear();
    nodes_.clear();
    offsets_.clear();
    targets_.clear();
    built_ = true;
  }

  /// All endpoints mentioned by any arc, sorted ascending.
  const std::vector<NodeId>& nodes() const {
    build();
    return nodes_;
  }
  std::size_t node_count() const {
    build();
    return nodes_.size();
  }
  std::size_t arc_count() const {
    build();
    return targets_.size();
  }
  NodeId id_at(std::uint32_t index) const {
    build();
    return nodes_[index];
  }
  /// Dense index of `id` in nodes(), or kNpos when absent.
  std::uint32_t index_of(NodeId id) const;
  /// Out-arc target indices of one node, ascending by target id.
  std::span<const std::uint32_t> arcs_from(std::uint32_t node_index) const;
  std::span<const std::uint32_t> offsets() const {
    build();
    return offsets_;
  }
  std::span<const std::uint32_t> targets() const {
    build();
    return targets_;
  }

 private:
  void build() const;

  mutable std::vector<std::pair<NodeId, NodeId>> arcs_;
  mutable std::vector<NodeId> nodes_;           // sorted unique endpoints
  mutable std::vector<std::uint32_t> offsets_;  // node_count() + 1
  mutable std::vector<std::uint32_t> targets_;  // indices into nodes_
  mutable bool built_ = true;  // an empty graph is trivially built
};

/// Routing table (§10): hop-count shortest paths over the knowledge graph.
///
/// Routes are dense arrays (distance + parent id) over the last graph's
/// sorted node list. `recompute` keeps a snapshot of that graph: an
/// identical graph is a no-op, a pure edge-addition superset reuses the
/// previous shortest-path tree and only relaxes outward from the new arcs,
/// and anything else falls back to a full BFS rebuild. All three paths
/// yield identical distances and reachable sets, so the (added, removed)
/// diff the agent logs is independent of which path ran.
class RoutingTable {
 public:
  struct Entry {
    NodeId dest;
    NodeId next_hop;
    int distance = 0;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Rebuilds all routes via BFS from `self`. Returns (added, removed)
  /// destination sets relative to the previous table — the agent logs these.
  std::pair<std::vector<NodeId>, std::vector<NodeId>> recompute(
      NodeId self, const KnowledgeGraph& graph);

  std::optional<Entry> route_to(NodeId dest) const;
  std::vector<Entry> entries() const;
  std::size_t size() const { return dests_.size(); }

  /// Full relay sequence to `dest` (next hop first, dest last); nullopt if
  /// unreachable. Recomputed from the stored parent chain.
  std::optional<std::vector<NodeId>> path_to(NodeId dest) const;

  /// Shortest path over an arbitrary graph with nodes to avoid as relays
  /// (the destination itself may not be avoided). Used by the cooperative
  /// investigation to route around the suspicious MPR and colluders.
  /// `avoid` must be sorted ascending; the span view replaces the old
  /// std::set default argument that allocated a temporary per call.
  static std::optional<std::vector<NodeId>> shortest_path(
      const KnowledgeGraph& graph, NodeId from, NodeId to,
      std::span<const NodeId> avoid = {});
  static std::optional<std::vector<NodeId>> shortest_path(
      const KnowledgeGraph& graph, NodeId from, NodeId to,
      std::initializer_list<NodeId> avoid) {
    return shortest_path(graph, from, to,
                         std::span<const NodeId>{avoid.begin(), avoid.size()});
  }

  /// Checkpoint image of the table: the CSR snapshot the incremental
  /// recompute diffs against plus the dense route arrays. Restoring the
  /// snapshot verbatim means the no-op / incremental / full-rebuild choice
  /// on the next recompute is the same one the uninterrupted run makes —
  /// and the (added, removed) diff the agent logs depends on `dests`.
  struct Persisted {
    NodeId self{};
    std::vector<NodeId> node_ids;
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> targets;
    std::vector<std::int32_t> dist;
    std::vector<NodeId> parent;
    std::vector<NodeId> dests;
  };
  Persisted persist() const {
    return Persisted{self_,  node_ids_, offsets_, targets_,
                     dist_,  parent_,   dests_};
  }
  void restore(Persisted p) {
    self_ = p.self;
    node_ids_ = std::move(p.node_ids);
    offsets_ = std::move(p.offsets);
    targets_ = std::move(p.targets);
    dist_ = std::move(p.dist);
    parent_ = std::move(p.parent);
    dests_ = std::move(p.dests);
  }

 private:
  static constexpr std::int32_t kUnreachable = -1;

  void full_rebuild(const KnowledgeGraph& graph);
  /// Relaxes from arcs present in `graph` but not in the snapshot. Only
  /// valid when the snapshot's arc set is a subset of `graph`'s.
  void relax_additions(
      const KnowledgeGraph& graph,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& seeds);
  std::uint32_t index_of(NodeId id) const;
  void rebuild_dests(std::vector<NodeId>& out) const;

  NodeId self_;
  std::vector<NodeId> node_ids_;  // snapshot of the last graph's node list
  std::vector<std::uint32_t> offsets_;  // snapshot of the last graph's CSR
  std::vector<std::uint32_t> targets_;
  std::vector<std::int32_t> dist_;  // per node index; kUnreachable if none
  std::vector<NodeId> parent_;      // per node index; invalid at roots
  std::vector<NodeId> dests_;       // sorted reachable destinations (≠ self)
  std::vector<std::uint32_t> queue_;  // BFS scratch
};

}  // namespace manet::olsr
