#include "olsr/topology_set.hpp"

#include <algorithm>

namespace manet::olsr {
namespace {

/// Sequence comparison with wraparound (§19).
bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return (a > b && a - b <= 32768) || (b > a && b - a > 32768);
}

}  // namespace

std::pair<std::size_t, std::size_t> TopologySet::origin_range(
    NodeId originator) const {
  const auto lo = std::lower_bound(
      tuples_.begin(), tuples_.end(), originator,
      [](const TopologyTuple& t, NodeId o) { return t.last_hop < o; });
  auto hi = lo;
  while (hi != tuples_.end() && hi->last_hop == originator) ++hi;
  return {static_cast<std::size_t>(lo - tuples_.begin()),
          static_cast<std::size_t>(hi - tuples_.begin())};
}

TopologySet::TcResult TopologySet::on_tc(sim::Time now, NodeId originator,
                                         std::uint16_t ansn,
                                         const std::vector<NodeId>& advertised,
                                         sim::Duration vtime) {
  auto ansn_it = std::lower_bound(
      latest_ansn_.begin(), latest_ansn_.end(), originator,
      [](const auto& p, NodeId o) { return p.first < o; });
  if (ansn_it != latest_ansn_.end() && ansn_it->first == originator) {
    if (seq_newer(ansn_it->second, ansn)) return {};
    ansn_it->second = ansn;
  } else {
    latest_ansn_.insert(ansn_it, {originator, ansn});
  }

  auto [lo, hi] = origin_range(originator);
  scratch_before_.clear();
  for (std::size_t i = lo; i < hi; ++i)
    scratch_before_.push_back(tuples_[i].dest);

  // §9.5: remove older tuples from this originator, then record new ones.
  const auto removed_begin = std::stable_partition(
      tuples_.begin() + lo, tuples_.begin() + hi,
      [ansn](const TopologyTuple& t) { return !seq_newer(ansn, t.ansn); });
  hi = static_cast<std::size_t>(
      tuples_.erase(removed_begin, tuples_.begin() + hi) - tuples_.begin());

  for (auto dest : advertised) {
    auto it = std::lower_bound(
        tuples_.begin() + lo, tuples_.begin() + hi, dest,
        [](const TopologyTuple& t, NodeId d) { return t.dest < d; });
    if (it != tuples_.begin() + hi && it->dest == dest) {
      it->ansn = ansn;
      it->valid_until = now + vtime;
    } else {
      tuples_.insert(it, TopologyTuple{dest, originator, ansn, now + vtime});
      ++hi;
    }
  }

  scratch_after_.clear();
  for (std::size_t i = lo; i < hi; ++i)
    scratch_after_.push_back(tuples_[i].dest);
  return {true, scratch_before_ != scratch_after_};
}

bool TopologySet::expire(sim::Time now) {
  const auto before = tuples_.size();
  std::erase_if(tuples_,
                [now](const TopologyTuple& t) { return t.valid_until <= now; });
  return tuples_.size() != before;
}

std::vector<NodeId> TopologySet::advertised_by(NodeId last_hop) const {
  const auto [lo, hi] = origin_range(last_hop);
  std::vector<NodeId> out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) out.push_back(tuples_[i].dest);
  return out;
}

}  // namespace manet::olsr
