#include "olsr/topology_set.hpp"

namespace manet::olsr {
namespace {

/// Sequence comparison with wraparound (§19).
bool seq_newer(std::uint16_t a, std::uint16_t b) {
  return (a > b && a - b <= 32768) || (b > a && b - a > 32768);
}

}  // namespace

bool TopologySet::on_tc(sim::Time now, NodeId originator, std::uint16_t ansn,
                        const std::vector<NodeId>& advertised,
                        sim::Duration vtime) {
  auto it = latest_ansn_.find(originator);
  if (it != latest_ansn_.end() && seq_newer(it->second, ansn)) return false;
  latest_ansn_[originator] = ansn;

  // §9.5: remove older tuples from this originator, then record new ones.
  for (auto t = tuples_.begin(); t != tuples_.end();) {
    if (t->first.first == originator && seq_newer(ansn, t->second.ansn))
      t = tuples_.erase(t);
    else
      ++t;
  }
  for (auto dest : advertised) {
    auto& tuple = tuples_[{originator, dest}];
    tuple.last_hop = originator;
    tuple.dest = dest;
    tuple.ansn = ansn;
    tuple.valid_until = now + vtime;
  }
  return true;
}

void TopologySet::expire(sim::Time now) {
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second.valid_until <= now)
      it = tuples_.erase(it);
    else
      ++it;
  }
}

std::vector<TopologyTuple> TopologySet::tuples() const {
  std::vector<TopologyTuple> out;
  out.reserve(tuples_.size());
  for (const auto& [_, t] : tuples_) out.push_back(t);
  return out;
}

std::vector<NodeId> TopologySet::advertised_by(NodeId last_hop) const {
  std::vector<NodeId> out;
  for (const auto& [key, t] : tuples_)
    if (key.first == last_hop) out.push_back(t.dest);
  return out;
}

}  // namespace manet::olsr
