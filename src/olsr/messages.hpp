#pragma once

#include <cstdint>
#include <map>
#include <variant>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/constants.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Common OLSR message header (RFC 3626 §3.3).
struct MessageHeader {
  MessageType type = MessageType::kHello;
  sim::Duration vtime = kNeighbHoldTime;  ///< validity time of the content
  NodeId originator;                      ///< main address of the creator
  std::uint8_t ttl = kDefaultTtl;
  std::uint8_t hop_count = 0;
  std::uint16_t seq_num = 0;
};

/// HELLO (§6.1): willingness plus neighbors grouped by link code.
struct HelloMessage {
  sim::Duration htime = kHelloInterval;
  Willingness willingness = Willingness::kDefault;
  /// Advertised neighbor groups, keyed by wire link code. Order on the wire
  /// follows ascending code; addresses keep insertion order.
  std::map<std::uint8_t, std::vector<NodeId>> link_groups;

  void add(LinkType lt, NeighborType nt, NodeId neighbor) {
    link_groups[make_link_code(lt, nt)].push_back(neighbor);
  }
  /// All neighbors advertised with SYM link or SYM/MPR neighbor type — the
  /// "symmetric neighbor set" a receiver derives (used by the IDS too).
  std::vector<NodeId> symmetric_neighbors() const;
  /// All addresses regardless of code.
  std::vector<NodeId> all_neighbors() const;
};

/// TC (§9.1): advertised neighbor sequence number + advertised selectors.
struct TcMessage {
  std::uint16_t ansn = 0;
  std::vector<NodeId> advertised;  ///< at least the MPR-selector set
};

/// MID (§5.1): additional interface addresses of the originator.
struct MidMessage {
  std::vector<NodeId> interfaces;
};

/// HNA (§12.1): (network, mask-bits) pairs reachable via the originator.
struct HnaMessage {
  struct Entry {
    std::uint32_t network = 0;
    std::uint8_t prefix_len = 0;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<Entry> entries;
};

/// Local extension: unicast application payload, source-routed so that the
/// IDS can route investigation requests around a suspicious MPR (§III-C of
/// the paper). `route` lists the remaining relays, final destination last.
struct DataMessage {
  NodeId source;
  NodeId destination;
  std::vector<NodeId> route;  ///< remaining hops, destination included
  /// Relays append themselves while forwarding, so the destination knows
  /// the path actually traversed (the responder answers over its reverse,
  /// keeping request AND answer away from the suspect, §III-C).
  std::vector<NodeId> trace;
  std::uint16_t protocol = 0;  ///< demultiplexing for applications
  std::vector<std::uint8_t> payload;
};

using MessageBody =
    std::variant<HelloMessage, TcMessage, MidMessage, HnaMessage, DataMessage>;

struct Message {
  MessageHeader header;
  MessageBody body;

  const HelloMessage* as_hello() const {
    return std::get_if<HelloMessage>(&body);
  }
  const TcMessage* as_tc() const { return std::get_if<TcMessage>(&body); }
  const MidMessage* as_mid() const { return std::get_if<MidMessage>(&body); }
  const HnaMessage* as_hna() const { return std::get_if<HnaMessage>(&body); }
  const DataMessage* as_data() const { return std::get_if<DataMessage>(&body); }
};

/// An OLSR packet: zero or more messages sharing one packet header (§3.4).
struct OlsrPacket {
  std::uint16_t seq_num = 0;
  std::vector<Message> messages;
};

}  // namespace manet::olsr
