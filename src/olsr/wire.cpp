#include "olsr/wire.hpp"

#include <bit>
#include <cmath>
#include <type_traits>

namespace manet::olsr {
namespace {

class ByteWriter {
 public:
  explicit ByteWriter(net::Bytes& out) : out_{out} {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  void node(NodeId id) { u32(id.value()); }
  void bytes(const std::uint8_t* p, std::size_t n) {
    out_.insert(out_.end(), p, p + n);
  }
  std::size_t size() const { return out_.size(); }
  /// Back-patches a previously written u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v & 0xFF);
  }

 private:
  net::Bytes& out_;
};

class ByteReader {
 public:
  explicit ByteReader(const net::Bytes& in) : in_{in} {}

  std::uint8_t u8() {
    require(1);
    return in_[pos_++];
  }
  std::uint16_t u16() {
    require(2);
    const auto v = static_cast<std::uint16_t>((in_[pos_] << 8) | in_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    require(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(in_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(in_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(in_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(in_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  NodeId node() { return NodeId{u32()}; }
  void bytes(net::Bytes& out, std::size_t n) {
    require(n);
    out.insert(out.end(), in_.begin() + static_cast<std::ptrdiff_t>(pos_),
               in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return in_.size() - pos_; }
  void require(std::size_t n) const {
    if (in_.size() - pos_ < n) throw WireError{"truncated packet"};
  }

 private:
  const net::Bytes& in_;
  std::size_t pos_ = 0;
};

constexpr double kVtimeScale = 1.0 / 16.0;  // C in seconds

/// type + vtime + size + originator + ttl + hop count + seq num (§3.3).
constexpr std::size_t kMessageHeaderSize = 12;

void write_body(ByteWriter& w, const HelloMessage& h) {
  w.u16(0);  // reserved
  w.u8(encode_vtime(h.htime));
  w.u8(static_cast<std::uint8_t>(h.willingness));
  for (const auto& [code, addrs] : h.link_groups) {
    w.u8(code);
    w.u8(0);  // reserved
    w.u16(static_cast<std::uint16_t>(4 + 4 * addrs.size()));
    for (auto a : addrs) w.node(a);
  }
}

void write_body(ByteWriter& w, const TcMessage& t) {
  w.u16(t.ansn);
  w.u16(0);  // reserved
  for (auto a : t.advertised) w.node(a);
}

void write_body(ByteWriter& w, const MidMessage& m) {
  for (auto a : m.interfaces) w.node(a);
}

void write_body(ByteWriter& w, const HnaMessage& h) {
  for (const auto& e : h.entries) {
    w.u32(e.network);
    w.u32(e.prefix_len == 0 ? 0u
                            : (~0u << (32 - e.prefix_len)));
  }
}

void write_body(ByteWriter& w, const DataMessage& d) {
  w.node(d.source);
  w.node(d.destination);
  w.u8(static_cast<std::uint8_t>(d.route.size()));
  w.u8(static_cast<std::uint8_t>(d.trace.size()));
  w.u16(d.protocol);
  for (auto hop : d.route) w.node(hop);
  for (auto hop : d.trace) w.node(hop);
  w.u16(static_cast<std::uint16_t>(d.payload.size()));
  w.bytes(d.payload.data(), d.payload.size());
}

/// Exact serialized body size per message type — lets serialize_packet
/// reserve the output buffer in one shot and wire_size() skip serializing.
std::size_t body_wire_size(const MessageBody& body) {
  return std::visit(
      [](const auto& b) -> std::size_t {
        using T = std::remove_cvref_t<decltype(b)>;
        if constexpr (std::is_same_v<T, HelloMessage>) {
          std::size_t n = 4;
          for (const auto& [code, addrs] : b.link_groups)
            n += 4 + 4 * addrs.size();
          return n;
        } else if constexpr (std::is_same_v<T, TcMessage>) {
          return 4 + 4 * b.advertised.size();
        } else if constexpr (std::is_same_v<T, MidMessage>) {
          return 4 * b.interfaces.size();
        } else if constexpr (std::is_same_v<T, HnaMessage>) {
          return 8 * b.entries.size();
        } else {
          static_assert(std::is_same_v<T, DataMessage>);
          return 14 + 4 * (b.route.size() + b.trace.size()) +
                 b.payload.size();
        }
      },
      body);
}

HelloMessage read_hello(ByteReader& r, std::size_t body_end) {
  HelloMessage h;
  r.u16();  // reserved
  h.htime = decode_vtime(r.u8());
  h.willingness = static_cast<Willingness>(r.u8());
  while (r.pos() < body_end) {
    const auto code = r.u8();
    r.u8();  // reserved
    const auto size = r.u16();
    if (size < 4 || (size - 4) % 4 != 0) throw WireError{"bad link group size"};
    const std::size_t count = (size - 4) / 4;
    auto& group = h.link_groups[code];
    for (std::size_t i = 0; i < count; ++i) group.push_back(r.node());
  }
  if (r.pos() != body_end) throw WireError{"hello body overrun"};
  return h;
}

TcMessage read_tc(ByteReader& r, std::size_t body_end) {
  TcMessage t;
  t.ansn = r.u16();
  r.u16();  // reserved
  while (r.pos() + 4 <= body_end) t.advertised.push_back(r.node());
  if (r.pos() != body_end) throw WireError{"tc body overrun"};
  return t;
}

MidMessage read_mid(ByteReader& r, std::size_t body_end) {
  MidMessage m;
  while (r.pos() + 4 <= body_end) m.interfaces.push_back(r.node());
  if (r.pos() != body_end) throw WireError{"mid body overrun"};
  return m;
}

HnaMessage read_hna(ByteReader& r, std::size_t body_end) {
  HnaMessage h;
  while (r.pos() + 8 <= body_end) {
    HnaMessage::Entry e;
    e.network = r.u32();
    const auto mask = r.u32();
    e.prefix_len = static_cast<std::uint8_t>(std::popcount(mask));
    h.entries.push_back(e);
  }
  if (r.pos() != body_end) throw WireError{"hna body overrun"};
  return h;
}

DataMessage read_data(ByteReader& r, std::size_t body_end) {
  DataMessage d;
  d.source = r.node();
  d.destination = r.node();
  const auto route_len = r.u8();
  const auto trace_len = r.u8();
  d.protocol = r.u16();
  for (std::size_t i = 0; i < route_len; ++i) d.route.push_back(r.node());
  for (std::size_t i = 0; i < trace_len; ++i) d.trace.push_back(r.node());
  const auto payload_len = r.u16();
  d.payload.reserve(payload_len);
  r.bytes(d.payload, payload_len);
  if (r.pos() != body_end) throw WireError{"data body overrun"};
  return d;
}

}  // namespace

std::uint8_t encode_vtime(sim::Duration d) {
  const double seconds = d.seconds();
  if (seconds <= 0.0) return 0;
  // Find the smallest b such that seconds fits C*(1+a/16)*2^b with a in 0..15.
  for (int b = 0; b <= 15; ++b) {
    for (int a = 0; a <= 15; ++a) {
      const double v = kVtimeScale * (1.0 + a / 16.0) * std::pow(2.0, b);
      if (v + 1e-9 >= seconds)
        return static_cast<std::uint8_t>((a << 4) | b);
    }
  }
  return 0xFF;  // maximum representable
}

sim::Duration decode_vtime(std::uint8_t encoded) {
  const int a = (encoded >> 4) & 0x0F;
  const int b = encoded & 0x0F;
  return sim::Duration::from_seconds(kVtimeScale * (1.0 + a / 16.0) *
                                     std::pow(2.0, b));
}

namespace {

void write_message(ByteWriter& w, const Message& m) {
  w.u8(static_cast<std::uint8_t>(m.header.type));
  w.u8(encode_vtime(m.header.vtime));
  const std::size_t size_at = w.size();
  w.u16(0);  // message size, patched below
  w.node(m.header.originator);
  w.u8(m.header.ttl);
  w.u8(m.header.hop_count);
  w.u16(m.header.seq_num);
  const std::size_t header_start = size_at - 2;
  std::visit([&](const auto& body) { write_body(w, body); }, m.body);
  w.patch_u16(size_at, static_cast<std::uint16_t>(w.size() - header_start));
}

}  // namespace

net::Bytes serialize_packet(const OlsrPacket& packet) {
  std::size_t total = 4;  // packet header
  for (const auto& m : packet.messages)
    total += kMessageHeaderSize + body_wire_size(m.body);
  net::Bytes out;
  out.reserve(total);
  ByteWriter w{out};
  w.u16(0);  // packet length, patched below
  w.u16(packet.seq_num);
  for (const auto& m : packet.messages) write_message(w, m);
  w.patch_u16(0, static_cast<std::uint16_t>(out.size()));
  return out;
}

OlsrPacket parse_packet(const net::Bytes& bytes) {
  ByteReader r{bytes};
  OlsrPacket packet;
  const auto packet_len = r.u16();
  if (packet_len != bytes.size()) throw WireError{"packet length mismatch"};
  packet.seq_num = r.u16();

  while (r.remaining() > 0) {
    Message m;
    const std::size_t msg_start = r.pos();
    m.header.type = static_cast<MessageType>(r.u8());
    m.header.vtime = decode_vtime(r.u8());
    const auto msg_size = r.u16();
    if (msg_size < 12) throw WireError{"message size too small"};
    m.header.originator = r.node();
    m.header.ttl = r.u8();
    m.header.hop_count = r.u8();
    m.header.seq_num = r.u16();
    const std::size_t body_end = msg_start + msg_size;
    if (body_end > bytes.size()) throw WireError{"message overruns packet"};

    switch (m.header.type) {
      case MessageType::kHello:
        m.body = read_hello(r, body_end);
        break;
      case MessageType::kTc:
        m.body = read_tc(r, body_end);
        break;
      case MessageType::kMid:
        m.body = read_mid(r, body_end);
        break;
      case MessageType::kHna:
        m.body = read_hna(r, body_end);
        break;
      case MessageType::kData:
        m.body = read_data(r, body_end);
        break;
      default:
        throw WireError{"unknown message type"};
    }
    packet.messages.push_back(std::move(m));
  }
  return packet;
}

std::size_t wire_size(const Message& message) {
  return kMessageHeaderSize + body_wire_size(message.body);
}

}  // namespace manet::olsr
