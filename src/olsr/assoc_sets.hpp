#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "olsr/messages.hpp"
#include "sim/time.hpp"

namespace manet::olsr {

using net::NodeId;

/// Interface association set (§5.4), built from MID messages: maps an
/// interface address to the originator's main address so multi-homed nodes
/// are identified uniquely (the paper notes identity spoofing must be
/// distinguished from legitimate multi-interface declarations). Flat slab
/// sorted by interface address, like the other OLSR tables.
class MidSet {
 public:
  void on_mid(sim::Time now, NodeId main, const std::vector<NodeId>& ifaces,
              sim::Duration vtime);
  void expire(sim::Time now);

  /// Resolves an interface address to the node's main address; identity if
  /// unknown (§5.4 resolution rule).
  NodeId main_address_of(NodeId iface) const;
  std::vector<NodeId> interfaces_of(NodeId main) const;
  std::size_t size() const { return assoc_.size(); }

  /// One persisted association row (sorted by iface in storage).
  struct Tuple {
    NodeId iface;
    NodeId main;
    sim::Time valid_until{};
  };

  /// Checkpoint surface.
  const std::vector<Tuple>& tuples() const { return assoc_; }
  void restore(std::vector<Tuple> tuples) { assoc_ = std::move(tuples); }

 private:
  std::vector<Tuple> assoc_;  // sorted by iface
};

/// Association set for external routes (§12.5), built from HNA messages.
/// Flat slab sorted by (gateway, network, prefix_len).
class HnaSet {
 public:
  void on_hna(sim::Time now, NodeId gateway,
              const std::vector<HnaMessage::Entry>& entries,
              sim::Duration vtime);
  void expire(sim::Time now);

  /// Gateways currently advertising the given network.
  std::vector<NodeId> gateways_for(std::uint32_t network,
                                   std::uint8_t prefix_len) const;
  std::size_t size() const { return tuples_.size(); }

  /// One persisted external-route key (sorted storage order).
  struct Key {
    NodeId gateway;
    std::uint32_t network;
    std::uint8_t prefix_len;
    auto operator<=>(const Key&) const = default;
  };

  /// Checkpoint surface.
  const std::vector<std::pair<Key, sim::Time>>& tuples() const {
    return tuples_;
  }
  void restore(std::vector<std::pair<Key, sim::Time>> tuples) {
    tuples_ = std::move(tuples);
  }

 private:
  std::vector<std::pair<Key, sim::Time>> tuples_;  // sorted by Key
};

}  // namespace manet::olsr
