#include "olsr/assoc_sets.hpp"

#include <algorithm>

namespace manet::olsr {

void MidSet::on_mid(sim::Time now, NodeId main,
                    const std::vector<NodeId>& ifaces, sim::Duration vtime) {
  for (auto iface : ifaces) {
    auto it = std::lower_bound(
        assoc_.begin(), assoc_.end(), iface,
        [](const Tuple& t, NodeId i) { return t.iface < i; });
    if (it != assoc_.end() && it->iface == iface) {
      it->main = main;
      it->valid_until = now + vtime;
    } else {
      assoc_.insert(it, Tuple{iface, main, now + vtime});
    }
  }
}

void MidSet::expire(sim::Time now) {
  std::erase_if(assoc_,
                [now](const Tuple& t) { return t.valid_until <= now; });
}

NodeId MidSet::main_address_of(NodeId iface) const {
  auto it = std::lower_bound(
      assoc_.begin(), assoc_.end(), iface,
      [](const Tuple& t, NodeId i) { return t.iface < i; });
  return (it == assoc_.end() || it->iface != iface) ? iface : it->main;
}

std::vector<NodeId> MidSet::interfaces_of(NodeId main) const {
  std::vector<NodeId> out;
  for (const auto& t : assoc_)
    if (t.main == main) out.push_back(t.iface);
  return out;
}

void HnaSet::on_hna(sim::Time now, NodeId gateway,
                    const std::vector<HnaMessage::Entry>& entries,
                    sim::Duration vtime) {
  for (const auto& e : entries) {
    const Key key{gateway, e.network, e.prefix_len};
    auto it = std::lower_bound(
        tuples_.begin(), tuples_.end(), key,
        [](const auto& p, const Key& k) { return p.first < k; });
    if (it != tuples_.end() && it->first == key) {
      it->second = now + vtime;
    } else {
      tuples_.insert(it, {key, now + vtime});
    }
  }
}

void HnaSet::expire(sim::Time now) {
  std::erase_if(tuples_, [now](const auto& p) { return p.second <= now; });
}

std::vector<NodeId> HnaSet::gateways_for(std::uint32_t network,
                                         std::uint8_t prefix_len) const {
  std::vector<NodeId> out;
  for (const auto& [key, _] : tuples_)
    if (key.network == network && key.prefix_len == prefix_len)
      out.push_back(key.gateway);
  return out;
}

}  // namespace manet::olsr
