#include "olsr/assoc_sets.hpp"

namespace manet::olsr {

void MidSet::on_mid(sim::Time now, NodeId main,
                    const std::vector<NodeId>& ifaces, sim::Duration vtime) {
  for (auto iface : ifaces) {
    auto& t = assoc_[iface];
    t.main = main;
    t.valid_until = now + vtime;
  }
}

void MidSet::expire(sim::Time now) {
  for (auto it = assoc_.begin(); it != assoc_.end();) {
    if (it->second.valid_until <= now)
      it = assoc_.erase(it);
    else
      ++it;
  }
}

NodeId MidSet::main_address_of(NodeId iface) const {
  auto it = assoc_.find(iface);
  return it == assoc_.end() ? iface : it->second.main;
}

std::vector<NodeId> MidSet::interfaces_of(NodeId main) const {
  std::vector<NodeId> out;
  for (const auto& [iface, t] : assoc_)
    if (t.main == main) out.push_back(iface);
  return out;
}

void HnaSet::on_hna(sim::Time now, NodeId gateway,
                    const std::vector<HnaMessage::Entry>& entries,
                    sim::Duration vtime) {
  for (const auto& e : entries)
    tuples_[Key{gateway, e.network, e.prefix_len}] = now + vtime;
}

void HnaSet::expire(sim::Time now) {
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (it->second <= now)
      it = tuples_.erase(it);
    else
      ++it;
  }
}

std::vector<NodeId> HnaSet::gateways_for(std::uint32_t network,
                                         std::uint8_t prefix_len) const {
  std::vector<NodeId> out;
  for (const auto& [key, _] : tuples_)
    if (key.network == network && key.prefix_len == prefix_len)
      out.push_back(key.gateway);
  return out;
}

}  // namespace manet::olsr
