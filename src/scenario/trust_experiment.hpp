#pragma once

#include <map>
#include <memory>
#include <vector>

#include "attacks/link_spoofing.hpp"
#include "scenario/network.hpp"

namespace manet::scenario {

/// Reproduction harness for the paper's §V evaluation: n nodes in mutual
/// radio range, one link-spoofing attacker whose HELLOs advertise a
/// phantom neighbor, and k colluding liars that falsify their investigation
/// answers. The attacked node runs the detector and performs one
/// investigation per round; the harness snapshots the trust table and the
/// Eq. 8 Detect value after every round.
class TrustExperiment {
 public:
  struct Config {
    std::size_t num_nodes = 16;   ///< incl. attacker and investigator
    std::size_t num_liars = 4;    ///< the paper's 26.3%
    std::uint64_t seed = 1;
    int rounds = 25;
    /// Initial trust drawn uniformly from this range (the paper: "randomly
    /// set"); the default-trust anchor stays at trust_params.default_trust.
    double initial_trust_min = 0.05;
    double initial_trust_max = 0.85;
    trust::TrustParams trust_params;
    trust::DecisionConfig decision;
    core::InvestigationConfig investigation;
    double radio_loss = 0.0;
    attacks::LinkSpoofingAttack::Mode mode =
        attacks::LinkSpoofingAttack::Mode::kAddNonExistent;
    /// Engine driving the replication (see Network::Config): sequential by
    /// default; kSharded runs the psim parallel engine, whose results are
    /// identical for any `engine_threads` / `shards` value.
    sim::EngineKind engine = sim::EngineKind::kSequential;
    unsigned engine_threads = 0;  ///< sharded workers; 0 = hardware
    unsigned shards = 0;          ///< sharded spatial shards; 0 = auto
  };

  struct RoundSnapshot {
    int round = 0;
    double detect = 0.0;  ///< Eq. 8 for this round
    trust::Verdict verdict = trust::Verdict::kUnrecognized;
    double margin = 0.0;  ///< Eq. 9 epsilon
    /// Investigator's trust per node after the round's updates.
    std::map<NodeId, double> trust;
  };

  explicit TrustExperiment(Config config);
  ~TrustExperiment();

  /// Builds the network, lets OLSR converge, activates the attack.
  void setup();

  /// One investigation round (the attack stays active).
  RoundSnapshot run_round();

  /// One idle round: the attack has ceased, no investigation happens, and
  /// the forgetting factor relaxes every trust value toward the default
  /// (Figure 2 semantics).
  RoundSnapshot run_idle_round();

  /// Deactivates the attack and the liars (start of the Fig. 2 phase).
  void cease_attack();

  std::vector<RoundSnapshot> run_attack_rounds(int rounds);

  // --- topology of the experiment ---
  NodeId investigator() const { return Network::id_of(0); }
  NodeId attacker() const { return Network::id_of(1); }
  NodeId phantom() const { return phantom_; }
  const std::vector<NodeId>& liars() const { return liars_; }
  const std::vector<NodeId>& honest() const { return honest_; }
  bool is_liar(NodeId id) const;

  Network& network() { return *network_; }
  core::Detector& detector() { return *detector_; }

 private:
  Config config_;
  std::unique_ptr<Network> network_;
  core::Detector* detector_ = nullptr;
  attacks::LinkSpoofingAttack* spoof_ = nullptr;
  NodeId phantom_;
  std::vector<NodeId> liars_;
  std::vector<NodeId> honest_;
  int round_counter_ = 0;
};

}  // namespace manet::scenario
