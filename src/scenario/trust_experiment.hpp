#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "attacks/drop.hpp"
#include "attacks/link_spoofing.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/invariants.hpp"
#include "scenario/network.hpp"

namespace manet::logging {
class AuditWriter;
}

namespace manet::scenario {

/// Reproduction harness for the paper's §V evaluation: n nodes in mutual
/// radio range, one link-spoofing attacker whose HELLOs advertise a
/// phantom neighbor, and k colluding liars that falsify their investigation
/// answers. The attacked node runs the detector and performs one
/// investigation per round; the harness snapshots the trust table and the
/// Eq. 8 Detect value after every round.
class TrustExperiment {
 public:
  /// Which misbehaviour node 1 runs.
  enum class AttackKind {
    /// The paper's link spoofing: full-mesh cluster, forged HELLOs, one
    /// investigator-driven claim investigation per round.
    kSpoof,
    /// Grayhole (Sen papers): multi-hop grid, node 1 advertises
    /// WILL_ALWAYS (so it is everyone's MPR, §8.3.1 step 1) and drops the
    /// floods it attracted with probability drop_fraction; detection is
    /// scan-driven through the forwarding audit.
    kGrayhole,
  };

  struct Config {
    std::size_t num_nodes = 16;   ///< incl. attacker and investigator
    std::size_t num_liars = 4;    ///< the paper's 26.3%
    std::uint64_t seed = 1;
    int rounds = 25;
    /// Initial trust drawn uniformly from this range (the paper: "randomly
    /// set"); the default-trust anchor stays at trust_params.default_trust.
    double initial_trust_min = 0.05;
    double initial_trust_max = 0.85;
    trust::TrustParams trust_params;
    trust::DecisionConfig decision;
    core::InvestigationConfig investigation;
    double radio_loss = 0.0;
    attacks::LinkSpoofingAttack::Mode mode =
        attacks::LinkSpoofingAttack::Mode::kAddNonExistent;
    /// Attack family; kSpoof preserves the legacy behaviour (and the
    /// golden traces) exactly.
    AttackKind attack = AttackKind::kSpoof;
    /// Grayhole drop probability (kGrayhole only): 1.0 = blackhole.
    double drop_fraction = 1.0;
    /// Engine driving the replication (see Network::Config): sequential by
    /// default; kSharded runs the psim parallel engine, whose results are
    /// identical for any `engine_threads` / `shards` value.
    sim::EngineKind engine = sim::EngineKind::kSequential;
    unsigned engine_threads = 0;  ///< sharded workers; 0 = hardware
    unsigned shards = 0;          ///< sharded spatial shards; 0 = auto
    /// Deterministic disturbance schedule; empty = pristine run (the
    /// golden traces). Under the sequential engine the plan replays
    /// through the event queue at exact times; under the sharded engine
    /// it is stepped at the 250 ms drive boundaries, where every worker
    /// lane is quiescent — either way the run is byte-stable in the seed
    /// and independent of engine_threads.
    faults::FaultPlan fault_plan;
    /// Opt in to checkpoint/restore: turns on in-flight and pending-forward
    /// tracking (trace-identical bookkeeping). Sequential engine only.
    bool checkpointable = false;
    /// Detector fault tolerance, applied only when fault_plan is non-empty
    /// (keeps the pristine golden traces untouched): convictions of nodes
    /// not heard from within this window are downgraded, and unresponsive
    /// investigation responders decay instead of freezing.
    sim::Duration liveness_window = sim::Duration::from_seconds(10.0);
    /// Record the investigator's audit-event stream (versioned binary
    /// format, logging/audit_log.hpp): header with the pipeline config and
    /// initial trust snapshot, then every log line / completed round / idle
    /// decay as frames. tools/manet_detect replays the bytes offline with
    /// byte-identical verdicts and trust trajectories. Recording never
    /// perturbs the run itself. Incompatible with restore_checkpoint (a
    /// resumed run would record a log with no beginning).
    bool record_audit = false;
  };

  struct RoundSnapshot {
    int round = 0;
    sim::Time at{};       ///< virtual time when the round ended
    double detect = 0.0;  ///< Eq. 8 for this round
    trust::Verdict verdict = trust::Verdict::kUnrecognized;
    double margin = 0.0;  ///< Eq. 9 epsilon
    /// Investigator's trust per node after the round's updates.
    std::map<NodeId, double> trust;
    // --- graceful-degradation telemetry (filled by run_churn_round;
    // --- zeros/false on pristine runs) ---
    std::size_t down = 0;  ///< nodes down when the round ended
    /// Cumulative liveness-gate suppressions (see DetectorConfig).
    std::uint64_t suppressed = 0;
    /// Cumulative kIntruder verdicts against crashed-but-honest bystanders.
    std::uint64_t false_convictions = 0;
    /// Up-aware control-plane convergence at round end.
    bool converged = false;
    // --- grayhole telemetry (zeros on spoof runs) ---
    std::size_t investigations = 0;  ///< launched by this round's scan
    std::size_t audits = 0;  ///< forwarding-audit tallies this round streamed
    std::uint64_t dropped_control = 0;  ///< attacker's cumulative drops
  };

  explicit TrustExperiment(Config config);
  ~TrustExperiment();

  /// Builds the network, lets OLSR converge, activates the attack.
  void setup();

  /// One investigation round (the attack stays active). Spoof runs
  /// investigate the forged claim directly; grayhole runs dispatch to
  /// run_grayhole_round (scan-driven detection).
  RoundSnapshot run_round();

  /// One grayhole round: drive to the round's 5 s slot (floods accumulate,
  /// the attacker drops), run one detector scan in the investigator's
  /// context, wait for every launched investigation to land, and count any
  /// conviction of a non-attacker as a false conviction.
  RoundSnapshot run_grayhole_round();

  /// One faulted round: the regular attacker investigation plus a
  /// false-conviction probe of the lowest-id down bystander (a crashed,
  /// honest node whose links have gone stale — exactly the node a naive
  /// detector convicts). Fills the degradation fields of the snapshot and
  /// feeds every report through the invariant checker. Falls back to
  /// run_round semantics when no fault plan is configured.
  RoundSnapshot run_churn_round();

  /// One idle round: the attack has ceased, no investigation happens, and
  /// the forgetting factor relaxes every trust value toward the default
  /// (Figure 2 semantics).
  RoundSnapshot run_idle_round();

  /// Deactivates the attack and the liars (start of the Fig. 2 phase).
  void cease_attack();

  std::vector<RoundSnapshot> run_attack_rounds(int rounds);

  // --- topology of the experiment ---
  NodeId investigator() const { return Network::id_of(0); }
  NodeId attacker() const { return Network::id_of(1); }
  NodeId phantom() const { return phantom_; }
  const std::vector<NodeId>& liars() const { return liars_; }
  const std::vector<NodeId>& honest() const { return honest_; }
  bool is_liar(NodeId id) const;

  Network& network() { return *network_; }
  core::Detector& detector() { return *detector_; }
  /// The grayhole hooks on node 1 (null on spoof runs).
  attacks::DropAttack* drop_attack() { return drop_; }

  /// The recorded audit-log bytes so far (empty unless
  /// Config::record_audit). Complete at any round boundary — the format is
  /// a stream, not a document, so a prefix up to a frame boundary is a
  /// valid log.
  std::vector<std::uint8_t> audit_log() const;

  // --- fault injection & checkpointing ---
  bool faulted() const { return !config_.fault_plan.empty(); }
  /// The injector driving the configured fault plan (null when pristine).
  faults::FaultInjector* injector() { return injector_.get(); }
  /// Safety-rule oracle fed by run_churn_round (null when pristine).
  const faults::InvariantChecker* invariants() const {
    return invariants_.get();
  }

  /// Serializes the complete run state at a round boundary (versioned
  /// binary format, see faults/checkpoint.hpp). Requires checkpointable
  /// mode and no outstanding investigations; restore_checkpoint on the
  /// bytes continues the run byte-identically to never having stopped.
  std::vector<std::uint8_t> save_checkpoint();

  /// Rebuilds an experiment from a snapshot: constructs the object graph
  /// from `config` (which must match the saving run's), overwrites every
  /// component's state from the snapshot, and re-arms all pending events
  /// sorted by (time, original seq) so the event queue replays the
  /// uninterrupted run's tie-breaks. Throws faults::CheckpointError on
  /// magic/version/config mismatch or corruption.
  static std::unique_ptr<TrustExperiment> restore_checkpoint(
      Config config, const std::vector<std::uint8_t>& bytes);

 private:
  /// Everything in setup() up to (not including) start_all: network,
  /// hooks, liar selection, detector, injector, invariant checker. No
  /// timers armed, no draws from the network's RNG — shared by setup()
  /// and the restore path.
  void build_network();
  /// Daemon lifecycle callbacks handed to the injector (stop / start /
  /// reset_tables+start, each in the node's engine context).
  faults::FaultInjector::NodeOps node_ops();
  /// run_for, plus fault stepping at 250 ms boundaries under the sharded
  /// engine (see Config::fault_plan).
  void drive(sim::Duration d);
  void apply_restored(const std::vector<std::uint8_t>& bytes);
  /// One investigation of (suspect, subject) against `verifiers`; drives
  /// the sim until the report lands and returns it.
  core::DetectionReport run_investigation(NodeId suspect, NodeId subject,
                                          const std::vector<NodeId>& verifiers);

  Config config_;
  /// Declared before network_: the investigator's LogStore and the
  /// detector's pipeline hold raw pointers to this writer, so it must
  /// outlive them (members destroy in reverse declaration order).
  std::unique_ptr<logging::AuditWriter> audit_writer_;
  std::unique_ptr<Network> network_;
  core::Detector* detector_ = nullptr;
  attacks::LinkSpoofingAttack* spoof_ = nullptr;  ///< null on grayhole runs
  attacks::DropAttack* drop_ = nullptr;           ///< null on spoof runs
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<faults::InvariantChecker> invariants_;
  NodeId phantom_;
  std::vector<NodeId> liars_;
  std::vector<NodeId> honest_;
  int round_counter_ = 0;
  std::uint64_t false_convictions_ = 0;
};

}  // namespace manet::scenario
