#include "scenario/trust_experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/topology.hpp"

namespace manet::scenario {

TrustExperiment::TrustExperiment(Config config) : config_{std::move(config)} {
  if (config_.num_nodes < 4)
    throw std::invalid_argument{"need at least 4 nodes"};
  if (config_.num_liars + 2 > config_.num_nodes)
    throw std::invalid_argument{"too many liars"};
  phantom_ = NodeId{static_cast<std::uint32_t>(config_.num_nodes + 83)};
}

TrustExperiment::~TrustExperiment() = default;

bool TrustExperiment::is_liar(NodeId id) const {
  return std::find(liars_.begin(), liars_.end(), id) != liars_.end();
}

void TrustExperiment::setup() {
  Network::Config nc;
  nc.seed = config_.seed;
  // A compact cluster: every node within radio range of every other, so all
  // n-2 bystanders are 1-hop neighbors of the attacker (the S1..Sm of the
  // paper) and answer its investigations first-hand.
  nc.radio.range_m = 250.0;
  nc.radio.loss_probability = config_.radio_loss;
  nc.positions = net::grid_layout(config_.num_nodes, 50.0);
  nc.investigation = config_.investigation;
  nc.engine = config_.engine;
  nc.engine_threads = config_.engine_threads;
  nc.shards = config_.shards;
  network_ = std::make_unique<Network>(nc);

  // Attacker (node 1) advertises the phantom / forged link.
  std::set<NodeId> targets{phantom_};
  auto spoof = std::make_unique<attacks::LinkSpoofingAttack>(config_.mode,
                                                             targets);
  spoof_ = spoof.get();
  network_->set_hooks(1, std::move(spoof));

  // Choose the liars among the bystanders (nodes 2..n-1), deterministically
  // from the seed.
  sim::Rng picker{config_.seed ^ 0xC01DBEEFULL};
  std::vector<std::size_t> bystanders;
  for (std::size_t i = 2; i < config_.num_nodes; ++i) bystanders.push_back(i);
  picker.shuffle(bystanders);
  for (std::size_t k = 0; k < bystanders.size(); ++k) {
    const auto id = Network::id_of(bystanders[k]);
    if (k < config_.num_liars) {
      liars_.push_back(id);
      network_->set_answer_policy(bystanders[k], core::AnswerPolicy::kLiar);
    } else {
      honest_.push_back(id);
    }
  }

  // The investigator (node 0) runs the detector.
  core::DetectorConfig dc;
  dc.trust_params = config_.trust_params;
  dc.decision = config_.decision;
  dc.investigation = config_.investigation;
  detector_ = &network_->add_detector(0, dc);

  // Random initial trust (the paper: "Initially, we randomly set the trust
  // that is assigned to each node").
  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    detector_->trust_store().set_trust(
        Network::id_of(i),
        picker.uniform_real(config_.initial_trust_min,
                            config_.initial_trust_max));
  }

  network_->start_all();
  // Let OLSR converge: links become symmetric after two HELLO exchanges;
  // give the cluster a comfortable margin.
  network_->run_for(sim::Duration::from_seconds(15.0));
}

TrustExperiment::RoundSnapshot TrustExperiment::run_round() {
  RoundSnapshot snap;
  snap.round = ++round_counter_;

  // Verifiers: every bystander (the attacker's 1-hop neighbors, §IV-B).
  std::vector<NodeId> verifiers;
  verifiers.insert(verifiers.end(), honest_.begin(), honest_.end());
  verifiers.insert(verifiers.end(), liars_.begin(), liars_.end());

  bool done = false;
  detector_->set_report_callback([&](const core::DetectionReport& report) {
    snap.detect = report.detect;
    snap.verdict = report.verdict;
    snap.margin = report.interval.margin;
    done = true;
  });
  // The kick draws and schedules in the investigator's context — under the
  // sharded engine that must happen on node 0's lane and stream.
  network_->run_as(0, [&] {
    detector_->investigate_claim(attacker(), phantom_, /*claimed_up=*/true,
                                 {core::EvidenceTag::kE1MprReplaced},
                                 verifiers);
  });

  // Drive the simulation until the round's report lands (bounded wait).
  const auto deadline = network_->now() + sim::Duration::from_seconds(60.0);
  while (!done && network_->now() < deadline)
    network_->run_for(sim::Duration::from_ms(250));
  detector_->set_report_callback({});
  if (!done) throw std::runtime_error{"investigation round never completed"};

  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    const auto id = Network::id_of(i);
    snap.trust[id] = detector_->trust_store().trust(id);
  }
  return snap;
}

TrustExperiment::RoundSnapshot TrustExperiment::run_idle_round() {
  RoundSnapshot snap;
  snap.round = ++round_counter_;
  detector_->trust_store().decay_all_idle();
  network_->run_for(sim::Duration::from_seconds(2.0));
  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    const auto id = Network::id_of(i);
    snap.trust[id] = detector_->trust_store().trust(id);
  }
  return snap;
}

void TrustExperiment::cease_attack() {
  spoof_->set_active(false);
  for (auto liar : liars_) {
    // Former liars answer honestly once the collusion ends.
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      if (Network::id_of(i) == liar)
        network_->set_answer_policy(i, core::AnswerPolicy::kHonest);
    }
  }
}

std::vector<TrustExperiment::RoundSnapshot> TrustExperiment::run_attack_rounds(
    int rounds) {
  std::vector<RoundSnapshot> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

}  // namespace manet::scenario
