#include "scenario/trust_experiment.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/pipeline.hpp"
#include "faults/checkpoint.hpp"
#include "logging/audit_log.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "olsr/wire.hpp"

namespace manet::scenario {

TrustExperiment::TrustExperiment(Config config) : config_{std::move(config)} {
  if (config_.num_nodes < 4)
    throw std::invalid_argument{"need at least 4 nodes"};
  if (config_.num_liars + 2 > config_.num_nodes)
    throw std::invalid_argument{"too many liars"};
  config_.fault_plan.sort();
  phantom_ = NodeId{static_cast<std::uint32_t>(config_.num_nodes + 83)};
}

TrustExperiment::~TrustExperiment() = default;

bool TrustExperiment::is_liar(NodeId id) const {
  return std::find(liars_.begin(), liars_.end(), id) != liars_.end();
}

faults::FaultInjector::NodeOps TrustExperiment::node_ops() {
  // Each op runs in the node's engine context: a plain call sequentially
  // (already inside the injector's event), a lane binding under psim (the
  // step-mode injector executes at a quiescent barrier, and start() draws
  // timer jitter from the node's own stream).
  faults::FaultInjector::NodeOps ops;
  ops.crash = [this](NodeId id) {
    const std::size_t i = id.value();
    network_->run_as(i, [&] { network_->agent(i).stop(); });
  };
  ops.restart = [this](NodeId id) {
    const std::size_t i = id.value();
    network_->run_as(i, [&] { network_->agent(i).start(); });
  };
  ops.restart_amnesia = [this](NodeId id) {
    const std::size_t i = id.value();
    network_->run_as(i, [&] {
      auto& agent = network_->agent(i);
      agent.reset_tables();
      agent.start();
    });
  };
  return ops;
}

void TrustExperiment::build_network() {
  if (config_.checkpointable && config_.engine != sim::EngineKind::kSequential)
    throw std::invalid_argument{
        "checkpointable runs require the sequential engine"};

  const bool grayhole = config_.attack == AttackKind::kGrayhole;

  Network::Config nc;
  nc.seed = config_.seed;
  nc.radio.range_m = 250.0;
  nc.radio.loss_probability = config_.radio_loss;
  if (grayhole) {
    // Multi-hop grid (spacing 150 m, range 250 m: 8-adjacency): drops must
    // matter, and in a full mesh nobody selects MPRs — §9.3 then emits no
    // TCs at all and a grayhole is invisible. The attacker's WILL_ALWAYS
    // makes it an MPR of every neighbor (§8.3.1 step 1), obliging it to
    // re-forward every fresh flood — exactly what the audit checks.
    nc.positions = net::grid_layout(config_.num_nodes, 150.0);
    auto attacker_config = nc.agent;
    attacker_config.willingness = olsr::Willingness::kAlways;
    nc.agent_overrides[1] = attacker_config;
    auto investigator_config = nc.agent;
    investigator_config.log_fwd_echo = true;
    nc.agent_overrides[0] = investigator_config;
  } else {
    // A compact cluster: every node within radio range of every other, so
    // all n-2 bystanders are 1-hop neighbors of the attacker (the S1..Sm of
    // the paper) and answer its investigations first-hand.
    nc.positions = net::grid_layout(config_.num_nodes, 50.0);
  }
  nc.investigation = config_.investigation;
  nc.engine = config_.engine;
  nc.engine_threads = config_.engine_threads;
  nc.shards = config_.shards;
  network_ = std::make_unique<Network>(nc);

  if (grayhole) {
    // Attacker (node 1) drops the floods its WILL_ALWAYS advertisement
    // attracted. Its RNG stream is derived from the seed, independent of
    // the network's.
    auto drop = std::make_unique<attacks::DropAttack>(
        sim::Rng{config_.seed ^ 0x6D40BEEFULL}, config_.drop_fraction);
    drop_ = drop.get();
    network_->set_hooks(1, std::move(drop));
  } else {
    // Attacker (node 1) advertises the phantom / forged link.
    std::set<NodeId> targets{phantom_};
    auto spoof = std::make_unique<attacks::LinkSpoofingAttack>(config_.mode,
                                                               targets);
    spoof_ = spoof.get();
    network_->set_hooks(1, std::move(spoof));
  }

  // Choose the liars among the bystanders (nodes 2..n-1), deterministically
  // from the seed.
  sim::Rng picker{config_.seed ^ 0xC01DBEEFULL};
  std::vector<std::size_t> bystanders;
  for (std::size_t i = 2; i < config_.num_nodes; ++i) bystanders.push_back(i);
  picker.shuffle(bystanders);
  for (std::size_t k = 0; k < bystanders.size(); ++k) {
    const auto id = Network::id_of(bystanders[k]);
    if (k < config_.num_liars) {
      liars_.push_back(id);
      network_->set_answer_policy(bystanders[k], core::AnswerPolicy::kLiar);
    } else {
      honest_.push_back(id);
    }
  }

  // The investigator (node 0) runs the detector. Faulted runs get the
  // liveness gate and unresponsive decay; pristine runs keep the exact
  // golden-trace behavior.
  core::DetectorConfig dc;
  dc.trust_params = config_.trust_params;
  dc.decision = config_.decision;
  dc.investigation = config_.investigation;
  if (faulted()) {
    dc.liveness_window = config_.liveness_window;
    dc.decay_unresponsive = true;
  }
  if (grayhole) dc.forwarding_audit = true;
  detector_ = &network_->add_detector(0, dc);

  // Random initial trust (the paper: "Initially, we randomly set the trust
  // that is assigned to each node").
  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    detector_->trust_store().set_trust(
        Network::id_of(i),
        picker.uniform_real(config_.initial_trust_min,
                            config_.initial_trust_max));
  }

  if (config_.record_audit) {
    // Header first (pipeline config + the just-assigned initial trust),
    // then the LogStore writer mode and the pipeline recorder emit frames
    // for the rest of the run. Attached before start_all, so the stream
    // holds every line the detector will ever see.
    audit_writer_ = std::make_unique<logging::AuditWriter>();
    core::AuditHeader header;
    header.config = core::pipeline_config(investigator(), dc);
    header.trust_rows = detector_->trust_store().trust_rows();
    header.interaction_rows = detector_->trust_store().interaction_rows();
    core::write_audit_header(*audit_writer_, header);
    network_->agent(0).log().set_audit_writer(audit_writer_.get());
    detector_->pipeline().set_recorder(audit_writer_.get());
  }

  if (config_.checkpointable) {
    network_->medium().set_track_in_flight(true);
    for (std::size_t i = 0; i < config_.num_nodes; ++i)
      network_->agent(i).set_track_pending_forwards(true);
  }

  if (faulted()) {
    injector_ = std::make_unique<faults::FaultInjector>(
        network_->sim(), network_->medium(), config_.fault_plan, node_ops());
    invariants_ = std::make_unique<faults::InvariantChecker>(
        network_->medium(), *injector_);
  }
}

void TrustExperiment::drive(sim::Duration d) {
  if (injector_ && network_->sharded() != nullptr) {
    // Step mode: fault events apply at the 250 ms window barriers, where
    // every worker lane is quiescent — thread-count independent.
    const auto slice = sim::Duration::from_ms(250);
    auto remaining = d;
    while (remaining > sim::Duration{}) {
      const auto step = remaining < slice ? remaining : slice;
      network_->run_for(step);
      injector_->run_until(network_->now());
      remaining = remaining - step;
    }
  } else {
    network_->run_for(d);
  }
}

void TrustExperiment::setup() {
  build_network();
  network_->start_all();
  // Sequential runs replay the plan through the event queue at exact
  // times; sharded runs step it from drive() instead.
  if (injector_ && network_->sharded() == nullptr) injector_->arm();
  // Let OLSR converge: links become symmetric after two HELLO exchanges;
  // give the cluster a comfortable margin.
  const auto begin = network_->now();
  drive(sim::Duration::from_seconds(15.0));
  obs::span(obs::SpanName::kSetupConverge, begin, network_->now());
}

core::DetectionReport TrustExperiment::run_investigation(
    NodeId suspect, NodeId subject, const std::vector<NodeId>& verifiers) {
  core::DetectionReport report;
  bool done = false;
  detector_->set_report_callback([&](const core::DetectionReport& r) {
    report = r;
    done = true;
  });
  // The kick draws and schedules in the investigator's context — under the
  // sharded engine that must happen on node 0's lane and stream.
  network_->run_as(0, [&] {
    detector_->investigate_claim(suspect, subject, /*claimed_up=*/true,
                                 {core::EvidenceTag::kE1MprReplaced},
                                 verifiers);
  });

  // Drive the simulation until the round's report lands (bounded wait).
  const auto deadline = network_->now() + sim::Duration::from_seconds(60.0);
  while (!done && network_->now() < deadline)
    drive(sim::Duration::from_ms(250));
  detector_->set_report_callback({});
  if (!done) throw std::runtime_error{"investigation round never completed"};
  return report;
}

TrustExperiment::RoundSnapshot TrustExperiment::run_round() {
  if (config_.attack == AttackKind::kGrayhole) return run_grayhole_round();

  RoundSnapshot snap;
  snap.round = ++round_counter_;
  const auto round_begin = network_->now();

  // Verifiers: every bystander (the attacker's 1-hop neighbors, §IV-B).
  std::vector<NodeId> verifiers;
  verifiers.insert(verifiers.end(), honest_.begin(), honest_.end());
  verifiers.insert(verifiers.end(), liars_.begin(), liars_.end());

  const auto report = run_investigation(attacker(), phantom_, verifiers);
  snap.detect = report.detect;
  snap.verdict = report.verdict;
  snap.margin = report.interval.margin;
  snap.at = network_->now();
  if (invariants_) invariants_->check_conviction(network_->now(), report);

  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    const auto id = Network::id_of(i);
    snap.trust[id] = detector_->trust_store().trust(id);
  }
  obs::span(obs::SpanName::kRound, round_begin, network_->now(),
            static_cast<std::uint64_t>(snap.round));
  return snap;
}

TrustExperiment::RoundSnapshot TrustExperiment::run_grayhole_round() {
  RoundSnapshot snap;
  snap.round = ++round_counter_;
  const auto round_begin = network_->now();

  // Detection is scan-driven, not claim-driven: pad to the round's 5 s
  // slot so third-party floods accumulate (and the attacker drops its
  // share), then run one scan over the investigator's log growth.
  const auto slot_end = sim::Time::from_seconds(
      15.0 + 5.0 * static_cast<double>(round_counter_));
  if (network_->now() < slot_end) drive(slot_end - network_->now());

  core::DetectionReport attacker_report;
  bool have_attacker_report = false;
  detector_->set_report_callback([&](const core::DetectionReport& r) {
    if (r.suspect == attacker()) {
      attacker_report = r;
      have_attacker_report = true;
    } else if (r.verdict == trust::Verdict::kIntruder) {
      // Any conviction of a bystander is a false conviction — the audit's
      // WILL_ALWAYS scoping is supposed to make these impossible.
      ++false_convictions_;
    }
    if (invariants_) invariants_->check_conviction(network_->now(), r);
  });
  std::size_t launched = 0;
  const auto audits_before = detector_->pipeline().forward_audits().size();
  network_->run_as(0, [&] { launched = detector_->scan_once(); });

  // Drive until every launched investigation lands (bounded wait).
  const auto outstanding = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < config_.num_nodes; ++i)
      n += network_->investigations(i).outstanding();
    return n;
  };
  const auto deadline = network_->now() + sim::Duration::from_seconds(60.0);
  while (outstanding() != 0 && network_->now() < deadline)
    drive(sim::Duration::from_ms(250));
  detector_->set_report_callback({});
  if (outstanding() != 0)
    throw std::runtime_error{"grayhole round investigations never completed"};

  if (have_attacker_report) {
    snap.detect = attacker_report.detect;
    snap.verdict = attacker_report.verdict;
    snap.margin = attacker_report.interval.margin;
  }
  snap.at = network_->now();
  snap.investigations = launched;
  // Delta, not deque size: the forward-audit ring (like the report ring)
  // is skipped by the checkpoint surface, so per-round telemetry must not
  // read its absolute length.
  snap.audits = detector_->pipeline().forward_audits().size() - audits_before;
  snap.dropped_control = drop_ ? drop_->dropped_control() : 0;
  snap.false_convictions = false_convictions_;
  snap.suppressed = detector_->degradation().suppressed_convictions;
  snap.converged = network_->converged();
  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    const auto id = Network::id_of(i);
    snap.trust[id] = detector_->trust_store().trust(id);
  }
  obs::span(obs::SpanName::kRound, round_begin, network_->now(),
            static_cast<std::uint64_t>(snap.round));
  return snap;
}

TrustExperiment::RoundSnapshot TrustExperiment::run_churn_round() {
  RoundSnapshot snap = run_round();

  if (injector_) {
    // Churn rounds run on a fixed 5 s cadence: the investigation itself is
    // sub-second, so pad each round with idle simulation until its slot
    // ends. The padding is what gives fault events room to land between
    // investigations (FaultPlan::chaos sizes its window to this cadence)
    // and gives the OLSR plane time to react before the probe below.
    const auto slot_end = sim::Time::from_seconds(
        15.0 + 5.0 * static_cast<double>(round_counter_));
    if (network_->now() < slot_end) drive(slot_end - network_->now());

    // False-conviction probe: the lowest-id down bystander is a crashed,
    // honest node whose links have gone stale — exactly what a naive
    // detector convicts. Its "claim" of a live link to the investigator is
    // investigated like any spoofing suspicion; verifiers whose tables
    // have expired the links answer against it.
    NodeId probe{};
    for (const auto& [id, since] : injector_->down_nodes()) {
      if (id == investigator() || id == attacker()) continue;
      probe = id;
      break;
    }
    if (probe.valid()) {
      std::vector<NodeId> verifiers;
      for (const auto id : honest_)
        if (id != probe) verifiers.push_back(id);
      for (const auto id : liars_)
        if (id != probe) verifiers.push_back(id);
      const auto report = run_investigation(probe, investigator(), verifiers);
      if (report.verdict == trust::Verdict::kIntruder) ++false_convictions_;
      invariants_->check_conviction(network_->now(), report);
    }

    const auto now = network_->now();
    invariants_->check_trust_bounds(now, investigator(),
                                    detector_->trust_store());
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      const auto id = Network::id_of(i);
      if (network_->medium().is_up(id))
        invariants_->check_routing(now, id, network_->agent(i).routes());
    }

    // The probe may have moved trust values; re-snapshot after it.
    for (std::size_t i = 1; i < config_.num_nodes; ++i) {
      const auto id = Network::id_of(i);
      snap.trust[id] = detector_->trust_store().trust(id);
    }
  }

  snap.down = injector_ ? injector_->down_count() : 0;
  snap.suppressed = detector_->degradation().suppressed_convictions;
  snap.false_convictions = false_convictions_;
  snap.converged = network_->converged();
  snap.at = network_->now();
  return snap;
}

TrustExperiment::RoundSnapshot TrustExperiment::run_idle_round() {
  RoundSnapshot snap;
  snap.round = ++round_counter_;
  const auto round_begin = network_->now();
  // Through the pipeline, not the trust store directly: the decay is an
  // audit-stream event (kDecay frame), so a recorded run replays it.
  detector_->pipeline().consume_decay(network_->now());
  drive(sim::Duration::from_seconds(2.0));
  snap.at = network_->now();
  obs::span(obs::SpanName::kIdleRound, round_begin, network_->now(),
            static_cast<std::uint64_t>(snap.round));
  for (std::size_t i = 1; i < config_.num_nodes; ++i) {
    const auto id = Network::id_of(i);
    snap.trust[id] = detector_->trust_store().trust(id);
  }
  return snap;
}

void TrustExperiment::cease_attack() {
  if (spoof_) spoof_->set_active(false);
  if (drop_) drop_->set_active(false);
  for (auto liar : liars_) {
    // Former liars answer honestly once the collusion ends.
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      if (Network::id_of(i) == liar)
        network_->set_answer_policy(i, core::AnswerPolicy::kHonest);
    }
  }
}

std::vector<TrustExperiment::RoundSnapshot> TrustExperiment::run_attack_rounds(
    int rounds) {
  std::vector<RoundSnapshot> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

// ----------------------------------------------------------- checkpointing

std::vector<std::uint8_t> TrustExperiment::save_checkpoint() {
  if (!config_.checkpointable)
    throw std::logic_error{"save_checkpoint requires checkpointable mode"};
  if (network_ == nullptr || network_->sharded() != nullptr)
    throw std::logic_error{"save_checkpoint requires the sequential engine"};
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    if (network_->investigations(i).outstanding() != 0)
      throw std::logic_error{
          "save_checkpoint at a round boundary only (outstanding "
          "investigations)"};
  }

  obs::hit(obs::Hot::kCheckpointSaves);
  obs::instant(obs::SpanName::kCheckpointSave, network_->now());
  faults::CheckpointWriter w;
  w.u32(faults::kCheckpointMagic);
  w.u32(faults::kCheckpointVersion);
  w.u32(static_cast<std::uint32_t>(config_.num_nodes));
  w.u64(config_.seed);
  w.i64(round_counter_);
  w.u64(false_convictions_);
  w.time(network_->now());
  faults::encode_rng(w, network_->sim().rng().state());
  faults::encode_medium(w, network_->medium());
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    faults::encode_agent(w, network_->agent(i));
    faults::encode_investigations(w, network_->investigations(i));
  }
  faults::encode_detector(w, *detector_);
  // Per-attack-kind payload (checkpoint v2): the kind byte pins the layout
  // so a config/bytes mismatch is a clean error, not a misparse.
  w.u8(static_cast<std::uint8_t>(config_.attack));
  if (drop_) {
    w.boolean(drop_->active());
    faults::encode_rng(w, drop_->rng_state());
    w.u64(drop_->dropped_control());
    w.u64(drop_->dropped_data());
    w.u32(drop_->duty_position());
  } else {
    w.boolean(spoof_->active());
    w.u64(spoof_->forged_count());
  }
  w.boolean(injector_ != nullptr);
  if (injector_) {
    w.u64(injector_->cursor());
    const auto down = injector_->down_nodes();
    w.count(down.size());
    for (const auto& [id, since] : down) {
      w.node(id);
      w.time(since);
    }
    w.time(injector_->last_disruption());
    w.time(injector_->last_heal());
    w.boolean(injector_->armed());
    w.time(injector_->pending_at());
    w.u64(injector_->pending_seq());
  }
  return w.take();
}

std::unique_ptr<TrustExperiment> TrustExperiment::restore_checkpoint(
    Config config, const std::vector<std::uint8_t>& bytes) {
  auto exp = std::make_unique<TrustExperiment>(std::move(config));
  exp->apply_restored(bytes);
  return exp;
}

std::vector<std::uint8_t> TrustExperiment::audit_log() const {
  return audit_writer_ ? audit_writer_->buffer()
                       : std::vector<std::uint8_t>{};
}

void TrustExperiment::apply_restored(const std::vector<std::uint8_t>& bytes) {
  if (!config_.checkpointable)
    throw std::invalid_argument{"restore requires a checkpointable config"};
  if (config_.record_audit)
    throw std::invalid_argument{
        "record_audit cannot resume from a checkpoint: the recorded stream "
        "would have no beginning"};
  // Rebuild the object graph exactly as setup() does — no timers armed, no
  // draws from the network's RNG — then overwrite all state and re-arm the
  // pending events.
  build_network();

  faults::CheckpointReader r{bytes};
  if (r.u32() != faults::kCheckpointMagic)
    throw faults::CheckpointError{"bad checkpoint magic"};
  if (const auto v = r.u32(); v != faults::kCheckpointVersion)
    throw faults::CheckpointError{"unsupported checkpoint version " +
                                  std::to_string(v)};
  if (r.u32() != config_.num_nodes)
    throw faults::CheckpointError{"checkpoint node count mismatch"};
  if (r.u64() != config_.seed)
    throw faults::CheckpointError{"checkpoint seed mismatch"};
  round_counter_ = static_cast<int>(r.i64());
  false_convictions_ = r.u64();
  const sim::Time now = r.time();

  auto& sim = network_->sim();
  sim.restore_now(now);
  sim.rng().set_state(faults::decode_rng(r));

  // Pending-event re-arm protocol: collect everything that was in the
  // queue at save time, sort by (time, original seq), arm in that order.
  // Fresh consecutive seqs then preserve every original tie-break.
  struct ResumeItem {
    sim::Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<ResumeItem> items;

  const faults::MediumImage medium_img =
      faults::decode_medium(r, network_->medium());
  for (const auto& f : medium_img.flights)
    items.push_back({f.arrival, f.seq,
                     [this, f] { network_->medium().restore_in_flight(f); }});

  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    auto& agent = network_->agent(i);
    const faults::AgentImage img = faults::decode_agent(r, agent);
    if (img.running) agent.resume_running();
    const auto arm_timer = [&items](sim::PeriodicTimer& t,
                                    const faults::TimerImage& ti) {
      if (!ti.running) return;
      items.push_back(
          {ti.next_fire, ti.seq, [&t, at = ti.next_fire] { t.resume_at(at); }});
    };
    arm_timer(agent.hello_timer(), img.hello);
    arm_timer(agent.tc_timer(), img.tc);
    arm_timer(agent.mid_timer(), img.mid);
    arm_timer(agent.housekeeping_timer(), img.housekeeping);
    for (const auto& fwd : img.forwards) {
      auto packet = olsr::parse_packet(fwd.message);
      if (packet.messages.size() != 1)
        throw faults::CheckpointError{"corrupt pending-forward message"};
      items.push_back({fwd.at, fwd.seq,
                       [&agent, msg = std::move(packet.messages.front()),
                        at = fwd.at] { agent.restore_pending_forward(msg, at); }});
    }
    faults::decode_investigations(r, network_->investigations(i));
  }

  faults::decode_detector(r, *detector_);
  if (r.u8() != static_cast<std::uint8_t>(config_.attack))
    throw faults::CheckpointError{"checkpoint attack kind mismatch"};
  if (drop_) {
    const bool active = r.boolean();
    const auto rng = faults::decode_rng(r);
    const auto dropped_control = r.u64();
    const auto dropped_data = r.u64();
    const auto duty_pos = r.u32();
    drop_->restore(rng, active, dropped_control, dropped_data, duty_pos);
  } else {
    spoof_->set_active(r.boolean());
    spoof_->restore_forged(r.u64());
  }

  const bool has_injector = r.boolean();
  if (has_injector != (injector_ != nullptr))
    throw faults::CheckpointError{"fault plan presence mismatch"};
  if (injector_) {
    const auto cursor = static_cast<std::size_t>(r.u64());
    const std::size_t ndown = r.count();
    std::vector<std::pair<NodeId, sim::Time>> down;
    down.reserve(ndown);
    for (std::size_t k = 0; k < ndown; ++k) {
      const auto id = r.node();
      const auto since = r.time();
      down.emplace_back(id, since);
    }
    const auto last_disruption = r.time();
    const auto last_heal = r.time();
    injector_->restore(cursor, std::move(down), last_disruption, last_heal);
    const bool armed = r.boolean();
    const auto at = r.time();
    const auto seq = r.u64();
    if (armed) items.push_back({at, seq, [this] { injector_->arm(); }});
  }
  if (!r.at_end())
    throw faults::CheckpointError{"trailing bytes after checkpoint"};

  std::stable_sort(items.begin(), items.end(),
                   [](const ResumeItem& a, const ResumeItem& b) {
                     return a.at != b.at ? a.at < b.at : a.seq < b.seq;
                   });
  for (const auto& item : items) item.fn();
  obs::hit(obs::Hot::kCheckpointRestores);
  obs::instant(obs::SpanName::kCheckpointRestore, now);
}

}  // namespace manet::scenario
