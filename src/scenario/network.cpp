#include "scenario/network.hpp"

#include <stdexcept>

namespace manet::scenario {

sim::Engine& Network::engine_for(std::size_t index) {
  if (psim_) return psim_->shard_engine(id_of(index));
  return sim_;
}

Network::Network(Config config)
    : sim_{config.seed},
      medium_{sim_, config.radio},
      config_{std::move(config)},
      mobility_{sim_, medium_} {
  if (config_.positions.empty())
    throw std::invalid_argument{"Network needs at least one position"};

  if (config_.engine == sim::EngineKind::kSharded) {
    // v1 scope of the sharded engine: the collision model mutates receiver
    // state at transmit time (Medium::set_shard_router also rejects it) and
    // a zero base delay leaves no conservative lookahead.
    psim::Engine::Config pc;
    pc.seed = config_.seed;
    pc.threads = config_.engine_threads;
    pc.shards = config_.shards;
    pc.lookahead = config_.radio.base_delay;
    pc.cell_size = config_.radio.range_m;
    psim_ = std::make_unique<psim::Engine>(pc, config_.positions);
    medium_.set_shard_router(psim_.get());
  }

  const auto n = config_.positions.size();
  hooks_.resize(n);
  detectors_.resize(n);
  recommendations_.resize(n);
  agents_.reserve(n);
  investigations_.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = id_of(i);
    medium_.attach(id, config_.positions[i]);
    const auto override_it = config_.agent_overrides.find(i);
    const auto& agent_config = override_it != config_.agent_overrides.end()
                                   ? override_it->second
                                   : config_.agent;
    agents_.push_back(std::make_unique<olsr::Agent>(engine_for(i), medium_,
                                                    id, agent_config));
    investigations_.push_back(std::make_unique<core::InvestigationManager>(
        engine_for(i), *agents_.back(), config_.investigation));
  }
  built_ = true;
}

Network::~Network() { stop_all(); }

void Network::set_hooks(std::size_t index,
                        std::unique_ptr<olsr::AgentHooks> hooks) {
  hooks_.at(index) = std::move(hooks);
  agents_.at(index)->set_hooks(hooks_.at(index).get());
}

core::Detector& Network::add_detector(std::size_t index,
                                      core::DetectorConfig config) {
  auto& slot = detectors_.at(index);
  if (slot) throw std::logic_error{"node already has a detector"};
  slot = std::make_unique<core::Detector>(
      engine_for(index), *agents_.at(index), *investigations_.at(index),
      config);
  return *slot;
}

core::RecommendationExchange& Network::add_recommendations(
    std::size_t index) {
  auto& slot = recommendations_.at(index);
  if (slot) return *slot;
  auto* det = detectors_.at(index).get();
  if (det == nullptr)
    throw std::logic_error{"add_recommendations requires a detector"};
  slot = std::make_unique<core::RecommendationExchange>(
      engine_for(index), *agents_.at(index), det->trust_store());
  investigations_.at(index)->set_fallback(
      [ex = slot.get()](const olsr::DataMessage& m) { return ex->on_data(m); });
  return *slot;
}

void Network::set_mobility(std::size_t index,
                           std::unique_ptr<net::MobilityModel> model) {
  if (psim_)
    throw std::invalid_argument{
        "sharded engine does not support mobility yet: position updates "
        "mid-window would race across shard lanes"};
  mobility_.set_model(id_of(index), std::move(model));
  mobility_used_ = true;
}

void Network::start_all() {
  // Starting an agent arms its jittered timers (RNG draws): under the
  // sharded engine that must happen in the node's own stream context.
  for (std::size_t i = 0; i < agents_.size(); ++i)
    run_as(i, [&] { agents_[i]->start(); });
  if (mobility_used_) mobility_.start();
}

void Network::stop_all() {
  if (!built_) return;
  for (auto& d : detectors_)
    if (d) d->stop();
  for (auto& agent : agents_) agent->stop();
  mobility_.stop();
}

bool Network::converged() const {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const auto a = id_of(i);
    if (!medium_.is_up(a)) continue;
    for (std::size_t j = 0; j < agents_.size(); ++j) {
      if (i == j) continue;
      const auto b = id_of(j);
      // Down or partitioned-away peers are unreachable by construction, so
      // demanding a route to them would make convergence unobservable for
      // the whole churn window; the up-aware criterion asks only for full
      // routes among the nodes that *can* talk.
      if (!medium_.is_up(b) || medium_.partition(a) != medium_.partition(b))
        continue;
      if (!agents_[i]->routes().route_to(b)) return false;
    }
  }
  return true;
}

}  // namespace manet::scenario
