#pragma once

#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "core/recommendation.hpp"
#include "net/medium.hpp"
#include "net/mobility.hpp"
#include "olsr/agent.hpp"

namespace manet::scenario {

using net::NodeId;

/// A complete simulated MANET: the simulator, the shared medium, one OLSR
/// agent per node (optionally wrapped by attacker hooks), one investigation
/// endpoint per node, and detectors where requested. Owns everything;
/// examples, tests and benches build on this.
class Network {
 public:
  struct Config {
    std::uint64_t seed = 1;
    net::RadioConfig radio;
    std::vector<net::Position> positions;
    olsr::Agent::Config agent;
    core::InvestigationConfig investigation;
  };

  explicit Network(Config config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t size() const { return agents_.size(); }
  static NodeId id_of(std::size_t index) {
    return NodeId{static_cast<std::uint32_t>(index)};
  }

  sim::Simulator& sim() { return sim_; }
  net::Medium& medium() { return medium_; }
  olsr::Agent& agent(std::size_t index) { return *agents_.at(index); }
  core::InvestigationManager& investigations(std::size_t index) {
    return *investigations_.at(index);
  }

  /// Installs attacker hooks for a node. Must be called before start();
  /// the caller keeps ownership of concrete attack objects when it needs to
  /// toggle them later, or transfers it here.
  void set_hooks(std::size_t index, std::unique_ptr<olsr::AgentHooks> hooks);
  olsr::AgentHooks* hooks(std::size_t index) { return hooks_.at(index).get(); }

  /// Sets how the node answers investigations (liars, silent nodes).
  void set_answer_policy(std::size_t index, core::AnswerPolicy policy) {
    investigations_.at(index)->set_policy(policy);
  }

  /// Attaches a detector to a node (the investigator side of the IDS).
  core::Detector& add_detector(std::size_t index,
                               core::DetectorConfig config = {});
  core::Detector* detector(std::size_t index) {
    return detectors_.at(index).get();
  }

  /// Attaches a recommendation-exchange endpoint (Eq. 6-7 trust
  /// propagation) to a node that already has a detector; serves and merges
  /// recommendations against the detector's trust store.
  core::RecommendationExchange& add_recommendations(std::size_t index);

  /// Assigns a mobility model to a node (random waypoint etc.).
  void set_mobility(std::size_t index,
                    std::unique_ptr<net::MobilityModel> model);

  /// Starts all agents (and mobility if any models were installed).
  void start_all();
  void stop_all();

  /// Convenience: runs the simulation for `d` of simulated time.
  void run_for(sim::Duration d) { sim_.run_until(sim_.now() + d); }

  /// True when every pair of attached nodes has a route to each other in
  /// both routing tables (control-plane convergence).
  bool converged() const;

 private:
  sim::Simulator sim_;
  net::Medium medium_;
  Config config_;
  std::vector<std::unique_ptr<olsr::AgentHooks>> hooks_;
  std::vector<std::unique_ptr<olsr::Agent>> agents_;
  std::vector<std::unique_ptr<core::InvestigationManager>> investigations_;
  std::vector<std::unique_ptr<core::Detector>> detectors_;
  std::vector<std::unique_ptr<core::RecommendationExchange>> recommendations_;
  net::MobilityManager mobility_;
  bool mobility_used_ = false;
  bool built_ = false;
};

}  // namespace manet::scenario
