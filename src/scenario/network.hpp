#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "core/recommendation.hpp"
#include "net/medium.hpp"
#include "net/mobility.hpp"
#include "olsr/agent.hpp"
#include "psim/engine.hpp"

namespace manet::scenario {

using net::NodeId;

/// A complete simulated MANET: the simulator, the shared medium, one OLSR
/// agent per node (optionally wrapped by attacker hooks), one investigation
/// endpoint per node, and detectors where requested. Owns everything;
/// examples, tests and benches build on this.
class Network {
 public:
  struct Config {
    std::uint64_t seed = 1;
    net::RadioConfig radio;
    std::vector<net::Position> positions;
    olsr::Agent::Config agent;
    /// Per-node overrides of `agent` (keyed by node index): grayhole
    /// scenarios give the attacker WILL_ALWAYS and the investigator
    /// log_fwd_echo without perturbing the rest of the fleet.
    std::map<std::size_t, olsr::Agent::Config> agent_overrides;
    core::InvestigationConfig investigation;
    /// Discrete-event engine driving the network: the sequential Simulator
    /// (default; byte-stable legacy traces) or the psim sharded parallel
    /// engine (its own determinism contract — see psim::Engine). The
    /// sharded engine rejects mobility and the collision model (v1 scope).
    sim::EngineKind engine = sim::EngineKind::kSequential;
    /// Sharded-engine worker threads; 0 = hardware concurrency.
    unsigned engine_threads = 0;
    /// Sharded-engine spatial shards; 0 = auto from the node count. Any
    /// value produces identical results.
    unsigned shards = 0;
  };

  explicit Network(Config config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t size() const { return agents_.size(); }
  static NodeId id_of(std::size_t index) {
    return NodeId{static_cast<std::uint32_t>(index)};
  }

  /// The sequential simulator — only meaningful under the sequential
  /// engine; scenario code that must work on both engines uses now(),
  /// run_for() and run_as() instead.
  sim::Simulator& sim() { return sim_; }
  /// The sharded engine, or nullptr under the sequential one.
  psim::Engine* sharded() { return psim_.get(); }
  /// Current virtual time, whichever engine drives the network.
  sim::Time now() const { return psim_ ? psim_->now() : sim_.now(); }
  net::Medium& medium() { return medium_; }
  olsr::Agent& agent(std::size_t index) { return *agents_.at(index); }
  core::InvestigationManager& investigations(std::size_t index) {
    return *investigations_.at(index);
  }

  /// Installs attacker hooks for a node. Must be called before start();
  /// the caller keeps ownership of concrete attack objects when it needs to
  /// toggle them later, or transfers it here.
  void set_hooks(std::size_t index, std::unique_ptr<olsr::AgentHooks> hooks);
  olsr::AgentHooks* hooks(std::size_t index) { return hooks_.at(index).get(); }

  /// Sets how the node answers investigations (liars, silent nodes).
  void set_answer_policy(std::size_t index, core::AnswerPolicy policy) {
    investigations_.at(index)->set_policy(policy);
  }

  /// Attaches a detector to a node (the investigator side of the IDS).
  core::Detector& add_detector(std::size_t index,
                               core::DetectorConfig config = {});
  core::Detector* detector(std::size_t index) {
    return detectors_.at(index).get();
  }

  /// Attaches a recommendation-exchange endpoint (Eq. 6-7 trust
  /// propagation) to a node that already has a detector; serves and merges
  /// recommendations against the detector's trust store.
  core::RecommendationExchange& add_recommendations(std::size_t index);

  /// Assigns a mobility model to a node (random waypoint etc.).
  void set_mobility(std::size_t index,
                    std::unique_ptr<net::MobilityModel> model);

  /// Starts all agents (and mobility if any models were installed).
  void start_all();
  void stop_all();

  /// Convenience: runs the simulation for `d` of simulated time.
  void run_for(sim::Duration d) {
    if (psim_) {
      psim_->run_until(psim_->now() + d);
    } else {
      sim_.run_until(sim_.now() + d);
    }
  }

  /// Executes `fn` in node `index`'s context. A plain call sequentially;
  /// under the sharded engine it binds the node's shard lane and RNG
  /// stream, which any out-of-event interaction that draws or schedules
  /// (detector kicks, manual agent pokes) must run inside.
  void run_as(std::size_t index, const std::function<void()>& fn) {
    if (psim_) {
      psim_->run_as(id_of(index), fn);
    } else {
      fn();
    }
  }

  /// True when every pair of attached nodes has a route to each other in
  /// both routing tables (control-plane convergence). Up-aware: pairs where
  /// either host is down, or that a netsplit separates, are exempt — the
  /// criterion measures convergence among the nodes that can communicate,
  /// which is what the fault-injection re-convergence metric needs.
  bool converged() const;

 private:
  sim::Engine& engine_for(std::size_t index);

  sim::Simulator sim_;
  /// Sharded engine (engine == kSharded); declared before the medium and
  /// the agents so every lane outlives its schedulers.
  std::unique_ptr<psim::Engine> psim_;
  net::Medium medium_;
  Config config_;
  std::vector<std::unique_ptr<olsr::AgentHooks>> hooks_;
  std::vector<std::unique_ptr<olsr::Agent>> agents_;
  std::vector<std::unique_ptr<core::InvestigationManager>> investigations_;
  std::vector<std::unique_ptr<core::Detector>> detectors_;
  std::vector<std::unique_ptr<core::RecommendationExchange>> recommendations_;
  net::MobilityManager mobility_;
  bool mobility_used_ = false;
  bool built_ = false;
};

}  // namespace manet::scenario
