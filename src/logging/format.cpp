#include "logging/format.hpp"

#include <charconv>
#include <stdexcept>

namespace manet::logging {
namespace {

sim::Time parse_time(std::string_view v) {
  // "12.345678s"
  if (v.empty() || v.back() != 's')
    throw std::invalid_argument{"bad time: " + std::string{v}};
  v.remove_suffix(1);
  const auto dot = v.find('.');
  if (dot == std::string_view::npos || v.size() - dot - 1 != 6)
    throw std::invalid_argument{"bad time: " + std::string{v}};
  std::int64_t secs = 0;
  std::int64_t micros = 0;
  const auto sec_part = v.substr(0, dot);
  const auto micro_part = v.substr(dot + 1);
  auto r1 = std::from_chars(sec_part.data(), sec_part.data() + sec_part.size(),
                            secs);
  auto r2 = std::from_chars(micro_part.data(),
                            micro_part.data() + micro_part.size(), micros);
  if (r1.ec != std::errc{} || r2.ec != std::errc{} ||
      r1.ptr != sec_part.data() + sec_part.size() ||
      r2.ptr != micro_part.data() + micro_part.size() || secs < 0 ||
      micros < 0)
    throw std::invalid_argument{"bad time: " + std::string{v}};
  return sim::Time::from_us(secs * 1'000'000 + micros);
}

}  // namespace

std::string format_record(const LogRecord& record) {
  std::string out = "t=" + record.time.to_string() +
                    " node=" + record.node.to_string() +
                    " event=" + record.event;
  for (const auto& [k, v] : record.fields) {
    out += ' ';
    out += k;
    out += '=';
    out += v.empty() ? "-" : v;
  }
  return out;
}

LogRecord parse_record(std::string_view line) {
  LogRecord rec;
  bool have_t = false, have_node = false, have_event = false;

  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    const auto end = line.find(' ', pos);
    const auto token =
        line.substr(pos, end == std::string_view::npos ? line.size() - pos
                                                       : end - pos);
    pos = end == std::string_view::npos ? line.size() : end + 1;

    const auto eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument{"bad log token: " + std::string{token}};
    const auto key = token.substr(0, eq);
    auto value = token.substr(eq + 1);
    if (value == "-") value = "";

    if (key == "t") {
      rec.time = parse_time(value);
      have_t = true;
    } else if (key == "node") {
      rec.node = net::NodeId::parse(std::string{value});
      have_node = true;
    } else if (key == "event") {
      rec.event = std::string{value};
      have_event = true;
    } else {
      rec.fields.emplace_back(std::string{key}, std::string{value});
    }
  }

  if (!have_t || !have_node || !have_event)
    throw std::invalid_argument{"log line missing t/node/event: " +
                                std::string{line}};
  return rec;
}

std::vector<LogRecord> parse_log(std::string_view text) {
  std::vector<LogRecord> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const auto line = text.substr(start, end - start);
    if (!line.empty()) out.push_back(parse_record(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace manet::logging
