#include "logging/log_store.hpp"

#include <algorithm>

#include "logging/audit_log.hpp"
#include "logging/format.hpp"

namespace manet::logging {

void LogStore::append(LogRecord record) {
  records_.push_back(std::move(record));
  ++total_appended_;
  while (records_.size() > max_records_) {
    records_.pop_front();
    ++dropped_;
  }
  if (audit_writer_) audit_writer_->line(records_.back());
  if (observer_) observer_(records_.back());
}

std::vector<LogRecord> LogStore::records_since(sim::Time since) const {
  auto it = std::lower_bound(
      records_.begin(), records_.end(), since,
      [](const LogRecord& r, sim::Time t) { return r.time < t; });
  return {it, records_.end()};
}

std::vector<LogRecord> LogStore::records_with_event(
    const std::string& event) const {
  std::vector<LogRecord> out;
  for (const auto& r : records_)
    if (r.event == event) out.push_back(r);
  return out;
}

std::string LogStore::text_since(sim::Time since) const {
  std::string out;
  for (const auto& r : records_since(since)) {
    out += format_record(r);
    out += '\n';
  }
  return out;
}

}  // namespace manet::logging
