#include "logging/audit_log.hpp"

#include <bit>

namespace manet::logging {

// ------------------------------------------------------------------- writer

void AuditWriter::le(std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void AuditWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void AuditWriter::count(std::size_t n) { u64(static_cast<std::uint64_t>(n)); }

void AuditWriter::str(std::string_view s) {
  count(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void AuditWriter::begin_frame(AuditFrame kind) {
  if (frame_size_at_ != SIZE_MAX)
    throw AuditError{"audit frame already open"};
  u8(static_cast<std::uint8_t>(kind));
  frame_size_at_ = buf_.size();
  u32(0);  // patched by end_frame
}

void AuditWriter::end_frame() {
  if (frame_size_at_ == SIZE_MAX) throw AuditError{"no audit frame open"};
  const std::size_t payload = buf_.size() - frame_size_at_ - 4;
  const auto size32 = static_cast<std::uint32_t>(payload);
  for (int i = 0; i < 4; ++i)
    buf_[frame_size_at_ + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((size32 >> (8 * i)) & 0xFF);
  frame_size_at_ = SIZE_MAX;
}

void AuditWriter::line(const LogRecord& record) {
  begin_frame(AuditFrame::kLine);
  time(record.time);
  node(record.node);
  str(record.event);
  count(record.fields.size());
  for (const auto& [key, value] : record.fields) {
    str(key);
    str(value);
  }
  end_frame();
}

// ------------------------------------------------------------------- reader

std::uint64_t AuditReader::le(int bytes) {
  if (size_ - pos_ < static_cast<std::size_t>(bytes))
    throw AuditError{"truncated audit log"};
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += static_cast<std::size_t>(bytes);
  return v;
}

std::uint8_t AuditReader::u8() { return static_cast<std::uint8_t>(le(1)); }
std::uint16_t AuditReader::u16() { return static_cast<std::uint16_t>(le(2)); }
std::uint32_t AuditReader::u32() { return static_cast<std::uint32_t>(le(4)); }
std::uint64_t AuditReader::u64() { return le(8); }

double AuditReader::f64() { return std::bit_cast<double>(u64()); }

std::size_t AuditReader::count() {
  const std::uint64_t n = u64();
  // A count cannot exceed the remaining bytes (every element is >= 1 byte):
  // rejecting early turns corrupt lengths into clean errors, not OOM.
  if (n > size_ - pos_) throw AuditError{"corrupt audit count"};
  return static_cast<std::size_t>(n);
}

std::string AuditReader::str() {
  const std::size_t n = count();
  if (size_ - pos_ < n) throw AuditError{"truncated audit string"};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

AuditReader::FrameHeader AuditReader::begin_frame() {
  FrameHeader frame;
  const auto kind = u8();
  if (kind < static_cast<std::uint8_t>(AuditFrame::kLine) ||
      kind > static_cast<std::uint8_t>(AuditFrame::kForwardAudit))
    throw AuditError{"unknown audit frame kind " + std::to_string(kind)};
  frame.kind = static_cast<AuditFrame>(kind);
  const std::uint32_t size = u32();
  if (size > size_ - pos_) throw AuditError{"truncated audit frame"};
  frame.end = pos_ + size;
  return frame;
}

void AuditReader::end_frame(const FrameHeader& frame) {
  if (pos_ != frame.end)
    throw AuditError{"audit frame payload size mismatch"};
}

LogRecord AuditReader::line() {
  LogRecord record;
  record.time = time();
  record.node = node();
  record.event = str();
  const std::size_t nfields = count();
  record.fields.reserve(nfields);
  for (std::size_t i = 0; i < nfields; ++i) {
    auto key = str();
    auto value = str();
    record.fields.emplace_back(std::move(key), std::move(value));
  }
  return record;
}

}  // namespace manet::logging
