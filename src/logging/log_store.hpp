#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "logging/record.hpp"

namespace manet::logging {

class AuditWriter;

/// Append-only audit log of one node's routing daemon, with bounded
/// retention. The IDS reads it through `text_since` + the parser — i.e.
/// through the same text round-trip a real log file would impose.
class LogStore {
 public:
  explicit LogStore(std::size_t max_records = 100'000)
      : max_records_{max_records} {}

  void append(LogRecord record);

  std::size_t size() const { return records_.size(); }
  const LogRecord& at(std::size_t i) const { return records_.at(i); }

  /// Records with time >= since (they are appended in time order).
  std::vector<LogRecord> records_since(sim::Time since) const;

  /// Records matching an event name, newest last.
  std::vector<LogRecord> records_with_event(const std::string& event) const;

  /// The formatted text of all records with time >= since — what a log
  /// analyzer would read from disk.
  std::string text_since(sim::Time since) const;

  /// Observer invoked on every append (used by tests and live detectors).
  void set_observer(std::function<void(const LogRecord&)> observer) {
    observer_ = std::move(observer);
  }

  /// Writer mode: every appended record is also emitted as a kLine frame of
  /// the binary audit-log format (logging/audit_log.hpp) — the recording
  /// half of the offline detection pipeline. The writer must outlive this
  /// store (or be detached with nullptr); retention dropping old records
  /// never rewrites frames already emitted.
  void set_audit_writer(AuditWriter* writer) { audit_writer_ = writer; }
  AuditWriter* audit_writer() const { return audit_writer_; }

  /// Absolute index of the oldest retained record: records_[i] is the
  /// (base_index() + i)-th record ever appended. Lets cursor-based readers
  /// (the detector's pipeline feed) survive retention drops.
  std::uint64_t base_index() const {
    return total_appended_ - records_.size();
  }

  std::uint64_t total_appended() const { return total_appended_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Checkpoint surface: the retained window plus the lifetime counters
  /// (capacity stays whatever this store was constructed with).
  const std::deque<LogRecord>& records() const { return records_; }
  void restore(std::deque<LogRecord> records, std::uint64_t total_appended,
               std::uint64_t dropped) {
    records_ = std::move(records);
    total_appended_ = total_appended;
    dropped_ = dropped;
  }

 private:
  std::size_t max_records_;
  std::deque<LogRecord> records_;
  std::function<void(const LogRecord&)> observer_;
  AuditWriter* audit_writer_ = nullptr;
  std::uint64_t total_appended_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace manet::logging
