#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "logging/record.hpp"

namespace manet::logging {

/// First bytes of every audit log ("MNTA" little-endian) and the format
/// version. Same compatibility rule as the checkpoint codec
/// (faults/checkpoint.hpp): a reader accepts exactly its own version —
/// the stream is a byte-exact replay input, so any frame-layout change
/// bumps the version and invalidates old files. Version 2 added the
/// kForwardAudit frame kind (forwarding-audit grayhole detection).
inline constexpr std::uint32_t kAuditMagic = 0x41544E4Du;  // "MNTA"
inline constexpr std::uint32_t kAuditVersion = 2;

/// Thrown on malformed, truncated or version-mismatched audit logs.
struct AuditError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Frame kinds of the audit stream. kLine payloads are encoded/decoded
/// here (they are plain LogRecords); kRound and kDecay payloads belong to
/// the detection layer (core/audit_event.hpp) — this layer only frames
/// them.
enum class AuditFrame : std::uint8_t {
  kLine = 1,   ///< one audit-log line of the node's routing daemon
  kRound = 2,  ///< one completed investigation round (core codec)
  kDecay = 3,  ///< one idle-slot trust decay sweep (core codec)
  /// One closed forwarding-audit window tally for an audited MPR (core
  /// codec; observability of the grayhole producer — carries no trust
  /// updates on replay).
  kForwardAudit = 4,
};

/// Little-endian binary writer backing the audit-log format; fixed-width
/// fields only, mirroring the checkpoint codec conventions. Frames are
/// length-prefixed ([u8 kind][u32 size][payload]) so a reader can validate
/// truncation per frame.
class AuditWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void time(sim::Time t) { i64(t.us()); }
  void node(net::NodeId n) { u32(n.value()); }
  void count(std::size_t n);
  void str(std::string_view s);

  /// Opens a frame: writes the kind byte and reserves the size prefix.
  /// Frames do not nest.
  void begin_frame(AuditFrame kind);
  /// Closes the open frame, patching the size prefix.
  void end_frame();

  /// One whole kLine frame (the LogStore writer mode calls this on every
  /// append).
  void line(const LogRecord& record);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void le(std::uint64_t v, int bytes);

  std::vector<std::uint8_t> buf_;
  std::size_t frame_size_at_ = SIZE_MAX;  ///< position of the open size prefix
};

/// Bounds-checked reader over an audit log held in (possibly mmapped)
/// memory; throws AuditError instead of reading past the end.
class AuditReader {
 public:
  AuditReader(const std::uint8_t* data, std::size_t size)
      : data_{data}, size_{size} {}
  explicit AuditReader(const std::vector<std::uint8_t>& data)
      : AuditReader{data.data(), data.size()} {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  sim::Time time() { return sim::Time::from_us(i64()); }
  net::NodeId node() { return net::NodeId{u32()}; }
  std::size_t count();
  std::string str();

  bool at_end() const { return pos_ == size_; }

  /// One frame header. The returned `end` is the absolute position just
  /// past the payload; a size prefix pointing past the buffer throws.
  struct FrameHeader {
    AuditFrame kind;
    std::size_t end = 0;
  };
  FrameHeader begin_frame();
  /// Validates the payload was consumed exactly (decode drift = corruption).
  void end_frame(const FrameHeader& frame);
  /// Jumps past the payload without decoding it.
  void skip_frame(const FrameHeader& frame) { pos_ = frame.end; }

  /// Decodes one kLine payload (begin_frame must have returned kLine).
  LogRecord line();

 private:
  std::uint64_t le(int bytes);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace manet::logging
