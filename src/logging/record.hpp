#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::logging {

/// One audit-log line emitted by the routing daemon. The paper's IDS is
/// log-based: it never inspects protocol state directly, only these records
/// (after a text round-trip through the formatter/parser).
///
/// Field values must not contain spaces; lists use '|' separators
/// (e.g. neigh=n1|n2|n4). Keys are lower_snake_case.
struct LogRecord {
  sim::Time time;
  net::NodeId node;   ///< the node whose daemon wrote the line
  std::string event;  ///< e.g. "hello_recv", "mpr_changed"
  std::vector<std::pair<std::string, std::string>> fields;

  LogRecord& with(std::string key, std::string value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  LogRecord& with(std::string key, net::NodeId id) {
    return with(std::move(key), id.to_string());
  }
  LogRecord& with(std::string key, std::int64_t v) {
    return with(std::move(key), std::to_string(v));
  }

  /// First value for `key`, if present.
  std::optional<std::string_view> field(std::string_view key) const;

  /// Typed accessors; throw std::invalid_argument when the field is missing
  /// or malformed (the IDS treats that as a corrupt log line).
  std::string field_or_throw(std::string_view key) const;
  net::NodeId node_field(std::string_view key) const;
  std::int64_t int_field(std::string_view key) const;
  std::vector<net::NodeId> node_list_field(std::string_view key) const;
};

/// Builds the '|'-separated list form used in record fields.
std::string join_node_list(const std::vector<net::NodeId>& ids);

/// Splits a '|'-separated list; empty string yields an empty vector.
std::vector<std::string> split_list(std::string_view value);

}  // namespace manet::logging
