#pragma once

#include <string>
#include <string_view>

#include "logging/record.hpp"

namespace manet::logging {

/// Text form of a record, one line, no trailing newline:
///   t=12.345678s node=n3 event=hello_recv from=n5 neigh=n1|n2
std::string format_record(const LogRecord& record);

/// Parses one line produced by format_record. Throws std::invalid_argument
/// on malformed input (missing t/node/event, bad tokens).
LogRecord parse_record(std::string_view line);

/// Parses a whole log (newline-separated); blank lines are skipped.
std::vector<LogRecord> parse_log(std::string_view text);

}  // namespace manet::logging
