#include "logging/record.hpp"

#include <charconv>
#include <stdexcept>

namespace manet::logging {

std::optional<std::string_view> LogRecord::field(std::string_view key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return std::string_view{v};
  return std::nullopt;
}

std::string LogRecord::field_or_throw(std::string_view key) const {
  auto v = field(key);
  if (!v)
    throw std::invalid_argument{"log record missing field: " +
                                std::string{key}};
  return std::string{*v};
}

net::NodeId LogRecord::node_field(std::string_view key) const {
  return net::NodeId::parse(field_or_throw(key));
}

std::int64_t LogRecord::int_field(std::string_view key) const {
  const std::string v = field_or_throw(key);
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size())
    throw std::invalid_argument{"bad integer field " + std::string{key} + "=" +
                                v};
  return out;
}

std::vector<net::NodeId> LogRecord::node_list_field(
    std::string_view key) const {
  const std::string v = field_or_throw(key);
  std::vector<net::NodeId> out;
  for (const auto& part : split_list(v)) out.push_back(net::NodeId::parse(part));
  return out;
}

std::string join_node_list(const std::vector<net::NodeId>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += '|';
    out += ids[i].to_string();
  }
  return out;
}

std::vector<std::string> split_list(std::string_view value) {
  std::vector<std::string> out;
  if (value.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const auto sep = value.find('|', start);
    if (sep == std::string_view::npos) {
      out.emplace_back(value.substr(start));
      return out;
    }
    out.emplace_back(value.substr(start, sep - start));
    start = sep + 1;
  }
}

}  // namespace manet::logging
