#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "olsr/agent.hpp"
#include "olsr/hooks.hpp"
#include "sim/engine.hpp"

namespace manet::attacks {

/// Out-of-band tunnel shared by two colluding wormhole endpoints (§II-B
/// "modify and forward"): one endpoint records control messages in its
/// region, the other replays them verbatim in a distant region, corrupting
/// topology views with stale/displaced information while both intruders
/// keep the original identification fields (staying invisible).
class WormholeChannel {
 public:
  explicit WormholeChannel(sim::Duration tunnel_delay)
      : tunnel_delay_{tunnel_delay} {}

  sim::Duration tunnel_delay() const { return tunnel_delay_; }

  void push(olsr::Message message) { queue_.push_back(std::move(message)); }
  bool empty() const { return queue_.empty(); }
  olsr::Message pop() {
    auto m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }
  std::size_t pending() const { return queue_.size(); }

 private:
  sim::Duration tunnel_delay_;
  std::deque<olsr::Message> queue_;
};

/// One endpoint of a wormhole. In capture mode it records received TC/HELLO
/// messages into the channel; in replay mode it re-broadcasts whatever the
/// remote endpoint captured, after the tunnel delay.
class WormholeEndpoint final : public olsr::AgentHooks {
 public:
  enum class Role { kCapture, kReplay };

  WormholeEndpoint(sim::Engine& sim, std::shared_ptr<WormholeChannel> chan,
                   Role role)
      : sim_{sim}, channel_{std::move(chan)}, role_{role} {}

  void bind(olsr::Agent& agent) { agent_ = &agent; }
  void set_active(bool active) { active_ = active; }

  void on_receive(const olsr::Message& message) override;
  void on_tick() override;

  std::uint64_t captured_count() const { return captured_; }
  std::uint64_t replayed_count() const { return replayed_; }

 private:
  sim::Engine& sim_;
  std::shared_ptr<WormholeChannel> channel_;
  Role role_;
  olsr::Agent* agent_ = nullptr;
  bool active_ = true;
  std::uint64_t captured_ = 0;
  std::uint64_t replayed_ = 0;
};

}  // namespace manet::attacks
