#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "olsr/hooks.hpp"
#include "sim/rng.hpp"

namespace manet::attacks {

/// Drop attacks (§II-B, and the Sen grayhole papers arXiv 1010.5176 /
/// 1111.0385): a blackhole drops every message it should relay, a grayhole
/// drops each with probability p — optionally only traffic from selected
/// victims, or only during the "on" phase of a duty cycle. All modes affect
/// flooded control traffic and source-routed data (starving investigations
/// of answers).
class DropAttack final : public olsr::AgentHooks {
 public:
  /// drop_probability = 1.0 is a blackhole; anything lower a grayhole.
  DropAttack(sim::Rng rng, double drop_probability,
             bool drop_control = true, bool drop_data = true)
      : rng_{rng},
        drop_probability_{drop_probability},
        drop_control_{drop_control},
        drop_data_{drop_data} {}

  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  /// Victim-targeted mode: when non-empty, only messages *originated* by a
  /// listed node (control) or *sourced* by one (data) are drop candidates —
  /// everything else is relayed faithfully, which is what makes selective
  /// grayholes hard to catch with aggregate counters alone.
  void set_victims(std::vector<net::NodeId> victims) {
    victims_ = std::move(victims);
    std::sort(victims_.begin(), victims_.end());
  }
  const std::vector<net::NodeId>& victims() const { return victims_; }

  /// On-off duty cycle, counted in relay decisions: drop-eligible for
  /// `on` decisions, then faithful for `off`, repeating. Decision-counted
  /// (not wall-clock) so the cycle is deterministic under any engine and
  /// trivially checkpointable. Zero `on` or `off` disables cycling.
  void set_duty_cycle(std::uint32_t on, std::uint32_t off) {
    duty_on_ = on;
    duty_off_ = off;
    duty_pos_ = 0;
  }

  bool should_forward(const olsr::Message& message) override;
  bool should_relay_data(const olsr::DataMessage& data) override;

  std::uint64_t dropped_control() const { return dropped_control_; }
  std::uint64_t dropped_data() const { return dropped_data_; }

  /// Checkpoint surface: RNG stream plus the mutable decision state.
  sim::Rng::State rng_state() const { return rng_.state(); }
  std::uint32_t duty_position() const { return duty_pos_; }
  void restore(sim::Rng::State rng, bool active, std::uint64_t dropped_control,
               std::uint64_t dropped_data, std::uint32_t duty_pos) {
    rng_.set_state(rng);
    active_ = active;
    dropped_control_ = dropped_control;
    dropped_data_ = dropped_data;
    duty_pos_ = duty_pos;
  }

 private:
  bool targets(net::NodeId origin) const {
    return victims_.empty() ||
           std::binary_search(victims_.begin(), victims_.end(), origin);
  }
  /// Advances the duty cycle one decision; true while in the "on" phase.
  bool duty_tick();

  sim::Rng rng_;
  double drop_probability_;
  bool drop_control_;
  bool drop_data_;
  bool active_ = true;
  std::vector<net::NodeId> victims_;  ///< sorted; empty = everyone
  std::uint32_t duty_on_ = 0;
  std::uint32_t duty_off_ = 0;
  std::uint32_t duty_pos_ = 0;  ///< position within the on+off cycle
  std::uint64_t dropped_control_ = 0;
  std::uint64_t dropped_data_ = 0;
};

}  // namespace manet::attacks
