#pragma once

#include <cstdint>

#include "olsr/hooks.hpp"
#include "sim/rng.hpp"

namespace manet::attacks {

/// Drop attacks (§II-B): a blackhole drops every message it should relay, a
/// grayhole drops each with probability p. Both affect flooded control
/// traffic and source-routed data (starving investigations of answers).
class DropAttack final : public olsr::AgentHooks {
 public:
  /// drop_probability = 1.0 is a blackhole; anything lower a grayhole.
  DropAttack(sim::Rng rng, double drop_probability,
             bool drop_control = true, bool drop_data = true)
      : rng_{rng},
        drop_probability_{drop_probability},
        drop_control_{drop_control},
        drop_data_{drop_data} {}

  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  bool should_forward(const olsr::Message& message) override;
  bool should_relay_data(const olsr::DataMessage& data) override;

  std::uint64_t dropped_control() const { return dropped_control_; }
  std::uint64_t dropped_data() const { return dropped_data_; }

 private:
  sim::Rng rng_;
  double drop_probability_;
  bool drop_control_;
  bool drop_data_;
  bool active_ = true;
  std::uint64_t dropped_control_ = 0;
  std::uint64_t dropped_data_ = 0;
};

}  // namespace manet::attacks
