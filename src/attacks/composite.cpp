#include "attacks/composite.hpp"

namespace manet::attacks {

CampaignNode spoof_drop_campaign(LinkSpoofingAttack::Mode mode,
                                 std::set<olsr::NodeId> targets, sim::Rng rng,
                                 double drop_fraction) {
  CampaignNode node;
  node.spoof = std::make_unique<LinkSpoofingAttack>(mode, std::move(targets));
  node.drop = std::make_unique<DropAttack>(rng, drop_fraction);
  node.hooks.add(*node.spoof);
  node.hooks.add(*node.drop);
  return node;
}

WormholeDropCampaign wormhole_drop_colluders(sim::Engine& sim,
                                             sim::Duration tunnel_delay,
                                             sim::Rng capture_rng,
                                             double drop_fraction) {
  WormholeDropCampaign campaign;
  campaign.channel = std::make_shared<WormholeChannel>(tunnel_delay);

  campaign.capture_end.wormhole = std::make_unique<WormholeEndpoint>(
      sim, campaign.channel, WormholeEndpoint::Role::kCapture);
  campaign.capture_end.drop =
      std::make_unique<DropAttack>(capture_rng, drop_fraction);
  // Capture before drop: the tunnel must record the message even when the
  // local relay is then suppressed — that asymmetry is the attack.
  campaign.capture_end.hooks.add(*campaign.capture_end.wormhole);
  campaign.capture_end.hooks.add(*campaign.capture_end.drop);

  campaign.replay_end.wormhole = std::make_unique<WormholeEndpoint>(
      sim, campaign.channel, WormholeEndpoint::Role::kReplay);
  campaign.replay_end.hooks.add(*campaign.replay_end.wormhole);
  return campaign;
}

}  // namespace manet::attacks
