#include "attacks/link_spoofing.hpp"

#include <algorithm>

namespace manet::attacks {

void LinkSpoofingAttack::on_build_hello(olsr::HelloMessage& hello) {
  if (!active_ || targets_.empty()) return;
  bool touched = false;

  switch (mode_) {
    case Mode::kAddNonExistent:
    case Mode::kAddExisting: {
      // Advertise each target as a symmetric neighbor unless already there.
      const auto current = hello.symmetric_neighbors();
      for (auto target : targets_) {
        if (std::find(current.begin(), current.end(), target) != current.end())
          continue;
        hello.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, target);
        touched = true;
      }
      break;
    }
    case Mode::kOmitNeighbor: {
      for (auto& [code, addrs] : hello.link_groups) {
        const auto before = addrs.size();
        std::erase_if(addrs,
                      [&](olsr::NodeId n) { return targets_.contains(n); });
        touched = touched || addrs.size() != before;
      }
      std::erase_if(hello.link_groups,
                    [](const auto& kv) { return kv.second.empty(); });
      break;
    }
  }
  if (touched) ++forged_;
}

}  // namespace manet::attacks
