#include "attacks/wormhole.hpp"

namespace manet::attacks {

void WormholeEndpoint::on_receive(const olsr::Message& message) {
  if (!active_ || role_ != Role::kCapture) return;
  // Tunnel topology-bearing traffic; the replaying end keeps every
  // identification field unchanged so the wormhole stays invisible.
  if (message.header.type != olsr::MessageType::kTc &&
      message.header.type != olsr::MessageType::kHello)
    return;
  channel_->push(message);
  ++captured_;
}

void WormholeEndpoint::on_tick() {
  if (!active_ || role_ != Role::kReplay || agent_ == nullptr) return;
  while (!channel_->empty()) {
    auto m = channel_->pop();
    sim_.schedule(channel_->tunnel_delay(), [this, m = std::move(m)]() mutable {
      if (agent_ != nullptr && agent_->running()) {
        agent_->raw_broadcast(std::move(m));
        ++replayed_;
      }
    });
  }
}

}  // namespace manet::attacks
