#include "attacks/drop.hpp"

namespace manet::attacks {

bool DropAttack::duty_tick() {
  if (duty_on_ == 0 || duty_off_ == 0) return true;
  const bool on = duty_pos_ < duty_on_;
  duty_pos_ = (duty_pos_ + 1) % (duty_on_ + duty_off_);
  return on;
}

bool DropAttack::should_forward(const olsr::Message& message) {
  if (!active_ || !drop_control_) return true;
  // Non-candidates are relayed without consuming a draw or a duty slot, so
  // the targeted modes stay deterministic regardless of bystander traffic.
  if (!targets(message.header.originator)) return true;
  if (!duty_tick()) return true;
  if (!rng_.bernoulli(drop_probability_)) return true;
  ++dropped_control_;
  return false;
}

bool DropAttack::should_relay_data(const olsr::DataMessage& data) {
  if (!active_ || !drop_data_) return true;
  if (!targets(data.source)) return true;
  if (!duty_tick()) return true;
  if (!rng_.bernoulli(drop_probability_)) return true;
  ++dropped_data_;
  return false;
}

}  // namespace manet::attacks
