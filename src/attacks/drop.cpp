#include "attacks/drop.hpp"

namespace manet::attacks {

bool DropAttack::should_forward(const olsr::Message& message) {
  (void)message;
  if (!active_ || !drop_control_) return true;
  if (!rng_.bernoulli(drop_probability_)) return true;
  ++dropped_control_;
  return false;
}

bool DropAttack::should_relay_data(const olsr::DataMessage& data) {
  (void)data;
  if (!active_ || !drop_data_) return true;
  if (!rng_.bernoulli(drop_probability_)) return true;
  ++dropped_data_;
  return false;
}

}  // namespace manet::attacks
