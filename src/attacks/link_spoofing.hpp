#pragma once

#include <set>

#include "olsr/hooks.hpp"

namespace manet::attacks {

/// The paper's link spoofing attack (§III-A): the intruder forges the
/// symmetric-neighbor list of its HELLOs. The three variants correspond to
/// the paper's Expressions 1-3.
class LinkSpoofingAttack final : public olsr::AgentHooks {
 public:
  enum class Mode {
    /// Expression 1: declare a non-existing node as a symmetric neighbor,
    /// guaranteeing the intruder is selected MPR (nobody else covers it).
    kAddNonExistent,
    /// Expression 2: declare an existing node — which is NOT a neighbor —
    /// as symmetric, artificially raising connectivity (blackhole feeder).
    kAddExisting,
    /// Expression 3: omit a real symmetric neighbor, shrinking the
    /// perceived connectivity of both ends.
    kOmitNeighbor,
  };

  LinkSpoofingAttack(Mode mode, std::set<olsr::NodeId> targets)
      : mode_{mode}, targets_{std::move(targets)} {}

  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }
  Mode mode() const { return mode_; }

  /// Nodes whose advertisement is forged (added or omitted per the mode).
  const std::set<olsr::NodeId>& targets() const { return targets_; }

  void on_build_hello(olsr::HelloMessage& hello) override;

  /// Number of HELLOs actually tampered with.
  std::uint64_t forged_count() const { return forged_; }
  /// Checkpoint surface: restores the tamper counter verbatim.
  void restore_forged(std::uint64_t count) { forged_ = count; }

 private:
  Mode mode_;
  std::set<olsr::NodeId> targets_;
  bool active_ = true;
  std::uint64_t forged_ = 0;
};

}  // namespace manet::attacks
