#pragma once

#include <memory>
#include <set>
#include <vector>

#include "attacks/drop.hpp"
#include "attacks/link_spoofing.hpp"
#include "attacks/wormhole.hpp"
#include "olsr/hooks.hpp"

namespace manet::attacks {

/// Chains several hooks so one node can run multiple misbehaviours at once
/// (e.g. link spoofing plus data-dropping, the paper's blackhole provision).
/// Non-owning: the caller keeps the individual attacks alive.
class CompositeHooks final : public olsr::AgentHooks {
 public:
  void add(olsr::AgentHooks& hooks) { chain_.push_back(&hooks); }

  void on_build_hello(olsr::HelloMessage& hello) override {
    for (auto* h : chain_) h->on_build_hello(hello);
  }
  void on_build_tc(olsr::TcMessage& tc) override {
    for (auto* h : chain_) h->on_build_tc(tc);
  }
  bool should_forward(const olsr::Message& message) override {
    for (auto* h : chain_)
      if (!h->should_forward(message)) return false;
    return true;
  }
  void on_forward(olsr::Message& message) override {
    for (auto* h : chain_) h->on_forward(message);
  }
  bool should_relay_data(const olsr::DataMessage& data) override {
    for (auto* h : chain_)
      if (!h->should_relay_data(data)) return false;
    return true;
  }
  void on_tick() override {
    for (auto* h : chain_) h->on_tick();
  }
  void on_receive(const olsr::Message& message) override {
    for (auto* h : chain_) h->on_receive(message);
  }

 private:
  std::vector<olsr::AgentHooks*> chain_;
};

/// An owned attack bundle for one campaign node: the chained hooks plus the
/// individual attacks they delegate to (exposed so experiments can toggle
/// or interrogate each behaviour). Move-only; the chain holds pointers into
/// the unique_ptrs, which stay stable across moves.
struct CampaignNode {
  std::unique_ptr<LinkSpoofingAttack> spoof;
  std::unique_ptr<DropAttack> drop;
  std::unique_ptr<WormholeEndpoint> wormhole;
  CompositeHooks hooks;
};

/// Spoof+drop campaign (the paper's blackhole provision made concrete): the
/// node forges HELLOs to force its MPR selection, then grayholes the floods
/// it attracted. Chain order: spoof first (it only touches HELLO builds),
/// drop second.
CampaignNode spoof_drop_campaign(LinkSpoofingAttack::Mode mode,
                                 std::set<olsr::NodeId> targets, sim::Rng rng,
                                 double drop_fraction);

/// Wormhole+drop colluders: the capture end records control traffic into
/// the tunnel while grayholing what it should have forwarded; the replay
/// end re-broadcasts the tunneled messages in its distant region. Bind each
/// end's wormhole to its host agent before starting.
struct WormholeDropCampaign {
  std::shared_ptr<WormholeChannel> channel;
  CampaignNode capture_end;
  CampaignNode replay_end;
};
WormholeDropCampaign wormhole_drop_colluders(sim::Engine& sim,
                                             sim::Duration tunnel_delay,
                                             sim::Rng capture_rng,
                                             double drop_fraction);

}  // namespace manet::attacks
