#pragma once

#include <vector>

#include "olsr/hooks.hpp"

namespace manet::attacks {

/// Chains several hooks so one node can run multiple misbehaviours at once
/// (e.g. link spoofing plus data-dropping, the paper's blackhole provision).
/// Non-owning: the caller keeps the individual attacks alive.
class CompositeHooks final : public olsr::AgentHooks {
 public:
  void add(olsr::AgentHooks& hooks) { chain_.push_back(&hooks); }

  void on_build_hello(olsr::HelloMessage& hello) override {
    for (auto* h : chain_) h->on_build_hello(hello);
  }
  void on_build_tc(olsr::TcMessage& tc) override {
    for (auto* h : chain_) h->on_build_tc(tc);
  }
  bool should_forward(const olsr::Message& message) override {
    for (auto* h : chain_)
      if (!h->should_forward(message)) return false;
    return true;
  }
  void on_forward(olsr::Message& message) override {
    for (auto* h : chain_) h->on_forward(message);
  }
  bool should_relay_data(const olsr::DataMessage& data) override {
    for (auto* h : chain_)
      if (!h->should_relay_data(data)) return false;
    return true;
  }
  void on_tick() override {
    for (auto* h : chain_) h->on_tick();
  }
  void on_receive(const olsr::Message& message) override {
    for (auto* h : chain_) h->on_receive(message);
  }

 private:
  std::vector<olsr::AgentHooks*> chain_;
};

}  // namespace manet::attacks
