#include "attacks/forge.hpp"

namespace manet::attacks {

void StormAttack::on_tick() {
  if (!active_ || agent_ == nullptr) return;
  for (std::size_t i = 0; i < config_.messages_per_tick; ++i) {
    olsr::Message m;
    m.header.type = olsr::MessageType::kTc;
    m.header.vtime = olsr::kTopHoldTime;
    m.header.originator = config_.spoofed_originator.valid()
                              ? config_.spoofed_originator
                              : agent_->id();
    m.header.ttl = olsr::kDefaultTtl;
    m.header.seq_num = fake_seq_++;
    olsr::TcMessage tc;
    tc.ansn = fake_ansn_++;
    tc.advertised = config_.advertised;
    m.body = tc;
    agent_->raw_broadcast(std::move(m));
    ++forged_;
  }
}

void IdentitySpoofingAttack::on_tick() {
  if (!active_ || agent_ == nullptr) return;
  olsr::Message m;
  m.header.type = olsr::MessageType::kHello;
  m.header.vtime = olsr::kNeighbHoldTime;
  m.header.originator = victim_;  // the masquerade
  m.header.ttl = 1;
  m.header.seq_num = fake_seq_++;
  olsr::HelloMessage hello;
  for (auto n : advertised_)
    hello.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, n);
  m.body = hello;
  agent_->raw_broadcast(std::move(m));
  ++forged_;
}

void SequenceInflationAttack::on_forward(olsr::Message& message) {
  if (!active_) return;
  if (message.header.type != olsr::MessageType::kTc) return;
  message.header.seq_num =
      static_cast<std::uint16_t>(message.header.seq_num + inflation_);
  if (auto* tc = std::get_if<olsr::TcMessage>(&message.body))
    tc->ansn = static_cast<std::uint16_t>(tc->ansn + inflation_);
  ++tampered_;
}

void WillingnessAttack::on_build_hello(olsr::HelloMessage& hello) {
  if (!active_) return;
  hello.willingness = forced_;
}

}  // namespace manet::attacks
