#pragma once

#include <cstdint>
#include <vector>

#include "olsr/agent.hpp"
#include "olsr/hooks.hpp"

namespace manet::attacks {

/// Broadcast storm (§II-B "active forge"): on every emission tick the
/// attacker injects a burst of forged TC messages, optionally masquerading
/// as a spoofed originator, to exhaust bandwidth/energy.
class StormAttack final : public olsr::AgentHooks {
 public:
  struct Config {
    std::size_t messages_per_tick = 10;
    /// Spoofed originator; invalid -> attacker's own identity.
    olsr::NodeId spoofed_originator{};
    /// Fake advertised neighbors carried in each forged TC.
    std::vector<olsr::NodeId> advertised;
  };

  explicit StormAttack(Config config) : config_{std::move(config)} {}

  /// The attack needs the agent to inject raw messages; bind after both are
  /// constructed (the agent takes hooks in its constructor).
  void bind(olsr::Agent& agent) { agent_ = &agent; }
  void set_active(bool active) { active_ = active; }

  void on_tick() override;

  std::uint64_t forged_count() const { return forged_; }

 private:
  Config config_;
  olsr::Agent* agent_ = nullptr;
  bool active_ = true;
  std::uint64_t forged_ = 0;
  std::uint16_t fake_seq_ = 10'000;
  std::uint16_t fake_ansn_ = 5'000;
};

/// Identity spoofing: periodically emits HELLOs whose originator field is a
/// victim's address, advertising attacker-chosen neighbors (masquerade).
class IdentitySpoofingAttack final : public olsr::AgentHooks {
 public:
  IdentitySpoofingAttack(olsr::NodeId victim,
                         std::vector<olsr::NodeId> advertised)
      : victim_{victim}, advertised_{std::move(advertised)} {}

  void bind(olsr::Agent& agent) { agent_ = &agent; }
  void set_active(bool active) { active_ = active; }

  void on_tick() override;

  std::uint64_t forged_count() const { return forged_; }

 private:
  olsr::NodeId victim_;
  std::vector<olsr::NodeId> advertised_;
  olsr::Agent* agent_ = nullptr;
  bool active_ = true;
  std::uint64_t forged_ = 0;
  std::uint16_t fake_seq_ = 20'000;
};

/// Modify-and-forward: inflates the sequence numbers of relayed TC messages
/// so receivers treat stale attacker-touched copies as the freshest route
/// information (§II-B).
class SequenceInflationAttack final : public olsr::AgentHooks {
 public:
  explicit SequenceInflationAttack(std::uint16_t inflation = 100)
      : inflation_{inflation} {}

  void set_active(bool active) { active_ = active; }
  void on_forward(olsr::Message& message) override;

  std::uint64_t tampered_count() const { return tampered_; }

 private:
  std::uint16_t inflation_;
  bool active_ = true;
  std::uint64_t tampered_ = 0;
};

/// Willingness manipulation: rewrites the HELLO willingness so the attacker
/// is always (or never) selected as MPR (§II-B).
class WillingnessAttack final : public olsr::AgentHooks {
 public:
  explicit WillingnessAttack(olsr::Willingness forced)
      : forced_{forced} {}

  void set_active(bool active) { active_ = active; }
  void on_build_hello(olsr::HelloMessage& hello) override;

 private:
  olsr::Willingness forced_;
  bool active_ = true;
};

}  // namespace manet::attacks
