#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::faults {

using net::NodeId;

/// One kind of injected disturbance. Node indices 0 (investigator) and 1
/// (attacker) are never targeted by the chaos generator — the experiment's
/// fixed roles must survive the churn so degradation is measurable.
enum class FaultKind : std::uint8_t {
  /// Node goes dark: daemon stopped, radio down. In-flight frames already
  /// addressed to it are dropped on arrival (drop-on-arrival rule).
  kCrash = 1,
  /// Node rejoins with its protocol state intact (a short power blip).
  kRestart = 2,
  /// Delayed-restart amnesia: the node rejoins with cold OLSR and trust
  /// tables, as if freshly booted. Its msg/pkt/ANSN sequence counters keep
  /// counting so peers' duplicate sets never see a reused pair.
  kRestartAmnesia = 3,
  /// Radio brown-out: every host inside the axis-aligned rectangle gets a
  /// per-host loss-rate override (burst interference over a region).
  kBrownout = 4,
  /// Clears the loss override of every host inside the rectangle.
  kBrownoutClear = 5,
  /// Partitions the arena at x = cut: hosts with position.x <= cut join
  /// partition 1, the rest partition 2. Cross-partition frames are skipped
  /// before any RNG draw, like out-of-range receivers.
  kPartition = 6,
  /// Removes all partitions (every host back to partition 0).
  kHeal = 7,
};

const char* to_string(FaultKind kind);

/// One scheduled disturbance. Unused operand fields stay at their
/// defaults; `format`/`parse` only round-trip the operands of the kind.
struct FaultEvent {
  sim::Time at{};
  FaultKind kind = FaultKind::kCrash;
  NodeId node{};                      ///< kCrash / kRestart / kRestartAmnesia
  double x0 = 0, y0 = 0, x1 = 0, y1 = 0;  ///< brown-out rectangle
  double loss = 0.0;                  ///< kBrownout loss override
  double cut_x = 0.0;                 ///< kPartition split plane

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A deterministic, fully pre-computed schedule of disturbances. The
/// injector replays it through the engine's event queue, so a plan plus a
/// seed pins the entire faulted run byte for byte.
struct FaultPlan {
  std::vector<FaultEvent> events;  ///< ascending by `at` after sort()

  bool empty() const { return events.empty(); }
  /// Stable-sorts by time, preserving file order of simultaneous events.
  void sort();

  /// Text form, one event per line: `<t_ms> <kind> <operands...>`.
  /// Kinds: crash/restart/restart_amnesia `<node>`, brownout
  /// `<x0> <y0> <x1> <y1> <loss>`, brownout_clear `<x0> <y0> <x1> <y1>`,
  /// partition `<cut_x>`, heal. '#' starts a comment.
  std::string format() const;
  /// Parses the text form; throws std::invalid_argument on malformed input.
  static FaultPlan parse(const std::string& text);

  /// Deterministic chaos generator: node churn (crash + restart, half of
  /// them amnesiac), one regional brown-out window and one partition/heal
  /// window, all drawn from `seed` over [start, horizon). Nodes 0 and 1
  /// are excluded from churn. Same arguments, same plan — always.
  static FaultPlan chaos(std::uint64_t seed, std::size_t num_nodes,
                         double area_m, sim::Time start, sim::Time horizon);
};

}  // namespace manet::faults
