#include "faults/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/rng.hpp"

namespace manet::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kRestartAmnesia:
      return "restart_amnesia";
    case FaultKind::kBrownout:
      return "brownout";
    case FaultKind::kBrownoutClear:
      return "brownout_clear";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
  }
  return "?";
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

std::string FaultPlan::format() const {
  std::ostringstream out;
  for (const auto& e : events) {
    out << e.at.us() / 1000 << ' ' << to_string(e.kind);
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
      case FaultKind::kRestartAmnesia:
        out << ' ' << e.node.to_string();
        break;
      case FaultKind::kBrownout:
        out << ' ' << e.x0 << ' ' << e.y0 << ' ' << e.x1 << ' ' << e.y1 << ' '
            << e.loss;
        break;
      case FaultKind::kBrownoutClear:
        out << ' ' << e.x0 << ' ' << e.y0 << ' ' << e.x1 << ' ' << e.y1;
        break;
      case FaultKind::kPartition:
        out << ' ' << e.cut_x;
        break;
      case FaultKind::kHeal:
        break;
    }
    out << '\n';
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in{text};
  std::string line;
  std::size_t line_no = 0;
  // (event time, declaring line, is-partition) for the single-cut check.
  std::vector<std::tuple<sim::Time, std::size_t, bool>> partition_lines;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument{"fault plan line " + std::to_string(line_no) +
                                ": " + why};
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls{line};
    std::int64_t t_ms = 0;
    std::string kind;
    if (!(ls >> t_ms)) continue;  // blank / comment-only line
    if (t_ms < 0) fail("negative timestamp " + std::to_string(t_ms) + "ms");
    if (!(ls >> kind)) fail("missing event kind");
    FaultEvent e;
    e.at = sim::Time::from_ms(t_ms);
    auto node_operand = [&] {
      std::string n;
      if (!(ls >> n)) fail("missing node operand");
      e.node = NodeId::parse(n);
    };
    auto rect_operand = [&] {
      if (!(ls >> e.x0 >> e.y0 >> e.x1 >> e.y1)) fail("malformed rectangle");
    };
    if (kind == "crash") {
      e.kind = FaultKind::kCrash;
      node_operand();
    } else if (kind == "restart") {
      e.kind = FaultKind::kRestart;
      node_operand();
    } else if (kind == "restart_amnesia") {
      e.kind = FaultKind::kRestartAmnesia;
      node_operand();
    } else if (kind == "brownout") {
      e.kind = FaultKind::kBrownout;
      rect_operand();
      if (!(ls >> e.loss)) fail("missing brownout loss");
      if (e.loss < 0.0 || e.loss > 1.0) fail("brownout loss outside [0,1]");
    } else if (kind == "brownout_clear") {
      e.kind = FaultKind::kBrownoutClear;
      rect_operand();
    } else if (kind == "partition") {
      e.kind = FaultKind::kPartition;
      if (!(ls >> e.cut_x)) fail("missing partition cut");
    } else if (kind == "heal") {
      e.kind = FaultKind::kHeal;
    } else {
      fail("unknown event kind '" + kind + "'");
    }
    std::string trailing;
    if (ls >> trailing) fail("trailing operand '" + trailing + "'");
    plan.events.push_back(e);
    if (e.kind == FaultKind::kPartition || e.kind == FaultKind::kHeal)
      partition_lines.emplace_back(e.at, line_no,
                                   e.kind == FaultKind::kPartition);
  }
  // The medium models at most one live partition (FaultInjector::heal
  // clears THE cut): a second `partition` before a `heal` in time order
  // would silently overwrite the first, so reject it with the line that
  // declared it.
  std::stable_sort(partition_lines.begin(), partition_lines.end(),
                   [](const auto& a, const auto& b) {
                     return std::get<0>(a) < std::get<0>(b);
                   });
  bool cut_open = false;
  for (const auto& [at, at_line, is_partition] : partition_lines) {
    if (is_partition) {
      if (cut_open) {
        line_no = at_line;
        fail("duplicate partition (previous cut not healed yet)");
      }
      cut_open = true;
    } else {
      cut_open = false;
    }
  }
  plan.sort();
  return plan;
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, std::size_t num_nodes,
                           double area_m, sim::Time start, sim::Time horizon) {
  FaultPlan plan;
  if (num_nodes < 4 || horizon <= start) return plan;
  sim::Rng rng{seed ^ 0xFA171E57C0FFEEULL};
  const std::int64_t span_us = (horizon - start).us();

  // Node churn: each bystander (2..n-1) crashes with probability 1/3,
  // stays down 10-30% of the horizon, and half the restarts are amnesiac.
  for (std::size_t i = 2; i < num_nodes; ++i) {
    if (!rng.bernoulli(1.0 / 3.0)) continue;
    const std::int64_t down_at = rng.uniform_int(0, span_us * 6 / 10);
    const std::int64_t down_for =
        rng.uniform_int(span_us / 10, span_us * 3 / 10);
    const bool amnesia = rng.bernoulli(0.5);
    FaultEvent crash;
    crash.at = start + sim::Duration::from_us(down_at);
    crash.kind = FaultKind::kCrash;
    crash.node = NodeId{static_cast<std::uint32_t>(i)};
    plan.events.push_back(crash);
    FaultEvent up = crash;
    up.at = crash.at + sim::Duration::from_us(down_for);
    up.kind = amnesia ? FaultKind::kRestartAmnesia : FaultKind::kRestart;
    if (up.at < horizon) plan.events.push_back(up);
  }

  // One regional brown-out window over a random quadrant-sized rectangle.
  {
    FaultEvent bo;
    bo.kind = FaultKind::kBrownout;
    bo.at = start + sim::Duration::from_us(rng.uniform_int(0, span_us / 2));
    bo.x0 = rng.uniform_real(0.0, area_m / 2.0);
    bo.y0 = rng.uniform_real(0.0, area_m / 2.0);
    bo.x1 = bo.x0 + area_m / 2.0;
    bo.y1 = bo.y0 + area_m / 2.0;
    bo.loss = rng.uniform_real(0.5, 0.9);
    plan.events.push_back(bo);
    FaultEvent clear = bo;
    clear.kind = FaultKind::kBrownoutClear;
    clear.loss = 0.0;
    clear.at = bo.at + sim::Duration::from_us(
                           rng.uniform_int(span_us / 10, span_us * 3 / 10));
    if (clear.at < horizon) plan.events.push_back(clear);
  }

  // One partition/heal window with probability 1/2.
  if (rng.bernoulli(0.5)) {
    FaultEvent part;
    part.kind = FaultKind::kPartition;
    part.at = start + sim::Duration::from_us(rng.uniform_int(0, span_us / 2));
    part.cut_x = rng.uniform_real(area_m * 0.25, area_m * 0.75);
    plan.events.push_back(part);
    FaultEvent heal;
    heal.kind = FaultKind::kHeal;
    heal.at = part.at + sim::Duration::from_us(
                            rng.uniform_int(span_us / 10, span_us * 3 / 10));
    if (heal.at < horizon) plan.events.push_back(heal);
  }

  plan.sort();
  return plan;
}

}  // namespace manet::faults
