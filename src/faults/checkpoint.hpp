#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "core/investigation.hpp"
#include "logging/log_store.hpp"
#include "net/medium.hpp"
#include "olsr/agent.hpp"
#include "sim/rng.hpp"
#include "trust/trust_store.hpp"

namespace manet::faults {

/// First bytes of every checkpoint ("MNTC" little-endian) and the format
/// version. Compatibility rule: a reader accepts exactly its own version —
/// the snapshot is a byte-exact state image, so any layout change (a new
/// field, a reordered table) bumps the version and invalidates old files.
/// There is deliberately no migration path: checkpoints are short-lived
/// run artifacts, not archival data. Version 2 added the detector's
/// forwarding-audit state and the per-attack-kind experiment payload.
inline constexpr std::uint32_t kCheckpointMagic = 0x43544E4Du;  // "MNTC"
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Thrown on malformed, truncated or version-mismatched snapshots.
struct CheckpointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Little-endian binary writer backing the snapshot format. Fixed-width
/// fields only — the restore path must consume exactly what was written.
class CheckpointWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void time(sim::Time t) { i64(t.us()); }
  void node(net::NodeId n) { u32(n.value()); }
  void count(std::size_t n);
  void str(std::string_view s);
  void blob(const std::uint8_t* data, std::size_t size);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void le(std::uint64_t v, int bytes);
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked mirror of CheckpointWriter; throws CheckpointError on
/// truncation instead of reading past the end.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::vector<std::uint8_t>& data)
      : data_{data.data()}, size_{data.size()} {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  sim::Time time() { return sim::Time::from_us(i64()); }
  net::NodeId node() { return net::NodeId{u32()}; }
  std::size_t count();
  std::string str();
  std::vector<std::uint8_t> blob();

  bool at_end() const { return pos_ == size_; }

 private:
  std::uint64_t le(int bytes);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- components
// Each component codec is a matched encode/decode pair; decode applies
// state directly through the component's checkpoint surface. Pending
// *events* (timers, in-flight frames, jittered forwards, the injector
// cursor) are returned as images instead — the restore harness re-arms
// them globally, sorted by (time, original seq), so the rebuilt event
// queue preserves every tie-break of the uninterrupted run.

/// One periodic timer's pending firing.
struct TimerImage {
  bool running = false;
  sim::Time next_fire{};
  std::uint64_t seq = 0;
};

/// One jittered §3.4.1 forward not yet emitted (message in wire form).
struct ForwardImage {
  std::vector<std::uint8_t> message;
  sim::Time at{};
  std::uint64_t seq = 0;
};

/// Everything about one agent that is an event, not state.
struct AgentImage {
  bool running = false;
  TimerImage hello, tc, mid, housekeeping;
  std::vector<ForwardImage> forwards;
};

void encode_rng(CheckpointWriter& w, const sim::Rng::State& state);
sim::Rng::State decode_rng(CheckpointReader& r);

void encode_log(CheckpointWriter& w, const logging::LogStore& log);
void decode_log(CheckpointReader& r, logging::LogStore& log);

void encode_agent(CheckpointWriter& w, const olsr::Agent& agent);
AgentImage decode_agent(CheckpointReader& r, olsr::Agent& agent);

void encode_trust(CheckpointWriter& w, const trust::TrustStore& store);
void decode_trust(CheckpointReader& r, trust::TrustStore& store);

void encode_detector(CheckpointWriter& w, const core::Detector& detector);
void decode_detector(CheckpointReader& r, core::Detector& detector);

void encode_investigations(CheckpointWriter& w,
                           const core::InvestigationManager& inv);
void decode_investigations(CheckpointReader& r,
                           core::InvestigationManager& inv);

/// Medium image: counters and per-host radio state (up/down, brown-out
/// override, partition id) are applied to `medium` on decode; the in-flight
/// frames are returned for the ordered global re-arm.
struct MediumImage {
  net::MediumStats stats;
  std::vector<net::InFlightFrame> flights;
};

void encode_medium(CheckpointWriter& w, const net::Medium& medium);
MediumImage decode_medium(CheckpointReader& r, net::Medium& medium);

}  // namespace manet::faults
