#include "faults/checkpoint.hpp"

#include <bit>
#include <utility>

#include "olsr/wire.hpp"

namespace manet::faults {

// ------------------------------------------------------------------- writer

void CheckpointWriter::le(std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i)
    buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void CheckpointWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void CheckpointWriter::count(std::size_t n) {
  u64(static_cast<std::uint64_t>(n));
}

void CheckpointWriter::str(std::string_view s) {
  count(s.size());
  blob(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void CheckpointWriter::blob(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

// ------------------------------------------------------------------- reader

std::uint64_t CheckpointReader::le(int bytes) {
  if (size_ - pos_ < static_cast<std::size_t>(bytes))
    throw CheckpointError{"truncated checkpoint"};
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += static_cast<std::size_t>(bytes);
  return v;
}

std::uint8_t CheckpointReader::u8() {
  return static_cast<std::uint8_t>(le(1));
}
std::uint16_t CheckpointReader::u16() {
  return static_cast<std::uint16_t>(le(2));
}
std::uint32_t CheckpointReader::u32() {
  return static_cast<std::uint32_t>(le(4));
}
std::uint64_t CheckpointReader::u64() { return le(8); }

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

std::size_t CheckpointReader::count() {
  const std::uint64_t n = u64();
  // A count cannot exceed the remaining bytes (every element is >= 1 byte):
  // rejecting early turns corrupt lengths into clean errors, not OOM.
  if (n > size_ - pos_) throw CheckpointError{"corrupt checkpoint count"};
  return static_cast<std::size_t>(n);
}

std::string CheckpointReader::str() {
  const std::size_t n = count();
  if (size_ - pos_ < n) throw CheckpointError{"truncated checkpoint string"};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> CheckpointReader::blob() {
  const std::size_t n = count();
  if (size_ - pos_ < n) throw CheckpointError{"truncated checkpoint blob"};
  std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

// ---------------------------------------------------------------------- rng

void encode_rng(CheckpointWriter& w, const sim::Rng::State& state) {
  for (const auto s : state.s) w.u64(s);
  w.boolean(state.has_cached_normal);
  w.f64(state.cached_normal);
}

sim::Rng::State decode_rng(CheckpointReader& r) {
  sim::Rng::State st;
  for (auto& s : st.s) s = r.u64();
  st.has_cached_normal = r.boolean();
  st.cached_normal = r.f64();
  return st;
}

// ---------------------------------------------------------------------- log

void encode_log(CheckpointWriter& w, const logging::LogStore& log) {
  w.count(log.records().size());
  for (const auto& rec : log.records()) {
    w.time(rec.time);
    w.node(rec.node);
    w.str(rec.event);
    w.count(rec.fields.size());
    for (const auto& [k, v] : rec.fields) {
      w.str(k);
      w.str(v);
    }
  }
  w.u64(log.total_appended());
  w.u64(log.dropped());
}

void decode_log(CheckpointReader& r, logging::LogStore& log) {
  std::deque<logging::LogRecord> records;
  const std::size_t n = r.count();
  for (std::size_t i = 0; i < n; ++i) {
    logging::LogRecord rec;
    rec.time = r.time();
    rec.node = r.node();
    rec.event = r.str();
    const std::size_t nf = r.count();
    rec.fields.reserve(nf);
    for (std::size_t f = 0; f < nf; ++f) {
      auto key = r.str();
      auto value = r.str();
      rec.fields.emplace_back(std::move(key), std::move(value));
    }
    records.push_back(std::move(rec));
  }
  const auto total = r.u64();
  const auto dropped = r.u64();
  log.restore(std::move(records), total, dropped);
}

// -------------------------------------------------------------------- agent

namespace {

void encode_timer(CheckpointWriter& w, const sim::PeriodicTimer& t) {
  w.boolean(t.running());
  w.time(t.next_fire());
  w.u64(t.pending_seq());
}

TimerImage decode_timer(CheckpointReader& r) {
  TimerImage img;
  img.running = r.boolean();
  img.next_fire = r.time();
  img.seq = r.u64();
  return img;
}

void encode_stats(CheckpointWriter& w, const olsr::AgentStats& s) {
  w.u64(s.hello_sent);
  w.u64(s.hello_recv);
  w.u64(s.tc_sent);
  w.u64(s.tc_recv);
  w.u64(s.msgs_forwarded);
  w.u64(s.data_sent);
  w.u64(s.data_relayed);
  w.u64(s.data_delivered);
  w.u64(s.data_dropped);
  w.u64(s.parse_errors);
}

olsr::AgentStats decode_stats(CheckpointReader& r) {
  olsr::AgentStats s;
  s.hello_sent = r.u64();
  s.hello_recv = r.u64();
  s.tc_sent = r.u64();
  s.tc_recv = r.u64();
  s.msgs_forwarded = r.u64();
  s.data_sent = r.u64();
  s.data_relayed = r.u64();
  s.data_delivered = r.u64();
  s.data_dropped = r.u64();
  s.parse_errors = r.u64();
  return s;
}

}  // namespace

void encode_agent(CheckpointWriter& w, const olsr::Agent& agent) {
  w.boolean(agent.running());

  // Scalars.
  const auto scalars = agent.protocol_scalars();
  w.count(scalars.mprs.size());
  for (const auto n : scalars.mprs) w.node(n);
  w.count(scalars.mpr_selectors.size());
  for (const auto& [n, until] : scalars.mpr_selectors) {
    w.node(n);
    w.time(until);
  }
  w.boolean(scalars.mprs_dirty);
  w.boolean(scalars.routes_dirty);
  w.time(scalars.mprs_links_hint);
  w.time(scalars.routes_links_hint);
  w.u16(scalars.msg_seq);
  w.u16(scalars.pkt_seq);
  w.u16(scalars.ansn);
  encode_stats(w, scalars.stats);

  // Link set.
  const auto& links = agent.links();
  w.count(links.slots().size());
  for (const auto& s : links.slots()) {
    w.node(s.tuple.neighbor);
    w.time(s.tuple.asym_until);
    w.time(s.tuple.sym_until);
    w.time(s.tuple.valid_until);
    w.boolean(s.was_symmetric);
  }
  w.time(links.transition_hint());

  // Neighbor table.
  const auto& nbrs = agent.neighbors();
  w.count(nbrs.neighbor_tuples().size());
  for (const auto& t : nbrs.neighbor_tuples()) {
    w.node(t.id);
    w.u8(static_cast<std::uint8_t>(t.willingness));
    w.boolean(t.symmetric);
  }
  w.count(nbrs.two_hop_tuples().size());
  for (const auto& t : nbrs.two_hop_tuples()) {
    w.node(t.via);
    w.node(t.two_hop);
    w.time(t.valid_until);
  }

  // Topology set.
  const auto& topo = agent.topology();
  w.count(topo.tuples().size());
  for (const auto& t : topo.tuples()) {
    w.node(t.dest);
    w.node(t.last_hop);
    w.u16(t.ansn);
    w.time(t.valid_until);
  }
  w.count(topo.latest_ansn().size());
  for (const auto& [n, ansn] : topo.latest_ansn()) {
    w.node(n);
    w.u16(ansn);
  }

  // Duplicate set.
  const auto& dups = agent.duplicates();
  w.count(dups.entries().size());
  for (const auto& e : dups.entries()) {
    w.node(e.originator);
    w.u16(e.seq);
    w.time(e.valid_until);
    w.boolean(e.forwarded);
  }
  w.count(dups.ring().size());
  for (const auto& rs : dups.ring()) {
    w.node(rs.originator);
    w.u16(rs.seq);
    w.time(rs.expiry);
  }

  // Routing table (CSR snapshot + dense routes).
  const auto routes = agent.routes().persist();
  w.node(routes.self);
  w.count(routes.node_ids.size());
  for (const auto n : routes.node_ids) w.node(n);
  w.count(routes.offsets.size());
  for (const auto o : routes.offsets) w.u32(o);
  w.count(routes.targets.size());
  for (const auto t : routes.targets) w.u32(t);
  w.count(routes.dist.size());
  for (const auto d : routes.dist) w.u32(static_cast<std::uint32_t>(d));
  w.count(routes.parent.size());
  for (const auto p : routes.parent) w.node(p);
  w.count(routes.dests.size());
  for (const auto d : routes.dests) w.node(d);

  // MID / HNA association sets.
  const auto& mid = agent.mid_set();
  w.count(mid.tuples().size());
  for (const auto& t : mid.tuples()) {
    w.node(t.iface);
    w.node(t.main);
    w.time(t.valid_until);
  }
  const auto& hna = agent.hna_set();
  w.count(hna.tuples().size());
  for (const auto& [key, until] : hna.tuples()) {
    w.node(key.gateway);
    w.u32(key.network);
    w.u8(key.prefix_len);
    w.time(until);
  }

  // Audit log.
  encode_log(w, agent.log());

  // Pending events: timers + jittered forwards (wire-encoded messages).
  encode_timer(w, agent.hello_timer());
  encode_timer(w, agent.tc_timer());
  encode_timer(w, agent.mid_timer());
  encode_timer(w, agent.housekeeping_timer());
  const auto forwards = agent.pending_forwards();
  w.count(forwards.size());
  for (const auto& f : forwards) {
    const auto bytes =
        olsr::serialize_packet(olsr::OlsrPacket{0, {f.message}});
    w.count(bytes.size());
    w.blob(bytes.data(), bytes.size());
    w.time(f.at);
    w.u64(f.seq);
  }
}

AgentImage decode_agent(CheckpointReader& r, olsr::Agent& agent) {
  AgentImage img;
  img.running = r.boolean();

  olsr::Agent::ProtocolScalars scalars;
  scalars.mprs.resize(r.count());
  for (auto& n : scalars.mprs) n = r.node();
  scalars.mpr_selectors.resize(r.count());
  for (auto& [n, until] : scalars.mpr_selectors) {
    n = r.node();
    until = r.time();
  }
  scalars.mprs_dirty = r.boolean();
  scalars.routes_dirty = r.boolean();
  scalars.mprs_links_hint = r.time();
  scalars.routes_links_hint = r.time();
  scalars.msg_seq = r.u16();
  scalars.pkt_seq = r.u16();
  scalars.ansn = r.u16();
  scalars.stats = decode_stats(r);
  agent.restore_protocol_scalars(scalars);

  std::vector<olsr::LinkSet::Slot> slots(r.count());
  for (auto& s : slots) {
    s.tuple.neighbor = r.node();
    s.tuple.asym_until = r.time();
    s.tuple.sym_until = r.time();
    s.tuple.valid_until = r.time();
    s.was_symmetric = r.boolean();
  }
  const auto hint = r.time();
  agent.restore_links().restore(std::move(slots), hint);

  std::vector<olsr::NeighborTuple> neighbors(r.count());
  for (auto& t : neighbors) {
    t.id = r.node();
    t.willingness = static_cast<olsr::Willingness>(r.u8());
    t.symmetric = r.boolean();
  }
  std::vector<olsr::TwoHopTuple> two_hops(r.count());
  for (auto& t : two_hops) {
    t.via = r.node();
    t.two_hop = r.node();
    t.valid_until = r.time();
  }
  agent.restore_neighbors().restore(std::move(neighbors),
                                    std::move(two_hops));

  std::vector<olsr::TopologyTuple> topo(r.count());
  for (auto& t : topo) {
    t.dest = r.node();
    t.last_hop = r.node();
    t.ansn = r.u16();
    t.valid_until = r.time();
  }
  std::vector<std::pair<net::NodeId, std::uint16_t>> ansns(r.count());
  for (auto& [n, ansn] : ansns) {
    n = r.node();
    ansn = r.u16();
  }
  agent.restore_topology().restore(std::move(topo), std::move(ansns));

  std::vector<olsr::DuplicateSet::Entry> entries(r.count());
  for (auto& e : entries) {
    e.originator = r.node();
    e.seq = r.u16();
    e.valid_until = r.time();
    e.forwarded = r.boolean();
  }
  std::deque<olsr::DuplicateSet::RingSlot> ring;
  const std::size_t ring_n = r.count();
  for (std::size_t i = 0; i < ring_n; ++i) {
    olsr::DuplicateSet::RingSlot rs;
    rs.originator = r.node();
    rs.seq = r.u16();
    rs.expiry = r.time();
    ring.push_back(rs);
  }
  agent.restore_duplicates().restore(std::move(entries), std::move(ring));

  olsr::RoutingTable::Persisted routes;
  routes.self = r.node();
  routes.node_ids.resize(r.count());
  for (auto& n : routes.node_ids) n = r.node();
  routes.offsets.resize(r.count());
  for (auto& o : routes.offsets) o = r.u32();
  routes.targets.resize(r.count());
  for (auto& t : routes.targets) t = r.u32();
  routes.dist.resize(r.count());
  for (auto& d : routes.dist) d = static_cast<std::int32_t>(r.u32());
  routes.parent.resize(r.count());
  for (auto& p : routes.parent) p = r.node();
  routes.dests.resize(r.count());
  for (auto& d : routes.dests) d = r.node();
  agent.restore_routes().restore(std::move(routes));

  std::vector<olsr::MidSet::Tuple> mid(r.count());
  for (auto& t : mid) {
    t.iface = r.node();
    t.main = r.node();
    t.valid_until = r.time();
  }
  agent.restore_mid_set().restore(std::move(mid));

  std::vector<std::pair<olsr::HnaSet::Key, sim::Time>> hna(r.count());
  for (auto& [key, until] : hna) {
    key.gateway = r.node();
    key.network = r.u32();
    key.prefix_len = r.u8();
    until = r.time();
  }
  agent.restore_hna_set().restore(std::move(hna));

  decode_log(r, agent.log());

  img.hello = decode_timer(r);
  img.tc = decode_timer(r);
  img.mid = decode_timer(r);
  img.housekeeping = decode_timer(r);
  const std::size_t nf = r.count();
  img.forwards.resize(nf);
  for (auto& f : img.forwards) {
    const std::size_t nb = r.count();
    f.message.resize(nb);
    for (std::size_t i = 0; i < nb; ++i) f.message[i] = r.u8();
    f.at = r.time();
    f.seq = r.u64();
  }
  return img;
}

// -------------------------------------------------------------------- trust

void encode_trust(CheckpointWriter& w, const trust::TrustStore& store) {
  w.count(store.trust_rows().size());
  for (const auto& [n, t] : store.trust_rows()) {
    w.node(n);
    w.f64(t);
  }
  w.count(store.interaction_rows().size());
  for (const auto& c : store.interaction_rows()) {
    w.node(c.subject);
    w.i64(c.positive);
    w.i64(c.total);
  }
}

void decode_trust(CheckpointReader& r, trust::TrustStore& store) {
  std::vector<std::pair<net::NodeId, double>> trust(r.count());
  for (auto& [n, t] : trust) {
    n = r.node();
    t = r.f64();
  }
  std::vector<trust::TrustStore::Counter> counters(r.count());
  for (auto& c : counters) {
    c.subject = r.node();
    c.positive = static_cast<int>(r.i64());
    c.total = static_cast<int>(r.i64());
  }
  store.restore(std::move(trust), std::move(counters));
}

// ----------------------------------------------------------------- detector

void encode_detector(CheckpointWriter& w, const core::Detector& detector) {
  const auto p = detector.persist();
  w.time(p.last_scan);
  w.count(p.current_mprs.size());
  for (const auto n : p.current_mprs) w.node(n);
  w.count(p.pending_tcs.size());
  for (const auto& tc : p.pending_tcs) {
    w.time(tc.at);
    w.i64(tc.seq);
    w.count(tc.mprs_then.size());
    for (const auto n : tc.mprs_then) w.node(n);
    w.count(tc.heard_from.size());
    for (const auto n : tc.heard_from) w.node(n);
  }
  w.count(p.last_investigated.size());
  for (const auto& [link, at] : p.last_investigated) {
    w.node(link.first);
    w.node(link.second);
    w.time(at);
  }
  w.count(p.answer_pool.size());
  for (const auto& [link, answers] : p.answer_pool) {
    w.node(link.first);
    w.node(link.second);
    w.count(answers.size());
    for (const auto& a : answers) {
      w.node(a.responder);
      w.f64(a.evidence);
      w.boolean(a.answered);
    }
  }
  w.u64(p.degradation.suppressed_convictions);
  const auto& auditor = p.auditor;
  w.count(auditor.always.size());
  for (const auto n : auditor.always) w.node(n);
  w.count(auditor.current_mprs.size());
  for (const auto n : auditor.current_mprs) w.node(n);
  w.count(auditor.pending.size());
  for (const auto& flood : auditor.pending) {
    w.node(flood.orig);
    w.i64(flood.seq);
    w.time(flood.first_heard);
    w.count(flood.audited.size());
    for (const auto n : flood.audited) w.node(n);
    w.count(flood.credited.size());
    for (const auto n : flood.credited) w.node(n);
  }
  w.count(auditor.window.size());
  for (const auto& tally : auditor.window) {
    w.node(tally.mpr);
    w.u64(tally.expected);
    w.u64(tally.forwarded);
  }
  encode_trust(w, detector.trust_store());
}

void decode_detector(CheckpointReader& r, core::Detector& detector) {
  core::Detector::Persisted p;
  p.last_scan = r.time();
  p.current_mprs.resize(r.count());
  for (auto& n : p.current_mprs) n = r.node();
  const std::size_t ntc = r.count();
  p.pending_tcs.resize(ntc);
  for (auto& tc : p.pending_tcs) {
    tc.at = r.time();
    tc.seq = r.i64();
    const std::size_t nm = r.count();
    for (std::size_t i = 0; i < nm; ++i) tc.mprs_then.insert(r.node());
    const std::size_t nh = r.count();
    for (std::size_t i = 0; i < nh; ++i) tc.heard_from.insert(r.node());
  }
  p.last_investigated.resize(r.count());
  for (auto& [link, at] : p.last_investigated) {
    link.first = r.node();
    link.second = r.node();
    at = r.time();
  }
  p.answer_pool.resize(r.count());
  for (auto& [link, answers] : p.answer_pool) {
    link.first = r.node();
    link.second = r.node();
    answers.resize(r.count());
    for (auto& a : answers) {
      a.responder = r.node();
      a.evidence = r.f64();
      a.answered = r.boolean();
    }
  }
  p.degradation.suppressed_convictions = r.u64();
  auto& auditor = p.auditor;
  auditor.always.resize(r.count());
  for (auto& n : auditor.always) n = r.node();
  auditor.current_mprs.resize(r.count());
  for (auto& n : auditor.current_mprs) n = r.node();
  auditor.pending.resize(r.count());
  for (auto& flood : auditor.pending) {
    flood.orig = r.node();
    flood.seq = r.i64();
    flood.first_heard = r.time();
    flood.audited.resize(r.count());
    for (auto& n : flood.audited) n = r.node();
    flood.credited.resize(r.count());
    for (auto& n : flood.credited) n = r.node();
  }
  auditor.window.resize(r.count());
  for (auto& tally : auditor.window) {
    tally.mpr = r.node();
    tally.expected = r.u64();
    tally.forwarded = r.u64();
  }
  detector.restore(std::move(p));
  decode_trust(r, detector.trust_store());
}

// ----------------------------------------------------------- investigations

void encode_investigations(CheckpointWriter& w,
                           const core::InvestigationManager& inv) {
  w.u32(inv.next_id());
  const auto& s = inv.stats();
  w.u64(s.queries_sent);
  w.u64(s.answers_sent);
  w.u64(s.answers_received);
  w.u64(s.retries);
  w.u64(s.route_failures);
}

void decode_investigations(CheckpointReader& r,
                           core::InvestigationManager& inv) {
  const auto next_id = r.u32();
  core::InvestigationStats s;
  s.queries_sent = r.u64();
  s.answers_sent = r.u64();
  s.answers_received = r.u64();
  s.retries = r.u64();
  s.route_failures = r.u64();
  inv.restore_ids(next_id, s);
}

// ------------------------------------------------------------------- medium

void encode_medium(CheckpointWriter& w, const net::Medium& medium) {
  const auto& s = medium.stats();
  w.u64(s.frames_sent);
  w.u64(s.deliveries);
  w.u64(s.losses);
  w.u64(s.collisions);
  w.u64(s.bytes_sent);
  w.u64(s.dropped_down);
  const auto ids = medium.attached_ids();
  w.count(ids.size());
  for (const auto id : ids) {
    w.node(id);
    w.boolean(medium.is_up(id));
    w.f64(medium.loss_override(id));
    w.u32(medium.partition(id));
  }
  const auto flights = medium.in_flight();
  w.count(flights.size());
  for (const auto& f : flights) {
    w.node(f.receiver);
    w.node(f.transmitter);
    w.node(f.link_dest);
    w.count(f.payload.size());
    w.blob(f.payload.data(), f.payload.size());
    w.time(f.sent_at);
    w.time(f.arrival);
    w.u64(f.seq);
  }
}

MediumImage decode_medium(CheckpointReader& r, net::Medium& medium) {
  MediumImage img;
  img.stats.frames_sent = r.u64();
  img.stats.deliveries = r.u64();
  img.stats.losses = r.u64();
  img.stats.collisions = r.u64();
  img.stats.bytes_sent = r.u64();
  img.stats.dropped_down = r.u64();
  const std::size_t hosts = r.count();
  for (std::size_t i = 0; i < hosts; ++i) {
    const net::NodeId id = r.node();
    medium.set_up(id, r.boolean());
    medium.set_loss_override(id, r.f64());
    medium.set_partition(id, r.u32());
  }
  medium.restore_stats(img.stats);
  const std::size_t n = r.count();
  img.flights.resize(n);
  for (auto& f : img.flights) {
    f.receiver = r.node();
    f.transmitter = r.node();
    f.link_dest = r.node();
    f.payload = r.blob();
    f.sent_at = r.time();
    f.arrival = r.time();
    f.seq = r.u64();
  }
  return img;
}

}  // namespace manet::faults
