#include "faults/invariants.hpp"

#include <sstream>
#include <utility>

#include "obs/obs.hpp"

namespace manet::faults {

InvariantChecker::InvariantChecker(const net::Medium& medium,
                                   const FaultInjector& injector,
                                   Config config)
    : medium_{medium}, injector_{injector}, config_{config} {}

void InvariantChecker::record(sim::Time at, std::string rule,
                              std::string detail) {
  obs::hit(obs::Hot::kInvariantViolations);
  obs::instant(obs::SpanName::kInvariantViolation, at, violations_.size());
  violations_.push_back({at, std::move(rule), std::move(detail)});
}

void InvariantChecker::check_trust_bounds(sim::Time now, NodeId observer,
                                          const trust::TrustStore& store) {
  const trust::TrustParams& p = store.params();
  for (const auto& [subject, value] : store.trust_rows()) {
    if (value < p.min_trust || value > p.max_trust) {
      std::ostringstream os;
      os << observer.to_string() << " holds trust " << value << " in "
         << subject.to_string() << ", outside [" << p.min_trust << ", "
         << p.max_trust << "]";
      record(now, "trust-bounds", os.str());
    }
  }
}

void InvariantChecker::check_conviction(sim::Time now,
                                        const core::DetectionReport& report) {
  if (report.verdict != trust::Verdict::kIntruder) return;
  if (!injector_.is_down(report.suspect)) return;
  const sim::Time since = injector_.down_since(report.suspect);
  if (now - since <= config_.conviction_grace) return;
  std::ostringstream os;
  os << report.suspect.to_string() << " convicted while down since "
     << since.to_string() << " (" << (now - since).to_string()
     << " > grace " << config_.conviction_grace.to_string() << ")";
  record(now, "convict-down", os.str());
}

void InvariantChecker::check_routing(sim::Time now, NodeId self,
                                     const olsr::RoutingTable& routes) {
  const std::uint32_t self_part = medium_.partition(self);
  // Partition checks only make sense once the split has had time to
  // propagate through hold-time expiry; gate on the last disruption age.
  const bool partition_settled =
      injector_.last_disruption() != sim::Time{} &&
      now - injector_.last_disruption() > config_.routing_grace &&
      injector_.last_disruption() > injector_.last_heal();
  for (const auto& entry : routes.entries()) {
    const NodeId hop = entry.next_hop;
    if (injector_.is_down(hop) &&
        now - injector_.down_since(hop) > config_.routing_grace) {
      std::ostringstream os;
      os << self.to_string() << " routes to " << entry.dest.to_string()
         << " via " << hop.to_string() << ", down since "
         << injector_.down_since(hop).to_string();
      record(now, "route-down-hop", os.str());
    }
    if (partition_settled && medium_.attached(hop) &&
        medium_.partition(hop) != self_part) {
      std::ostringstream os;
      os << self.to_string() << " (partition " << self_part << ") routes to "
         << entry.dest.to_string() << " via " << hop.to_string()
         << " (partition " << medium_.partition(hop) << ")";
      record(now, "route-partition", os.str());
    }
  }
}

std::string InvariantChecker::format() const {
  std::ostringstream os;
  for (const auto& v : violations_)
    os << "t=" << v.at.to_string() << " [" << v.rule << "] " << v.detail
       << '\n';
  return os.str();
}

}  // namespace manet::faults
