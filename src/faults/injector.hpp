#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "net/medium.hpp"
#include "sim/engine.hpp"

namespace manet::faults {

/// Replays a FaultPlan through the engine's event queue, one pending event
/// at a time (the cursor pattern): executing event k schedules event k+1,
/// so at any instant exactly one injector event is pending — trivial to
/// checkpoint and to re-arm without RNG draws.
///
/// The injector drives the Medium directly (set_up, loss overrides,
/// partitions) and delegates daemon lifecycle to caller-supplied NodeOps so
/// it stays ignorant of the scenario layer. It also keeps the down/heal
/// timeline the degradation metrics and the invariant checker read.
class FaultInjector {
 public:
  /// Daemon lifecycle callbacks, invoked in event context. `crash` must
  /// stop the node's daemon; `restart` must start it again with state
  /// intact; `restart_amnesia` must reset its tables first (amnesia).
  struct NodeOps {
    std::function<void(NodeId)> crash;
    std::function<void(NodeId)> restart;
    std::function<void(NodeId)> restart_amnesia;
  };

  FaultInjector(sim::Engine& sim, net::Medium& medium, FaultPlan plan,
                NodeOps ops);

  const FaultPlan& plan() const { return plan_; }

  /// Schedules the next un-executed plan event (no-op when exhausted or
  /// already armed). Exactly one schedule_at, zero RNG draws — safe to call
  /// both at experiment start and as the checkpoint re-arm.
  void arm();

  /// Step mode (mutually exclusive with arm()): executes every plan event
  /// with `at <= now`, in plan order, directly from the caller's context.
  /// The sharded engine uses this between run_until windows — all worker
  /// lanes are quiescent at the barrier, so medium mutations are safe and
  /// the outcome is independent of the thread count.
  void run_until(sim::Time now);

  /// Index of the next un-executed plan event (the checkpoint cursor).
  std::size_t cursor() const { return cursor_; }
  /// Scheduled time / original event-queue seq of the pending cursor event
  /// (only meaningful while armed; seq orders the checkpoint re-arm).
  sim::Time pending_at() const { return pending_at_; }
  std::uint64_t pending_seq() const { return pending_seq_; }
  bool armed() const { return armed_; }

  /// Checkpoint restore: rewinds the cursor and the timeline state without
  /// touching the queue; call arm() afterwards (in re-arm order).
  void restore(std::size_t cursor,
               std::vector<std::pair<NodeId, sim::Time>> down_since,
               sim::Time last_disruption, sim::Time last_heal);

  // --- timeline queries (metrics & invariant checker) ---
  bool is_down(NodeId node) const { return down_since_.count(node) > 0; }
  /// Instant the node went down; Time{} when it is up.
  sim::Time down_since(NodeId node) const;
  std::vector<std::pair<NodeId, sim::Time>> down_nodes() const;
  std::size_t down_count() const { return down_since_.size(); }
  /// Time of the last connectivity-degrading event (crash, brown-out,
  /// partition); Time{} when none has fired yet.
  sim::Time last_disruption() const { return last_disruption_; }
  /// Time of the last connectivity-restoring event (restart, clear, heal).
  sim::Time last_heal() const { return last_heal_; }

 private:
  void execute(const FaultEvent& e);
  void apply_rect_override(const FaultEvent& e, double loss);

  sim::Engine& sim_;
  net::Medium& medium_;
  FaultPlan plan_;
  NodeOps ops_;
  std::size_t cursor_ = 0;
  bool armed_ = false;
  sim::Time pending_at_{};
  std::uint64_t pending_seq_ = 0;
  std::map<NodeId, sim::Time> down_since_;
  sim::Time last_disruption_{};
  sim::Time last_heal_{};
};

}  // namespace manet::faults
