#include "faults/injector.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace manet::faults {

FaultInjector::FaultInjector(sim::Engine& sim, net::Medium& medium,
                             FaultPlan plan, NodeOps ops)
    : sim_{sim}, medium_{medium}, plan_{std::move(plan)}, ops_{std::move(ops)} {
  for (std::size_t i = 1; i < plan_.events.size(); ++i) {
    if (plan_.events[i].at < plan_.events[i - 1].at)
      throw std::invalid_argument{"fault plan not sorted by time"};
  }
}

void FaultInjector::arm() {
  if (armed_ || cursor_ >= plan_.events.size()) return;
  const FaultEvent& e = plan_.events[cursor_];
  armed_ = true;
  pending_at_ = e.at;
  const sim::EventId ev = sim_.schedule_at(e.at, [this] {
    armed_ = false;
    const FaultEvent& ev = plan_.events[cursor_++];
    execute(ev);
    arm();
  });
  pending_seq_ = ev.raw();
}

void FaultInjector::run_until(sim::Time now) {
  if (armed_) throw std::logic_error{"run_until on an armed injector"};
  while (cursor_ < plan_.events.size() && plan_.events[cursor_].at <= now)
    execute(plan_.events[cursor_++]);
}

void FaultInjector::restore(
    std::size_t cursor, std::vector<std::pair<NodeId, sim::Time>> down_since,
    sim::Time last_disruption, sim::Time last_heal) {
  if (armed_) throw std::logic_error{"restore on an armed injector"};
  if (cursor > plan_.events.size())
    throw std::invalid_argument{"fault cursor past the plan"};
  cursor_ = cursor;
  down_since_.clear();
  down_since_.insert(down_since.begin(), down_since.end());
  last_disruption_ = last_disruption;
  last_heal_ = last_heal;
}

sim::Time FaultInjector::down_since(NodeId node) const {
  const auto it = down_since_.find(node);
  return it == down_since_.end() ? sim::Time{} : it->second;
}

std::vector<std::pair<NodeId, sim::Time>> FaultInjector::down_nodes() const {
  return {down_since_.begin(), down_since_.end()};
}

void FaultInjector::apply_rect_override(const FaultEvent& e, double loss) {
  for (const NodeId id : medium_.attached_ids()) {
    const auto pos = medium_.position(id);
    if (pos.x >= e.x0 && pos.x <= e.x1 && pos.y >= e.y0 && pos.y <= e.y1)
      medium_.set_loss_override(id, loss);
  }
}

void FaultInjector::execute(const FaultEvent& e) {
  obs::hit(obs::Hot::kFaultEvents);
  obs::instant(obs::SpanName::kFaultEvent, e.at, e.node.value());
  switch (e.kind) {
    case FaultKind::kCrash:
      // Stop the daemon first (it logs daemon_stop and cancels its timers
      // while the radio is still nominally on), then kill the radio.
      if (ops_.crash) ops_.crash(e.node);
      medium_.set_up(e.node, false);
      down_since_.emplace(e.node, e.at);
      last_disruption_ = e.at;
      break;
    case FaultKind::kRestart:
      medium_.set_up(e.node, true);
      if (ops_.restart) ops_.restart(e.node);
      down_since_.erase(e.node);
      last_heal_ = e.at;
      break;
    case FaultKind::kRestartAmnesia:
      medium_.set_up(e.node, true);
      if (ops_.restart_amnesia) ops_.restart_amnesia(e.node);
      down_since_.erase(e.node);
      last_heal_ = e.at;
      break;
    case FaultKind::kBrownout:
      apply_rect_override(e, e.loss);
      last_disruption_ = e.at;
      break;
    case FaultKind::kBrownoutClear:
      apply_rect_override(e, -1.0);
      last_heal_ = e.at;
      break;
    case FaultKind::kPartition:
      for (const NodeId id : medium_.attached_ids())
        medium_.set_partition(id,
                              medium_.position(id).x <= e.cut_x ? 1u : 2u);
      last_disruption_ = e.at;
      break;
    case FaultKind::kHeal:
      for (const NodeId id : medium_.attached_ids())
        medium_.set_partition(id, 0u);
      last_heal_ = e.at;
      break;
  }
}

}  // namespace manet::faults
