#pragma once

#include <string>
#include <vector>

#include "core/detector.hpp"
#include "faults/injector.hpp"
#include "net/medium.hpp"
#include "olsr/routing_table.hpp"
#include "trust/trust_store.hpp"

namespace manet::faults {

/// One broken safety rule observed during a faulted run.
struct InvariantViolation {
  sim::Time at{};
  std::string rule;    ///< short machine-greppable id, e.g. "trust-bounds"
  std::string detail;  ///< human diagnostic with the offending values
};

/// Safety-rule oracle for chaos runs. The checker never mutates anything:
/// it cross-references protocol outputs (verdicts, routes, trust values)
/// against the FaultInjector's ground-truth timeline and records every
/// contradiction. An empty violation list after a chaos run is the
/// graceful-degradation acceptance bar the chaos-smoke CI job enforces.
///
/// Every rule that depends on information propagating through the network
/// carries a grace window: OLSR needs hold times to expire and trust needs
/// investigation rounds to observe, so a route naming a node that crashed
/// 200 ms ago is expected, while one naming a node dead for a minute is a
/// bug. Graces default to comfortably above the protocol hold times.
class InvariantChecker {
 public:
  struct Config {
    /// A kIntruder verdict against a node continuously down for longer
    /// than this before the report is a false conviction of a corpse —
    /// the liveness gate (DetectorConfig::liveness_window) must have
    /// suppressed it. Shorter downtimes are legitimately ambiguous.
    sim::Duration conviction_grace = sim::Duration::from_seconds(15.0);
    /// Routes may keep naming a crashed next hop while the link/topology
    /// hold times run out; beyond this the stale entry is a violation.
    sim::Duration routing_grace = sim::Duration::from_seconds(20.0);
  };

  InvariantChecker(const net::Medium& medium, const FaultInjector& injector,
                   Config config);
  InvariantChecker(const net::Medium& medium, const FaultInjector& injector)
      : InvariantChecker(medium, injector, Config{}) {}

  /// Rule "trust-bounds": every stored trust value of `observer` must lie
  /// inside [min_trust, max_trust] of the store's own params.
  void check_trust_bounds(sim::Time now, NodeId observer,
                          const trust::TrustStore& store);

  /// Rule "convict-down": no kIntruder verdict against a node that has
  /// been continuously down for longer than conviction_grace.
  void check_conviction(sim::Time now, const core::DetectionReport& report);

  /// Rules "route-down-hop" / "route-partition": `self`'s routing table
  /// must not name a next hop that is long-dead, nor (once the partition
  /// has had routing_grace to settle) one on the other side of a netsplit.
  void check_routing(sim::Time now, NodeId self,
                     const olsr::RoutingTable& routes);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  bool clean() const { return violations_.empty(); }
  /// One line per violation ("t=12.250s [rule] detail"), for CI logs.
  std::string format() const;

 private:
  void record(sim::Time at, std::string rule, std::string detail);

  const net::Medium& medium_;
  const FaultInjector& injector_;
  Config config_;
  std::vector<InvariantViolation> violations_;
};

}  // namespace manet::faults
