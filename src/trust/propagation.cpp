#include "trust/propagation.hpp"

namespace manet::trust {

double concatenated_trust(double recommendation_a_s, double trust_s_i) {
  return recommendation_a_s * trust_s_i;
}

double multipath_trust(std::span<const RecommendationPath> paths) {
  double denom = 0.0;
  for (const auto& p : paths) denom += p.recommendation;
  if (denom <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& p : paths) sum += p.recommendation * p.trust;
  return sum / denom;
}

double chained_trust(std::span<const double> link_values) {
  double acc = 1.0;
  for (double v : link_values) acc = concatenated_trust(acc, v);
  return acc;
}

}  // namespace manet::trust
