#pragma once

#include <span>
#include <string>
#include <vector>

#include "net/node_id.hpp"
#include "stats/confidence.hpp"

namespace manet::trust {

/// One second-hand answer entering the trusted aggregation of Eq. 8:
/// `evidence` is e^{Si,I} in {-1, 0, +1} (-1 "the advertised link is wrong",
/// +1 "the link is correct", 0 "no answer before the timeout"), and `trust`
/// is T^{A,Si}, the investigator's trust in the answering node.
struct WeightedAnswer {
  net::NodeId source;
  double trust = 0.0;
  double evidence = 0.0;
};

/// Eq. 8: Detect^{A,I} = sum_i w_i T^{A,Si} e^{Si,I} with
/// w_i = 1 / sum_j T^{A,Sj}. Result lies in [-1, 1]; near -1 means the
/// suspect falsified the link. Returns 0 when total trust is not positive
/// (no usable opinions).
double aggregate_detection(std::span<const WeightedAnswer> answers);

/// Verdict of the decision rule (Eq. 10).
enum class Verdict {
  kWellBehaving,
  kIntruder,
  kUnrecognized,  ///< gather more evidence
};

std::string to_string(Verdict v);

struct DecisionConfig {
  double gamma = 0.6;            ///< decision threshold of Eq. 10 / §V
  double confidence_level = 0.95;  ///< cl of Eq. 9
  /// When true (paper behaviour) the margin of error gates the decision;
  /// when false the rule degenerates to simple thresholding — the Table D
  /// ablation compares the two.
  bool use_confidence_interval = true;
};

/// Full outcome of one detection decision.
struct Decision {
  Verdict verdict = Verdict::kUnrecognized;
  double detect = 0.0;                  ///< Eq. 8 value
  stats::ConfidenceInterval interval;   ///< Eq. 9 over the evidence samples
  std::size_t answers_used = 0;
};

/// Applies Eqs. 8-10: aggregates the answers, computes the confidence
/// interval over the raw evidence samples (their count and spread determine
/// the margin, per §IV-C), and classifies:
///   well-behaving  if  gamma <= Detect - eps <= 1
///   intruder       if  -1 <= Detect + eps <= -gamma
///   unrecognized   otherwise.
Decision decide(std::span<const WeightedAnswer> answers,
                const DecisionConfig& config);

}  // namespace manet::trust
