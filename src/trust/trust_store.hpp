#pragma once

#include <span>
#include <utility>
#include <vector>

#include "trust/evidence.hpp"

namespace manet::trust {

/// Tunable constants of the trust system. The paper gives the structure
/// (Eq. 5, forgetting factor, gravity weighting) but not numeric values;
/// the defaults here are the calibration recorded in DESIGN.md §5 that
/// reproduces the shapes of Figures 1-3.
struct TrustParams {
  double default_trust = 0.4;  ///< initial/neutral value (Figs. 1-2)
  double min_trust = 0.0;
  double max_trust = 1.0;
  /// beta of Eq. 5: how much of the previous slot's trust survives.
  double forgetting = 0.9;
  /// alpha for harmful "lied during investigation" evidence (Property 2:
  /// lying about an ongoing intrusion is grave, so it outweighs rewards).
  double gravity_lie = 0.30;
  /// alpha for beneficial "answered honestly" evidence — small on purpose:
  /// the paper's honest nodes "gain a little" over 25 rounds.
  double reward_honest = 0.05;
  /// Idle relaxation rates toward default_trust when a slot produced no
  /// evidence (Fig. 2): recovery from below is slower than decay from
  /// above — the defensive asymmetry ("demands a long misconduct-less
  /// duration before trusting a former liar").
  double idle_rate_from_above = 0.20;
  double idle_rate_from_below = 0.05;
};

/// Per-observer trust state over all subjects: T^{A,I} maintained per
/// Eq. 5, plus the interaction counters feeding the entropy-based
/// recommendation trust R^{A,S} of Eqs. 6-7.
///
/// Both tables are flat slabs sorted by subject id (same layout as the
/// OLSR tables): binary-search point lookups, and the whole-store sweeps
/// (decay_all_idle, subjects) walk contiguous memory in ascending order —
/// identical iteration order to the former std::map storage.
class TrustStore {
 public:
  explicit TrustStore(TrustParams params = {});

  const TrustParams& params() const { return params_; }

  /// Current trust in a subject; unknown subjects get default_trust.
  double trust(NodeId subject) const;
  void set_trust(NodeId subject, double value);
  bool known(NodeId subject) const;

  /// Eq. 5 for one slot: T <- sum_j alpha_j e_j + beta T_prev, clamped to
  /// [min_trust, max_trust].
  double apply_evidence(NodeId subject, std::span<const Evidence> evidences);
  double apply_evidence(NodeId subject, const Evidence& evidence) {
    return apply_evidence(subject, std::span<const Evidence>{&evidence, 1});
  }

  /// Slot with no evidence: relax toward default_trust (Fig. 2 semantics),
  /// asymmetric per TrustParams.
  double decay_idle(NodeId subject);
  void decay_all_idle();

  /// Interaction history for the recommendation trust: a "positive"
  /// interaction is one where the subject's recommendation later proved
  /// consistent with the accepted outcome.
  void record_interaction(NodeId subject, bool positive);

  /// Entropy-based recommendation trust R^{A,S} in [-1, 1]: the subjective
  /// probability p of a correct recommendation (Laplace-smoothed from the
  /// interaction counters) mapped through the Sun et al. entropy function.
  double recommendation_trust(NodeId subject) const;

  /// All subjects with explicit state (tests and figure benches).
  std::vector<NodeId> subjects() const;

  /// One persisted interaction counter (sorted by subject in storage).
  struct Counter {
    NodeId subject;
    int positive = 0;
    int total = 0;
  };

  /// Checkpoint surface: both slabs verbatim (params are reproduced from
  /// the experiment config, not persisted).
  const std::vector<std::pair<NodeId, double>>& trust_rows() const {
    return trust_;
  }
  const std::vector<Counter>& interaction_rows() const {
    return interactions_;
  }
  void restore(std::vector<std::pair<NodeId, double>> trust,
               std::vector<Counter> interactions) {
    trust_ = std::move(trust);
    interactions_ = std::move(interactions);
  }

 private:
  TrustParams params_;
  std::vector<std::pair<NodeId, double>> trust_;  // sorted by subject
  std::vector<Counter> interactions_;  // sorted by subject
};

}  // namespace manet::trust
