#pragma once

#include <span>
#include <utility>

#include "net/node_id.hpp"

namespace manet::trust {

/// Trust propagation through third parties, after the paper's Eqs. 6-7 and
/// the information-theoretic model they cite (Sun et al., JSAC 2006).

/// Eq. 6 (concatenated propagation): A's belief about I through a single
/// recommender S is Tc^{A,I} = R^{A,S} * T^{S,I}.
/// Trust does not grow through a chain: |Tc| <= min(|R|, |T|) given values
/// in [-1,1]; a distrusted recommender (R < 0) inverts nothing — the result
/// is simply discounted toward 0 by the multiplication.
double concatenated_trust(double recommendation_a_s, double trust_s_i);

/// One recommendation path for Eq. 7.
struct RecommendationPath {
  net::NodeId recommender;
  double recommendation;  ///< R^{A,Si}
  double trust;           ///< T^{Si,I}
};

/// Eq. 7 (multipath propagation): Tm^{A,I} = sum_i w_i R^{A,Si} T^{Si,I}
/// with w_i = 1 / sum_j R^{A,Sj}. Paths whose recommendation sum is not
/// positive carry no usable information; the function then returns 0
/// (maximal uncertainty) rather than dividing by a non-positive weight.
double multipath_trust(std::span<const RecommendationPath> paths);

/// Concatenation along an arbitrary chain A -> S1 -> ... -> Sk -> I:
/// repeated application of Eq. 6.
double chained_trust(std::span<const double> link_values);

}  // namespace manet::trust
