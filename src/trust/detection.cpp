#include "trust/detection.hpp"

namespace manet::trust {

double aggregate_detection(std::span<const WeightedAnswer> answers) {
  double denom = 0.0;
  for (const auto& a : answers) denom += a.trust;
  if (denom <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto& a : answers) sum += a.trust * a.evidence;
  return sum / denom;
}

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kWellBehaving:
      return "well-behaving";
    case Verdict::kIntruder:
      return "intruder";
    case Verdict::kUnrecognized:
      return "unrecognized";
  }
  return "?";
}

Decision decide(std::span<const WeightedAnswer> answers,
                const DecisionConfig& config) {
  Decision d;
  d.answers_used = answers.size();
  d.detect = aggregate_detection(answers);

  std::vector<double> samples;
  samples.reserve(answers.size());
  for (const auto& a : answers) samples.push_back(a.evidence);
  d.interval = stats::confidence_interval(samples, config.confidence_level);

  const double eps = config.use_confidence_interval ? d.interval.margin : 0.0;
  if (d.detect - eps >= config.gamma && d.detect - eps <= 1.0) {
    d.verdict = Verdict::kWellBehaving;
  } else if (d.detect + eps <= -config.gamma && d.detect + eps >= -1.0) {
    d.verdict = Verdict::kIntruder;
  } else {
    d.verdict = Verdict::kUnrecognized;
  }
  return d;
}

}  // namespace manet::trust
