#include "trust/trust_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/entropy.hpp"

namespace manet::trust {

TrustStore::TrustStore(TrustParams params) : params_{params} {
  if (params_.min_trust >= params_.max_trust)
    throw std::invalid_argument{"min_trust must be < max_trust"};
  if (params_.forgetting < 0.0 || params_.forgetting > 1.0)
    throw std::invalid_argument{"forgetting factor outside [0,1]"};
}

double TrustStore::trust(NodeId subject) const {
  auto it = trust_.find(subject);
  return it == trust_.end() ? params_.default_trust : it->second;
}

void TrustStore::set_trust(NodeId subject, double value) {
  trust_[subject] =
      std::clamp(value, params_.min_trust, params_.max_trust);
}

double TrustStore::apply_evidence(NodeId subject,
                                  std::span<const Evidence> evidences) {
  // Eq. 5: T_t = sum_j alpha_j e_j + beta T_{t-1}.
  double sum = 0.0;
  for (const auto& e : evidences) sum += e.weight * e.value;
  const double updated = sum + params_.forgetting * trust(subject);
  set_trust(subject, updated);
  return trust(subject);
}

double TrustStore::decay_idle(NodeId subject) {
  const double current = trust(subject);
  const double target = params_.default_trust;
  const double rate = current > target ? params_.idle_rate_from_above
                                       : params_.idle_rate_from_below;
  set_trust(subject, current + rate * (target - current));
  return trust(subject);
}

void TrustStore::decay_all_idle() {
  for (auto& [subject, _] : trust_) decay_idle(subject);
}

void TrustStore::record_interaction(NodeId subject, bool positive) {
  auto& c = interactions_[subject];
  ++c.total;
  if (positive) ++c.positive;
}

double TrustStore::recommendation_trust(NodeId subject) const {
  auto it = interactions_.find(subject);
  // Laplace smoothing keeps p off the 0/1 poles and yields the maximally
  // uncertain p=0.5 (trust 0) for never-seen recommenders.
  const int positive = it == interactions_.end() ? 0 : it->second.positive;
  const int total = it == interactions_.end() ? 0 : it->second.total;
  const double p =
      (static_cast<double>(positive) + 1.0) / (static_cast<double>(total) + 2.0);
  return stats::entropy_trust(p);
}

std::vector<NodeId> TrustStore::subjects() const {
  std::vector<NodeId> out;
  out.reserve(trust_.size());
  for (const auto& [id, _] : trust_) out.push_back(id);
  return out;
}

}  // namespace manet::trust
