#include "trust/trust_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/entropy.hpp"

namespace manet::trust {
namespace {

/// lower_bound over a slab of subject-keyed pairs.
template <typename Slab>
auto slab_find(Slab& slab, NodeId subject) {
  return std::lower_bound(
      slab.begin(), slab.end(), subject,
      [](const auto& entry, NodeId s) { return entry.first < s; });
}

}  // namespace

TrustStore::TrustStore(TrustParams params) : params_{params} {
  if (params_.min_trust >= params_.max_trust)
    throw std::invalid_argument{"min_trust must be < max_trust"};
  if (params_.forgetting < 0.0 || params_.forgetting > 1.0)
    throw std::invalid_argument{"forgetting factor outside [0,1]"};
}

double TrustStore::trust(NodeId subject) const {
  auto it = slab_find(trust_, subject);
  return it == trust_.end() || it->first != subject ? params_.default_trust
                                                    : it->second;
}

void TrustStore::set_trust(NodeId subject, double value) {
  const double clamped =
      std::clamp(value, params_.min_trust, params_.max_trust);
  auto it = slab_find(trust_, subject);
  if (it != trust_.end() && it->first == subject) {
    it->second = clamped;
  } else {
    trust_.insert(it, {subject, clamped});
  }
}

bool TrustStore::known(NodeId subject) const {
  auto it = slab_find(trust_, subject);
  return it != trust_.end() && it->first == subject;
}

double TrustStore::apply_evidence(NodeId subject,
                                  std::span<const Evidence> evidences) {
  // Eq. 5: T_t = sum_j alpha_j e_j + beta T_{t-1}.
  double sum = 0.0;
  for (const auto& e : evidences) sum += e.weight * e.value;
  const double updated = sum + params_.forgetting * trust(subject);
  set_trust(subject, updated);
  return trust(subject);
}

double TrustStore::decay_idle(NodeId subject) {
  const double current = trust(subject);
  const double target = params_.default_trust;
  const double rate = current > target ? params_.idle_rate_from_above
                                       : params_.idle_rate_from_below;
  set_trust(subject, current + rate * (target - current));
  return trust(subject);
}

void TrustStore::decay_all_idle() {
  // In-place sweep: every entry already exists, so decay never inserts and
  // the slab stays sorted while we mutate values only.
  for (auto& [subject, value] : trust_) {
    const double target = params_.default_trust;
    const double rate = value > target ? params_.idle_rate_from_above
                                       : params_.idle_rate_from_below;
    value = std::clamp(value + rate * (target - value), params_.min_trust,
                       params_.max_trust);
  }
}

void TrustStore::record_interaction(NodeId subject, bool positive) {
  auto it = std::lower_bound(
      interactions_.begin(), interactions_.end(), subject,
      [](const Counter& c, NodeId s) { return c.subject < s; });
  if (it == interactions_.end() || it->subject != subject)
    it = interactions_.insert(it, Counter{subject, 0, 0});
  ++it->total;
  if (positive) ++it->positive;
}

double TrustStore::recommendation_trust(NodeId subject) const {
  auto it = std::lower_bound(
      interactions_.begin(), interactions_.end(), subject,
      [](const Counter& c, NodeId s) { return c.subject < s; });
  // Laplace smoothing keeps p off the 0/1 poles and yields the maximally
  // uncertain p=0.5 (trust 0) for never-seen recommenders.
  const bool found = it != interactions_.end() && it->subject == subject;
  const int positive = found ? it->positive : 0;
  const int total = found ? it->total : 0;
  const double p =
      (static_cast<double>(positive) + 1.0) / (static_cast<double>(total) + 2.0);
  return stats::entropy_trust(p);
}

std::vector<NodeId> TrustStore::subjects() const {
  std::vector<NodeId> out;
  out.reserve(trust_.size());
  for (const auto& [id, _] : trust_) out.push_back(id);
  return out;
}

}  // namespace manet::trust
