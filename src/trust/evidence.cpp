#include "trust/evidence.hpp"

namespace manet::trust {

Evidence honest_answer_evidence(double reward_weight) {
  return Evidence{+1.0, reward_weight, true, "honest_answer"};
}

Evidence lie_evidence(double gravity_weight) {
  return Evidence{-1.0, gravity_weight, true, "lied_in_investigation"};
}

Evidence relay_evidence(double reward_weight) {
  return Evidence{+1.0, reward_weight, true, "relayed_traffic"};
}

Evidence drop_evidence(double gravity_weight) {
  return Evidence{-1.0, gravity_weight, true, "dropped_traffic"};
}

Evidence intrusion_evidence(double gravity_weight) {
  return Evidence{-1.0, gravity_weight, true, "intrusion_confirmed"};
}

}  // namespace manet::trust
