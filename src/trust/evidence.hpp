#pragma once

#include <string>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::trust {

using net::NodeId;

/// One piece of evidence about a subject node, collected by an observer
/// during a time slot (the e^{A,I}_j of Eq. 5). Beneficial activities carry
/// positive values, harmful ones negative (paper Property 1); `weight` is
/// the alpha_j gravity/reputability factor (Properties 2-3).
struct Evidence {
  double value = 0.0;   ///< sign carries beneficial/harmful
  double weight = 1.0;  ///< alpha_j
  /// Second-hand evidence is less reliable than first-hand (Property 5);
  /// callers may down-weight it or route it through Eq. 6/7 instead.
  bool first_hand = true;
  std::string reason;   ///< free-text audit trail ("lied_in_round_3", ...)
};

/// Canonical evidence constructors used across the IDS.
Evidence honest_answer_evidence(double reward_weight);
Evidence lie_evidence(double gravity_weight);
Evidence relay_evidence(double reward_weight);
Evidence drop_evidence(double gravity_weight);
Evidence intrusion_evidence(double gravity_weight);

}  // namespace manet::trust
