#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/position.hpp"
#include "net/shard_router.hpp"
#include "psim/shard_map.hpp"
#include "psim/shard_sim.hpp"

namespace manet::psim {

/// Aggregate gauges of a sharded run, exposed for bench/micro_psim.cpp and
/// the psim tests. `max_shard_events / executed_events * shards` reads as a
/// load-imbalance factor (1.0 = perfectly balanced); together with
/// `windows` (each window is a serial barrier) it bounds the serial
/// fraction of the run on a real multicore host.
struct EngineStats {
  std::uint64_t windows = 0;             ///< barrier-synchronized windows
  std::uint64_t executed_events = 0;     ///< sum over all lanes
  std::uint64_t cross_shard_events = 0;  ///< deliveries drained from mailboxes
  std::uint64_t max_shard_events = 0;    ///< events of the busiest lane
  /// Per-lane executed-event counts, in shard order — lets a caller diff
  /// two snapshots to compute load imbalance over just the measured phase
  /// (a warm-up's balance would otherwise bleed into the gauge).
  std::vector<std::uint64_t> lane_events;
};

/// Conservative, barrier-synchronized parallel discrete-event engine
/// (ROSS-style conservative lookahead, specialized to this simulator's
/// radio workload).
///
/// The arena is cut into spatial shards (ShardMap over the same uniform
/// cells as net::SpatialGrid); every shard is a ShardSim lane with its own
/// clock, origin-keyed queue and per-node RNG streams. Execution proceeds
/// in windows: with L = the lookahead (the radio's base propagation delay,
/// the minimum latency of any cross-node interaction), all events in
/// [T, T+L) — T being the earliest pending event anywhere — are processed
/// in parallel, one worker thread per lane at most. Any event in that
/// window can only affect another node at time >= T+L, so lanes never need
/// each other's state mid-window; cross-shard frame deliveries go into
/// per-(source, destination) mailboxes and are drained at the barrier,
/// sorted by the same global (time, origin node, origin seq) key the lane
/// queues order by.
///
/// Determinism contract (pinned by tests/psim_test.cpp and the committed
/// sharded golden fixture): for a fixed scenario seed, the per-round CSV
/// and the final trust/conviction state are byte-identical for any worker
/// thread count and any shard count. Thread-count invariance holds because
/// lanes share no mutable state inside a window; shard-count invariance
/// holds because every random draw comes from a per-node stream and every
/// tie is broken by the per-node origin key, so nothing observable depends
/// on which nodes happen to share a lane. The sharded engine's draw
/// sequence differs from the sequential Simulator's single root stream, so
/// the two engines are behaviourally equivalent, not byte-identical.
///
/// Scope (v1): static topologies without the collision model — mobility
/// mutates positions mid-window and collision bookkeeping mutates receiver
/// state at transmit time, both of which would race across lanes;
/// scenario::Network rejects those combinations up front.
class Engine final : public net::ShardRouter {
 public:
  struct Config {
    std::uint64_t seed = 1;
    /// Worker threads; 0 = hardware concurrency (capped at the shard
    /// count — more workers than lanes cannot help).
    unsigned threads = 0;
    /// Spatial shards; 0 = auto from the node count. Any value yields the
    /// same results (the determinism contract), so this is purely a
    /// parallelism/overhead trade-off.
    unsigned shards = 0;
    /// Conservative lookahead: the minimum cross-node interaction latency
    /// (the radio base_delay). Must be positive.
    sim::Duration lookahead;
    /// Stripe granularity of the spatial partition (the radio range).
    double cell_size = 250.0;
  };

  /// Builds the lanes and per-node streams; node `i` of `positions` is
  /// `NodeId{i}` (the scenario::Network convention).
  Engine(Config config, const std::vector<net::Position>& positions);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The lane a node lives on — what its agent/detector/timers schedule
  /// against (each lane implements sim::Engine).
  sim::Engine& shard_engine(net::NodeId id) {
    return *shards_[map_.shard_of(id)];
  }
  unsigned shard_of(net::NodeId id) const { return map_.shard_of(id); }
  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  unsigned threads() const { return threads_; }

  sim::Time now() const { return now_; }

  /// Runs every event with time <= horizon across all lanes, window by
  /// window, then syncs all lane clocks to the horizon.
  void run_until(sim::Time horizon);

  /// Executes `fn` in `node`'s context (clock, RNG stream, scheduling)
  /// outside the event loop — how scenario code starts agents and kicks
  /// detector investigations between runs. Re-entrant: nesting run_as
  /// (even for two nodes on the same lane) restores the outer node
  /// context on exit.
  void run_as(net::NodeId node, const std::function<void()>& fn);

  EngineStats stats() const;

  // --- net::ShardRouter (the Medium's shard-awareness hook) ---
  sim::Engine& current_engine() override;
  unsigned current_shard() const override;
  unsigned shard_count() const override { return shards(); }
  bool is_local(net::NodeId receiver) const override;
  void schedule_delivery(net::NodeId receiver, sim::Time at,
                         sim::EventQueue::Callback cb) override;

 private:
  class Pool;
  struct Mail {
    sim::Time at;
    std::uint32_t origin_node;
    std::uint64_t origin_seq;
    std::uint32_t owner;
    sim::Callback cb;
  };

  ShardSim& current();
  const ShardSim& current() const;
  void run_window(sim::Time end);
  void exec_lane(unsigned lane, sim::Time end);
  void drain_mailboxes();

  Config config_;
  ShardMap map_;
  std::vector<std::unique_ptr<ShardSim>> shards_;
  /// outboxes_[src][dst]: mail written only by src's worker mid-window,
  /// drained single-threaded at the barrier.
  std::vector<std::vector<std::vector<Mail>>> outboxes_;
  std::vector<Mail> drain_scratch_;
  unsigned threads_ = 1;
  std::unique_ptr<Pool> pool_;
  sim::Time now_;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_shard_events_ = 0;
};

}  // namespace manet::psim
