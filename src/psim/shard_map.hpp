#pragma once

#include <cstdint>
#include <vector>

#include "net/node_id.hpp"
#include "net/position.hpp"

namespace manet::psim {

/// Spatial partition of the arena into shards for the parallel engine.
///
/// Nodes are ordered by (grid-cell column, x, y, index) — the same uniform
/// cell coordinates `net::SpatialGrid` uses, with cell size = radio range —
/// and cut into `shards` contiguous stripes of near-equal node count.
/// Stripes are spatial (west-to-east), so most radio traffic stays inside a
/// shard and only stripe-boundary frames cross the barrier mailboxes; the
/// equal-count cut keeps the event load of a dense cluster balanced even
/// when every node shares one grid cell.
///
/// The partition is a pure function of (positions, cell_size, shards):
/// independent of thread count, iteration order and memory layout, which
/// the sharded engine's determinism contract builds on. Node `i` of the
/// position list is `NodeId{i}` — the scenario::Network convention.
class ShardMap {
 public:
  ShardMap(const std::vector<net::Position>& positions, double cell_size,
           unsigned shards);

  /// Shards actually created (<= requested; at most one per node).
  unsigned count() const { return static_cast<unsigned>(members_.size()); }

  unsigned shard_of(net::NodeId id) const {
    return assignment_.at(id.value());
  }
  unsigned shard_of_index(std::size_t index) const {
    return assignment_.at(index);
  }

  /// Node indices of one shard, in the stripe order they were cut in.
  const std::vector<std::uint32_t>& members(unsigned shard) const {
    return members_.at(shard);
  }

 private:
  std::vector<unsigned> assignment_;            // node index -> shard
  std::vector<std::vector<std::uint32_t>> members_;  // shard -> node indices
};

}  // namespace manet::psim
