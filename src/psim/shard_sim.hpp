#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/node_id.hpp"
#include "psim/shard_queue.hpp"
#include "sim/engine.hpp"

namespace manet::psim {

/// One lane of the sharded engine: the clock, origin-keyed event queue and
/// per-node RNG streams of a single spatial shard. Implements `sim::Engine`
/// so OLSR agents, timers, the medium and the IDS run on it unchanged.
///
/// Execution model: the parallel engine (psim::Engine) drives every lane
/// through lookahead-bounded windows — `run_window(end)` pops and executes
/// events strictly before `end`, entirely on one worker thread. While an
/// event executes, the lane's *current node* is the event's owner; the
/// Engine-interface calls are interpreted in that node context:
///
/// - `rng()` is the current node's private counter-derived stream (never a
///   lane-shared stream, which would make draws depend on which nodes share
///   a lane, i.e. on the shard count).
/// - `schedule`/`schedule_at` tag the new event with the current node as
///   origin and the node's next origin sequence number — the global
///   (time, origin, seq) key ShardQueue orders by.
///
/// Frame deliveries are pushed by the router with an explicit key (origin =
/// sender) and owner (= receiver) via `push_keyed`, whether they arrive
/// directly (receiver on this lane) or through a barrier mailbox.
class ShardSim final : public sim::Engine {
 public:
  explicit ShardSim(unsigned index) : index_{index} {}

  // --- sim::Engine ---
  sim::Time now() const override { return now_; }
  sim::Rng& rng() override { return current_slot().rng; }
  sim::EventId schedule(sim::Duration delay,
                        sim::EventQueue::Callback cb) override;
  sim::EventId schedule_at(sim::Time at,
                           sim::EventQueue::Callback cb) override;
  void cancel(sim::EventId id) override { queue_.cancel(id.id_); }

  // --- wiring (engine construction) ---
  /// Registers a node on this lane with its private RNG stream seed.
  void add_node(net::NodeId id, std::uint64_t stream_seed);

  // --- engine-side driving ---
  unsigned index() const { return index_; }
  bool has_node(net::NodeId id) const {
    return nodes_.contains(id.value());
  }
  net::NodeId current_node() const { return net::NodeId{current_}; }
  /// Allocates the next origin sequence number of the current node (the
  /// router keys outgoing deliveries with it).
  std::uint64_t take_origin_seq() { return current_slot().origin_seq++; }
  /// Enqueues an event executing in `owner`'s context under an explicit
  /// global ordering key (frame deliveries, mailbox drains).
  void push_keyed(sim::Time at, std::uint32_t origin_node,
                  std::uint64_t origin_seq, net::NodeId owner,
                  sim::EventQueue::Callback cb);

  /// Executes every pending event with time < `end` (one worker thread).
  void run_window(sim::Time end);
  bool has_event_before(sim::Time t) const {
    return !queue_.empty() && queue_.next_time() < t;
  }
  /// Earliest pending event time, or false via the out-param pattern.
  bool peek_next(sim::Time& out) const {
    if (queue_.empty()) return false;
    out = queue_.next_time();
    return true;
  }
  /// Syncs the lane clock at the end of a run (never backward past an
  /// executed event).
  void set_now(sim::Time t) {
    if (t > now_) now_ = t;
  }

  /// Enters an explicit node context for out-of-event calls
  /// (psim::Engine::run_as); returns the previous context (possibly
  /// invalid) so nested entries on the same lane restore correctly via
  /// restore_node().
  net::NodeId enter_node(net::NodeId id);
  void restore_node(net::NodeId prev) { current_ = prev.value(); }

  std::uint64_t executed_events() const { return executed_; }
  std::size_t pending_events() const { return queue_.pending(); }

 private:
  struct NodeSlot {
    sim::Rng rng;
    std::uint64_t origin_seq = 1;
    explicit NodeSlot(std::uint64_t seed) : rng{seed} {}
  };
  NodeSlot& current_slot();

  unsigned index_;
  sim::Time now_;
  std::uint32_t current_ = net::NodeId::kInvalid;
  ShardQueue queue_;
  std::unordered_map<std::uint32_t, NodeSlot> nodes_;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace manet::psim
