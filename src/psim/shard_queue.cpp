#include "psim/shard_queue.hpp"

#include <stdexcept>
#include <utility>

namespace manet::psim {

void ShardQueue::push(Entry entry) {
  heap_.push_back(std::move(entry));
  sift_up(heap_.size() - 1);
  ++live_;
}

void ShardQueue::cancel(std::uint64_t id) {
  if (id == 0) return;
  if (cancelled_.insert(id).second && live_ > 0) --live_;
}

void ShardQueue::sift_up(std::size_t i) const {
  if (i == 0 || !earlier(heap_[i], heap_[(i - 1) / 2])) return;
  Entry e = std::move(heap_[i]);
  do {
    const std::size_t parent = (i - 1) / 2;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  } while (i > 0 && earlier(e, heap_[(i - 1) / 2]));
  heap_[i] = std::move(e);
}

void ShardQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(e);
}

void ShardQueue::pop_top() const {
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void ShardQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    pop_top();
  }
}

bool ShardQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

sim::Time ShardQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"ShardQueue::next_time on empty"};
  return heap_.front().at;
}

ShardQueue::Entry ShardQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"ShardQueue::pop on empty"};
  Entry e = std::move(heap_.front());
  pop_top();
  if (live_ > 0) --live_;
  return e;
}

}  // namespace manet::psim
