#include "psim/shard_sim.hpp"

#include <stdexcept>
#include <utility>

namespace manet::psim {

ShardSim::NodeSlot& ShardSim::current_slot() {
  const auto it = nodes_.find(current_);
  if (it == nodes_.end())
    throw std::logic_error{
        "ShardSim: scheduling/RNG call outside a node context (wrap "
        "out-of-event interactions in psim::Engine::run_as)"};
  return it->second;
}

void ShardSim::add_node(net::NodeId id, std::uint64_t stream_seed) {
  nodes_.emplace(id.value(), NodeSlot{stream_seed});
}

sim::EventId ShardSim::schedule(sim::Duration delay,
                                sim::EventQueue::Callback cb) {
  if (delay < sim::Duration{})
    throw std::invalid_argument{"negative delay"};
  return schedule_at(now_ + delay, std::move(cb));
}

sim::EventId ShardSim::schedule_at(sim::Time at,
                                   sim::EventQueue::Callback cb) {
  if (at < now_) throw std::invalid_argument{"schedule_at in the past"};
  NodeSlot& slot = current_slot();
  const std::uint64_t id = next_id_++;
  queue_.push(ShardQueue::Entry{at, current_, slot.origin_seq++, current_, id,
                                std::move(cb)});
  return sim::EventId{id};
}

void ShardSim::push_keyed(sim::Time at, std::uint32_t origin_node,
                          std::uint64_t origin_seq, net::NodeId owner,
                          sim::EventQueue::Callback cb) {
  queue_.push(ShardQueue::Entry{at, origin_node, origin_seq, owner.value(),
                                next_id_++, std::move(cb)});
}

void ShardSim::run_window(sim::Time end) {
  while (!queue_.empty() && queue_.next_time() < end) {
    ShardQueue::Entry e = queue_.pop();
    // Clock advances before the callback so now() is the firing time, and
    // the owner becomes the node context for draws and re-scheduling.
    now_ = e.at;
    current_ = e.owner;
    e.cb();
    ++executed_;
  }
  current_ = net::NodeId::kInvalid;
}

net::NodeId ShardSim::enter_node(net::NodeId id) {
  if (!nodes_.contains(id.value()))
    throw std::logic_error{"ShardSim::enter_node: node not on this shard"};
  const net::NodeId prev{current_};
  current_ = id.value();
  return prev;
}

}  // namespace manet::psim
