#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace manet::psim {

/// Time-ordered event queue of one shard lane, keyed globally instead of
/// locally: ties at equal time are broken by (origin node, origin
/// sequence), where the origin is the node whose processing created the
/// event (the node itself for timers, the sender for frame deliveries) and
/// the sequence is that node's private scheduling counter.
///
/// This is the load-bearing difference from sim::EventQueue, whose
/// insertion-order tie-break depends on which events share a queue — i.e.
/// on the shard count. A node's processing history is a deterministic
/// function of the scenario seed alone, so the (origin, seq) key is too,
/// and every shard lane pops the events of any one node in the same
/// relative order no matter how the arena was partitioned. Same-time events
/// of *different* nodes may interleave differently across partitions, but
/// node state is only coupled through lookahead-delayed deliveries, so
/// those interleavings are unobservable.
///
/// Cancellation is O(1) lazy via a hash set, as in sim::EventQueue.
class ShardQueue {
 public:
  /// One pending event: the global ordering key, the node whose context
  /// executes the callback, and the lane-local cancellation id.
  struct Entry {
    sim::Time at;
    std::uint32_t origin_node = 0;
    std::uint64_t origin_seq = 0;
    std::uint32_t owner = 0;
    std::uint64_t id = 0;
    sim::Callback cb;
  };

  void push(Entry entry);
  void cancel(std::uint64_t id);

  bool empty() const;
  sim::Time next_time() const;  ///< requires !empty()
  Entry pop();                  ///< requires !empty()

  std::size_t pending() const { return live_; }

 private:
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.origin_node != b.origin_node) return a.origin_node < b.origin_node;
    return a.origin_seq < b.origin_seq;
  }
  // Mirrors sim::EventQueue: empty()/next_time() discard cancelled entries,
  // so heap_ and cancelled_ are mutable caches of the same logical queue.
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void pop_top() const;
  void drop_cancelled() const;

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
};

}  // namespace manet::psim
