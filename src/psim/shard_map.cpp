#include "psim/shard_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace manet::psim {

ShardMap::ShardMap(const std::vector<net::Position>& positions,
                   double cell_size, unsigned shards) {
  if (positions.empty())
    throw std::invalid_argument{"ShardMap needs at least one node"};
  if (cell_size <= 0.0)
    throw std::invalid_argument{"ShardMap cell_size must be positive"};
  const auto n = positions.size();
  const unsigned count =
      std::max(1u, std::min<unsigned>(shards, static_cast<unsigned>(n)));

  // West-to-east stripe order: cell column first (SpatialGrid's coordinate
  // quantization), exact coordinates and the node index as tie-breakers so
  // the order is total and deterministic.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  const double inv_cell = 1.0 / cell_size;
  auto cell_x = [&](std::uint32_t i) {
    return static_cast<std::int32_t>(std::floor(positions[i].x * inv_cell));
  };
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ca = cell_x(a), cb = cell_x(b);
    if (ca != cb) return ca < cb;
    if (positions[a].x != positions[b].x) return positions[a].x < positions[b].x;
    if (positions[a].y != positions[b].y) return positions[a].y < positions[b].y;
    return a < b;
  });

  // Contiguous near-equal cut: the first n % count stripes take one extra.
  assignment_.assign(n, 0);
  members_.resize(count);
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  std::size_t pos = 0;
  for (unsigned s = 0; s < count; ++s) {
    const std::size_t take = base + (s < extra ? 1 : 0);
    for (std::size_t k = 0; k < take; ++k, ++pos) {
      assignment_[order[pos]] = s;
      members_[s].push_back(order[pos]);
    }
  }
}

}  // namespace manet::psim
