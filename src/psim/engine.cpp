#include "psim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/obs.hpp"

namespace manet::psim {
namespace {

/// SplitMix64 of (root seed, node): well-spread, collision-free per-node
/// stream seeds — the same generator ExperimentSpec uses for replication
/// seeds. Zero is avoided because Rng treats seeds verbatim.
std::uint64_t stream_seed(std::uint64_t root, std::uint32_t node) {
  std::uint64_t z =
      root + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(node) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

/// The lane whose event (or run_as context) this thread is executing.
thread_local ShardSim* tl_current_lane = nullptr;

/// RAII save/restore of the thread's current lane.
class LaneScope {
 public:
  explicit LaneScope(ShardSim* lane) : saved_{tl_current_lane} {
    tl_current_lane = lane;
  }
  ~LaneScope() { tl_current_lane = saved_; }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  ShardSim* saved_;
};

unsigned auto_shard_count(std::size_t nodes) {
  // Heuristic: a lane per ~128 nodes keeps per-window work per lane large
  // relative to the barrier cost, capped at 8 lanes. Any choice yields the
  // same results (the determinism contract) — this is a perf knob only.
  const auto want = static_cast<unsigned>(std::max<std::size_t>(nodes / 128, 1));
  return std::min(want, 8u);
}

}  // namespace

/// Persistent worker pool: one generation per window, lanes handed out via
/// an atomic ticket so any worker count drains any lane count.
class Engine::Pool {
 public:
  explicit Pool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
      threads_.emplace_back([this] { worker(); });
  }

  ~Pool() {
    {
      std::lock_guard lock{mutex_};
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Runs fn(0..count-1) across the workers; returns when all are done.
  /// Rethrows the first exception any worker hit.
  void run(unsigned count, const std::function<void(unsigned)>& fn) {
    std::unique_lock lock{mutex_};
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
    error_ = nullptr;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return done_ == threads_.size(); });
    fn_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* fn = nullptr;
      unsigned count = 0;
      {
        std::unique_lock lock{mutex_};
        work_cv_.wait(lock,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
        count = count_;
      }
      for (unsigned lane;
           (lane = next_.fetch_add(1, std::memory_order_relaxed)) < count;) {
        try {
          (*fn)(lane);
        } catch (...) {
          std::lock_guard lock{mutex_};
          if (!error_) error_ = std::current_exception();
        }
      }
      {
        std::lock_guard lock{mutex_};
        if (++done_ == threads_.size()) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* fn_ = nullptr;
  unsigned count_ = 0;
  std::atomic<unsigned> next_{0};
  std::size_t done_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

Engine::Engine(Config config, const std::vector<net::Position>& positions)
    : config_{config},
      map_{positions, config.cell_size > 0.0 ? config.cell_size : 250.0,
           config.shards != 0 ? config.shards
                              : auto_shard_count(positions.size())} {
  if (config_.lookahead <= sim::Duration{})
    throw std::invalid_argument{
        "psim::Engine needs a positive lookahead (the radio base_delay): "
        "zero-latency cross-node interaction admits no conservative window"};

  shards_.reserve(map_.count());
  for (unsigned s = 0; s < map_.count(); ++s) {
    shards_.push_back(std::make_unique<ShardSim>(s));
    for (const auto node : map_.members(s)) {
      shards_.back()->add_node(net::NodeId{node},
                               stream_seed(config_.seed, node));
    }
  }
  // resize, not assign: Mail is move-only (it holds a sim::Callback).
  outboxes_.resize(shards());
  for (auto& row : outboxes_) row.resize(shards());

  threads_ = config_.threads != 0 ? config_.threads
                                  : std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
  threads_ = std::min(threads_, shards());
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_);
}

Engine::~Engine() = default;

ShardSim& Engine::current() {
  if (tl_current_lane == nullptr)
    throw std::logic_error{
        "psim::Engine: no lane is executing on this thread (wrap "
        "out-of-event interactions in run_as)"};
  return *tl_current_lane;
}

const ShardSim& Engine::current() const {
  return const_cast<Engine*>(this)->current();
}

sim::Engine& Engine::current_engine() { return current(); }

unsigned Engine::current_shard() const { return current().index(); }

bool Engine::is_local(net::NodeId receiver) const {
  return map_.shard_of(receiver) == current().index();
}

void Engine::schedule_delivery(net::NodeId receiver, sim::Time at,
                               sim::EventQueue::Callback cb) {
  ShardSim& src = current();
  const unsigned dst = map_.shard_of(receiver);
  const auto origin = src.current_node().value();
  const auto seq = src.take_origin_seq();
  if (dst == src.index()) {
    src.push_keyed(at, origin, seq, receiver, std::move(cb));
    return;
  }
  // The conservative guarantee everything rests on: a cross-shard effect
  // can never land inside the window that produced it.
  if (at < src.now() + config_.lookahead)
    throw std::logic_error{
        "psim::Engine: cross-shard delivery scheduled inside the lookahead "
        "window"};
  outboxes_[src.index()][dst].push_back(
      Mail{at, origin, seq, receiver.value(), std::move(cb)});
}

void Engine::run_as(net::NodeId node, const std::function<void()>& fn) {
  ShardSim& lane = *shards_[map_.shard_of(node)];
  LaneScope scope{&lane};
  // Save/restore the lane's node context, not just the thread's lane
  // pointer: nested run_as calls landing on the same lane must hand the
  // outer node context back intact.
  const net::NodeId prev = lane.enter_node(node);
  try {
    fn();
  } catch (...) {
    lane.restore_node(prev);
    throw;
  }
  lane.restore_node(prev);
}

void Engine::exec_lane(unsigned lane, sim::Time end) {
  LaneScope scope{shards_[lane].get()};
  shards_[lane]->run_window(end);
}

void Engine::run_window(sim::Time end) {
  // Capture the caller's obs binding so worker threads inherit the
  // replication's Context with the deterministic shard-lane id stamped on
  // everything they record (worker threads themselves carry no binding).
  obs::Context* const obs_ctx = obs::detail::tls.ctx;
  const auto lane_window = [this, end, obs_ctx](unsigned lane) {
    obs::Scope obs_scope{obs_ctx, lane};
    const auto begin = shards_[lane]->now();
    exec_lane(lane, end);
    obs::hit(obs::Hot::kPsimWindows);
    obs::span(obs::SpanName::kPsimWindow, begin, shards_[lane]->now(), lane);
  };
  if (pool_) {
    pool_->run(shards(), lane_window);
  } else {
    for (unsigned lane = 0; lane < shards(); ++lane) lane_window(lane);
  }
}

void Engine::drain_mailboxes() {
  for (unsigned dst = 0; dst < shards(); ++dst) {
    drain_scratch_.clear();
    for (unsigned src = 0; src < shards(); ++src) {
      auto& box = outboxes_[src][dst];
      for (auto& m : box) drain_scratch_.push_back(std::move(m));
      box.clear();
    }
    if (drain_scratch_.empty()) continue;
    // The same global key the lane queues order by, so the drain order —
    // and with it the EventId assignment — is deterministic regardless of
    // which source shard produced what.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const Mail& a, const Mail& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.origin_node != b.origin_node)
                  return a.origin_node < b.origin_node;
                return a.origin_seq < b.origin_seq;
              });
    cross_shard_events_ += drain_scratch_.size();
    for (auto& m : drain_scratch_) {
      shards_[dst]->push_keyed(m.at, m.origin_node, m.origin_seq,
                               net::NodeId{m.owner}, std::move(m.cb));
    }
    drain_scratch_.clear();
  }
}

void Engine::run_until(sim::Time horizon) {
  // run_as may have produced cross-shard mail since the last run.
  drain_mailboxes();
  for (;;) {
    bool any = false;
    sim::Time next;
    for (const auto& s : shards_) {
      sim::Time t;
      if (!s->peek_next(t)) continue;
      if (!any || t < next) next = t;
      any = true;
    }
    if (!any || next > horizon) break;
    // Window [next, next + lookahead): everything in it is causally
    // independent across lanes. The +1us on the horizon bound makes the
    // final window inclusive of events at exactly `horizon`, matching
    // Simulator::run_until semantics.
    const sim::Time end = std::min(next + config_.lookahead,
                                   horizon + sim::Duration::from_us(1));
    run_window(end);
    drain_mailboxes();
    ++windows_;
  }
  for (auto& s : shards_) s->set_now(horizon);
  // Forward-only, like Simulator::run_until: a past horizon is a no-op and
  // must not rewind the engine clock.
  if (now_ < horizon) now_ = horizon;
}

EngineStats Engine::stats() const {
  EngineStats out;
  out.windows = windows_;
  out.cross_shard_events = cross_shard_events_;
  out.lane_events.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.executed_events += s->executed_events();
    out.max_shard_events = std::max(out.max_shard_events,
                                    s->executed_events());
    out.lane_events.push_back(s->executed_events());
  }
  return out;
}

}  // namespace manet::psim
