#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::net {

using Bytes = std::vector<std::uint8_t>;

/// Immutable payload shared by every receiver of one transmission. A
/// broadcast serializes its bytes once; each delivery holds a reference
/// instead of a deep copy (zero-copy broadcast).
///
/// The refcount is intrusive and deliberately NOT atomic: a simulation and
/// every frame it delivers are confined to a single thread (the parallel
/// Runner gives each replication its own simulator stack and extracts only
/// plain-value results), and one Packet copy per receiver per frame is the
/// hottest allocation-adjacent path in the system — two lock-prefixed ops
/// per delivery are measurable at N=1024. Do not hand payloads to another
/// thread; share the serialized Bytes instead.
class PayloadPtr {
 public:
  PayloadPtr() noexcept = default;
  explicit PayloadPtr(Bytes bytes) : rep_{new Rep{std::move(bytes), 1}} {}

  PayloadPtr(const PayloadPtr& other) noexcept : rep_{other.rep_} {
    if (rep_ != nullptr) ++rep_->refs;
  }
  PayloadPtr(PayloadPtr&& other) noexcept
      : rep_{std::exchange(other.rep_, nullptr)} {}
  PayloadPtr& operator=(PayloadPtr other) noexcept {
    std::swap(rep_, other.rep_);
    return *this;
  }
  ~PayloadPtr() { release(); }

  const Bytes& operator*() const noexcept { return rep_->bytes; }
  const Bytes* operator->() const noexcept { return &rep_->bytes; }
  explicit operator bool() const noexcept { return rep_ != nullptr; }

 private:
  struct Rep {
    Bytes bytes;
    std::uint32_t refs;
  };
  void release() noexcept {
    if (rep_ != nullptr && --rep_->refs == 0) delete rep_;
  }
  Rep* rep_ = nullptr;
};

/// Serializes-once helper mirroring the old std::make_shared call sites.
inline PayloadPtr make_payload(Bytes bytes) {
  return PayloadPtr{std::move(bytes)};
}

/// A frame as seen by a receiver: who transmitted it on the air (the
/// link-layer sender, not the originator of the routed message) and the
/// payload bytes. OLSR parses the payload itself per RFC 3626 wire format.
struct Packet {
  NodeId transmitter;     ///< link-layer sender
  NodeId link_dest;       ///< kInvalidNode for link-layer broadcast
  PayloadPtr data;        ///< shared across all receivers of the frame
  sim::Time sent_at;      ///< transmission start time

  const Bytes& payload() const { return *data; }
};

}  // namespace manet::net
