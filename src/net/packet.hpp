#pragma once

#include <cstdint>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::net {

using Bytes = std::vector<std::uint8_t>;

/// A frame as seen by a receiver: who transmitted it on the air (the
/// link-layer sender, not the originator of the routed message) and the
/// payload bytes. OLSR parses the payload itself per RFC 3626 wire format.
struct Packet {
  NodeId transmitter;     ///< link-layer sender
  NodeId link_dest;       ///< kInvalidNode for link-layer broadcast
  Bytes payload;
  sim::Time sent_at;      ///< transmission start time
};

}  // namespace manet::net
