#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::net {

using Bytes = std::vector<std::uint8_t>;

/// Immutable payload shared by every receiver of one transmission. A
/// broadcast serializes its bytes once; each delivery holds a reference
/// instead of a deep copy (zero-copy broadcast).
using PayloadPtr = std::shared_ptr<const Bytes>;

/// A frame as seen by a receiver: who transmitted it on the air (the
/// link-layer sender, not the originator of the routed message) and the
/// payload bytes. OLSR parses the payload itself per RFC 3626 wire format.
struct Packet {
  NodeId transmitter;     ///< link-layer sender
  NodeId link_dest;       ///< kInvalidNode for link-layer broadcast
  PayloadPtr data;        ///< shared across all receivers of the frame
  sim::Time sent_at;      ///< transmission start time

  const Bytes& payload() const { return *data; }
};

}  // namespace manet::net
