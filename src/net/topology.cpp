#include "net/topology.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace manet::net {

std::vector<Position> grid_layout(std::size_t n, double spacing) {
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(n)));
  std::vector<Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Position{static_cast<double>(i % side) * spacing,
                           static_cast<double>(i / side) * spacing});
  }
  return out;
}

std::vector<Position> chain_layout(std::size_t n, double spacing) {
  std::vector<Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(Position{static_cast<double>(i) * spacing, 0.0});
  return out;
}

std::vector<Position> ring_layout(std::size_t n, double radius) {
  std::vector<Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    out.push_back(
        Position{radius * std::cos(theta), radius * std::sin(theta)});
  }
  return out;
}

std::vector<Position> random_layout(std::size_t n, double width, double height,
                                    double min_separation, sim::Rng& rng) {
  std::vector<Position> out;
  out.reserve(n);
  constexpr int kMaxAttemptsPerNode = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerNode; ++attempt) {
      const Position candidate{rng.uniform_real(0.0, width),
                               rng.uniform_real(0.0, height)};
      bool ok = true;
      for (const auto& existing : out) {
        if (distance(candidate, existing) < min_separation) {
          ok = false;
          break;
        }
      }
      if (ok) {
        out.push_back(candidate);
        placed = true;
        break;
      }
    }
    if (!placed)
      throw std::runtime_error{
          "random_layout: could not satisfy min_separation"};
  }
  return out;
}

std::vector<Position> connected_random_layout(std::size_t n, double width,
                                              double height,
                                              double min_separation,
                                              double range, sim::Rng& rng) {
  constexpr int kMaxLayouts = 500;
  for (int attempt = 0; attempt < kMaxLayouts; ++attempt) {
    auto layout = random_layout(n, width, height, min_separation, rng);
    if (is_connected(layout, range)) return layout;
  }
  throw std::runtime_error{
      "connected_random_layout: no connected layout found; "
      "increase range or shrink the area"};
}

std::vector<std::vector<std::size_t>> adjacency(
    const std::vector<Position>& positions, double range) {
  std::vector<std::vector<std::size_t>> adj(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (distance(positions[i], positions[j]) <= range) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  return adj;
}

bool is_connected(const std::vector<Position>& positions, double range) {
  if (positions.empty()) return true;
  const auto adj = adjacency(positions, range);
  std::vector<bool> seen(positions.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    for (auto v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == positions.size();
}

}  // namespace manet::net
