#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "net/spatial_grid.hpp"

namespace manet::net {

std::vector<Position> grid_layout(std::size_t n, double spacing) {
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(n)));
  std::vector<Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Position{static_cast<double>(i % side) * spacing,
                           static_cast<double>(i / side) * spacing});
  }
  return out;
}

std::vector<Position> chain_layout(std::size_t n, double spacing) {
  std::vector<Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(Position{static_cast<double>(i) * spacing, 0.0});
  return out;
}

std::vector<Position> ring_layout(std::size_t n, double radius) {
  std::vector<Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(n);
    out.push_back(
        Position{radius * std::cos(theta), radius * std::sin(theta)});
  }
  return out;
}

std::vector<Position> random_layout(std::size_t n, double width, double height,
                                    double min_separation, sim::Rng& rng) {
  std::vector<Position> out;
  out.reserve(n);
  // Grid index over the already-placed nodes: a candidate only needs to be
  // checked against the 3x3 cell neighborhood instead of every prior node.
  // Accept/reject decisions — and therefore the RNG draw sequence — are
  // identical to the full pair scan this replaced.
  const bool check_sep = min_separation > 0.0;
  SpatialGrid grid{check_sep ? min_separation : 1.0};
  constexpr int kMaxAttemptsPerNode = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerNode; ++attempt) {
      const Position candidate{rng.uniform_real(0.0, width),
                               rng.uniform_real(0.0, height)};
      bool ok = true;
      if (check_sep) {
        grid.for_each_candidate(candidate, [&](std::uint32_t j) {
          if (distance(candidate, out[j]) < min_separation) ok = false;
        });
      }
      if (ok) {
        if (check_sep) grid.insert(static_cast<std::uint32_t>(i), candidate);
        out.push_back(candidate);
        placed = true;
        break;
      }
    }
    if (!placed)
      throw std::runtime_error{
          "random_layout: could not satisfy min_separation"};
  }
  return out;
}

std::vector<Position> connected_random_layout(std::size_t n, double width,
                                              double height,
                                              double min_separation,
                                              double range, sim::Rng& rng) {
  constexpr int kMaxLayouts = 500;
  for (int attempt = 0; attempt < kMaxLayouts; ++attempt) {
    auto layout = random_layout(n, width, height, min_separation, rng);
    if (is_connected(layout, range)) return layout;
  }
  throw std::runtime_error{
      "connected_random_layout: no connected layout found; "
      "increase range or shrink the area"};
}

std::vector<std::vector<std::size_t>> adjacency(
    const std::vector<Position>& positions, double range) {
  const std::size_t n = positions.size();
  std::vector<std::vector<std::size_t>> adj(n);
  if (n == 0) return adj;
  // Grid index instead of the O(N^2) pair scan; neighbor lists are sorted
  // ascending, exactly as the pair scan produced them.
  SpatialGrid grid{std::max(range, 1e-9)};
  for (std::size_t i = 0; i < n; ++i)
    grid.insert(static_cast<std::uint32_t>(i), positions[i]);
  for (std::size_t i = 0; i < n; ++i) {
    grid.for_each_candidate(positions[i], [&](std::uint32_t j) {
      if (j == i) return;
      if (distance(positions[i], positions[j]) <= range) adj[i].push_back(j);
    });
    std::sort(adj[i].begin(), adj[i].end());
  }
  return adj;
}

bool is_connected(const std::vector<Position>& positions, double range) {
  if (positions.empty()) return true;
  const auto adj = adjacency(positions, range);
  std::vector<bool> seen(positions.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    for (auto v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == positions.size();
}

}  // namespace manet::net
