#include "net/node_id.hpp"

#include <charconv>
#include <stdexcept>

namespace manet::net {

std::string NodeId::to_string() const {
  if (!valid()) return "n?";
  // Built with += rather than operator+ to dodge GCC 12's -Wrestrict false
  // positive (PR105651) on the char* + string&& overload under -O2.
  std::string out = "n";
  out += std::to_string(value_);
  return out;
}

NodeId NodeId::parse(const std::string& text) {
  if (text.size() < 2 || text[0] != 'n')
    throw std::invalid_argument{"bad NodeId: " + text};
  std::uint32_t v = 0;
  const auto* begin = text.data() + 1;
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end)
    throw std::invalid_argument{"bad NodeId: " + text};
  return NodeId{v};
}

}  // namespace manet::net
