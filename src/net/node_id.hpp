#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace manet::net {

/// Identifier of a node; doubles as the OLSR "main address" of the node.
/// A strong type so node ids, sequence numbers and counts cannot be mixed.
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(std::uint32_t value) : value_{value} {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr auto operator<=>(const NodeId&) const = default;

  /// "n7" — compact form used in logs and test output.
  std::string to_string() const;

  /// Parses the "n7" form; throws std::invalid_argument on malformed input.
  static NodeId parse(const std::string& text);

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

 private:
  std::uint32_t value_ = kInvalid;
};

inline constexpr NodeId kInvalidNode{};

}  // namespace manet::net

template <>
struct std::hash<manet::net::NodeId> {
  std::size_t operator()(const manet::net::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
