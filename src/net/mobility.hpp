#pragma once

#include <map>
#include <memory>

#include "net/medium.hpp"
#include "net/position.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace manet::net {

/// Per-node movement model. `step` advances the node by dt and returns the
/// new position; implementations must be deterministic given the Rng.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Position step(sim::Duration dt, sim::Rng& rng) = 0;
  virtual Position current() const = 0;
};

/// A node that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Position pos) : pos_{pos} {}
  Position step(sim::Duration, sim::Rng&) override { return pos_; }
  Position current() const override { return pos_; }

 private:
  Position pos_;
};

/// Classic random-waypoint: pick a uniform destination in the area, travel
/// toward it at a uniform speed in [speed_min, speed_max], pause, repeat.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Config {
    double area_width = 1000.0;
    double area_height = 1000.0;
    double speed_min_mps = 1.0;
    double speed_max_mps = 5.0;
    sim::Duration pause = sim::Duration::from_seconds(2.0);
  };

  RandomWaypoint(Position start, Config config);

  Position step(sim::Duration dt, sim::Rng& rng) override;
  Position current() const override { return pos_; }

 private:
  void pick_waypoint(sim::Rng& rng);

  Config config_;
  Position pos_;
  Position waypoint_;
  double speed_mps_ = 0.0;
  sim::Duration pause_left_{};
  bool has_waypoint_ = false;
};

/// Drives the mobility models of all nodes on a fixed tick, pushing updated
/// positions into the medium.
class MobilityManager {
 public:
  MobilityManager(sim::Engine& sim, Medium& medium,
                  sim::Duration tick = sim::Duration::from_ms(250));

  void set_model(NodeId id, std::unique_ptr<MobilityModel> model);
  void start();
  void stop();

 private:
  void tick();

  sim::Engine& sim_;
  Medium& medium_;
  sim::Duration tick_interval_;
  std::map<NodeId, std::unique_ptr<MobilityModel>> models_;
  sim::PeriodicTimer timer_;
};

}  // namespace manet::net
