#pragma once

#include "net/node_id.hpp"
#include "sim/engine.hpp"

namespace manet::net {

/// Shard-awareness hook the psim parallel engine installs into a shared
/// Medium (Medium::set_shard_router). While a sharded run is executing,
/// every Medium call happens inside some shard's event (or inside
/// psim::Engine::run_as), and the router tells the Medium which execution
/// context that is:
///
/// - `current_engine()` is the `sim::Engine` of the shard running the
///   current event — the clock for packet timestamps and the per-node RNG
///   stream for loss/jitter draws.
/// - `schedule_delivery` replaces `Simulator::schedule_at` for frame
///   arrivals: a receiver on the executing shard goes into that shard's
///   queue; a remote receiver goes into the destination shard's mailbox,
///   drained in deterministic (time, origin node, origin seq) order at the
///   next window barrier. Either way the event executes in the receiver's
///   node context.
/// - `current_shard()`/`shard_count()` index the Medium's per-shard stat
///   blocks, receiver scratch buffers and broadcast-round snapshot caches,
///   so worker threads never share mutable state.
///
/// With no router installed (the default) the Medium behaves exactly as the
/// sequential single-threaded implementation always has, draw for draw.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Engine (clock + RNG context) of the shard executing the current event.
  virtual sim::Engine& current_engine() = 0;

  /// Index of the executing shard, for per-shard Medium slots.
  virtual unsigned current_shard() const = 0;

  /// Total number of shards (sizes the Medium's per-shard slots).
  virtual unsigned shard_count() const = 0;

  /// True when `receiver` lives on the executing shard (its delivery can
  /// share the sender's payload refcount; remote receivers get a copy).
  virtual bool is_local(NodeId receiver) const = 0;

  /// Schedules a frame arrival in the receiver's node context, routing
  /// cross-shard arrivals through the barrier mailboxes.
  virtual void schedule_delivery(NodeId receiver, sim::Time at,
                                 sim::EventQueue::Callback cb) = 0;
};

}  // namespace manet::net
