#include "net/medium.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "obs/obs.hpp"

namespace manet::net {

Medium::Medium(sim::Engine& sim, RadioConfig config)
    : sim_{sim},
      // The window fast path needs the concrete sequential simulator (psim
      // shard lanes schedule per-receiver through the router instead).
      seq_sim_{dynamic_cast<sim::Simulator*>(&sim)},
      config_{config},
      // The 3x3 neighborhood guarantee needs cell size >= range; degenerate
      // ranges still need a positive cell to index coincident hosts.
      grid_{std::max(config.range_m, 1e-6)},
      receiver_scratch_(1),
      stats_shards_(1),
      snapshots_(1),
      batch_stats_shards_(1) {}

void Medium::set_shard_router(ShardRouter* router) {
  if (router == nullptr) {
    router_ = nullptr;
    return;
  }
  if (config_.collision_window > sim::Duration{})
    throw std::invalid_argument{
        "sharded engine does not support the collision model: collision "
        "bookkeeping mutates receiver state at transmit time, which would "
        "race across shards"};
  router_ = router;
  const unsigned n = std::max(1u, router->shard_count());
  receiver_scratch_.assign(n, {});
  stats_shards_.assign(n, MediumStats{});
  snapshots_.assign(n, {});
  batch_stats_shards_.assign(n, BatchStats{});
}

const MediumStats& Medium::stats() const {
  if (stats_shards_.size() == 1) return stats_shards_[0];
  stats_fold_ = MediumStats{};
  for (const auto& s : stats_shards_) {
    stats_fold_.frames_sent += s.frames_sent;
    stats_fold_.deliveries += s.deliveries;
    stats_fold_.losses += s.losses;
    stats_fold_.collisions += s.collisions;
    stats_fold_.bytes_sent += s.bytes_sent;
  }
  return stats_fold_;
}

const BatchStats& Medium::batch_stats() const {
  if (batch_stats_shards_.size() == 1) return batch_stats_shards_[0];
  batch_stats_fold_ = BatchStats{};
  for (const auto& s : batch_stats_shards_) {
    batch_stats_fold_.enrolled += s.enrolled;
    batch_stats_fold_.batched_broadcasts += s.batched_broadcasts;
    batch_stats_fold_.snapshot_builds += s.snapshot_builds;
    batch_stats_fold_.snapshot_hits += s.snapshot_hits;
  }
  return batch_stats_fold_;
}

void Medium::reset_stats() {
  std::fill(stats_shards_.begin(), stats_shards_.end(), MediumStats{});
  std::fill(batch_stats_shards_.begin(), batch_stats_shards_.end(),
            BatchStats{});
}

void Medium::attach(NodeId id, Position pos, ReceiveHandler handler) {
  if (index_.contains(id))
    throw std::logic_error{"host already attached: " + id.to_string()};
  const auto slot = static_cast<std::uint32_t>(hosts_.size());
  hosts_.push_back(Host{id, pos, std::move(handler), true, -1.0, 0, {}});
  index_.emplace(id, slot);
  grid_.insert(slot, pos);
  bump_generation();
}

void Medium::detach(NodeId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  const std::uint32_t slot = it->second;
  grid_.erase(slot, hosts_[slot].pos);
  index_.erase(it);
  // Keep storage dense: move the last host into the freed slot.
  const auto last = static_cast<std::uint32_t>(hosts_.size() - 1);
  if (slot != last) {
    grid_.replace(last, slot, hosts_[last].pos);
    hosts_[slot] = std::move(hosts_[last]);
    index_[hosts_[slot].id] = slot;
  }
  hosts_.pop_back();
  bump_generation();
}

void Medium::set_handler(NodeId id, ReceiveHandler handler) {
  host(id).handler = std::move(handler);
}

bool Medium::attached(NodeId id) const { return index_.contains(id); }

std::vector<NodeId> Medium::attached_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(hosts_.size());
  for (const auto& h : hosts_) ids.push_back(h.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Medium::set_position(NodeId id, Position pos) {
  const auto it = index_.find(id);
  if (it == index_.end())
    throw std::out_of_range{"unknown host: " + id.to_string()};
  Host& h = hosts_[it->second];
  grid_.relocate(it->second, h.pos, pos);
  h.pos = pos;
  bump_generation();
}

Position Medium::position(NodeId id) const { return host(id).pos; }

void Medium::set_up(NodeId id, bool up) {
  Host& h = host(id);
  if (h.up == up) return;
  h.up = up;
  bump_generation();
}

bool Medium::is_up(NodeId id) const { return host(id).up; }

void Medium::set_loss_override(NodeId id, double loss) {
  // No generation bump: overrides never change receiver candidacy, only the
  // probability fed into the (unchanged) single loss draw.
  host(id).loss_override = loss < 0.0 ? -1.0 : loss;
}

double Medium::loss_override(NodeId id) const {
  return host(id).loss_override;
}

void Medium::set_partition(NodeId id, std::uint32_t partition) {
  // No generation bump either: snapshots carry no partition state, the
  // cross-partition check always reads the live host entries.
  host(id).partition = partition;
}

std::uint32_t Medium::partition(NodeId id) const {
  return host(id).partition;
}

void Medium::set_track_in_flight(bool on) {
  if (on && router_ != nullptr)
    throw std::logic_error{
        "in-flight tracking requires the sequential engine"};
  if (on && config_.collision_window > sim::Duration{})
    throw std::logic_error{
        "in-flight tracking does not support the collision model"};
  track_in_flight_ = on;
  if (!on) flights_.clear();
}

std::vector<InFlightFrame> Medium::in_flight() const {
  std::vector<InFlightFrame> out;
  out.reserve(flights_.size());
  for (const auto& [token, frame] : flights_) out.push_back(frame);
  std::sort(out.begin(), out.end(),
            [](const InFlightFrame& a, const InFlightFrame& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.seq < b.seq;
            });
  return out;
}

void Medium::restore_in_flight(const InFlightFrame& frame) {
  if (!track_in_flight_)
    throw std::logic_error{"restore_in_flight without tracking enabled"};
  Packet packet{frame.transmitter, frame.link_dest,
                make_payload(Bytes{frame.payload}), frame.sent_at};
  const std::uint64_t token = next_flight_token_++;
  auto on_arrival = [this, token, receiver = frame.receiver,
                     packet = std::move(packet)] {
    flights_.erase(token);
    const auto it = index_.find(receiver);
    if (it == index_.end()) return;
    Host& h = hosts_[it->second];
    if (!h.up) {
      ++stats_slot().dropped_down;
      return;
    }
    ++stats_slot().deliveries;
    if (h.handler) h.handler(packet);
  };
  const sim::EventId ev = sim_.schedule_at(frame.arrival, std::move(on_arrival));
  InFlightFrame tracked = frame;
  tracked.seq = ev.raw();
  flights_.emplace(token, std::move(tracked));
}

void Medium::restore_stats(const MediumStats& stats) {
  if (stats_shards_.size() != 1)
    throw std::logic_error{"restore_stats under the sharded engine"};
  stats_shards_[0] = stats;
}

Medium::Host& Medium::host(NodeId id) {
  const auto it = index_.find(id);
  if (it == index_.end())
    throw std::out_of_range{"unknown host: " + id.to_string()};
  return hosts_[it->second];
}

const Medium::Host& Medium::host(NodeId id) const {
  const auto it = index_.find(id);
  if (it == index_.end())
    throw std::out_of_range{"unknown host: " + id.to_string()};
  return hosts_[it->second];
}

void Medium::broadcast(NodeId sender, Bytes payload) {
  transmit(sender, kInvalidNode,
           make_payload(std::move(payload)));
}

void Medium::broadcast(NodeId sender, PayloadPtr payload) {
  transmit(sender, kInvalidNode, std::move(payload));
}

void Medium::unicast(NodeId sender, NodeId next_hop, Bytes payload) {
  transmit(sender, next_hop,
           make_payload(std::move(payload)));
}

void Medium::unicast(NodeId sender, NodeId next_hop, PayloadPtr payload) {
  transmit(sender, next_hop, std::move(payload));
}

void Medium::BroadcastBatch::enroll(NodeId /*sender*/) {
  ++medium_.batch_stats_slot().enrolled;
}

void Medium::BroadcastBatch::broadcast(NodeId sender, Bytes payload) {
  medium_.transmit_batched(sender,
                           make_payload(std::move(payload)));
}

void Medium::BroadcastBatch::broadcast(NodeId sender, PayloadPtr payload) {
  medium_.transmit_batched(sender, std::move(payload));
}

Medium::CellSnapshot& Medium::snapshot_for(SpatialGrid::CellKey cell) {
  CellSnapshot& snap = snapshots_[shard_index()][cell];
  if (snap.generation == topo_generation_) {
    ++batch_stats_slot().snapshot_hits;
    return snap;
  }
  // One gather + one ascending-NodeId sort per occupied cell per topology
  // generation, shared by every batched sender in the cell. Down hosts are
  // filtered here (set_up bumps the generation, so the snapshot can never
  // be stale about radio state).
  snap.generation = topo_generation_;
  snap.candidates.clear();
  grid_.for_each_in_neighborhood(cell, [&](std::uint32_t slot) {
    const Host& h = hosts_[slot];
    if (!h.up) return;
    snap.candidates.push_back(CellSnapshot::Candidate{h.id, slot, h.pos});
  });
  std::sort(snap.candidates.begin(), snap.candidates.end(),
            [](const CellSnapshot::Candidate& a,
               const CellSnapshot::Candidate& b) { return a.id < b.id; });
  ++batch_stats_slot().snapshot_builds;
  return snap;
}

void Medium::transmit_batched(NodeId sender, PayloadPtr payload) {
  // Tracked (checkpointable) runs bypass the snapshot fast path: the
  // per-sender transmit is observationally identical (the batch contract)
  // and schedules per receiver, which is what the flight registry hooks.
  if (track_in_flight_) {
    transmit(sender, kInvalidNode, std::move(payload));
    return;
  }
  const Host& tx = host(sender);
  if (!tx.up) return;
  sim::Engine& eng = engine();
  {
    MediumStats& st = stats_slot();
    ++st.frames_sent;
    st.bytes_sent += payload->size();
  }
  ++batch_stats_slot().batched_broadcasts;
  obs::hit(obs::Hot::kMediumBatchedBroadcasts);

  const Packet packet{sender, kInvalidNode, std::move(payload), eng.now()};
  const Position origin = tx.pos;
  const CellSnapshot& snap = snapshot_for(grid_.cell_of(origin));

  // Conservative squared-distance bounds around the exact
  // `distance(a,b) > range` predicate the per-sender path uses. dx*dx+dy*dy
  // carries ~2^-51 relative rounding error and std::hypot is within a few
  // ulps of the true distance, so with a 2^-40 relative safety band (orders
  // of magnitude wider than any of those errors) a candidate outside the
  // band is decided without the libm hypot call — provably the same way the
  // exact test would decide it — and only candidates *inside* the sliver
  // band around the range circle fall back to the byte-identical predicate.
  constexpr double kBand = 0x1p-40;
  const double range_sq = config_.range_m * config_.range_m;
  const double rr_out = range_sq * (1.0 + kBand);  // beyond: certainly out
  const double rr_in = range_sq * (1.0 - kBand);   // inside: certainly in

  // The snapshot is already ascending-NodeId and up-filtered; the exact
  // distance test and the sender exclusion preserve that order, so the RNG
  // draws and delivery order match the per-sender transmit() exactly.
  // Sequentially the deliveries are added through one coalesced-insertion
  // window (each event built in place in the queue's heap storage, sifted
  // on close); a shard router schedules per receiver instead, because the
  // receivers of one broadcast may live in different shards' queues.
  const double tx_loss = sender_loss(tx);
  std::optional<DeliveryWindow> window;
  if (seq_sim_ != nullptr && router_ == nullptr)
    window.emplace(seq_sim_->open_window());
  for (const auto& c : snap.candidates) {
    if (c.id == sender) continue;
    if (hosts_[c.slot].partition != tx.partition) continue;
    const double dx = c.pos.x - origin.x;
    const double dy = c.pos.y - origin.y;
    const double dd = dx * dx + dy * dy;
    if (dd > rr_out) continue;
    if (dd >= rr_in && distance(origin, c.pos) > config_.range_m) continue;
    Host& rx = hosts_[c.slot];
    const double loss = rx.loss_override >= 0.0
                            ? std::max(tx_loss, rx.loss_override)
                            : tx_loss;
    deliver_to(rx, packet, eng, loss, window ? &*window : nullptr);
  }
  if (window) window->close();
}

void Medium::transmit(NodeId sender, NodeId link_dest, PayloadPtr payload) {
  const Host& tx = host(sender);
  if (!tx.up) return;
  sim::Engine& eng = engine();
  {
    MediumStats& st = stats_slot();
    ++st.frames_sent;
    st.bytes_sent += payload->size();
  }

  const Packet packet{sender, link_dest, std::move(payload), eng.now()};

  const double tx_loss = sender_loss(tx);
  const std::uint32_t tx_partition = tx.partition;
  auto effective_loss = [&](const Host& rx) {
    return rx.loss_override >= 0.0 ? std::max(tx_loss, rx.loss_override)
                                   : tx_loss;
  };

  if (link_dest.valid()) {
    // Unicast fast path: at most one receiver, no scan at all.
    obs::hit(obs::Hot::kMediumUnicasts);
    if (link_dest == sender) return;
    const auto it = index_.find(link_dest);
    if (it == index_.end()) return;
    Host& rx = hosts_[it->second];
    if (!rx.up || rx.partition != tx_partition) return;
    if (distance(tx.pos, rx.pos) > config_.range_m) return;
    deliver_to(rx, packet, eng, effective_loss(rx));
    return;
  }

  obs::hit(obs::Hot::kMediumBroadcasts);
  // Broadcast: collect in-range receivers from the 3x3 grid neighborhood,
  // then deliver in ascending NodeId order so the RNG draw sequence matches
  // the full-scan implementation this replaced. Cross-partition receivers
  // are excluded here, before any RNG draw — like out-of-range ones.
  const Position origin = tx.pos;
  auto& scratch = receiver_scratch_[shard_index()];
  scratch.clear();
  grid_.for_each_candidate(origin, [&](std::uint32_t slot) {
    const Host& rx = hosts_[slot];
    if (rx.id == sender || !rx.up || rx.partition != tx_partition) return;
    if (distance(origin, rx.pos) > config_.range_m) return;
    scratch.push_back(slot);
  });
  std::sort(scratch.begin(), scratch.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return hosts_[a].id < hosts_[b].id;
            });
  for (const auto slot : scratch)
    deliver_to(hosts_[slot], packet, eng, effective_loss(hosts_[slot]));
}

void Medium::deliver_to(Host& rx, const Packet& packet, sim::Engine& eng,
                        double loss, DeliveryWindow* window) {
  // Independent per-delivery loss. Under psim, eng.rng() is the sending
  // node's private stream, so the draw sequence is invariant to shard and
  // worker-thread counts.
  if (eng.rng().bernoulli(loss)) {
    ++stats_slot().losses;
    return;
  }

  sim::Duration delay = config_.base_delay;
  if (config_.delay_jitter > sim::Duration{}) {
    delay += sim::Duration::from_us(
        eng.rng().uniform_int(0, config_.delay_jitter.us()));
  }
  const sim::Time arrival = eng.now() + delay;

  // The corruption flag is shared with later overlapping arrivals; only
  // allocated when the collision model is on (set_shard_router rejects the
  // collision model, so this whole branch is sequential-only).
  std::shared_ptr<bool> corrupted;
  if (config_.collision_window > sim::Duration{}) {
    corrupted = std::make_shared<bool>(false);
    // Purge stale entries, then collide with any overlapping arrival.
    std::erase_if(rx.arrivals, [&](const auto& a) {
      return a.first + config_.collision_window < eng.now();
    });
    for (auto& [at, flag] : rx.arrivals) {
      const auto gap = arrival >= at ? arrival - at : at - arrival;
      if (gap < config_.collision_window) {
        *flag = true;
        *corrupted = true;
      }
    }
    rx.arrivals.emplace_back(arrival, corrupted);
  }

  if (config_.collision_window > sim::Duration{}) {
    auto on_arrival = [this, receiver = rx.id, corrupted, packet, arrival] {
      const auto it = index_.find(receiver);
      if (it == index_.end()) return;
      Host& h = hosts_[it->second];
      if (!h.up) {
        ++stats_slot().dropped_down;
        return;
      }
      std::erase_if(h.arrivals,
                    [&](const auto& a) { return a.first <= arrival; });
      if (*corrupted) {
        ++stats_slot().collisions;
        return;
      }
      ++stats_slot().deliveries;
      if (h.handler) h.handler(packet);
    };
    if (window != nullptr) {
      window->add(arrival, std::move(on_arrival));
    } else {
      eng.schedule_at(arrival, std::move(on_arrival));
    }
    return;
  }

  // A cross-shard arrival carries its own deep copy of the payload: the
  // intrusive PayloadPtr refcount is non-atomic (thread-confined by
  // design), so a frame handed to another shard's mailbox must not share
  // the sender-side refcount. Local and sequential deliveries keep the
  // zero-copy sharing.
  Packet to_deliver = packet;
  if (router_ != nullptr && !router_->is_local(rx.id))
    to_deliver.data = make_payload(Bytes{packet.payload()});

  // Tracked (checkpointable) mode: same delivery semantics, plus the
  // flight-registry bookkeeping. Split out so the hot untracked path below
  // keeps its minimal capture.
  if (track_in_flight_) {
    const std::uint64_t token = next_flight_token_++;
    InFlightFrame frame{rx.id,          packet.transmitter, packet.link_dest,
                        Bytes{packet.payload()}, packet.sent_at, arrival, 0};
    auto on_arrival = [this, token, receiver = rx.id,
                       packet = std::move(to_deliver)] {
      flights_.erase(token);
      const auto it = index_.find(receiver);
      if (it == index_.end()) return;
      Host& h = hosts_[it->second];
      if (!h.up) {
        ++stats_slot().dropped_down;
        return;
      }
      ++stats_slot().deliveries;
      if (h.handler) h.handler(packet);
    };
    const sim::EventId ev = eng.schedule_at(arrival, std::move(on_arrival));
    frame.seq = ev.raw();
    flights_.emplace(token, std::move(frame));
    return;
  }

  // No collision model: `arrivals` stays empty and `corrupted` stays null,
  // so the callback needs neither — a smaller capture makes every queue
  // move of the entry cheaper on the hottest path.
  auto on_arrival = [this, receiver = rx.id, packet = std::move(to_deliver)] {
    const auto it = index_.find(receiver);
    if (it == index_.end()) return;
    Host& h = hosts_[it->second];
    if (!h.up) {
      ++stats_slot().dropped_down;
      return;
    }
    ++stats_slot().deliveries;
    if (h.handler) h.handler(packet);
  };
  if (window != nullptr) {
    window->add(arrival, std::move(on_arrival));
  } else if (router_ != nullptr) {
    router_->schedule_delivery(rx.id, arrival, std::move(on_arrival));
  } else {
    eng.schedule_at(arrival, std::move(on_arrival));
  }
}

std::vector<NodeId> Medium::neighbors_in_range(NodeId id) const {
  const Host& me = host(id);
  std::vector<NodeId> out;
  grid_.for_each_candidate(me.pos, [&](std::uint32_t slot) {
    const Host& h = hosts_[slot];
    if (h.id == id || !h.up) return;
    if (distance(me.pos, h.pos) <= config_.range_m) out.push_back(h.id);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace manet::net
