#include "net/medium.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace manet::net {

Medium::Medium(sim::Simulator& sim, RadioConfig config)
    : sim_{sim}, config_{config} {}

void Medium::attach(NodeId id, Position pos, ReceiveHandler handler) {
  if (hosts_.contains(id))
    throw std::logic_error{"host already attached: " + id.to_string()};
  hosts_.emplace(id, Host{pos, std::move(handler), true, {}});
}

void Medium::detach(NodeId id) { hosts_.erase(id); }

void Medium::set_handler(NodeId id, ReceiveHandler handler) {
  host(id).handler = std::move(handler);
}

bool Medium::attached(NodeId id) const { return hosts_.contains(id); }

void Medium::set_position(NodeId id, Position pos) { host(id).pos = pos; }

Position Medium::position(NodeId id) const { return host(id).pos; }

void Medium::set_up(NodeId id, bool up) { host(id).up = up; }

bool Medium::is_up(NodeId id) const { return host(id).up; }

Medium::Host& Medium::host(NodeId id) {
  auto it = hosts_.find(id);
  if (it == hosts_.end())
    throw std::out_of_range{"unknown host: " + id.to_string()};
  return it->second;
}

const Medium::Host& Medium::host(NodeId id) const {
  auto it = hosts_.find(id);
  if (it == hosts_.end())
    throw std::out_of_range{"unknown host: " + id.to_string()};
  return it->second;
}

void Medium::broadcast(NodeId sender, Bytes payload) {
  transmit(sender, kInvalidNode, std::move(payload));
}

void Medium::unicast(NodeId sender, NodeId next_hop, Bytes payload) {
  transmit(sender, next_hop, std::move(payload));
}

void Medium::transmit(NodeId sender, NodeId link_dest, Bytes payload) {
  const Host& tx = host(sender);
  if (!tx.up) return;
  ++stats_.frames_sent;
  stats_.bytes_sent += payload.size();

  for (const auto& [id, rx] : hosts_) {
    if (id == sender || !rx.up) continue;
    if (link_dest.valid() && id != link_dest) continue;
    if (distance(tx.pos, rx.pos) > config_.range_m) continue;
    deliver_to(sender, id, link_dest, payload);
  }
}

void Medium::deliver_to(NodeId sender, NodeId receiver, NodeId link_dest,
                        const Bytes& payload) {
  // Independent per-delivery loss.
  if (sim_.rng().bernoulli(config_.loss_probability)) {
    ++stats_.losses;
    return;
  }

  sim::Duration delay = config_.base_delay;
  if (config_.delay_jitter > sim::Duration{}) {
    delay += sim::Duration::from_us(
        sim_.rng().uniform_int(0, config_.delay_jitter.us()));
  }
  const sim::Time arrival = sim_.now() + delay;

  Host& rx = host(receiver);
  auto corrupted = std::make_shared<bool>(false);

  if (config_.collision_window > sim::Duration{}) {
    // Purge stale entries, then collide with any overlapping arrival.
    std::erase_if(rx.arrivals, [&](const auto& a) {
      return a.first + config_.collision_window < sim_.now();
    });
    for (auto& [at, flag] : rx.arrivals) {
      const auto gap = arrival >= at ? arrival - at : at - arrival;
      if (gap < config_.collision_window) {
        *flag = true;
        *corrupted = true;
      }
    }
    rx.arrivals.emplace_back(arrival, corrupted);
  }

  Packet packet{sender, link_dest, payload, sim_.now()};
  sim_.schedule_at(arrival, [this, receiver, corrupted,
                             packet = std::move(packet), arrival] {
    auto it = hosts_.find(receiver);
    if (it == hosts_.end() || !it->second.up) return;
    std::erase_if(it->second.arrivals,
                  [&](const auto& a) { return a.first <= arrival; });
    if (*corrupted) {
      ++stats_.collisions;
      return;
    }
    ++stats_.deliveries;
    if (it->second.handler) it->second.handler(packet);
  });
}

std::vector<NodeId> Medium::neighbors_in_range(NodeId id) const {
  const Host& me = host(id);
  std::vector<NodeId> out;
  for (const auto& [other, h] : hosts_) {
    if (other == id || !h.up) continue;
    if (distance(me.pos, h.pos) <= config_.range_m) out.push_back(other);
  }
  return out;
}

}  // namespace manet::net
