#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/position.hpp"

namespace manet::net {

/// Uniform-grid spatial index over 2-D points. With cell size >= the query
/// radius, every point within that radius of `p` lives in the 3x3 cell
/// neighborhood around `p`, so a range query touches O(local density)
/// points instead of O(N). The Medium uses it to find broadcast receivers;
/// the topology helpers use it for adjacency and min-separation checks.
///
/// Ids are opaque 32-bit handles chosen by the caller (the Medium stores
/// host slots, topology stores position indices).
///
/// Determinism contract: enumeration order of `for_each_candidate` /
/// `for_each_in_neighborhood` is a deterministic function of the
/// insert/erase history, but is otherwise arbitrary — callers that need a
/// canonical order (the Medium's ascending-NodeId delivery order) sort the
/// gathered candidates themselves.
class SpatialGrid {
 public:
  /// Opaque identifier of one grid cell (packed integer cell coordinates).
  /// Two points share a CellKey iff they fall in the same cell, so the
  /// Medium keys its per-cell broadcast-round snapshots by it.
  using CellKey = std::uint64_t;

  /// `cell_size` must be positive and should equal the largest query radius
  /// for the 3x3 neighborhood guarantee to hold.
  explicit SpatialGrid(double cell_size);

  void insert(std::uint32_t id, Position p);
  void erase(std::uint32_t id, Position p);
  /// Moves an id; cheap no-op when the position stays within its cell.
  void relocate(std::uint32_t id, Position from, Position to);
  /// Renames an id in place (the Medium compacts host slots on detach).
  void replace(std::uint32_t old_id, std::uint32_t new_id, Position p);
  void clear();

  /// The cell `p` falls into. Stable across inserts/erases.
  CellKey cell_of(Position p) const { return key(coord(p.x), coord(p.y)); }

  /// Calls fn(id) for every point in the 3x3 cell neighborhood of `p` — a
  /// superset of the points within cell_size of `p`; callers do the exact
  /// distance test. Enumeration order is deterministic for a given
  /// insert/erase history (callers that need a canonical order sort).
  template <typename Fn>
  void for_each_candidate(Position p, Fn&& fn) const {
    for_each_in_neighborhood(cell_of(p), std::forward<Fn>(fn));
  }

  /// Same enumeration as `for_each_candidate`, but around an explicit cell:
  /// every point whose distance to any point of cell `center` can be within
  /// cell_size lives in this 3x3 neighborhood. Used by the Medium to build
  /// one shared candidate snapshot per occupied cell per broadcast round.
  template <typename Fn>
  void for_each_in_neighborhood(CellKey center, Fn&& fn) const {
    const auto cx = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(center >> 32));
    const auto cy = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(center & 0xFFFFFFFFULL));
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (const auto id : it->second) fn(id);
      }
    }
  }

 private:
  static CellKey key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t coord(double v) const {
    return static_cast<std::int32_t>(std::floor(v * inv_cell_));
  }

  double inv_cell_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace manet::net
