#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/position.hpp"

namespace manet::net {

/// Uniform-grid spatial index over 2-D points. With cell size >= the query
/// radius, every point within that radius of `p` lives in the 3x3 cell
/// neighborhood around `p`, so a range query touches O(local density)
/// points instead of O(N). The Medium uses it to find broadcast receivers;
/// the topology helpers use it for adjacency and min-separation checks.
///
/// Ids are opaque 32-bit handles chosen by the caller (the Medium stores
/// host slots, topology stores position indices).
class SpatialGrid {
 public:
  /// `cell_size` must be positive and should equal the largest query radius
  /// for the 3x3 neighborhood guarantee to hold.
  explicit SpatialGrid(double cell_size);

  void insert(std::uint32_t id, Position p);
  void erase(std::uint32_t id, Position p);
  /// Moves an id; cheap no-op when the position stays within its cell.
  void relocate(std::uint32_t id, Position from, Position to);
  /// Renames an id in place (the Medium compacts host slots on detach).
  void replace(std::uint32_t old_id, std::uint32_t new_id, Position p);
  void clear();

  /// Calls fn(id) for every point in the 3x3 cell neighborhood of `p` — a
  /// superset of the points within cell_size of `p`; callers do the exact
  /// distance test. Enumeration order is deterministic for a given
  /// insert/erase history (callers that need a canonical order sort).
  template <typename Fn>
  void for_each_candidate(Position p, Fn&& fn) const {
    const std::int32_t cx = coord(p.x);
    const std::int32_t cy = coord(p.y);
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        for (const auto id : it->second) fn(id);
      }
    }
  }

 private:
  static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  std::int32_t coord(double v) const {
    return static_cast<std::int32_t>(std::floor(v * inv_cell_));
  }

  double inv_cell_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace manet::net
