#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "net/position.hpp"
#include "net/shard_router.hpp"
#include "net/spatial_grid.hpp"
#include "sim/simulator.hpp"

namespace manet::net {

/// Radio/channel parameters of the shared wireless medium.
struct RadioConfig {
  double range_m = 250.0;         ///< unit-disk communication range
  double loss_probability = 0.0;  ///< independent per-delivery frame loss
  /// Propagation + processing latency per delivered frame.
  sim::Duration base_delay = sim::Duration::from_us(500);
  /// Extra uniform random delay in [0, delay_jitter] per delivery.
  sim::Duration delay_jitter = sim::Duration::from_us(500);
  /// Two frames arriving at one receiver closer than this collide and are
  /// both lost — a coarse CSMA-less interference model (the paper's "high
  /// level of collisions" environment). Zero disables collisions.
  sim::Duration collision_window = sim::Duration::from_us(0);
};

/// Traffic counters, exposed for the overhead bench (Table B).
struct MediumStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t losses = 0;
  std::uint64_t collisions = 0;
  std::uint64_t bytes_sent = 0;
  /// Frames that survived the loss draw but arrived at a host that had gone
  /// down in the meantime — the drop-on-arrival rule (see ARCHITECTURE.md,
  /// "Fault model"): up/down is evaluated when the frame lands, never
  /// retroactively against in-flight frames.
  std::uint64_t dropped_down = 0;
};

/// One tracked in-flight delivery (see Medium::set_track_in_flight): the
/// full reconstruction recipe for a frame that has been transmitted (all
/// its loss/jitter draws consumed) but has not yet arrived. `seq` is the
/// event queue insertion sequence — the checkpoint machinery sorts pending
/// work by (arrival, seq) to re-arm it in the original order.
struct InFlightFrame {
  NodeId receiver;
  NodeId transmitter;
  NodeId link_dest;
  Bytes payload;
  sim::Time sent_at;
  sim::Time arrival;
  std::uint64_t seq = 0;
};

/// Accounting of the batched broadcast-round fast path: how often the
/// shared per-cell receiver snapshots were rebuilt versus reused. In a
/// static round of S senders over C occupied cells, expect C builds and
/// S - C hits; any topology mutation invalidates all snapshots.
struct BatchStats {
  std::uint64_t enrolled = 0;            ///< BroadcastBatch::enroll calls
  std::uint64_t batched_broadcasts = 0;  ///< broadcasts served via snapshots
  std::uint64_t snapshot_builds = 0;     ///< per-cell snapshots (re)built
  std::uint64_t snapshot_hits = 0;       ///< broadcasts reusing a snapshot
};

/// The shared broadcast medium. Hosts attach with a position and a receive
/// handler; transmissions reach every attached host within radio range,
/// subject to loss, delay jitter and collisions. Deterministic given the
/// simulator seed.
///
/// Hosts live in a dense vector indexed through a uniform-grid spatial
/// index (cell size = radio range), so a transmit examines only the 3x3
/// cell neighborhood of the sender instead of scanning every host.
/// Receivers are delivered in ascending NodeId order — the iteration order
/// of the original std::map full scan — so the RNG draw sequence, and
/// therefore every trace, is unchanged. Broadcasts that cluster in time
/// (the HELLO jitter window) can additionally go through the BroadcastBatch
/// fast path, which shares one candidate gather + sort per occupied cell
/// across all senders of the round — again trace-identical.
class Medium {
 public:
  using ReceiveHandler = std::function<void(const Packet&)>;

  /// Batched broadcast rounds — the HELLO fast path. OLSR HELLO emissions
  /// cluster inside one jitter window (every node fires once per
  /// hello_interval, jittered by at most `jitter`); the per-sender
  /// broadcast path pays one 3x3 grid gather + one ascending-NodeId sort
  /// per sender even though senders sharing a grid cell see the same
  /// candidate set. A BroadcastBatch lets the HELLO scheduler announce the
  /// round: each enrolled sender still transmits in its own event at its
  /// own jittered time, but the candidate gather + sort is done once per
  /// occupied cell for the whole round and shared by every sender in that
  /// cell.
  ///
  /// Determinism contract (verified by tests/medium_batch_test.cpp): a
  /// batched broadcast is observationally identical to Medium::broadcast —
  /// same receivers in the same ascending-NodeId delivery order, same RNG
  /// draw sequence (one loss draw, then one jitter draw, per receiver in
  /// that order), same arrival times, same event ordering — because the
  /// snapshots are invalidated by every topology mutation (attach, detach,
  /// set_position, set_up) and are therefore always equal to what a fresh
  /// gather would produce.
  class BroadcastBatch {
   public:
    /// Announces that `sender` will broadcast during the current jitter
    /// window (called by the HELLO scheduler when the emission is armed).
    /// Pure bookkeeping: never draws from the RNG, never schedules.
    void enroll(NodeId sender);

    /// Broadcasts through the round's shared per-cell snapshots.
    /// Equivalent to Medium::broadcast in every observable way.
    void broadcast(NodeId sender, Bytes payload);
    void broadcast(NodeId sender, PayloadPtr payload);

   private:
    friend class Medium;
    explicit BroadcastBatch(Medium& medium) : medium_{medium} {}
    BroadcastBatch(const BroadcastBatch&) = delete;
    BroadcastBatch& operator=(const BroadcastBatch&) = delete;
    Medium& medium_;
  };

  Medium(sim::Engine& sim, RadioConfig config);

  /// Installs the psim shard-awareness hook (see net/shard_router.hpp) and
  /// sizes the per-shard stat/scratch/snapshot slots. Must be called before
  /// any traffic flows; rejects radio configs the sharded engine cannot
  /// honor (the collision model needs cross-shard receiver bookkeeping at
  /// transmit time, which would race). Passing nullptr restores the
  /// sequential behavior.
  void set_shard_router(ShardRouter* router);

  void attach(NodeId id, Position pos, ReceiveHandler handler = {});
  void detach(NodeId id);
  bool attached(NodeId id) const;
  /// Ids of every attached host, ascending (fault-region sweeps iterate
  /// this so regional overrides apply in a deterministic order).
  std::vector<NodeId> attached_ids() const;

  /// Installs/replaces the receive handler of an attached host (a daemon
  /// starting on a host that was placed earlier).
  void set_handler(NodeId id, ReceiveHandler handler);

  void set_position(NodeId id, Position pos);
  Position position(NodeId id) const;

  /// Marks a host down/up (radio off); down hosts neither send nor receive.
  /// Frames already in flight toward a host that goes down are dropped on
  /// arrival (counted in MediumStats::dropped_down); frames in flight toward
  /// a host that comes back up before they land are delivered normally.
  void set_up(NodeId id, bool up);
  bool is_up(NodeId id) const;

  /// Per-host loss-rate override for radio brown-outs: when >= 0 it
  /// replaces RadioConfig::loss_probability for every frame this host sends
  /// or receives (the effective rate is the max over config, sender and
  /// receiver overrides). Negative clears the override. Never changes the
  /// number of RNG draws — only the probability of the one loss draw.
  void set_loss_override(NodeId id, double loss);
  double loss_override(NodeId id) const;

  /// Partition id for netsplit windows: frames cross only between hosts in
  /// the same partition, decided at transmit time BEFORE any RNG draw (a
  /// partitioned receiver consumes no loss/jitter draws, exactly like an
  /// out-of-range one). Default partition is 0 for every host.
  void set_partition(NodeId id, std::uint32_t partition);
  std::uint32_t partition(NodeId id) const;

  /// Opt-in registry of transmitted-but-not-yet-arrived frames, the
  /// checkpoint machinery's view of the air. Off by default (zero cost on
  /// the golden paths); requires the sequential engine and no collision
  /// model. While on, broadcasts bypass the BroadcastBatch snapshot fast
  /// path (trace-identical per the batch determinism contract).
  void set_track_in_flight(bool on);
  bool track_in_flight() const { return track_in_flight_; }

  /// Tracked in-flight frames in ascending (arrival, seq) order.
  std::vector<InFlightFrame> in_flight() const;

  /// Checkpoint restore: re-schedules one saved in-flight frame. Draws
  /// nothing — the frame's loss/jitter draws were consumed before the
  /// snapshot. Must be called in ascending saved (arrival, seq) order so
  /// the re-issued sequence numbers preserve the original tie-break order.
  void restore_in_flight(const InFlightFrame& frame);

  /// Checkpoint restore of the traffic counters (sequential engine only).
  void restore_stats(const MediumStats& stats);

  /// Link-layer broadcast to every in-range host. The payload is serialized
  /// once and shared by all receivers (zero-copy).
  void broadcast(NodeId sender, Bytes payload);
  void broadcast(NodeId sender, PayloadPtr payload);

  /// Link-layer unicast: delivered only to `next_hop`, and only if in range.
  void unicast(NodeId sender, NodeId next_hop, Bytes payload);
  void unicast(NodeId sender, NodeId next_hop, PayloadPtr payload);

  /// Ground-truth in-range neighbors — for tests and topology assertions
  /// only; protocol code must learn neighbors via HELLO exchange.
  std::vector<NodeId> neighbors_in_range(NodeId id) const;

  /// The shared batched-round handle (one per Medium). Despite the name —
  /// kept for source compatibility with the original HELLO-only fast path —
  /// agents now route every flood through it that clusters in time: jittered
  /// HELLO emissions, TC emissions, and MPR re-broadcasts of forwarded
  /// messages inside one duplicate window (Agent::Config::batched_floods).
  BroadcastBatch& hello_batch() { return batch_; }

  /// Folded traffic counters (sum over the per-shard slots; the sequential
  /// engine has exactly one slot, so this is the plain counter block).
  const MediumStats& stats() const;
  /// Clears both the frame counters and the batch gauges, so a post-warm-up
  /// reset leaves every stat block measuring the same phase.
  void reset_stats();
  const BatchStats& batch_stats() const;

  const RadioConfig& config() const { return config_; }

 private:
  struct Host {
    NodeId id;
    Position pos;
    ReceiveHandler handler;
    bool up = true;
    /// Brown-out loss override; < 0 means "use RadioConfig::loss_probability".
    double loss_override = -1.0;
    /// Netsplit partition id; frames cross only within one partition.
    std::uint32_t partition = 0;
    // Pending arrivals for collision detection: (arrival time, corrupted).
    std::vector<std::pair<sim::Time, std::shared_ptr<bool>>> arrivals;
  };

  /// Shared receiver-candidate snapshot of one grid cell: every up host in
  /// the 3x3 neighborhood, ascending NodeId, with slot and position copied
  /// into a compact array so the per-sender scan stays cache-local. Valid
  /// only while `generation` matches the Medium's topology generation.
  struct CellSnapshot {
    struct Candidate {
      NodeId id;
      std::uint32_t slot;
      Position pos;
    };
    std::uint64_t generation = 0;
    std::vector<Candidate> candidates;
  };

  using DeliveryWindow = sim::EventQueue::Window;

  void transmit(NodeId sender, NodeId link_dest, PayloadPtr payload);
  void transmit_batched(NodeId sender, PayloadPtr payload);
  /// Draws loss + jitter for one receiver (from `eng`, the executing
  /// context) and either schedules the delivery (window == nullptr), adds
  /// it to the caller's coalesced-insertion window, or — with a shard
  /// router installed — hands it to the router in the receiver's node
  /// context. Identical draws and event order for the first two. `loss`
  /// is the effective loss probability (config merged with any brown-out
  /// overrides of sender and receiver).
  void deliver_to(Host& rx, const Packet& packet, sim::Engine& eng,
                  double loss, DeliveryWindow* window = nullptr);
  /// max(config loss, sender override); deliver_to folds in the receiver's.
  double sender_loss(const Host& tx) const {
    return tx.loss_override >= 0.0
               ? std::max(config_.loss_probability, tx.loss_override)
               : config_.loss_probability;
  }
  CellSnapshot& snapshot_for(SpatialGrid::CellKey cell);
  /// Any mutation of positions/occupancy/radio state: stale all snapshots.
  void bump_generation() { ++topo_generation_; }
  Host& host(NodeId id);
  const Host& host(NodeId id) const;

  /// Execution context of the current call: the shard engine under psim,
  /// else the sequential simulator the Medium was built on.
  sim::Engine& engine() const {
    return router_ != nullptr ? router_->current_engine() : sim_;
  }
  unsigned shard_index() const {
    return router_ != nullptr ? router_->current_shard() : 0;
  }
  MediumStats& stats_slot() { return stats_shards_[shard_index()]; }
  BatchStats& batch_stats_slot() { return batch_stats_shards_[shard_index()]; }

  sim::Engine& sim_;
  /// Non-null when `sim_` is the sequential Simulator: enables the
  /// coalesced-insertion window fast path (psim shard lanes schedule
  /// per-receiver through the router instead).
  sim::Simulator* seq_sim_ = nullptr;
  ShardRouter* router_ = nullptr;
  RadioConfig config_;
  std::vector<Host> hosts_;
  std::unordered_map<NodeId, std::uint32_t> index_;
  SpatialGrid grid_;
  /// Per-shard reused transmit scratch (one slot sequentially).
  std::vector<std::vector<std::uint32_t>> receiver_scratch_;
  /// Per-shard traffic counters, folded on demand by stats().
  std::vector<MediumStats> stats_shards_;
  mutable MediumStats stats_fold_;

  BroadcastBatch batch_{*this};
  std::uint64_t topo_generation_ = 1;
  /// Per-shard broadcast-round snapshot caches: workers never share one.
  std::vector<std::unordered_map<SpatialGrid::CellKey, CellSnapshot>>
      snapshots_;
  std::vector<BatchStats> batch_stats_shards_;
  mutable BatchStats batch_stats_fold_;

  /// In-flight tracking (checkpoint support): token -> frame. Tokens are
  /// minted in schedule order, so they order identically to event seqs.
  bool track_in_flight_ = false;
  std::uint64_t next_flight_token_ = 1;
  std::unordered_map<std::uint64_t, InFlightFrame> flights_;
};

}  // namespace manet::net
