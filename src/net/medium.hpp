#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "net/position.hpp"
#include "net/spatial_grid.hpp"
#include "sim/simulator.hpp"

namespace manet::net {

/// Radio/channel parameters of the shared wireless medium.
struct RadioConfig {
  double range_m = 250.0;         ///< unit-disk communication range
  double loss_probability = 0.0;  ///< independent per-delivery frame loss
  /// Propagation + processing latency per delivered frame.
  sim::Duration base_delay = sim::Duration::from_us(500);
  /// Extra uniform random delay in [0, delay_jitter] per delivery.
  sim::Duration delay_jitter = sim::Duration::from_us(500);
  /// Two frames arriving at one receiver closer than this collide and are
  /// both lost — a coarse CSMA-less interference model (the paper's "high
  /// level of collisions" environment). Zero disables collisions.
  sim::Duration collision_window = sim::Duration::from_us(0);
};

/// Traffic counters, exposed for the overhead bench (Table B).
struct MediumStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t losses = 0;
  std::uint64_t collisions = 0;
  std::uint64_t bytes_sent = 0;
};

/// The shared broadcast medium. Hosts attach with a position and a receive
/// handler; transmissions reach every attached host within radio range,
/// subject to loss, delay jitter and collisions. Deterministic given the
/// simulator seed.
///
/// Hosts live in a dense vector indexed through a uniform-grid spatial
/// index (cell size = radio range), so a transmit examines only the 3x3
/// cell neighborhood of the sender instead of scanning every host.
/// Receivers are delivered in ascending NodeId order — the iteration order
/// of the original std::map full scan — so the RNG draw sequence, and
/// therefore every trace, is unchanged.
class Medium {
 public:
  using ReceiveHandler = std::function<void(const Packet&)>;

  Medium(sim::Simulator& sim, RadioConfig config);

  void attach(NodeId id, Position pos, ReceiveHandler handler = {});
  void detach(NodeId id);
  bool attached(NodeId id) const;

  /// Installs/replaces the receive handler of an attached host (a daemon
  /// starting on a host that was placed earlier).
  void set_handler(NodeId id, ReceiveHandler handler);

  void set_position(NodeId id, Position pos);
  Position position(NodeId id) const;

  /// Marks a host down/up (radio off); down hosts neither send nor receive.
  void set_up(NodeId id, bool up);
  bool is_up(NodeId id) const;

  /// Link-layer broadcast to every in-range host. The payload is serialized
  /// once and shared by all receivers (zero-copy).
  void broadcast(NodeId sender, Bytes payload);
  void broadcast(NodeId sender, PayloadPtr payload);

  /// Link-layer unicast: delivered only to `next_hop`, and only if in range.
  void unicast(NodeId sender, NodeId next_hop, Bytes payload);
  void unicast(NodeId sender, NodeId next_hop, PayloadPtr payload);

  /// Ground-truth in-range neighbors — for tests and topology assertions
  /// only; protocol code must learn neighbors via HELLO exchange.
  std::vector<NodeId> neighbors_in_range(NodeId id) const;

  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MediumStats{}; }

  const RadioConfig& config() const { return config_; }

 private:
  struct Host {
    NodeId id;
    Position pos;
    ReceiveHandler handler;
    bool up = true;
    // Pending arrivals for collision detection: (arrival time, corrupted).
    std::vector<std::pair<sim::Time, std::shared_ptr<bool>>> arrivals;
  };

  void transmit(NodeId sender, NodeId link_dest, PayloadPtr payload);
  void deliver_to(Host& rx, const Packet& packet);
  Host& host(NodeId id);
  const Host& host(NodeId id) const;

  sim::Simulator& sim_;
  RadioConfig config_;
  std::vector<Host> hosts_;
  std::unordered_map<NodeId, std::uint32_t> index_;
  SpatialGrid grid_;
  std::vector<std::uint32_t> receiver_scratch_;  ///< reused per transmit
  MediumStats stats_;
};

}  // namespace manet::net
