#include "net/spatial_grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace manet::net {

SpatialGrid::SpatialGrid(double cell_size) {
  if (!(cell_size > 0.0))
    throw std::invalid_argument{"SpatialGrid cell_size must be > 0"};
  inv_cell_ = 1.0 / cell_size;
}

void SpatialGrid::insert(std::uint32_t id, Position p) {
  cells_[key(coord(p.x), coord(p.y))].push_back(id);
}

void SpatialGrid::erase(std::uint32_t id, Position p) {
  const auto it = cells_.find(key(coord(p.x), coord(p.y)));
  if (it == cells_.end()) return;
  auto& ids = it->second;
  const auto pos = std::find(ids.begin(), ids.end(), id);
  if (pos == ids.end()) return;
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) cells_.erase(it);
}

void SpatialGrid::relocate(std::uint32_t id, Position from, Position to) {
  if (coord(from.x) == coord(to.x) && coord(from.y) == coord(to.y)) return;
  erase(id, from);
  insert(id, to);
}

void SpatialGrid::replace(std::uint32_t old_id, std::uint32_t new_id,
                          Position p) {
  const auto it = cells_.find(key(coord(p.x), coord(p.y)));
  if (it == cells_.end()) return;
  const auto pos = std::find(it->second.begin(), it->second.end(), old_id);
  if (pos != it->second.end()) *pos = new_id;
}

void SpatialGrid::clear() { cells_.clear(); }

}  // namespace manet::net
