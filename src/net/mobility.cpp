#include "net/mobility.hpp"

#include <algorithm>

namespace manet::net {

RandomWaypoint::RandomWaypoint(Position start, Config config)
    : config_{config}, pos_{start}, waypoint_{start} {}

void RandomWaypoint::pick_waypoint(sim::Rng& rng) {
  waypoint_ = Position{rng.uniform_real(0.0, config_.area_width),
                       rng.uniform_real(0.0, config_.area_height)};
  speed_mps_ = rng.uniform_real(config_.speed_min_mps, config_.speed_max_mps);
  has_waypoint_ = true;
}

Position RandomWaypoint::step(sim::Duration dt, sim::Rng& rng) {
  double budget_s = dt.seconds();
  while (budget_s > 1e-12) {
    if (pause_left_ > sim::Duration{}) {
      const double pause_s = std::min(budget_s, pause_left_.seconds());
      pause_left_ = pause_left_ - sim::Duration::from_seconds(pause_s);
      budget_s -= pause_s;
      continue;
    }
    if (!has_waypoint_) pick_waypoint(rng);
    const double dist = distance(pos_, waypoint_);
    if (dist < 1e-9 || speed_mps_ <= 0.0) {
      pause_left_ = config_.pause;
      has_waypoint_ = false;
      continue;
    }
    const double travel = std::min(dist, speed_mps_ * budget_s);
    const Position dir = (waypoint_ - pos_) * (1.0 / dist);
    pos_ = pos_ + dir * travel;
    budget_s -= travel / speed_mps_;
    if (distance(pos_, waypoint_) < 1e-9) {
      pause_left_ = config_.pause;
      has_waypoint_ = false;
    }
  }
  return pos_;
}

MobilityManager::MobilityManager(sim::Engine& sim, Medium& medium,
                                 sim::Duration tick)
    : sim_{sim},
      medium_{medium},
      tick_interval_{tick},
      timer_{sim, tick, sim::Duration{}, [this] { this->tick(); }} {}

void MobilityManager::set_model(NodeId id,
                                std::unique_ptr<MobilityModel> model) {
  models_[id] = std::move(model);
}

void MobilityManager::start() { timer_.start(); }
void MobilityManager::stop() { timer_.stop(); }

void MobilityManager::tick() {
  for (auto& [id, model] : models_) {
    if (!medium_.attached(id)) continue;
    medium_.set_position(id, model->step(tick_interval_, sim_.rng()));
  }
}

}  // namespace manet::net
