#pragma once

#include <cmath>

namespace manet::net {

/// 2-D position in meters.
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Position operator+(Position a, Position b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Position operator-(Position a, Position b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Position operator*(Position a, double k) {
    return {a.x * k, a.y * k};
  }
  friend constexpr bool operator==(Position a, Position b) {
    return a.x == b.x && a.y == b.y;
  }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(Position a, Position b) { return (a - b).norm(); }

}  // namespace manet::net
