#pragma once

#include <vector>

#include "net/position.hpp"
#include "sim/rng.hpp"

namespace manet::net {

/// Deterministic layouts for test/benchmark networks. All return one
/// Position per node, index = node id value.

/// Square-ish grid with the given spacing; nodes fill rows left-to-right.
std::vector<Position> grid_layout(std::size_t n, double spacing);

/// A straight line of nodes.
std::vector<Position> chain_layout(std::size_t n, double spacing);

/// Evenly spaced points on a circle.
std::vector<Position> ring_layout(std::size_t n, double radius);

/// Uniform random placement in a width x height box, rejecting placements
/// closer than min_separation to an earlier node. Throws if it cannot place
/// all nodes within a bounded number of attempts.
std::vector<Position> random_layout(std::size_t n, double width, double height,
                                    double min_separation, sim::Rng& rng);

/// Like random_layout but retries whole layouts until the unit-disk graph at
/// the given range is connected.
std::vector<Position> connected_random_layout(std::size_t n, double width,
                                              double height,
                                              double min_separation,
                                              double range, sim::Rng& rng);

/// True if the unit-disk graph over the positions at `range` is connected.
bool is_connected(const std::vector<Position>& positions, double range);

/// Adjacency of the unit-disk graph (ground truth for tests).
std::vector<std::vector<std::size_t>> adjacency(
    const std::vector<Position>& positions, double range);

}  // namespace manet::net
