#pragma once

#include <cstddef>
#include <span>

namespace manet::stats {

/// Streaming mean/variance accumulator (Welford). Numerically stable; used
/// by the confidence-interval computation over investigation evidences.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
/// Unbiased sample variance; 0 for fewer than two samples.
double sample_variance(std::span<const double> xs);
double sample_stddev(std::span<const double> xs);
/// Median (averages the middle pair for even sizes). Copies internally.
double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0,100].
double percentile(std::span<const double> xs, double p);

}  // namespace manet::stats
