#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace manet::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double sample_variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double sample_stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument{"percentile of empty sample"};
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"p outside [0,100]"};
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace manet::stats
