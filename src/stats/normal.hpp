#pragma once

namespace manet::stats {

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Inverse standard normal CDF (the quantile / probit function), needed for
/// the paper's margin of error (Eq. 9): z = quantile(1 - (1-cl)/2).
/// Peter Acklam's rational approximation refined with one Halley step;
/// absolute error below 1e-9 over (0, 1). Requires p in (0, 1).
double normal_quantile(double p);

/// Two-sided z value for a confidence level cl in (0, 1):
/// z such that P(-z <= Z <= z) = cl. E.g. cl=0.95 -> 1.959964.
double z_for_confidence(double cl);

}  // namespace manet::stats
