#pragma once

#include <span>

#include "stats/descriptive.hpp"

namespace manet::stats {

/// A two-sided confidence interval around a sample mean, per the paper's
/// §IV-C: [mean - eps, mean + eps] with eps = z * sigma / sqrt(n) (Eq. 9).
struct ConfidenceInterval {
  double mean = 0.0;
  double margin = 0.0;  ///< eps in the paper
  double level = 0.0;   ///< requested confidence level cl

  double lower() const { return mean - margin; }
  double upper() const { return mean + margin; }
  double width() const { return 2.0 * margin; }
  bool contains(double x) const { return x >= lower() && x <= upper(); }
};

/// Computes Eq. 9 from raw samples. With fewer than two samples the spread
/// is unknown; we return the maximally-uncertain margin `max_margin`
/// (the caller's decision rule then lands in "unrecognized").
ConfidenceInterval confidence_interval(std::span<const double> samples,
                                       double level,
                                       double max_margin = 2.0);

/// Same from a pre-accumulated RunningStats.
ConfidenceInterval confidence_interval(const RunningStats& stats, double level,
                                       double max_margin = 2.0);

}  // namespace manet::stats
