#pragma once

#include <span>

namespace manet::stats {

/// Binary entropy H(p) = -p log2 p - (1-p) log2 (1-p), in bits.
/// H(0) = H(1) = 0 by continuity. Requires p in [0, 1].
double binary_entropy(double p);

/// Shannon entropy of a discrete distribution (probabilities must be
/// non-negative; they are normalized internally). Returns bits.
double shannon_entropy(std::span<const double> probabilities);

/// Entropy-based trust mapping from the information-theoretic framework of
/// Sun et al. (IEEE JSAC 2006), which the paper's trust system builds on:
///   T(p) =  1 - H(p)   for p >= 0.5
///   T(p) =  H(p) - 1   for p <  0.5
/// where p is the subjective probability that the target behaves well.
/// The result lies in [-1, 1]: full trust 1 at p=1, full distrust -1 at p=0,
/// and 0 at maximal uncertainty p=0.5.
double entropy_trust(double p);

/// Inverse of entropy_trust: recovers p in [0,1] from a trust value in
/// [-1,1] (bisection; monotone on each half).
double entropy_trust_inverse(double trust);

}  // namespace manet::stats
