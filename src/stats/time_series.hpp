#pragma once

#include <map>
#include <string>
#include <vector>

namespace manet::stats {

/// Named series of (x, y) samples; the figure benches record trust/detect
/// trajectories into one of these and render it as aligned text columns.
class TimeSeries {
 public:
  void add(const std::string& series, double x, double y);
  bool has(const std::string& series) const;
  const std::vector<std::pair<double, double>>& samples(
      const std::string& series) const;
  std::vector<std::string> series_names() const;

  /// Value of the last sample of a series.
  double last(const std::string& series) const;
  /// Value at the first sample whose x >= the given x.
  double at_or_after(const std::string& series, double x) const;

  /// Renders a column-aligned table: first column x (union of all series'
  /// x values), one column per series ("-" where a series has no sample).
  std::string to_table(const std::string& x_label, int precision = 4) const;

  /// Renders CSV with the same layout (for downstream plotting).
  std::string to_csv(const std::string& x_label) const;

 private:
  std::map<std::string, std::vector<std::pair<double, double>>> data_;
  std::vector<std::string> order_;  // first-insertion order of series
};

}  // namespace manet::stats
