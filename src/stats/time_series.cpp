#include "stats/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>

namespace manet::stats {

void TimeSeries::add(const std::string& series, double x, double y) {
  auto [it, inserted] = data_.try_emplace(series);
  if (inserted) order_.push_back(series);
  it->second.emplace_back(x, y);
}

bool TimeSeries::has(const std::string& series) const {
  return data_.contains(series);
}

const std::vector<std::pair<double, double>>& TimeSeries::samples(
    const std::string& series) const {
  auto it = data_.find(series);
  if (it == data_.end()) throw std::out_of_range{"unknown series: " + series};
  return it->second;
}

std::vector<std::string> TimeSeries::series_names() const { return order_; }

double TimeSeries::last(const std::string& series) const {
  const auto& s = samples(series);
  if (s.empty()) throw std::out_of_range{"empty series: " + series};
  return s.back().second;
}

double TimeSeries::at_or_after(const std::string& series, double x) const {
  for (const auto& [sx, sy] : samples(series))
    if (sx >= x) return sy;
  throw std::out_of_range{"no sample at or after x in " + series};
}

namespace {

std::string format_cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace

std::string TimeSeries::to_table(const std::string& x_label,
                                 int precision) const {
  std::set<double> xs;
  for (const auto& [_, samples] : data_)
    for (const auto& [x, y] : samples) xs.insert(x);

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{x_label};
  header.insert(header.end(), order_.begin(), order_.end());
  rows.push_back(header);

  for (double x : xs) {
    std::vector<std::string> row{format_cell(x, 0)};
    for (const auto& name : order_) {
      const auto& s = data_.at(name);
      auto it = std::find_if(s.begin(), s.end(), [&](const auto& p) {
        return std::abs(p.first - x) < 1e-9;
      });
      row.push_back(it == s.end() ? "-" : format_cell(it->second, precision));
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::size_t> widths(header.size(), 0);
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  }
  return os.str();
}

std::string TimeSeries::to_csv(const std::string& x_label) const {
  std::set<double> xs;
  for (const auto& [_, samples] : data_)
    for (const auto& [x, y] : samples) xs.insert(x);

  std::ostringstream os;
  os << x_label;
  for (const auto& name : order_) os << ',' << name;
  os << '\n';
  for (double x : xs) {
    os << x;
    for (const auto& name : order_) {
      const auto& s = data_.at(name);
      auto it = std::find_if(s.begin(), s.end(), [&](const auto& p) {
        return std::abs(p.first - x) < 1e-9;
      });
      os << ',';
      if (it != s.end()) os << it->second;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace manet::stats
