#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace manet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument{"lo must be < hi"};
  if (bins == 0) throw std::invalid_argument{"need at least one bin"};
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_lower(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin + 1);
}

std::string Histogram::render(std::size_t max_width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        peak == 0 ? 0 : counts_[b] * max_width / std::max<std::size_t>(peak, 1);
    os << std::setw(10) << std::fixed << std::setprecision(2) << bin_lower(b)
       << " | " << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace manet::stats
