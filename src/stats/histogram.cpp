#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace manet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument{"lo must be < hi"};
  if (bins == 0) throw std::invalid_argument{"need at least one bin"};
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
  sum_ += x;
  if (x < lo_) ++underflow_;
  if (x >= hi_) ++overflow_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument{"Histogram::merge: shape mismatch"};
  for (std::size_t b = 0; b < counts_.size(); ++b)
    counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument{"quantile needs p in [0, 1]"};
  if (total_ == 0) throw std::logic_error{"quantile of an empty histogram"};
  // Rank of the requested quantile, then linear interpolation within the
  // bin that crosses it. Clamped samples sit in the edge bins, so the
  // result can never leave [lo, hi].
  const double rank = p * static_cast<double>(total_);
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t next = cumulative + counts_[b];
    if (static_cast<double>(next) >= rank && counts_[b] > 0) {
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[b]);
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return bin_lower(b) + std::clamp(within, 0.0, 1.0) * width;
    }
    cumulative = next;
  }
  return hi_;  // p == 1 with trailing empty bins
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_lower(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin + 1);
}

std::string Histogram::render(std::size_t max_width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        peak == 0 ? 0 : counts_[b] * max_width / std::max<std::size_t>(peak, 1);
    os << std::setw(10) << std::fixed << std::setprecision(2) << bin_lower(b)
       << " | " << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace manet::stats
