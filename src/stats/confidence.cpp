#include "stats/confidence.hpp"

#include <cmath>

#include "stats/normal.hpp"

namespace manet::stats {

ConfidenceInterval confidence_interval(const RunningStats& stats, double level,
                                       double max_margin) {
  ConfidenceInterval ci;
  ci.level = level;
  ci.mean = stats.mean();
  if (stats.count() < 2) {
    ci.margin = max_margin;
    return ci;
  }
  const double z = z_for_confidence(level);
  ci.margin = z * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  return ci;
}

ConfidenceInterval confidence_interval(std::span<const double> samples,
                                       double level, double max_margin) {
  RunningStats s;
  for (double x : samples) s.add(x);
  return confidence_interval(s, level, max_margin);
}

}  // namespace manet::stats
