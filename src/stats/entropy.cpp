#include "stats/entropy.hpp"

#include <cmath>
#include <stdexcept>

namespace manet::stats {

double binary_entropy(double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument{"p outside [0,1]"};
  if (p == 0.0 || p == 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double shannon_entropy(std::span<const double> probabilities) {
  double total = 0.0;
  for (double p : probabilities) {
    if (p < 0.0) throw std::invalid_argument{"negative probability"};
    total += p;
  }
  if (total <= 0.0) throw std::invalid_argument{"all-zero distribution"};
  double h = 0.0;
  for (double p : probabilities) {
    const double q = p / total;
    if (q > 0.0) h -= q * std::log2(q);
  }
  return h;
}

double entropy_trust(double p) {
  const double h = binary_entropy(p);
  return p >= 0.5 ? 1.0 - h : h - 1.0;
}

double entropy_trust_inverse(double trust) {
  if (trust < -1.0 || trust > 1.0)
    throw std::invalid_argument{"trust outside [-1,1]"};
  // On [0.5, 1], entropy_trust increases from 0 to 1; on [0, 0.5] it
  // increases from -1 to 0. Bisect the matching half.
  double lo = trust >= 0.0 ? 0.5 : 0.0;
  double hi = trust >= 0.0 ? 1.0 : 0.5;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (entropy_trust(mid) < trust)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace manet::stats
