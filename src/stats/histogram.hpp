#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace manet::stats {

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the edge bins. Used by the overhead bench to summarize per-round
/// message counts.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t bin) const;
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }

  /// ASCII rendering, one bar per bin.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace manet::stats
