#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace manet::stats {

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the edge bins (and tallied separately as underflow/overflow). Used
/// by the overhead bench to summarize per-round message counts and by the
/// obs metrics registry, whose per-thread shards merge() at Runner barriers.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t bin) const;
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Raw sum of every added sample (before edge clamping).
  double sum() const { return sum_; }
  /// Samples added with x < lo (clamped into bin 0).
  std::size_t underflow() const { return underflow_; }
  /// Samples added with x >= hi (clamped into the last bin).
  std::size_t overflow() const { return overflow_; }

  /// Folds `other` in bin-wise. The histograms must share [lo, hi) and the
  /// bin count exactly; throws std::invalid_argument otherwise. Merging is
  /// commutative and associative, so any merge order over a set of shards
  /// yields the same histogram.
  void merge(const Histogram& other);

  /// Linear-interpolated p-quantile (p in [0, 1]) over the binned counts.
  /// Out-of-range samples were clamped, so the result always lies inside
  /// [lo, hi]. Throws std::invalid_argument on p outside [0, 1] and
  /// std::logic_error when the histogram is empty.
  double quantile(double p) const;

  /// ASCII rendering, one bar per bin.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace manet::stats
