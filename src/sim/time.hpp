#pragma once

#include <cstdint>
#include <string>

namespace manet::sim {

/// Simulated time. Integer microseconds since simulation start, so that
/// event ordering is exact and runs are bit-for-bit reproducible.
class Time {
 public:
  constexpr Time() = default;
  static constexpr Time from_us(std::int64_t us) { return Time{us}; }
  static constexpr Time from_ms(std::int64_t ms) { return Time{ms * 1000}; }
  static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e6)};
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr Time operator+(Time o) const { return Time{us_ + o.us_}; }
  constexpr Time operator-(Time o) const { return Time{us_ - o.us_}; }
  constexpr Time& operator+=(Time o) {
    us_ += o.us_;
    return *this;
  }
  constexpr auto operator<=>(const Time&) const = default;

  /// "12.345678s" — used by the audit-log formatter.
  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Duration shares representation with Time; separate alias for readability.
using Duration = Time;

inline constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::from_ms(static_cast<std::int64_t>(v));
}
inline constexpr Duration operator""_s(unsigned long long v) {
  return Duration::from_us(static_cast<std::int64_t>(v) * 1'000'000);
}

}  // namespace manet::sim
