#pragma once

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace manet::sim {

/// Discrete-event simulator: a virtual clock driving an event queue plus the
/// root random stream. All substrates (radio medium, OLSR timers, IDS
/// investigation timeouts) schedule against one Simulator instance — either
/// directly or through the `Engine` interface it implements (the seam the
/// psim sharded engine plugs its per-shard lanes into).
class Simulator final : public Engine {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Time now() const override { return now_; }
  Rng& rng() override { return rng_; }

  /// Schedules `cb` to run `delay` from now. Returns a cancellable handle.
  EventId schedule(Duration delay, EventQueue::Callback cb) override;

  /// Schedules at an absolute time (must not be in the past).
  EventId schedule_at(Time at, EventQueue::Callback cb) override;

  /// Opens a coalesced-insertion window floored at now() — see
  /// EventQueue::Window. No other scheduling call may run until it closes;
  /// equivalent to `schedule_at` on each added event in order.
  EventQueue::Window open_window() { return queue_.open_window(now_); }

  void cancel(EventId id) override { queue_.cancel(id); }

  /// Runs events until the queue drains or the horizon is passed.
  void run_until(Time horizon);

  /// Runs until the queue is completely empty.
  void run_all();

  /// Executes at most one event; returns false if none is pending.
  bool step();

  std::size_t pending_events() const { return queue_.pending(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Checkpoint restore: jump the clock to the snapshot time before the
  /// pending-event inventory is re-armed. Only legal while the queue is
  /// empty (a restore starts from a freshly constructed Simulator) and the
  /// clock may never move backwards past already-executed events.
  void restore_now(Time at);

 private:
  Time now_;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t executed_ = 0;
};

}  // namespace manet::sim
