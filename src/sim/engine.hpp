#pragma once

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace manet::sim {

/// Which discrete-event engine drives a scenario.
///
/// `kSequential` is the classic single-threaded `Simulator`: one clock, one
/// event queue, one root RNG stream; its traces are pinned byte-for-byte by
/// tests/golden_trace_test.cpp. `kSharded` selects the conservative
/// barrier-synchronized parallel engine in src/psim/: the arena is
/// partitioned into spatial shards, each with its own queue, clock and
/// per-node RNG streams, and events are processed in lookahead-bounded
/// windows across a worker pool. The sharded engine carries its own
/// determinism contract (identical output for any thread count and any
/// shard count at a fixed seed) but its draw sequence differs from the
/// sequential engine's, so the two produce behaviourally equivalent — not
/// byte-identical — runs (tests/psim_test.cpp pins both properties).
enum class EngineKind {
  kSequential,  ///< single-threaded Simulator (default, legacy traces)
  kSharded,     ///< psim conservative sharded parallel engine
};

/// Abstract scheduling surface of a discrete-event engine: the virtual
/// clock, a cancellable scheduler and the random stream of the executing
/// context. Protocol code (OLSR agents, timers, the medium, the IDS) talks
/// to this interface only, so the same daemon runs unchanged on the
/// sequential `Simulator` and on one shard lane of the parallel psim
/// engine.
///
/// Contract notes for implementations:
/// - `now()` during a callback is the event's firing time.
/// - `rng()` returns the stream of the current execution context. The
///   sequential Simulator has a single root stream; a psim shard lane
///   returns the per-node counter-derived stream of the node whose event is
///   executing, which is what makes sharded runs invariant to the shard and
///   worker-thread counts.
/// - `schedule`/`schedule_at` order ties deterministically (insertion order
///   sequentially; a global (time, origin node, origin seq) key on psim).
class Engine {
 public:
  virtual ~Engine() = default;

  /// Current virtual time of this execution context.
  virtual Time now() const = 0;

  /// Random stream of the current execution context (see class comment).
  virtual Rng& rng() = 0;

  /// Schedules `cb` to run `delay` from now. Returns a cancellable handle.
  virtual EventId schedule(Duration delay, EventQueue::Callback cb) = 0;

  /// Schedules at an absolute time (must not be in the past).
  virtual EventId schedule_at(Time at, EventQueue::Callback cb) = 0;

  /// Cancels a previously scheduled event (O(1), lazy).
  virtual void cancel(EventId id) = 0;
};

}  // namespace manet::sim
