#include "sim/time.hpp"

#include <cstdio>

namespace manet::sim {

std::string Time::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(us_ / 1'000'000),
                static_cast<long long>(us_ % 1'000'000 < 0 ? -(us_ % 1'000'000)
                                                           : us_ % 1'000'000));
  return buf;
}

}  // namespace manet::sim
