#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace manet::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  ++live_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id.id_);
  if (it != cancelled_.end() && *it == id.id_) return;
  cancelled_.insert(it, id.id_);
  if (live_ > 0) --live_;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const auto seq = heap_.top().seq;
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
    if (it == cancelled_.end() || *it != seq) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty"};
  return heap_.top().at;
}

Time EventQueue::run_next() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next on empty"};
  // Move the entry out before running: the callback may schedule/cancel.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  if (live_ > 0) --live_;
  e.cb();
  return e.at;
}

}  // namespace manet::sim
