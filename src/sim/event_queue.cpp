#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace manet::sim {

void EventQueue::require_no_window() const {
  if (window_open_)
    throw std::logic_error{"EventQueue operation while a Window is open"};
}

EventId EventQueue::schedule(Time at, Callback cb) {
  require_no_window();
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(cb)});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  require_no_window();
  if (!id.valid()) return;
  if (cancelled_.insert(id.id_).second && live_ > 0) --live_;
}

void EventQueue::sift_up(std::size_t i) const {
  // Fast path for the dominant case (timer rearms and frame deliveries are
  // scheduled in near-ascending time order): the new entry already sits
  // below its parent, so no 112-byte Entry moves happen at all.
  if (i == 0 || !earlier(heap_[i], heap_[(i - 1) / 2])) return;
  Entry e = std::move(heap_[i]);
  do {
    const std::size_t parent = (i - 1) / 2;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  } while (i > 0 && earlier(e, heap_[(i - 1) / 2]));
  heap_[i] = std::move(e);
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(e);
}

void EventQueue::pop_top() const {
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    pop_top();
  }
}

bool EventQueue::empty() const {
  require_no_window();
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  require_no_window();
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty"};
  return heap_.front().at;
}

Time EventQueue::run_next() {
  require_no_window();
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next on empty"};
  // Move the entry out before running: the callback may schedule/cancel.
  Entry e = std::move(heap_.front());
  pop_top();
  if (live_ > 0) --live_;
  e.cb();
  return e.at;
}

}  // namespace manet::sim
