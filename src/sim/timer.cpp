#include "sim/timer.hpp"

#include <stdexcept>
#include <utility>

namespace manet::sim {

PeriodicTimer::PeriodicTimer(Engine& sim, Duration period, Duration jitter,
                             std::function<void()> on_fire)
    : sim_{sim}, period_{period}, jitter_{jitter}, on_fire_{std::move(on_fire)} {
  if (period_ <= Duration{}) throw std::invalid_argument{"period must be > 0"};
  if (jitter_ < Duration{} || jitter_ >= period_)
    throw std::invalid_argument{"jitter must be in [0, period)"};
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

void PeriodicTimer::schedule_next() {
  Duration delay = period_;
  if (jitter_ > Duration{}) {
    const auto sub = sim_.rng().uniform_int(0, jitter_.us());
    delay = Duration::from_us(period_.us() - sub);
  }
  arm_at(sim_.now() + delay);
}

void PeriodicTimer::resume_at(Time at) {
  if (running_) throw std::logic_error{"resume_at on a running timer"};
  running_ = true;
  arm_at(at);
}

void PeriodicTimer::arm_at(Time at) {
  next_fire_ = at;
  pending_ = sim_.schedule_at(at, [this] {
    if (!running_) return;
    schedule_next();
    on_fire_();
  });
  if (on_schedule_) on_schedule_(at);
}

void OneShotTimer::arm(Duration delay, std::function<void()> on_fire) {
  cancel();
  armed_ = true;
  pending_ = sim_.schedule(delay, [this, fire = std::move(on_fire)] {
    armed_ = false;
    fire();
  });
}

void OneShotTimer::cancel() {
  if (!armed_) return;
  sim_.cancel(pending_);
  pending_ = EventId{};
  armed_ = false;
}

}  // namespace manet::sim
