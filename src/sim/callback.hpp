#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace manet::sim {

/// Move-only `void()` callable with small-buffer optimization. The simulator
/// hot path schedules millions of short-lived lambdas (frame deliveries,
/// timer ticks); storing their captures inline in the event-queue entries
/// avoids one heap allocation per event, which std::function cannot
/// guarantee. Captures larger than kInlineSize (or not nothrow-movable) fall
/// back to the heap transparently.
class Callback {
 public:
  /// Sized for the largest hot-path lambda: the Medium frame delivery
  /// closure (this + receiver id + corruption flag + Packet + arrival time).
  static constexpr std::size_t kInlineSize = 96;

  Callback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule() call site.
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  Callback(Callback&& other) noexcept { take(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Throws std::bad_function_call when empty, like std::function did.
  void operator()() {
    if (ops_ == nullptr) throw std::bad_function_call{};
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into `to` and destroys `from` (trivial pointer copy
    /// for heap-stored targets).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* from, void* to) noexcept {
          Fn* f = static_cast<Fn*>(from);
          ::new (to) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() noexcept {
    static constexpr Ops ops{
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* from, void* to) noexcept {
          ::new (to) Fn*(*static_cast<Fn**>(from));
        },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); },
    };
    return &ops;
  }

  void take(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace manet::sim
