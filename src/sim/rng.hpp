#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace manet::sim {

/// Deterministic pseudo-random source (xoshiro256**). Every stochastic
/// component of the simulator draws from an explicitly seeded Rng so that a
/// scenario is fully reproducible from its seed. The hot draws (next_u64,
/// bernoulli, uniform_int) are defined inline: the medium performs one
/// bernoulli + one uniform_int per frame delivery, and keeping them in the
/// header lets the compiler fold them into the delivery loop.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  /// Determinism contract: consumes next_u64 draws via rejection sampling
  /// (no modulo bias); the number of draws and the result depend only on
  /// the stream state and the span, never on caching below.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Rejection sampling to avoid modulo bias. The rejection limit is a
    // pure function of the span; hot callers (frame delivery jitter, timer
    // jitter) reuse one span millions of times, so cache the last limit to
    // skip the 64-bit division. The cached value is identical to the
    // recomputed one, so the draw sequence is unchanged.
    if (span != cached_span_) {
      cached_span_ = span;
      cached_limit_ = std::numeric_limits<std::uint64_t>::max() -
                      std::numeric_limits<std::uint64_t>::max() % span;
    }
    const std::uint64_t limit = cached_limit_;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of an indexable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child stream (for per-node randomness).
  Rng fork() { return Rng{next_u64()}; }

  /// Serializable stream cursor: the xoshiro256** state words plus the
  /// Box-Muller spare. The uniform_int span/limit memo is deliberately
  /// excluded — it is a pure function of the span that is recomputed on
  /// the first post-restore draw, so dropping it cannot change the draw
  /// sequence (see the uniform_int contract above).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, has_cached_normal_,
                 cached_normal_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
    cached_span_ = 0;
    cached_limit_ = 0;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  std::uint64_t cached_span_ = 0;   ///< uniform_int limit memo (span 0 = none)
  std::uint64_t cached_limit_ = 0;
};

}  // namespace manet::sim
