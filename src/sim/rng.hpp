#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace manet::sim {

/// Deterministic pseudo-random source (xoshiro256**). Every stochastic
/// component of the simulator draws from an explicitly seeded Rng so that a
/// scenario is fully reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of an indexable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child stream (for per-node randomness).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace manet::sim
