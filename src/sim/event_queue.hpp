#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace manet::psim {
class ShardSim;  // mints EventIds for the sharded engine's per-shard queues
}  // namespace manet::psim

namespace manet::sim {

/// Handle that allows a scheduled event to be cancelled.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return id_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

  /// Underlying insertion sequence number (0 = invalid). Exposed for the
  /// checkpoint machinery, which sorts pending work by original
  /// (time, sequence) to re-arm it in the exact pre-snapshot order.
  constexpr std::uint64_t raw() const { return id_; }

 private:
  friend class EventQueue;
  friend class ::manet::psim::ShardSim;
  explicit constexpr EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so a
/// run is deterministic regardless of the heap implementation. Entries hold
/// their callback inline (sim::Callback small-buffer storage) in a manual
/// binary heap, so steady-state scheduling performs no per-event heap
/// allocation. Cancellation is O(1) lazy: cancelled ids go into a hash set
/// and matching entries are discarded when they surface at the heap top.
///
/// Determinism contract: events run in ascending (time, insertion sequence)
/// order. `schedule_window` assigns the same sequence numbers as the
/// equivalent series of `schedule` calls, so coalesced insertion never
/// changes the execution order of anything.
class EventQueue {
 public:
  using Callback = sim::Callback;

  EventId schedule(Time at, Callback cb);

  void cancel(EventId id);

  /// Coalesced-insertion window for a burst of events prepared together —
  /// the per-receiver deliveries of one batched broadcast. Each add()
  /// constructs its entry directly into heap storage (no intermediate
  /// buffer, no extra callback relocation) and entries are sifted into
  /// place when the window closes. Sequence numbers are assigned at add()
  /// time and sifting in add-order reproduces exactly the heap sequential
  /// schedule() calls would build, so a window is observationally identical
  /// to scheduling each event individually — same EventIds, same pop order.
  ///
  /// While a window is open the heap invariant is suspended: no other
  /// EventQueue operation (schedule, cancel, empty, next_time, run_next,
  /// open_window) may run until it closes — they throw std::logic_error
  /// so a violation fails loudly instead of silently reordering events.
  /// Events may not be added before the `floor` time the window was
  /// opened with (the simulator's now()).
  class Window {
   public:
    Window(Window&& other) noexcept
        : q_{other.q_}, floor_{other.floor_}, first_{other.first_} {
      other.q_ = nullptr;
    }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;
    Window& operator=(Window&&) = delete;
    ~Window() { close(); }

    /// Appends one event; the callback is constructed in place inside the
    /// queue's storage from `f`.
    template <typename F>
    void add(Time at, F&& f) {
      if (at < floor_)
        throw std::invalid_argument{"EventQueue::Window::add in the past"};
      q_->heap_.emplace_back(at, q_->next_seq_++, std::forward<F>(f));
      ++q_->live_;
    }

    /// Restores the heap invariant over the added entries. Idempotent;
    /// also run by the destructor.
    void close() {
      if (q_ == nullptr) return;
      for (std::size_t i = first_; i < q_->heap_.size(); ++i) q_->sift_up(i);
      q_->window_open_ = false;
      q_ = nullptr;
    }

   private:
    friend class EventQueue;
    Window(EventQueue* q, Time floor)
        : q_{q}, floor_{floor}, first_{q->heap_.size()} {
      q->window_open_ = true;
    }
    EventQueue* q_;
    Time floor_;
    std::size_t first_;
  };

  /// Opens a coalesced-insertion window; `floor` is the earliest admissible
  /// event time (callers pass the current simulation time). Windows do not
  /// nest.
  Window open_window(Time floor) {
    require_no_window();
    return Window{this, floor};
  }

  bool empty() const;
  Time next_time() const;

  /// Pops and runs the earliest event; returns its time.
  Time run_next();

  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  // The heap mutators are const so that empty()/next_time() can discard
  // cancelled entries; heap_ and cancelled_ are mutable caches of the same
  // logical queue (as in the previous priority_queue implementation).
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void pop_top() const;
  void drop_cancelled() const;
  void require_no_window() const;

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  bool window_open_ = false;
};

}  // namespace manet::sim
