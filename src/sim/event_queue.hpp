#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace manet::sim {

/// Handle that allows a scheduled event to be cancelled.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return id_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so a
/// run is deterministic regardless of the heap implementation. Entries hold
/// their callback inline (sim::Callback small-buffer storage) in a manual
/// binary heap, so steady-state scheduling performs no per-event heap
/// allocation. Cancellation is O(1) lazy: cancelled ids go into a hash set
/// and matching entries are discarded when they surface at the heap top.
class EventQueue {
 public:
  using Callback = sim::Callback;

  EventId schedule(Time at, Callback cb);
  void cancel(EventId id);

  bool empty() const;
  Time next_time() const;

  /// Pops and runs the earliest event; returns its time.
  Time run_next();

  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  // The heap mutators are const so that empty()/next_time() can discard
  // cancelled entries; heap_ and cancelled_ are mutable caches of the same
  // logical queue (as in the previous priority_queue implementation).
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void pop_top() const;
  void drop_cancelled() const;

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace manet::sim
