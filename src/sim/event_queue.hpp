#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace manet::sim {

/// Handle that allows a scheduled event to be cancelled.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return id_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so a
/// run is deterministic regardless of the heap implementation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventId schedule(Time at, Callback cb);
  void cancel(EventId id);

  bool empty() const;
  Time next_time() const;

  /// Pops and runs the earliest event; returns its time.
  Time run_next();

  std::size_t pending() const { return live_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::vector<std::uint64_t> cancelled_;  // sorted ids
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace manet::sim
