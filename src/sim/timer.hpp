#pragma once

#include <functional>

#include "sim/engine.hpp"

namespace manet::sim {

/// Periodic timer with optional uniform jitter, as required by RFC 3626
/// (§18.3: emission intervals should be jittered to avoid synchronization).
/// The timer stops automatically when destroyed (RAII).
///
/// Determinism contract: each arming draws exactly one uniform_int from the
/// simulator RNG when jitter > 0 (and none otherwise), before `on_fire`
/// runs; rearming happens before `on_fire` so the callback's own draws come
/// after the rearm draw.
class PeriodicTimer {
 public:
  /// `jitter` is the maximum amount subtracted uniformly at random from each
  /// period, i.e. the next firing is period - U[0, jitter] from the last.
  PeriodicTimer(Engine& sim, Duration period, Duration jitter,
                std::function<void()> on_fire);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Observer called after every arming with the absolute fire time — how
  /// the OLSR HELLO scheduler enrolls the upcoming emission into the
  /// Medium's BroadcastBatch. Must not draw from the RNG or schedule
  /// events, so installing it cannot perturb a run.
  void set_on_schedule(std::function<void(Time fire_at)> on_schedule) {
    on_schedule_ = std::move(on_schedule);
  }

  void set_period(Duration period) { period_ = period; }
  Duration period() const { return period_; }

  /// Absolute time of the currently pending firing (meaningful only while
  /// running). Checkpoints record this so a restore can re-arm at exactly
  /// the pre-snapshot moment.
  Time next_fire() const { return next_fire_; }

  /// Insertion sequence of the pending event — the checkpoint sort key.
  std::uint64_t pending_seq() const { return pending_.raw(); }

  /// Checkpoint restore: arms the timer at the absolute time a snapshot
  /// recorded WITHOUT drawing jitter — that draw already happened when the
  /// original arming ran. Subsequent rearms draw normally again.
  void resume_at(Time at);

 private:
  void schedule_next();
  void arm_at(Time at);

  Engine& sim_;
  Duration period_;
  Duration jitter_;
  std::function<void()> on_fire_;
  std::function<void(Time)> on_schedule_;
  EventId pending_{};
  Time next_fire_{};
  bool running_ = false;
};

/// Single-shot timer handle (RAII cancel), used for investigation timeouts.
class OneShotTimer {
 public:
  explicit OneShotTimer(Engine& sim) : sim_{sim} {}
  ~OneShotTimer() { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  void arm(Duration delay, std::function<void()> on_fire);
  void cancel();
  bool armed() const { return armed_; }

 private:
  Engine& sim_;
  EventId pending_{};
  bool armed_ = false;
};

}  // namespace manet::sim
