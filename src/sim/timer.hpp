#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace manet::sim {

/// Periodic timer with optional uniform jitter, as required by RFC 3626
/// (§18.3: emission intervals should be jittered to avoid synchronization).
/// The timer stops automatically when destroyed (RAII).
class PeriodicTimer {
 public:
  /// `jitter` is the maximum amount subtracted uniformly at random from each
  /// period, i.e. the next firing is period - U[0, jitter] from the last.
  PeriodicTimer(Simulator& sim, Duration period, Duration jitter,
                std::function<void()> on_fire);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  void set_period(Duration period) { period_ = period; }
  Duration period() const { return period_; }

 private:
  void schedule_next();

  Simulator& sim_;
  Duration period_;
  Duration jitter_;
  std::function<void()> on_fire_;
  EventId pending_{};
  bool running_ = false;
};

/// Single-shot timer handle (RAII cancel), used for investigation timeouts.
class OneShotTimer {
 public:
  explicit OneShotTimer(Simulator& sim) : sim_{sim} {}
  ~OneShotTimer() { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  void arm(Duration delay, std::function<void()> on_fire);
  void cancel();
  bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  EventId pending_{};
  bool armed_ = false;
};

}  // namespace manet::sim
