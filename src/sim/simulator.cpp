#include "sim/simulator.hpp"

#include <stdexcept>

namespace manet::sim {

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

EventId Simulator::schedule(Duration delay, EventQueue::Callback cb) {
  if (delay < Duration{}) throw std::invalid_argument{"negative delay"};
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) throw std::invalid_argument{"schedule_at in the past"};
  return queue_.schedule(at, std::move(cb));
}

void Simulator::run_until(Time horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    // Advance the clock BEFORE executing so callbacks observe their own
    // firing time via now().
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
}

void Simulator::restore_now(Time at) {
  if (!queue_.empty())
    throw std::logic_error{"restore_now with pending events"};
  if (at < now_) throw std::invalid_argument{"restore_now into the past"};
  now_ = at;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.run_next();
  ++executed_;
  return true;
}

}  // namespace manet::sim
