#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace manet::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64, the recommended seeding procedure for
  // the xoshiro family (avoids correlated low-entropy states).
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace manet::sim
