#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace manet::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64, the recommended seeding procedure for
  // the xoshiro family (avoids correlated low-entropy states).
  for (auto& word : s_) word = splitmix64(seed);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace manet::sim
