#pragma once

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/investigation.hpp"
#include "core/pipeline.hpp"
#include "core/signature.hpp"
#include "core/signatures_forwarding.hpp"
#include "sim/timer.hpp"
#include "trust/detection.hpp"
#include "trust/trust_store.hpp"

namespace manet::core {

struct DetectorConfig {
  trust::TrustParams trust_params;
  trust::DecisionConfig decision;
  InvestigationConfig investigation;
  /// Period of the autonomous log scan.
  sim::Duration scan_interval = sim::Duration::from_seconds(5.0);
  /// Window for contradictory-HELLO signatures (the paper's delta-t).
  sim::Duration hello_window = sim::Duration::from_seconds(6.0);
  /// An MPR that has not retransmitted our TC after this long is E2-suspect.
  sim::Duration fwd_timeout = sim::Duration::from_seconds(4.0);
  /// TC receptions from one originator within storm_window that count as a
  /// broadcast storm.
  std::size_t storm_burst = 20;
  sim::Duration storm_window = sim::Duration::from_seconds(5.0);
  /// Re-investigation cooldown per disputed (suspect, subject) link.
  sim::Duration suspect_cooldown = sim::Duration::from_seconds(10.0);
  /// Minimum |Detect| for a round to move responder trust at all; below it
  /// the aggregate is considered pure noise.
  double trust_update_min_detect = 0.1;
  /// Fault-tolerance gate, off by default (zero) so legacy traces are
  /// untouched. When positive, a kIntruder verdict is downgraded to
  /// kUnrecognized if this node's own log shows no reception from the
  /// suspect within the window: a crashed node cannot answer for itself,
  /// and silence is indistinguishable from guilt only to a naive detector.
  /// Suppressions are counted in degradation().suppressed_convictions.
  sim::Duration liveness_window{};
  /// When true, a responder that timed out has its trust relaxed toward the
  /// default (TrustStore::decay_idle) instead of frozen at its last value —
  /// long-dead nodes neither keep stale high trust nor stale suspicion.
  /// Off by default for trace stability.
  bool decay_unresponsive = false;
  /// Grayhole path: audit whether WILL_ALWAYS MPRs re-forward third-party
  /// floods (core/signatures_forwarding.hpp) and investigate failures
  /// through the ordinary kForwarding round. Off by default so legacy
  /// traces — and the signature set the spoofing suites pin — are
  /// untouched.
  bool forwarding_audit = false;
  ForwardingAuditConfig audit;
};

/// The decision-side subset of a DetectorConfig — what a recorded audit
/// log's header must reproduce for a byte-identical offline replay.
PipelineConfig pipeline_config(NodeId self, const DetectorConfig& config);

/// The paper's distributed, log- and signature-based intrusion detector,
/// one instance per participating node. It periodically re-reads the
/// node's audit log **as text** (never touching protocol state), matches it
/// against the OLSR attack signatures, derives the E1-E3 triggers of
/// Expression 4, and launches cooperative investigations.
///
/// The detector is the *producer* half of the detection stack: everything
/// downstream of a completed round — Eq. 8 aggregation, the Eq. 9-10
/// pooled decision, liveness gating, trust updates — lives in the owned
/// DetectionPipeline, which consumes the abstract audit-event stream this
/// class emits (log lines + completed rounds). tools/manet_detect feeds
/// the same pipeline from a recorded binary audit log instead.
class Detector {
 public:
  /// `investigations` is the node's investigation endpoint (shared so that
  /// nodes answer queries whether or not they run their own detector); it
  /// must outlive the Detector.
  Detector(sim::Engine& sim, olsr::Agent& agent,
           InvestigationManager& investigations, DetectorConfig config = {});

  void start();
  void stop();

  /// One scan pass over the log growth since the previous scan. Returns the
  /// number of investigations launched.
  std::size_t scan_once();

  /// Directly investigates a claim (round-driven experiments, §V): verifiers
  /// default to the suspect's believed 1-hop neighborhood.
  void investigate_claim(NodeId suspect, NodeId subject, bool claimed_up,
                         std::vector<EvidenceTag> tags,
                         std::vector<NodeId> verifiers = {});

  /// The consuming half of the detection stack (exposed so the experiment
  /// harness can attach a recorder or drive idle decay through the stream).
  DetectionPipeline& pipeline() { return pipeline_; }
  const DetectionPipeline& pipeline() const { return pipeline_; }

  trust::TrustStore& trust_store() { return pipeline_.trust_store(); }
  const trust::TrustStore& trust_store() const {
    return pipeline_.trust_store();
  }
  InvestigationManager& investigations() { return investigations_; }

  const std::deque<DetectionReport>& reports() const {
    return pipeline_.reports();
  }
  using ReportCallback = DetectionPipeline::ReportCallback;
  void set_report_callback(ReportCallback cb) {
    pipeline_.set_report_callback(std::move(cb));
  }

  /// Nodes currently believed to be the suspect's 1-hop neighborhood,
  /// from this node's own log (advertised + advertising).
  std::vector<NodeId> believed_neighbors_of(NodeId suspect) const;

  /// Advertised links of `suspect` that local knowledge cannot corroborate
  /// (phantom neighbors) or actively contradicts; empty when everything
  /// checks out. At most `max_links` are returned. Exposed for tests.
  std::vector<NodeId> find_disputed_links(NodeId suspect,
                                          std::size_t max_links = 3) const;

  const DetectorConfig& config() const { return config_; }

  /// Latest time this node's own log records a reception (HELLO or TC
  /// relay) from `node`; Time{} when the log never heard it. This is the
  /// liveness oracle of the conviction gate — log-derived like everything
  /// else the IDS consumes (feeds pending log growth to the pipeline
  /// first, hence non-const).
  sim::Time last_heard_of(NodeId node);

  const DetectorDegradation& degradation() const {
    return pipeline_.degradation();
  }

  /// One pooled second-hand answer (public for checkpointing).
  using PooledAnswer = DetectionPipeline::PooledAnswer;
  /// One TC awaiting MPR retransmission (E2 bookkeeping; public for
  /// checkpointing).
  struct SentTc {
    sim::Time at;
    std::int64_t seq;
    std::set<NodeId> mprs_then;
    std::set<NodeId> heard_from;
  };

  /// Checkpoint image of the detector's log-derived state. The trust store
  /// is persisted through its own surface and the report ring is skipped
  /// (nothing trace-relevant reads old reports). Only valid while the scan
  /// timer is stopped — the experiment harness drives rounds manually.
  struct Persisted {
    sim::Time last_scan{};
    std::vector<NodeId> current_mprs;
    std::vector<SentTc> pending_tcs;
    std::vector<std::pair<std::pair<NodeId, NodeId>, sim::Time>>
        last_investigated;
    std::vector<std::pair<std::pair<NodeId, NodeId>, std::vector<PooledAnswer>>>
        answer_pool;
    DetectorDegradation degradation;
    ForwardingAuditor::Persisted auditor;
  };
  Persisted persist() const;
  void restore(Persisted p);

  /// Streams agent-log records appended since the previous call into the
  /// pipeline (kLine events). Runs automatically before every round/scan so
  /// the pipeline's liveness oracle is as fresh as the log itself; public so
  /// recorders can flush the tail of the log after the last scan (otherwise
  /// lines logged after the final round never reach the live pipeline and
  /// its counters lag an audit-log replay of the same run). Idempotent and
  /// side-effect-free beyond the liveness map — no RNG draws, no trust
  /// mutation, no audit-log writes.
  void feed_log_growth();

 private:
  void on_round_complete(const RoundResult& result,
                         std::vector<EvidenceTag> tags);
  void process_records(const std::vector<logging::LogRecord>& records,
                       std::size_t& launched);
  void check_forward_timeouts(std::vector<logging::LogRecord>& synthesized);
  bool in_cooldown(NodeId suspect, NodeId subject) const;

  sim::Engine& sim_;
  olsr::Agent& agent_;
  DetectorConfig config_;
  DetectionPipeline pipeline_;
  InvestigationManager& investigations_;
  SignatureMatcher matcher_;
  ForwardingAuditor auditor_;
  sim::PeriodicTimer scan_timer_;

  sim::Time last_scan_{};
  // State reconstructed purely from the log.
  std::set<NodeId> current_mprs_;
  std::deque<SentTc> pending_tcs_;
  std::map<std::pair<NodeId, NodeId>, sim::Time> last_investigated_;
  /// Absolute index of the next agent-log record to stream into the
  /// pipeline (clamped up if retention already dropped it).
  std::uint64_t next_feed_ = 0;
  bool running_ = false;
};

}  // namespace manet::core
