#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "olsr/agent.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace manet::core {

using net::NodeId;

/// DATA-message protocol id carrying the investigation exchange.
inline constexpr std::uint16_t kInvestigationProtocol = 42;

/// What the verifier is asked about (§III-B/C).
enum class QueryKind : std::uint8_t {
  /// "Is the link suspect-subject up, as the suspect advertises?"
  /// Confirms/refutes E4 (suspect does not cover an adjacent neighbor) and
  /// E5 (suspect advertises a distant/non-existing node).
  kLinkStatus = 1,
  /// "Does the suspect forward your traffic?" (E2, drop attacks.)
  kForwarding = 2,
};

struct LinkQuery {
  std::uint32_t investigation_id = 0;
  QueryKind kind = QueryKind::kLinkStatus;
  NodeId suspect;
  NodeId subject;    ///< far end of the disputed link (kLinkStatus)
  bool claimed_up = true;  ///< the suspect's advertised claim
};

struct LinkAnswer {
  std::uint32_t investigation_id = 0;
  NodeId responder;
  NodeId suspect;
  NodeId subject;
  /// +1: responder's observation agrees with the suspect's claim,
  /// -1: contradicts it, 0: cannot tell.
  double evidence = 0.0;
};

std::vector<std::uint8_t> encode_query(const LinkQuery& q);
std::vector<std::uint8_t> encode_answer(const LinkAnswer& a);
/// Return nullopt on malformed payloads (dropped like any corrupt packet).
std::optional<LinkQuery> decode_query(const std::vector<std::uint8_t>& bytes);
std::optional<LinkAnswer> decode_answer(const std::vector<std::uint8_t>& bytes);
bool is_query(const std::vector<std::uint8_t>& bytes);

/// How this node answers investigations it receives.
enum class AnswerPolicy : std::uint8_t {
  kHonest,  ///< report the true observation
  kLiar,    ///< the paper's colluding misbehaving node: invert the truth
  kSilent,  ///< never answer (starves the requester into e=0)
  kRandom,  ///< answer +/-1 uniformly (noise, for robustness tests)
};

struct InvestigationConfig {
  sim::Duration answer_timeout = sim::Duration::from_seconds(2.0);
  /// Additional attempts through alternative paths after a timeout
  /// (Algorithm 1: try the other covering MPRs, then any alternate route).
  int max_retries = 2;
  /// How fresh a HELLO must be for an honest observation.
  sim::Duration hello_freshness = sim::Duration::from_seconds(6.0);
};

struct RoundAnswer {
  NodeId responder;
  double evidence = 0.0;  ///< 0 when unanswered
  bool answered = false;
};

struct RoundResult {
  std::uint32_t id = 0;
  LinkQuery query;
  std::vector<RoundAnswer> answers;
  std::size_t timeouts = 0;
};

/// Traffic/robustness counters (Table B overhead bench).
struct InvestigationStats {
  std::uint64_t queries_sent = 0;
  std::uint64_t answers_sent = 0;
  std::uint64_t answers_received = 0;
  std::uint64_t retries = 0;
  std::uint64_t route_failures = 0;
};

/// Both sides of the cooperative investigation (Algorithm 1): as requester
/// it sends LinkQuery to each verifier, source-routed AROUND the suspect,
/// with timeout-driven retries over alternative paths; as responder it
/// answers queries per its AnswerPolicy using only its own protocol
/// state/audit log. Installs itself as the agent's DATA handler.
class InvestigationManager {
 public:
  InvestigationManager(sim::Engine& sim, olsr::Agent& agent,
                       InvestigationConfig config = {},
                       AnswerPolicy policy = AnswerPolicy::kHonest);

  void set_policy(AnswerPolicy policy) { policy_ = policy; }
  AnswerPolicy policy() const { return policy_; }

  using RoundCallback = std::function<void(const RoundResult&)>;

  /// Queries `verifiers` about the suspect's claim; `done` fires once every
  /// verifier answered or exhausted its retries.
  void investigate(const LinkQuery& query, std::vector<NodeId> verifiers,
                   RoundCallback done);

  /// The honest observation this node would give for a query (exposed for
  /// tests; the responder path uses it).
  double honest_observation(const LinkQuery& query) const;

  const InvestigationStats& stats() const { return stats_; }
  std::size_t outstanding() const { return outstanding_.size(); }

  /// Messages of other protocols are forwarded here (protocol chaining on
  /// the single agent DATA handler); return value ignored.
  using Fallback = std::function<bool(const olsr::DataMessage&)>;
  void set_fallback(Fallback fallback) { fallback_ = std::move(fallback); }

  /// Checkpoint surface: investigation ids are monotonic, so a restored run
  /// must keep issuing the exact id sequence; stats ride along. Only valid
  /// between rounds (no outstanding investigations — the harness
  /// checkpoints after every round callback has fired).
  std::uint32_t next_id() const { return next_id_; }
  void restore_ids(std::uint32_t next_id, const InvestigationStats& stats) {
    if (!outstanding_.empty())
      throw std::logic_error{
          "cannot restore with outstanding investigations"};
    next_id_ = next_id;
    stats_ = stats;
  }

 private:
  struct PendingVerifier {
    int retries_left = 0;
    std::vector<NodeId> avoid;  ///< grows with each failed path; sorted
    bool done = false;
  };
  struct Outstanding {
    LinkQuery query;
    std::map<NodeId, PendingVerifier> pending;
    RoundResult result;
    RoundCallback done;
    std::unique_ptr<sim::OneShotTimer> timer;
  };

  void on_data(const olsr::DataMessage& message);
  void handle_query(NodeId requester, const LinkQuery& query,
                    const std::vector<NodeId>& trace);
  void handle_answer(const LinkAnswer& answer);
  void send_query_to(Outstanding& inv, NodeId verifier);
  void on_timeout(std::uint32_t id);
  void finalize(std::uint32_t id);

  sim::Engine& sim_;
  olsr::Agent& agent_;
  InvestigationConfig config_;
  AnswerPolicy policy_;
  std::uint32_t next_id_ = 1;
  std::map<std::uint32_t, Outstanding> outstanding_;
  InvestigationStats stats_;
  Fallback fallback_;
};

}  // namespace manet::core
