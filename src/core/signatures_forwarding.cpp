#include "core/signatures_forwarding.hpp"

#include <algorithm>

namespace manet::core {
namespace {

bool contains(const std::vector<NodeId>& sorted, NodeId id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

void insert_sorted(std::vector<NodeId>& sorted, NodeId id) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), id);
  if (it == sorted.end() || *it != id) sorted.insert(it, id);
}

}  // namespace

void ForwardingAuditor::ingest(const logging::LogRecord& record) {
  if (record.event == "hello_recv") {
    // WILL_ALWAYS advertisement (§18.8 constant 7) marks the neighbor
    // auditable: it is selected MPR unconditionally, so every fresh flood
    // it hears obliges a re-broadcast.
    const auto from = record.node_field("from");
    if (record.int_field("will") == 7)
      always_.insert(from);
    else
      always_.erase(from);
  } else if (record.event == "mpr_changed") {
    const auto mprs = record.node_list_field("mprs");
    current_mprs_ = {mprs.begin(), mprs.end()};
  } else if (record.event == "tc_recv") {
    const auto orig = record.node_field("orig");
    const auto via = record.node_field("via");
    const auto seq = record.int_field("seq");
    // First hearing of this flood opens a pending entry; any hearing
    // credits the relaying transmitter.
    bool known = false;
    for (const auto& p : pending_)
      if (p.orig == orig && p.seq == seq) {
        known = true;
        break;
      }
    if (!known) {
      PendingFlood flood;
      flood.orig = orig;
      flood.seq = seq;
      flood.first_heard = record.time;
      for (auto mpr : current_mprs_)
        // The audited set is frozen at first hearing so a later MPR-set
        // change cannot shift blame mid-flood; the originator is exempt
        // (its own emission is not a forward).
        if (mpr != orig && always_.contains(mpr)) flood.audited.push_back(mpr);
      pending_.push_back(std::move(flood));
    }
    if (via != orig) credit(orig, seq, via);
  } else if (record.event == "fwd_echo") {
    // Direct overhear of a neighbor re-broadcasting a third-party flood
    // (olsr/agent logs these when Config::log_fwd_echo is set).
    credit(record.node_field("orig"), record.int_field("seq"),
           record.node_field("by"));
  }
}

void ForwardingAuditor::credit(NodeId orig, std::int64_t seq, NodeId by) {
  for (auto& p : pending_)
    if (p.orig == orig && p.seq == seq) {
      if (contains(p.audited, by)) insert_sorted(p.credited, by);
      return;
    }
}

std::vector<ForwardAudit> ForwardingAuditor::sweep(
    sim::Time now, std::vector<logging::LogRecord>& records) {
  for (const auto& record : records) ingest(record);

  // Close every pending flood whose timeout has passed into the window
  // counters (pending_ is in first-heard order, so the prefix suffices).
  while (!pending_.empty() &&
         pending_.front().first_heard + config_.flood_timeout <= now) {
    const auto& flood = pending_.front();
    for (auto mpr : flood.audited) {
      auto& [expected, forwarded] = window_[mpr];
      ++expected;
      if (contains(flood.credited, mpr)) ++forwarded;
    }
    pending_.pop_front();
  }

  // Evaluate and reset the window; std::map iteration keeps the output
  // MPR-sorted, which the determinism suites rely on.
  std::vector<ForwardAudit> tallies;
  tallies.reserve(window_.size());
  for (const auto& [mpr, counters] : window_) {
    const auto [expected, forwarded] = counters;
    tallies.push_back(ForwardAudit{mpr, expected, forwarded});
    if (expected >= config_.min_expected &&
        static_cast<double>(forwarded) <
            config_.fail_ratio * static_cast<double>(expected)) {
      logging::LogRecord fail;
      fail.time = now;
      fail.node = self_;
      fail.event = "fwd_audit_fail";
      fail.with("mpr", mpr)
          .with("expected", static_cast<std::int64_t>(expected))
          .with("forwarded", static_cast<std::int64_t>(forwarded));
      records.push_back(std::move(fail));
    }
  }
  window_.clear();
  return tallies;
}

ForwardingAuditor::Persisted ForwardingAuditor::persist() const {
  Persisted p;
  p.always = {always_.begin(), always_.end()};
  p.current_mprs = {current_mprs_.begin(), current_mprs_.end()};
  p.pending = {pending_.begin(), pending_.end()};
  p.window.reserve(window_.size());
  for (const auto& [mpr, counters] : window_)
    p.window.push_back(ForwardAudit{mpr, counters.first, counters.second});
  return p;
}

void ForwardingAuditor::restore(const Persisted& p) {
  always_ = {p.always.begin(), p.always.end()};
  current_mprs_ = {p.current_mprs.begin(), p.current_mprs.end()};
  pending_ = {p.pending.begin(), p.pending.end()};
  window_.clear();
  for (const auto& audit : p.window)
    window_[audit.mpr] = {audit.expected, audit.forwarded};
}

Signature forwarding_audit_signature() {
  Signature sig;
  sig.name = "forwarding_audit";
  sig.window = sim::Duration::from_seconds(1.0);
  sig.steps.resize(1);
  sig.steps[0].pattern = {"fwd_audit_fail", [](const logging::LogRecord& r) {
                            return r.event == "fwd_audit_fail";
                          }};
  return sig;
}

}  // namespace manet::core
