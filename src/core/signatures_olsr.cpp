#include "core/signatures_olsr.hpp"

#include <algorithm>

namespace manet::core {
namespace {

bool is_event(const logging::LogRecord& r, std::string_view name) {
  return r.event == name;
}

std::vector<net::NodeId> sym_list(const logging::LogRecord& r) {
  return r.node_list_field("sym");
}

}  // namespace

Signature link_spoofing_claim_signature(sim::Duration window) {
  Signature sig;
  sig.name = "link_spoofing_claim";
  sig.window = window;
  sig.steps.resize(2);
  // Step 0: HELLO from the suspect I (any hello_recv).
  sig.steps[0].pattern = {"hello_from_suspect", [](const logging::LogRecord& r) {
                            return is_event(r, "hello_recv");
                          }};
  // Step 1: HELLO from some X, unordered relative to step 0 (the paper's
  // |t'-t| < delta-t with no ordering), hence no `after` dependency.
  sig.steps[1].pattern = {"hello_from_subject", [](const logging::LogRecord& r) {
                            return is_event(r, "hello_recv");
                          }};
  sig.constraint = [](const std::vector<const logging::LogRecord*>& recs) {
    if (recs[0] == nullptr || recs[1] == nullptr) return false;
    const auto& from_i = *recs[0];
    const auto& from_x = *recs[1];
    const auto i = from_i.node_field("from");
    const auto x = from_x.node_field("from");
    if (i == x) return false;
    // I claims X symmetric...
    const auto i_sym = sym_list(from_i);
    if (std::find(i_sym.begin(), i_sym.end(), x) == i_sym.end()) return false;
    // ...but X's own HELLO does not list I.
    const auto x_sym = sym_list(from_x);
    return std::find(x_sym.begin(), x_sym.end(), i) == x_sym.end();
  };
  return sig;
}

Signature link_omission_signature(sim::Duration window) {
  Signature sig;
  sig.name = "link_omission";
  sig.window = window;
  sig.steps.resize(2);
  sig.steps[0].pattern = {"hello_from_claimer", [](const logging::LogRecord& r) {
                            return is_event(r, "hello_recv");
                          }};
  sig.steps[1].pattern = {"hello_from_omitter", [](const logging::LogRecord& r) {
                            return is_event(r, "hello_recv");
                          }};
  sig.constraint = [](const std::vector<const logging::LogRecord*>& recs) {
    if (recs[0] == nullptr || recs[1] == nullptr) return false;
    const auto& from_x = *recs[0];  // X claims the link
    const auto& from_i = *recs[1];  // I omits it
    const auto x = from_x.node_field("from");
    const auto i = from_i.node_field("from");
    if (i == x) return false;
    const auto x_sym = sym_list(from_x);
    if (std::find(x_sym.begin(), x_sym.end(), i) == x_sym.end()) return false;
    // A true omission lists X neither as symmetric nor as a heard (ASYM)
    // link; transitional link-sensing states advertise X as ASYM and must
    // not fire the signature.
    const auto i_sym = sym_list(from_i);
    if (std::find(i_sym.begin(), i_sym.end(), x) != i_sym.end()) return false;
    if (auto asym = from_i.field("asym")) {
      for (const auto& part : logging::split_list(*asym))
        if (net::NodeId::parse(part) == x) return false;
    }
    return true;
  };
  return sig;
}

Signature storm_signature(std::size_t burst, sim::Duration window) {
  Signature sig;
  sig.name = "broadcast_storm";
  sig.window = window;
  sig.correlate_field = "orig";
  sig.steps.resize(burst);
  for (std::size_t i = 0; i < burst; ++i) {
    sig.steps[i].pattern = {"tc_recv", [](const logging::LogRecord& r) {
                              return is_event(r, "tc_recv");
                            }};
    if (i > 0) sig.steps[i].after = {i - 1};
  }
  return sig;
}

Signature drop_signature(sim::Duration window) {
  Signature sig;
  sig.name = "mpr_drop";
  sig.window = window;
  sig.steps.resize(2);
  sig.steps[0].pattern = {"tc_sent", [](const logging::LogRecord& r) {
                            return is_event(r, "tc_sent");
                          }};
  sig.steps[1].pattern = {"mpr_fwd_timeout", [](const logging::LogRecord& r) {
                            return is_event(r, "mpr_fwd_timeout");
                          }};
  sig.steps[1].after = {0};
  sig.constraint = [](const std::vector<const logging::LogRecord*>& recs) {
    if (recs[0] == nullptr || recs[1] == nullptr) return false;
    return recs[0]->field_or_throw("seq") == recs[1]->field_or_throw("seq");
  };
  return sig;
}

Signature mpr_replacement_signature() {
  Signature sig;
  sig.name = "mpr_replacement";
  sig.window = sim::Duration::from_seconds(1.0);
  sig.steps.resize(1);
  // E1 fires whenever the MPR set gains a member: a strict replacement
  // (added+removed) or the degenerate case where a spoofing node forces
  // itself into an initial selection. Legitimate additions are filtered
  // downstream — the detector only investigates when the new MPR's
  // advertised links cannot be corroborated independently.
  sig.steps[0].pattern = {"mpr_changed", [](const logging::LogRecord& r) {
                            if (!is_event(r, "mpr_changed")) return false;
                            const auto added = r.field("added");
                            return added && !added->empty();
                          }};
  return sig;
}

}  // namespace manet::core
