#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "core/signature.hpp"
#include "logging/record.hpp"
#include "net/node_id.hpp"
#include "sim/time.hpp"

namespace manet::core {

using net::NodeId;

/// Forwarding-audit signature family (the Sen grayhole papers, arXiv
/// 1010.5176 / 1111.0385, run the same distributed-trust machinery against
/// packet-dropping nodes): each node audits whether its MPR-selected
/// WILL_ALWAYS neighbors actually re-forward the floods they accepted.
/// The audit is log-derived like everything else the IDS consumes — it
/// reads tc_recv / fwd_echo / mpr_changed / hello_recv records, never
/// protocol state.

/// Knobs of the per-window forwarded/expected audit.
struct ForwardingAuditConfig {
  /// A flood entry stays pending this long before it is tallied — the
  /// audited MPR's jittered re-broadcast (<= 100 ms) must have landed by
  /// then, with margin for a multi-hop detour.
  sim::Duration flood_timeout = sim::Duration::from_seconds(2.0);
  /// Minimum closed-entry count before a window can synthesize a failure
  /// (transitional MPR-selector windows must not convict).
  std::size_t min_expected = 3;
  /// A window fails when forwarded < fail_ratio * expected.
  double fail_ratio = 0.5;
};

/// One closed audit-window tally for an audited MPR: out of `expected`
/// floods it accepted while selected, how many did the local log hear it
/// re-forward. Travels the audit-event stream as a kForwardAudit frame.
struct ForwardAudit {
  NodeId mpr;
  std::uint64_t expected = 0;
  std::uint64_t forwarded = 0;
};

/// Streaming auditor over one node's parsed log records. Scope: only MPRs
/// that advertise WILL_ALWAYS are audited on third-party floods — a
/// WILL_ALWAYS node is selected MPR by *every* neighbor (RFC 3626 §8.3.1
/// step 1), so it is obliged to re-forward any fresh flood it hears,
/// which is exactly the inference a local log can make soundly. Default-
/// willingness MPRs keep the existing own-TC E2 path (drop_signature);
/// they are never audited here, so honest bystanders cannot fail a window.
class ForwardingAuditor {
 public:
  explicit ForwardingAuditor(NodeId self, ForwardingAuditConfig config = {})
      : self_{self}, config_{config} {}

  const ForwardingAuditConfig& config() const { return config_; }

  /// One scan sweep: ingests `records` (in time order), closes pending
  /// flood entries older than flood_timeout into the window counters,
  /// evaluates the window, and resets it. Failing MPRs get a synthesized
  /// `fwd_audit_fail` record (mpr/expected/forwarded fields) appended to
  /// `records` so the signature matcher can fire on them uniformly.
  /// Returns every non-empty tally of the closed window, sorted by MPR.
  std::vector<ForwardAudit> sweep(sim::Time now,
                                  std::vector<logging::LogRecord>& records);

  /// One flood awaiting the audited MPRs' re-broadcasts (public for
  /// checkpointing).
  struct PendingFlood {
    NodeId orig;
    std::int64_t seq = 0;
    sim::Time first_heard{};
    std::vector<NodeId> audited;  ///< sorted; WILL_ALWAYS MPRs at creation
    std::vector<NodeId> credited;  ///< sorted subset heard re-forwarding
  };

  /// Checkpoint image: everything the log-derived audit state needs to
  /// continue byte-identically after a restore.
  struct Persisted {
    std::vector<NodeId> always;
    std::vector<NodeId> current_mprs;
    std::vector<PendingFlood> pending;
    std::vector<ForwardAudit> window;
  };
  Persisted persist() const;
  void restore(const Persisted& p);

 private:
  void ingest(const logging::LogRecord& record);
  void credit(NodeId orig, std::int64_t seq, NodeId by);

  NodeId self_;
  ForwardingAuditConfig config_;
  std::set<NodeId> always_;        ///< neighbors advertising WILL_ALWAYS
  std::set<NodeId> current_mprs_;  ///< our MPR set, from mpr_changed
  std::deque<PendingFlood> pending_;
  /// Window counters per audited MPR: {expected, forwarded}.
  std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> window_;
};

/// One-step signature over the synthesized fwd_audit_fail records, so
/// forwarding-audit failures are matched uniformly with the other attack
/// signatures (mirrors how drop_signature consumes mpr_fwd_timeout).
Signature forwarding_audit_signature();

}  // namespace manet::core
