#include "core/detector.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/signatures_olsr.hpp"
#include "logging/format.hpp"

namespace manet::core {

std::string to_string(EvidenceTag tag) {
  switch (tag) {
    case EvidenceTag::kE1MprReplaced:
      return "E1";
    case EvidenceTag::kE2MprMisbehaving:
      return "E2";
    case EvidenceTag::kE3SoleProvider:
      return "E3";
    case EvidenceTag::kE4NotCoveringNeighbor:
      return "E4";
    case EvidenceTag::kE5AdvertisesNonNeighbor:
      return "E5";
    case EvidenceTag::kSignatureMatch:
      return "SIG";
    case EvidenceTag::kPeriodicCheck:
      return "PERIODIC";
  }
  return "?";
}

Detector::Detector(sim::Engine& sim, olsr::Agent& agent,
                   InvestigationManager& investigations, DetectorConfig config)
    : sim_{sim},
      agent_{agent},
      config_{config},
      trust_{config.trust_params},
      investigations_{investigations},
      scan_timer_{sim, config.scan_interval, sim::Duration::from_ms(100),
                  [this] { scan_once(); }} {
  matcher_.add_signature(link_spoofing_claim_signature(config_.hello_window));
  matcher_.add_signature(link_omission_signature(config_.hello_window));
  matcher_.add_signature(
      storm_signature(config_.storm_burst, config_.storm_window));
  matcher_.add_signature(drop_signature(config_.fwd_timeout +
                                        config_.scan_interval));
  matcher_.add_signature(mpr_replacement_signature());
}

void Detector::start() {
  if (running_) return;
  running_ = true;
  scan_timer_.start();
}

void Detector::stop() {
  if (!running_) return;
  running_ = false;
  scan_timer_.stop();
}

sim::Time Detector::last_heard_of(NodeId node) const {
  // Newest-first sweep over the audit log: the first reception from `node`
  // (HELLO heard directly, or a TC it relayed to us) is the answer.
  const auto& log = agent_.log();
  for (std::size_t i = log.size(); i-- > 0;) {
    const auto& rec = log.at(i);
    if (rec.event == "hello_recv") {
      if (rec.node_field("from") == node) return rec.time;
    } else if (rec.event == "tc_recv") {
      if (rec.node_field("via") == node) return rec.time;
    }
  }
  return sim::Time{};
}

Detector::Persisted Detector::persist() const {
  if (running_)
    throw std::logic_error{"cannot checkpoint a detector with a live scan timer"};
  Persisted p;
  p.last_scan = last_scan_;
  p.current_mprs.assign(current_mprs_.begin(), current_mprs_.end());
  p.pending_tcs.assign(pending_tcs_.begin(), pending_tcs_.end());
  p.last_investigated.assign(last_investigated_.begin(),
                             last_investigated_.end());
  p.answer_pool.assign(answer_pool_.begin(), answer_pool_.end());
  p.degradation = degradation_;
  return p;
}

void Detector::restore(Persisted p) {
  last_scan_ = p.last_scan;
  current_mprs_ = std::set<NodeId>(p.current_mprs.begin(),
                                   p.current_mprs.end());
  pending_tcs_.assign(p.pending_tcs.begin(), p.pending_tcs.end());
  last_investigated_.clear();
  last_investigated_.insert(p.last_investigated.begin(),
                            p.last_investigated.end());
  answer_pool_.clear();
  answer_pool_.insert(p.answer_pool.begin(), p.answer_pool.end());
  degradation_ = p.degradation;
}

bool Detector::in_cooldown(NodeId suspect, NodeId subject) const {
  auto it = last_investigated_.find({suspect, subject});
  return it != last_investigated_.end() &&
         sim_.now() - it->second < config_.suspect_cooldown;
}

std::vector<NodeId> Detector::believed_neighbors_of(NodeId suspect) const {
  // Log-derived: the freshest HELLO heard from the suspect names its
  // advertised neighbors; any node whose HELLO lists the suspect is also a
  // believed neighbor. Falls back to the 2-hop table exposed via logs.
  std::set<NodeId> out;
  const auto hellos = agent_.log().records_with_event("hello_recv");
  std::map<NodeId, std::vector<NodeId>> latest_sym;
  for (const auto& rec : hellos)
    latest_sym[rec.node_field("from")] = rec.node_list_field("sym");

  auto it = latest_sym.find(suspect);
  if (it != latest_sym.end())
    for (auto n : it->second) out.insert(n);
  for (const auto& [from, sym] : latest_sym) {
    if (from == suspect) continue;
    if (std::find(sym.begin(), sym.end(), suspect) != sym.end())
      out.insert(from);
  }
  out.erase(agent_.id());
  out.erase(suspect);
  return {out.begin(), out.end()};
}

std::size_t Detector::scan_once() {
  // The IDS reads the daemon's log as *text*, like a real log analyzer.
  const auto text = agent_.log().text_since(last_scan_);
  last_scan_ = sim_.now();
  auto records = logging::parse_log(text);

  // Synthesize mpr_fwd_timeout records for E2 (drop) detection before
  // feeding the matcher, so the drop signature can fire.
  check_forward_timeouts(records);

  std::size_t launched = 0;
  process_records(records, launched);

  // Periodic MPR audit (§III-B: non-event-driven cases are "handled by
  // launching periodical/random checks"): cross-check every currently
  // selected MPR's advertised links against independent local knowledge.
  for (auto mpr : current_mprs_) {
    for (auto x : find_disputed_links(mpr)) {
      if (in_cooldown(mpr, x)) continue;
      investigate_claim(mpr, x, /*claimed_up=*/true,
                        {EvidenceTag::kPeriodicCheck});
      ++launched;
    }
  }
  return launched;
}

void Detector::check_forward_timeouts(
    std::vector<logging::LogRecord>& synthesized) {
  // Track our own TC emissions and which MPRs echoed them, purely from the
  // log records that arrive.
  for (const auto& rec : synthesized) {
    if (rec.event == "mpr_changed") {
      const auto mprs = rec.node_list_field("mprs");
      current_mprs_ = {mprs.begin(), mprs.end()};
    } else if (rec.event == "tc_sent") {
      pending_tcs_.push_back(
          SentTc{rec.time, rec.int_field("seq"), current_mprs_, {}});
    } else if (rec.event == "own_fwd_heard") {
      const auto seq = rec.int_field("seq");
      for (auto& tc : pending_tcs_)
        if (tc.seq == seq) tc.heard_from.insert(rec.node_field("by"));
    }
  }

  const auto now = sim_.now();
  while (!pending_tcs_.empty() &&
         now - pending_tcs_.front().at >= config_.fwd_timeout) {
    const auto tc = pending_tcs_.front();
    pending_tcs_.pop_front();
    for (auto mpr : tc.mprs_then) {
      if (tc.heard_from.contains(mpr)) continue;
      logging::LogRecord r;
      r.time = now;
      r.node = agent_.id();
      r.event = "mpr_fwd_timeout";
      r.with("mpr", mpr).with("seq", tc.seq);
      synthesized.push_back(std::move(r));
    }
  }
}

void Detector::process_records(const std::vector<logging::LogRecord>& records,
                               std::size_t& launched) {
  const auto matches = matcher_.feed_all(records);

  for (const auto& m : matches) {
    if (m.signature == "link_spoofing_claim") {
      // Records: [0] HELLO from suspect I claiming I-X, [1] HELLO from X.
      const auto suspect = m.records[0].node_field("from");
      const auto subject = m.records[1].node_field("from");
      if (in_cooldown(suspect, subject)) continue;
      investigate_claim(suspect, subject, /*claimed_up=*/true,
                        {EvidenceTag::kSignatureMatch});
      ++launched;
    } else if (m.signature == "link_omission") {
      const auto subject = m.records[0].node_field("from");  // claims link
      const auto suspect = m.records[1].node_field("from");  // omits it
      if (in_cooldown(suspect, subject)) continue;
      investigate_claim(suspect, subject, /*claimed_up=*/false,
                        {EvidenceTag::kSignatureMatch});
      ++launched;
    } else if (m.signature == "broadcast_storm") {
      const auto suspect = net::NodeId::parse(m.correlated_value);
      if (in_cooldown(suspect, agent_.id())) continue;
      investigate_claim(suspect, agent_.id(), /*claimed_up=*/true,
                        {EvidenceTag::kE2MprMisbehaving,
                         EvidenceTag::kSignatureMatch});
      ++launched;
    } else if (m.signature == "mpr_drop") {
      const auto suspect = m.records[1].node_field("mpr");
      if (in_cooldown(suspect, agent_.id())) continue;
      LinkQuery q;
      q.kind = QueryKind::kForwarding;
      q.suspect = suspect;
      q.subject = agent_.id();
      q.claimed_up = true;  // an MPR implicitly claims it forwards
      auto verifiers = believed_neighbors_of(suspect);
      last_investigated_[{suspect, agent_.id()}] = sim_.now();
      investigations_.investigate(
          q, std::move(verifiers),
          [this, tags = std::vector<EvidenceTag>{
                     EvidenceTag::kE2MprMisbehaving}](const RoundResult& r) {
            on_round_complete(r, tags);
          });
      ++launched;
    } else if (m.signature == "mpr_replacement") {
      // E1: the MPR set gained a member — either a true replacement (the
      // new MPR grew its coverage to the detriment of the replaced one) or
      // a suspicious initial selection. Each added MPR's advertised links
      // are cross-checked against *independent* local knowledge; only
      // uncorroborated or contradicted links go to investigation.
      const auto added = m.records[0].node_list_field("added");
      for (auto suspect : added) {
        for (auto x : find_disputed_links(suspect)) {
          if (in_cooldown(suspect, x)) continue;
          investigate_claim(suspect, x, /*claimed_up=*/true,
                            {EvidenceTag::kE1MprReplaced});
          ++launched;
        }
      }
    }
  }
}

std::vector<NodeId> Detector::find_disputed_links(NodeId suspect,
                                                  std::size_t max_links) const {
  // Freshest advertised neighbor list of the suspect, plus per-origin
  // latest HELLO contents — all from the local log.
  const auto hellos = agent_.log().records_with_event("hello_recv");
  std::map<NodeId, std::vector<NodeId>> latest_sym;
  for (const auto& rec : hellos)
    latest_sym[rec.node_field("from")] = rec.node_list_field("sym");

  auto it = latest_sym.find(suspect);
  if (it == latest_sym.end()) return {};

  // Nodes independently evidenced: heard directly, originated a TC, were
  // advertised in a TC, or listed by a third party's HELLO.
  std::set<NodeId> independent;
  for (const auto& [from, sym] : latest_sym) {
    independent.insert(from);
    if (from == suspect) continue;
    independent.insert(sym.begin(), sym.end());
  }
  for (const auto& rec : agent_.log().records_with_event("tc_recv")) {
    independent.insert(rec.node_field("orig"));
    if (rec.node_field("orig") == suspect) continue;
    const auto adv = rec.node_list_field("adv");
    independent.insert(adv.begin(), adv.end());
  }

  std::vector<NodeId> disputed;
  for (auto x : it->second) {
    if (disputed.size() >= max_links) break;
    if (x == agent_.id()) continue;
    // Uncorroborated neighbor: nobody but the suspect has ever mentioned x.
    if (!independent.contains(x)) {
      disputed.push_back(x);
      continue;
    }
    // Contradicted neighbor: x's own freshest HELLO omits the suspect.
    auto xh = latest_sym.find(x);
    if (xh != latest_sym.end() &&
        std::find(xh->second.begin(), xh->second.end(), suspect) ==
            xh->second.end())
      disputed.push_back(x);
  }
  return disputed;
}

void Detector::investigate_claim(NodeId suspect, NodeId subject,
                                 bool claimed_up,
                                 std::vector<EvidenceTag> tags,
                                 std::vector<NodeId> verifiers) {
  LinkQuery q;
  q.kind = QueryKind::kLinkStatus;
  q.suspect = suspect;
  q.subject = subject;
  q.claimed_up = claimed_up;

  if (verifiers.empty()) verifiers = believed_neighbors_of(suspect);
  // E3 check: a suspect that is the sole provider toward some node makes
  // independent verification impossible; tag it so the report reflects the
  // lower confidence (the paper deliberately does not trigger on E3 alone).
  const auto graph = agent_.knowledge_graph();
  const auto path_without = olsr::RoutingTable::shortest_path(
      graph, agent_.id(), subject, {suspect});
  if (!path_without && subject != agent_.id())
    tags.push_back(EvidenceTag::kE3SoleProvider);

  last_investigated_[{suspect, subject}] = sim_.now();
  investigations_.investigate(
      q, std::move(verifiers),
      [this, tags = std::move(tags)](const RoundResult& r) {
        on_round_complete(r, tags);
      });
}

void Detector::on_round_complete(const RoundResult& result,
                                 std::vector<EvidenceTag> tags) {
  // First-hand evidence of the investigator itself enters the aggregate at
  // full trust (Property 5: first-hand evidence is privileged over
  // second-hand). Without it, a colluding majority could freeze the
  // detection at a neutral aggregate.
  const double own_obs = investigations_.honest_observation(result.query);
  const double claim = result.query.claimed_up ? +1.0 : -1.0;
  const double own_evidence =
      own_obs == 0.0 ? 0.0 : (own_obs == claim ? +1.0 : -1.0);

  // Eq. 8 over this round's answers, weighted by current trust.
  // Timeouts keep their paper-mandated e=0 (they discount the aggregate);
  // explicit abstentions ("cannot tell") carry no opinion and are dropped.
  auto usable = [](const RoundAnswer& a) {
    return !(a.answered && a.evidence == 0.0);
  };
  std::vector<trust::WeightedAnswer> round_weighted;
  round_weighted.reserve(result.answers.size() + 1);
  if (own_evidence != 0.0)
    round_weighted.push_back(
        trust::WeightedAnswer{agent_.id(), 1.0, own_evidence});
  for (const auto& a : result.answers) {
    if (!usable(a)) continue;
    round_weighted.push_back(trust::WeightedAnswer{
        a.responder, trust_.trust(a.responder), a.evidence});
  }
  const double round_detect = trust::aggregate_detection(round_weighted);

  // Accumulate into the per-link pool and decide over the whole pool
  // (§IV-C: an unrecognized outcome demands more evidence; successive
  // rounds shrink the Eq. 9 margin as n grows).
  auto& pool = answer_pool_[{result.query.suspect, result.query.subject}];
  if (own_evidence != 0.0)
    pool.push_back(PooledAnswer{agent_.id(), own_evidence, true});
  for (const auto& a : result.answers)
    if (usable(a)) pool.push_back(PooledAnswer{a.responder, a.evidence,
                                               a.answered});
  constexpr std::size_t kMaxPool = 500;
  if (pool.size() > kMaxPool)
    pool.erase(pool.begin(),
               pool.begin() + static_cast<std::ptrdiff_t>(pool.size() - kMaxPool));

  std::vector<trust::WeightedAnswer> pooled;
  pooled.reserve(pool.size());
  for (const auto& p : pool) {
    const double w =
        p.responder == agent_.id() ? 1.0 : trust_.trust(p.responder);
    pooled.push_back(trust::WeightedAnswer{p.responder, w, p.evidence});
  }
  const auto decision = trust::decide(pooled, config_.decision);

  // Liveness gate (faulted runs): convicting a node our own log has not
  // heard from recently would brand a crashed bystander a liar — its
  // silence during the investigation is exactly what a guilty verdict
  // feeds on. Downgrade to kUnrecognized and count the suppression; the
  // pooled evidence stays, so a live-again suspect can still be convicted.
  trust::Verdict verdict = decision.verdict;
  bool suppressed = false;
  if (verdict == trust::Verdict::kIntruder &&
      config_.liveness_window > sim::Duration{}) {
    const sim::Time heard = last_heard_of(result.query.suspect);
    if (heard == sim::Time{} ||
        sim_.now() - heard > config_.liveness_window) {
      verdict = trust::Verdict::kUnrecognized;
      suppressed = true;
      ++degradation_.suppressed_convictions;
    }
  }

  DetectionReport report;
  report.time = sim_.now();
  report.suspect = result.query.suspect;
  report.subject = result.query.subject;
  report.claimed_up = result.query.claimed_up;
  report.verdict = verdict;
  report.detect = round_detect;
  report.cumulative_detect = decision.detect;
  report.interval = decision.interval;
  report.tags = std::move(tags);
  report.answers = result.answers.size();
  report.timeouts = result.timeouts;
  report.cumulative_answers = pool.size();
  report.suppressed = suppressed;

  // Confirmed verdicts add the E4/E5 evidence of Expression 4.
  if (verdict == trust::Verdict::kIntruder) {
    report.tags.push_back(result.query.claimed_up
                              ? EvidenceTag::kE5AdvertisesNonNeighbor
                              : EvidenceTag::kE4NotCoveringNeighbor);
  }

  // Update trust (§IV-B: "this result is used to update the trust related
  // to I and S1..Sm"). The per-round aggregate — not the gated verdict —
  // drives the update: even while the decision is still "unrecognized"
  // (wide confidence interval), responders leaning with the weighted
  // majority gain a little and those contradicting it are treated as lying
  // with gravity weighting. This is what lets liar trust fade round after
  // round in the paper's Figure 1/3 dynamics.
  if (std::abs(round_detect) >= config_.trust_update_min_detect) {
    const double correct_sign = round_detect < 0.0 ? -1.0 : +1.0;
    for (const auto& a : result.answers) {
      if (!a.answered || a.evidence == 0.0) continue;
      const bool agrees = a.evidence * correct_sign > 0.0;
      trust_.record_interaction(a.responder, agrees);
      if (agrees) {
        trust_.apply_evidence(
            a.responder,
            trust::honest_answer_evidence(trust_.params().reward_honest));
      } else {
        trust_.apply_evidence(a.responder,
                              trust::lie_evidence(trust_.params().gravity_lie));
      }
    }
  }
  // Unresponsive verifiers under the fault-tolerant policy: relax their
  // trust toward the default instead of freezing it at its pre-crash value.
  if (config_.decay_unresponsive) {
    for (const auto& a : result.answers)
      if (!a.answered) trust_.decay_idle(a.responder);
  }
  // The suspect's own trust only moves on a *confirmed* verdict.
  if (verdict == trust::Verdict::kIntruder) {
    trust_.apply_evidence(
        result.query.suspect,
        trust::intrusion_evidence(trust_.params().gravity_lie));
  } else if (verdict == trust::Verdict::kWellBehaving) {
    trust_.apply_evidence(
        result.query.suspect,
        trust::honest_answer_evidence(trust_.params().reward_honest));
  }

  reports_.push_back(report);
  if (reports_.size() > 10'000) reports_.pop_front();
  if (on_report_) on_report_(report);
}

}  // namespace manet::core
