#include "core/detector.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/signatures_olsr.hpp"
#include "logging/format.hpp"

namespace manet::core {

PipelineConfig pipeline_config(NodeId self, const DetectorConfig& config) {
  PipelineConfig p;
  p.self = self;
  p.trust_params = config.trust_params;
  p.decision = config.decision;
  p.trust_update_min_detect = config.trust_update_min_detect;
  p.liveness_window = config.liveness_window;
  p.decay_unresponsive = config.decay_unresponsive;
  return p;
}

Detector::Detector(sim::Engine& sim, olsr::Agent& agent,
                   InvestigationManager& investigations, DetectorConfig config)
    : sim_{sim},
      agent_{agent},
      config_{config},
      pipeline_{pipeline_config(agent.id(), config)},
      investigations_{investigations},
      auditor_{agent.id(), config.audit},
      scan_timer_{sim, config.scan_interval, sim::Duration::from_ms(100),
                  [this] { scan_once(); }} {
  matcher_.add_signature(link_spoofing_claim_signature(config_.hello_window));
  matcher_.add_signature(link_omission_signature(config_.hello_window));
  matcher_.add_signature(
      storm_signature(config_.storm_burst, config_.storm_window));
  matcher_.add_signature(drop_signature(config_.fwd_timeout +
                                        config_.scan_interval));
  matcher_.add_signature(mpr_replacement_signature());
  // Gated so the spoofing suites' pinned signature set stays untouched.
  if (config_.forwarding_audit)
    matcher_.add_signature(forwarding_audit_signature());
}

void Detector::start() {
  if (running_) return;
  running_ = true;
  scan_timer_.start();
}

void Detector::stop() {
  if (!running_) return;
  running_ = false;
  scan_timer_.stop();
}

void Detector::feed_log_growth() {
  const auto& log = agent_.log();
  // Retention may have dropped records past the cursor; they are gone for
  // the live pipeline exactly as they were for the old full-log rescan.
  std::uint64_t next = std::max(next_feed_, log.base_index());
  for (; next < log.total_appended(); ++next)
    pipeline_.consume_line(
        log.at(static_cast<std::size_t>(next - log.base_index())));
  next_feed_ = next;
}

sim::Time Detector::last_heard_of(NodeId node) {
  feed_log_growth();
  return pipeline_.last_heard_of(node);
}

Detector::Persisted Detector::persist() const {
  if (running_)
    throw std::logic_error{"cannot checkpoint a detector with a live scan timer"};
  Persisted p;
  p.last_scan = last_scan_;
  p.current_mprs.assign(current_mprs_.begin(), current_mprs_.end());
  p.pending_tcs.assign(pending_tcs_.begin(), pending_tcs_.end());
  p.last_investigated.assign(last_investigated_.begin(),
                             last_investigated_.end());
  const auto& pool = pipeline_.answer_pool();
  p.answer_pool.assign(pool.begin(), pool.end());
  p.degradation = pipeline_.degradation();
  p.auditor = auditor_.persist();
  return p;
}

void Detector::restore(Persisted p) {
  last_scan_ = p.last_scan;
  current_mprs_ = std::set<NodeId>(p.current_mprs.begin(),
                                   p.current_mprs.end());
  pending_tcs_.assign(p.pending_tcs.begin(), p.pending_tcs.end());
  last_investigated_.clear();
  last_investigated_.insert(p.last_investigated.begin(),
                            p.last_investigated.end());
  DetectionPipeline::AnswerPool pool;
  pool.insert(p.answer_pool.begin(), p.answer_pool.end());
  pipeline_.restore(std::move(pool), p.degradation);
  auditor_.restore(p.auditor);
  // Rebuild the pipeline's liveness oracle from the restored log's retained
  // window — the same records the pre-checkpoint newest-first scan saw.
  next_feed_ = agent_.log().base_index();
  feed_log_growth();
}

bool Detector::in_cooldown(NodeId suspect, NodeId subject) const {
  auto it = last_investigated_.find({suspect, subject});
  return it != last_investigated_.end() &&
         sim_.now() - it->second < config_.suspect_cooldown;
}

std::vector<NodeId> Detector::believed_neighbors_of(NodeId suspect) const {
  // Log-derived: the freshest HELLO heard from the suspect names its
  // advertised neighbors; any node whose HELLO lists the suspect is also a
  // believed neighbor. Falls back to the 2-hop table exposed via logs.
  std::set<NodeId> out;
  const auto hellos = agent_.log().records_with_event("hello_recv");
  std::map<NodeId, std::vector<NodeId>> latest_sym;
  for (const auto& rec : hellos)
    latest_sym[rec.node_field("from")] = rec.node_list_field("sym");

  auto it = latest_sym.find(suspect);
  if (it != latest_sym.end())
    for (auto n : it->second) out.insert(n);
  for (const auto& [from, sym] : latest_sym) {
    if (from == suspect) continue;
    if (std::find(sym.begin(), sym.end(), suspect) != sym.end())
      out.insert(from);
  }
  out.erase(agent_.id());
  out.erase(suspect);
  return {out.begin(), out.end()};
}

std::size_t Detector::scan_once() {
  // The new log growth reaches the pipeline first (kLine events keep its
  // liveness oracle exactly as fresh as the log), then the IDS reads the
  // same growth as *text*, like a real log analyzer.
  feed_log_growth();
  const auto text = agent_.log().text_since(last_scan_);
  last_scan_ = sim_.now();
  auto records = logging::parse_log(text);

  // Synthesize mpr_fwd_timeout records for E2 (drop) detection before
  // feeding the matcher, so the drop signature can fire.
  check_forward_timeouts(records);

  // Forwarding audit (grayhole path): close expired flood windows, stream
  // the tallies (observability frames), and synthesize fwd_audit_fail
  // records so the matcher can fire on failing MPRs.
  if (config_.forwarding_audit) {
    for (const auto& tally : auditor_.sweep(sim_.now(), records))
      pipeline_.consume_forward_audit(sim_.now(), tally);
  }

  std::size_t launched = 0;
  process_records(records, launched);

  // Periodic MPR audit (§III-B: non-event-driven cases are "handled by
  // launching periodical/random checks"): cross-check every currently
  // selected MPR's advertised links against independent local knowledge.
  for (auto mpr : current_mprs_) {
    for (auto x : find_disputed_links(mpr)) {
      if (in_cooldown(mpr, x)) continue;
      investigate_claim(mpr, x, /*claimed_up=*/true,
                        {EvidenceTag::kPeriodicCheck});
      ++launched;
    }
  }
  return launched;
}

void Detector::check_forward_timeouts(
    std::vector<logging::LogRecord>& synthesized) {
  // Track our own TC emissions and which MPRs echoed them, purely from the
  // log records that arrive.
  for (const auto& rec : synthesized) {
    if (rec.event == "mpr_changed") {
      const auto mprs = rec.node_list_field("mprs");
      current_mprs_ = {mprs.begin(), mprs.end()};
    } else if (rec.event == "tc_sent") {
      pending_tcs_.push_back(
          SentTc{rec.time, rec.int_field("seq"), current_mprs_, {}});
    } else if (rec.event == "own_fwd_heard") {
      const auto seq = rec.int_field("seq");
      for (auto& tc : pending_tcs_)
        if (tc.seq == seq) tc.heard_from.insert(rec.node_field("by"));
    }
  }

  const auto now = sim_.now();
  while (!pending_tcs_.empty() &&
         now - pending_tcs_.front().at >= config_.fwd_timeout) {
    const auto tc = pending_tcs_.front();
    pending_tcs_.pop_front();
    for (auto mpr : tc.mprs_then) {
      if (tc.heard_from.contains(mpr)) continue;
      logging::LogRecord r;
      r.time = now;
      r.node = agent_.id();
      r.event = "mpr_fwd_timeout";
      r.with("mpr", mpr).with("seq", tc.seq);
      synthesized.push_back(std::move(r));
    }
  }
}

void Detector::process_records(const std::vector<logging::LogRecord>& records,
                               std::size_t& launched) {
  const auto matches = matcher_.feed_all(records);

  for (const auto& m : matches) {
    if (m.signature == "link_spoofing_claim") {
      // Records: [0] HELLO from suspect I claiming I-X, [1] HELLO from X.
      const auto suspect = m.records[0].node_field("from");
      const auto subject = m.records[1].node_field("from");
      if (in_cooldown(suspect, subject)) continue;
      investigate_claim(suspect, subject, /*claimed_up=*/true,
                        {EvidenceTag::kSignatureMatch});
      ++launched;
    } else if (m.signature == "link_omission") {
      const auto subject = m.records[0].node_field("from");  // claims link
      const auto suspect = m.records[1].node_field("from");  // omits it
      if (in_cooldown(suspect, subject)) continue;
      investigate_claim(suspect, subject, /*claimed_up=*/false,
                        {EvidenceTag::kSignatureMatch});
      ++launched;
    } else if (m.signature == "broadcast_storm") {
      const auto suspect = net::NodeId::parse(m.correlated_value);
      if (in_cooldown(suspect, agent_.id())) continue;
      investigate_claim(suspect, agent_.id(), /*claimed_up=*/true,
                        {EvidenceTag::kE2MprMisbehaving,
                         EvidenceTag::kSignatureMatch});
      ++launched;
    } else if (m.signature == "mpr_drop") {
      const auto suspect = m.records[1].node_field("mpr");
      if (in_cooldown(suspect, agent_.id())) continue;
      LinkQuery q;
      q.kind = QueryKind::kForwarding;
      q.suspect = suspect;
      q.subject = agent_.id();
      q.claimed_up = true;  // an MPR implicitly claims it forwards
      auto verifiers = believed_neighbors_of(suspect);
      last_investigated_[{suspect, agent_.id()}] = sim_.now();
      investigations_.investigate(
          q, std::move(verifiers),
          [this, tags = std::vector<EvidenceTag>{
                     EvidenceTag::kE2MprMisbehaving}](const RoundResult& r) {
            on_round_complete(r, tags);
          });
      ++launched;
    } else if (m.signature == "forwarding_audit") {
      // Grayhole: an audited WILL_ALWAYS MPR failed its forwarded/expected
      // window. Same round shape as mpr_drop — the MPR implicitly claims it
      // forwards — so the trust pipeline is reused verbatim.
      const auto suspect = m.records[0].node_field("mpr");
      if (in_cooldown(suspect, agent_.id())) continue;
      LinkQuery q;
      q.kind = QueryKind::kForwarding;
      q.suspect = suspect;
      q.subject = agent_.id();
      q.claimed_up = true;
      auto verifiers = believed_neighbors_of(suspect);
      last_investigated_[{suspect, agent_.id()}] = sim_.now();
      investigations_.investigate(
          q, std::move(verifiers),
          [this, tags = std::vector<EvidenceTag>{
                     EvidenceTag::kE2MprMisbehaving,
                     EvidenceTag::kSignatureMatch}](const RoundResult& r) {
            on_round_complete(r, tags);
          });
      ++launched;
    } else if (m.signature == "mpr_replacement") {
      // E1: the MPR set gained a member — either a true replacement (the
      // new MPR grew its coverage to the detriment of the replaced one) or
      // a suspicious initial selection. Each added MPR's advertised links
      // are cross-checked against *independent* local knowledge; only
      // uncorroborated or contradicted links go to investigation.
      const auto added = m.records[0].node_list_field("added");
      for (auto suspect : added) {
        for (auto x : find_disputed_links(suspect)) {
          if (in_cooldown(suspect, x)) continue;
          investigate_claim(suspect, x, /*claimed_up=*/true,
                            {EvidenceTag::kE1MprReplaced});
          ++launched;
        }
      }
    }
  }
}

std::vector<NodeId> Detector::find_disputed_links(NodeId suspect,
                                                  std::size_t max_links) const {
  // Freshest advertised neighbor list of the suspect, plus per-origin
  // latest HELLO contents — all from the local log.
  const auto hellos = agent_.log().records_with_event("hello_recv");
  std::map<NodeId, std::vector<NodeId>> latest_sym;
  for (const auto& rec : hellos)
    latest_sym[rec.node_field("from")] = rec.node_list_field("sym");

  auto it = latest_sym.find(suspect);
  if (it == latest_sym.end()) return {};

  // Nodes independently evidenced: heard directly, originated a TC, were
  // advertised in a TC, or listed by a third party's HELLO.
  std::set<NodeId> independent;
  for (const auto& [from, sym] : latest_sym) {
    independent.insert(from);
    if (from == suspect) continue;
    independent.insert(sym.begin(), sym.end());
  }
  for (const auto& rec : agent_.log().records_with_event("tc_recv")) {
    independent.insert(rec.node_field("orig"));
    if (rec.node_field("orig") == suspect) continue;
    const auto adv = rec.node_list_field("adv");
    independent.insert(adv.begin(), adv.end());
  }

  std::vector<NodeId> disputed;
  for (auto x : it->second) {
    if (disputed.size() >= max_links) break;
    if (x == agent_.id()) continue;
    // Uncorroborated neighbor: nobody but the suspect has ever mentioned x.
    if (!independent.contains(x)) {
      disputed.push_back(x);
      continue;
    }
    // Contradicted neighbor: x's own freshest HELLO omits the suspect.
    auto xh = latest_sym.find(x);
    if (xh != latest_sym.end() &&
        std::find(xh->second.begin(), xh->second.end(), suspect) ==
            xh->second.end())
      disputed.push_back(x);
  }
  return disputed;
}

void Detector::investigate_claim(NodeId suspect, NodeId subject,
                                 bool claimed_up,
                                 std::vector<EvidenceTag> tags,
                                 std::vector<NodeId> verifiers) {
  LinkQuery q;
  q.kind = QueryKind::kLinkStatus;
  q.suspect = suspect;
  q.subject = subject;
  q.claimed_up = claimed_up;

  if (verifiers.empty()) verifiers = believed_neighbors_of(suspect);
  // E3 check: a suspect that is the sole provider toward some node makes
  // independent verification impossible; tag it so the report reflects the
  // lower confidence (the paper deliberately does not trigger on E3 alone).
  const auto graph = agent_.knowledge_graph();
  const auto path_without = olsr::RoutingTable::shortest_path(
      graph, agent_.id(), subject, {suspect});
  if (!path_without && subject != agent_.id())
    tags.push_back(EvidenceTag::kE3SoleProvider);

  last_investigated_[{suspect, subject}] = sim_.now();
  investigations_.investigate(
      q, std::move(verifiers),
      [this, tags = std::move(tags)](const RoundResult& r) {
        on_round_complete(r, tags);
      });
}

void Detector::on_round_complete(const RoundResult& result,
                                 std::vector<EvidenceTag> tags) {
  // The producer's whole job: turn the completed round into one audit-event
  // and hand it to the pipeline. The first-hand observation is captured
  // HERE — it reads live protocol state (the agent's link/topology view)
  // that an offline replay no longer has, so it travels with the event.
  feed_log_growth();
  AuditRound round;
  round.query = result.query;
  round.own_observation = investigations_.honest_observation(result.query);
  round.answers = result.answers;
  round.timeouts = result.timeouts;
  round.tags = std::move(tags);
  pipeline_.consume_round(sim_.now(), round);
}

}  // namespace manet::core
