#include "core/pipeline.hpp"

#include <cmath>
#include <cstdio>

#include "obs/obs.hpp"

namespace manet::core {

std::string to_string(EvidenceTag tag) {
  switch (tag) {
    case EvidenceTag::kE1MprReplaced:
      return "E1";
    case EvidenceTag::kE2MprMisbehaving:
      return "E2";
    case EvidenceTag::kE3SoleProvider:
      return "E3";
    case EvidenceTag::kE4NotCoveringNeighbor:
      return "E4";
    case EvidenceTag::kE5AdvertisesNonNeighbor:
      return "E5";
    case EvidenceTag::kSignatureMatch:
      return "SIG";
    case EvidenceTag::kPeriodicCheck:
      return "PERIODIC";
  }
  return "?";
}

DetectionPipeline::DetectionPipeline(PipelineConfig config)
    : config_{config}, trust_{config.trust_params} {}

void DetectionPipeline::consume(const AuditEvent& event) {
  switch (event.kind) {
    case logging::AuditFrame::kLine:
      consume_line(event.line);
      break;
    case logging::AuditFrame::kRound:
      consume_round(event.time, event.round);
      break;
    case logging::AuditFrame::kDecay:
      consume_decay(event.time);
      break;
    case logging::AuditFrame::kForwardAudit:
      consume_forward_audit(event.time, event.audit);
      break;
  }
}

void DetectionPipeline::consume_line(const logging::LogRecord& line) {
  obs::hit(obs::Hot::kPipelineLines);
  // Liveness oracle: lines arrive in time order, so the running maximum per
  // peer equals a newest-first scan over the whole log.
  if (line.event == "hello_recv") {
    last_heard_[line.node_field("from")] = line.time;
  } else if (line.event == "tc_recv") {
    last_heard_[line.node_field("via")] = line.time;
  }
}

sim::Time DetectionPipeline::last_heard_of(NodeId node) const {
  auto it = last_heard_.find(node);
  return it == last_heard_.end() ? sim::Time{} : it->second;
}

void DetectionPipeline::consume_decay(sim::Time time) {
  obs::hit(obs::Hot::kPipelineDecays);
  if (recorder_) write_decay_frame(*recorder_, time);
  trust_.decay_all_idle();
}

void DetectionPipeline::consume_forward_audit(sim::Time time,
                                              const ForwardAudit& audit) {
  obs::hit(obs::Hot::kPipelineForwardAudits);
  if (recorder_) write_forward_audit_frame(*recorder_, time, audit);
  forward_audits_.push_back(TimedForwardAudit{time, audit});
  if (forward_audits_.size() > 10'000) forward_audits_.pop_front();
}

void DetectionPipeline::restore(AnswerPool pool,
                                DetectorDegradation degradation) {
  answer_pool_ = std::move(pool);
  degradation_ = degradation;
  last_heard_.clear();
}

void DetectionPipeline::consume_round(sim::Time time, const AuditRound& round) {
  obs::hit(obs::Hot::kPipelineRounds);
  obs::instant(obs::SpanName::kPipelineRound, time,
               round.query.investigation_id);
  if (recorder_) write_round_frame(*recorder_, time, round);

  // First-hand evidence of the investigator itself enters the aggregate at
  // full trust (Property 5: first-hand evidence is privileged over
  // second-hand). Without it, a colluding majority could freeze the
  // detection at a neutral aggregate.
  const double own_obs = round.own_observation;
  const double claim = round.query.claimed_up ? +1.0 : -1.0;
  const double own_evidence =
      own_obs == 0.0 ? 0.0 : (own_obs == claim ? +1.0 : -1.0);

  // Eq. 8 over this round's answers, weighted by current trust.
  // Timeouts keep their paper-mandated e=0 (they discount the aggregate);
  // explicit abstentions ("cannot tell") carry no opinion and are dropped.
  auto usable = [](const RoundAnswer& a) {
    return !(a.answered && a.evidence == 0.0);
  };
  std::vector<trust::WeightedAnswer> round_weighted;
  round_weighted.reserve(round.answers.size() + 1);
  if (own_evidence != 0.0)
    round_weighted.push_back(
        trust::WeightedAnswer{config_.self, 1.0, own_evidence});
  for (const auto& a : round.answers) {
    if (!usable(a)) continue;
    round_weighted.push_back(trust::WeightedAnswer{
        a.responder, trust_.trust(a.responder), a.evidence});
  }
  const double round_detect = trust::aggregate_detection(round_weighted);

  // Accumulate into the per-link pool and decide over the whole pool
  // (§IV-C: an unrecognized outcome demands more evidence; successive
  // rounds shrink the Eq. 9 margin as n grows).
  auto& pool = answer_pool_[{round.query.suspect, round.query.subject}];
  if (own_evidence != 0.0)
    pool.push_back(PooledAnswer{config_.self, own_evidence, true});
  for (const auto& a : round.answers)
    if (usable(a)) pool.push_back(PooledAnswer{a.responder, a.evidence,
                                               a.answered});
  constexpr std::size_t kMaxPool = 500;
  if (pool.size() > kMaxPool)
    pool.erase(pool.begin(),
               pool.begin() + static_cast<std::ptrdiff_t>(pool.size() - kMaxPool));

  std::vector<trust::WeightedAnswer> pooled;
  pooled.reserve(pool.size());
  for (const auto& p : pool) {
    const double w =
        p.responder == config_.self ? 1.0 : trust_.trust(p.responder);
    pooled.push_back(trust::WeightedAnswer{p.responder, w, p.evidence});
  }
  const auto decision = trust::decide(pooled, config_.decision);

  // Liveness gate (faulted runs): convicting a node the stream has not
  // heard from recently would brand a crashed bystander a liar — its
  // silence during the investigation is exactly what a guilty verdict
  // feeds on. Downgrade to kUnrecognized and count the suppression; the
  // pooled evidence stays, so a live-again suspect can still be convicted.
  trust::Verdict verdict = decision.verdict;
  bool suppressed = false;
  if (verdict == trust::Verdict::kIntruder &&
      config_.liveness_window > sim::Duration{}) {
    const sim::Time heard = last_heard_of(round.query.suspect);
    if (heard == sim::Time{} || time - heard > config_.liveness_window) {
      verdict = trust::Verdict::kUnrecognized;
      suppressed = true;
      ++degradation_.suppressed_convictions;
      obs::hit(obs::Hot::kPipelineSuppressed);
      obs::instant(obs::SpanName::kSuppressed, time,
                   round.query.suspect.value());
    }
  }
  if (verdict == trust::Verdict::kIntruder) {
    obs::hit(obs::Hot::kPipelineConvictions);
    obs::instant(obs::SpanName::kConviction, time, round.query.suspect.value());
  }

  DetectionReport report;
  report.time = time;
  report.suspect = round.query.suspect;
  report.subject = round.query.subject;
  report.claimed_up = round.query.claimed_up;
  report.verdict = verdict;
  report.detect = round_detect;
  report.cumulative_detect = decision.detect;
  report.interval = decision.interval;
  report.tags = round.tags;
  report.answers = round.answers.size();
  report.timeouts = round.timeouts;
  report.cumulative_answers = pool.size();
  report.suppressed = suppressed;

  // Confirmed verdicts add the E4/E5 evidence of Expression 4.
  if (verdict == trust::Verdict::kIntruder) {
    report.tags.push_back(round.query.claimed_up
                              ? EvidenceTag::kE5AdvertisesNonNeighbor
                              : EvidenceTag::kE4NotCoveringNeighbor);
  }

  // Update trust (§IV-B: "this result is used to update the trust related
  // to I and S1..Sm"). The per-round aggregate — not the gated verdict —
  // drives the update: even while the decision is still "unrecognized"
  // (wide confidence interval), responders leaning with the weighted
  // majority gain a little and those contradicting it are treated as lying
  // with gravity weighting. This is what lets liar trust fade round after
  // round in the paper's Figure 1/3 dynamics.
  if (std::abs(round_detect) >= config_.trust_update_min_detect) {
    const double correct_sign = round_detect < 0.0 ? -1.0 : +1.0;
    for (const auto& a : round.answers) {
      if (!a.answered || a.evidence == 0.0) continue;
      const bool agrees = a.evidence * correct_sign > 0.0;
      trust_.record_interaction(a.responder, agrees);
      if (agrees) {
        trust_.apply_evidence(
            a.responder,
            trust::honest_answer_evidence(trust_.params().reward_honest));
      } else {
        trust_.apply_evidence(a.responder,
                              trust::lie_evidence(trust_.params().gravity_lie));
      }
    }
  }
  // Unresponsive verifiers under the fault-tolerant policy: relax their
  // trust toward the default instead of freezing it at its pre-crash value.
  if (config_.decay_unresponsive) {
    for (const auto& a : round.answers)
      if (!a.answered) trust_.decay_idle(a.responder);
  }
  // The suspect's own trust only moves on a *confirmed* verdict.
  if (verdict == trust::Verdict::kIntruder) {
    trust_.apply_evidence(
        round.query.suspect,
        trust::intrusion_evidence(trust_.params().gravity_lie));
  } else if (verdict == trust::Verdict::kWellBehaving) {
    trust_.apply_evidence(
        round.query.suspect,
        trust::honest_answer_evidence(trust_.params().reward_honest));
  }

  obs::hit(obs::Hot::kPipelineReports);
  reports_.push_back(report);
  if (reports_.size() > 10'000) reports_.pop_front();
  if (on_report_) on_report_(report);
}

// ------------------------------------------------------------ header codec

void write_audit_header(logging::AuditWriter& writer,
                        const AuditHeader& header) {
  writer.u32(logging::kAuditMagic);
  writer.u32(logging::kAuditVersion);
  const auto& c = header.config;
  writer.node(c.self);
  const auto& tp = c.trust_params;
  writer.f64(tp.default_trust);
  writer.f64(tp.min_trust);
  writer.f64(tp.max_trust);
  writer.f64(tp.forgetting);
  writer.f64(tp.gravity_lie);
  writer.f64(tp.reward_honest);
  writer.f64(tp.idle_rate_from_above);
  writer.f64(tp.idle_rate_from_below);
  writer.f64(c.decision.gamma);
  writer.f64(c.decision.confidence_level);
  writer.boolean(c.decision.use_confidence_interval);
  writer.f64(c.trust_update_min_detect);
  writer.time(c.liveness_window);
  writer.boolean(c.decay_unresponsive);
  writer.count(header.trust_rows.size());
  for (const auto& [subject, value] : header.trust_rows) {
    writer.node(subject);
    writer.f64(value);
  }
  writer.count(header.interaction_rows.size());
  for (const auto& row : header.interaction_rows) {
    writer.node(row.subject);
    writer.i64(row.positive);
    writer.i64(row.total);
  }
}

AuditHeader read_audit_header(logging::AuditReader& reader) {
  const auto magic = reader.u32();
  if (magic != logging::kAuditMagic)
    throw logging::AuditError{"not an audit log (bad magic)"};
  const auto version = reader.u32();
  if (version != logging::kAuditVersion)
    throw logging::AuditError{"unsupported audit log version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(logging::kAuditVersion) + ")"};
  AuditHeader header;
  auto& c = header.config;
  c.self = reader.node();
  auto& tp = c.trust_params;
  tp.default_trust = reader.f64();
  tp.min_trust = reader.f64();
  tp.max_trust = reader.f64();
  tp.forgetting = reader.f64();
  tp.gravity_lie = reader.f64();
  tp.reward_honest = reader.f64();
  tp.idle_rate_from_above = reader.f64();
  tp.idle_rate_from_below = reader.f64();
  c.decision.gamma = reader.f64();
  c.decision.confidence_level = reader.f64();
  c.decision.use_confidence_interval = reader.boolean();
  c.trust_update_min_detect = reader.f64();
  c.liveness_window = reader.time();
  c.decay_unresponsive = reader.boolean();
  const std::size_t ntrust = reader.count();
  header.trust_rows.reserve(ntrust);
  for (std::size_t i = 0; i < ntrust; ++i) {
    const auto subject = reader.node();
    const double value = reader.f64();
    header.trust_rows.emplace_back(subject, value);
  }
  const std::size_t ninter = reader.count();
  header.interaction_rows.reserve(ninter);
  for (std::size_t i = 0; i < ninter; ++i) {
    trust::TrustStore::Counter row;
    row.subject = reader.node();
    row.positive = static_cast<int>(reader.i64());
    row.total = static_cast<int>(reader.i64());
    header.interaction_rows.push_back(row);
  }
  return header;
}

DetectionPipeline pipeline_from_header(const AuditHeader& header) {
  DetectionPipeline pipeline{header.config};
  pipeline.trust_store().restore(header.trust_rows, header.interaction_rows);
  return pipeline;
}

// ------------------------------------------------------------- frame codec

void write_round_frame(logging::AuditWriter& writer, sim::Time time,
                       const AuditRound& round) {
  writer.begin_frame(logging::AuditFrame::kRound);
  writer.time(time);
  writer.u32(round.query.investigation_id);
  writer.u8(static_cast<std::uint8_t>(round.query.kind));
  writer.node(round.query.suspect);
  writer.node(round.query.subject);
  writer.boolean(round.query.claimed_up);
  writer.f64(round.own_observation);
  writer.count(round.answers.size());
  for (const auto& a : round.answers) {
    writer.node(a.responder);
    writer.f64(a.evidence);
    writer.boolean(a.answered);
  }
  // Plain u64, not count(): timeouts is a tally, not an element count, so
  // the reader must not bound it by the remaining payload bytes.
  writer.u64(round.timeouts);
  writer.count(round.tags.size());
  for (auto tag : round.tags) writer.u8(static_cast<std::uint8_t>(tag));
  writer.end_frame();
}

void write_decay_frame(logging::AuditWriter& writer, sim::Time time) {
  writer.begin_frame(logging::AuditFrame::kDecay);
  writer.time(time);
  writer.end_frame();
}

void write_forward_audit_frame(logging::AuditWriter& writer, sim::Time time,
                               const ForwardAudit& audit) {
  writer.begin_frame(logging::AuditFrame::kForwardAudit);
  writer.time(time);
  writer.node(audit.mpr);
  // Plain u64s, not count(): these are tallies, not element counts, so the
  // reader must not bound them by the remaining payload bytes.
  writer.u64(audit.expected);
  writer.u64(audit.forwarded);
  writer.end_frame();
}

namespace {

AuditRound read_round_payload(logging::AuditReader& reader) {
  AuditRound round;
  round.query.investigation_id = reader.u32();
  const auto kind = reader.u8();
  if (kind < static_cast<std::uint8_t>(QueryKind::kLinkStatus) ||
      kind > static_cast<std::uint8_t>(QueryKind::kForwarding))
    throw logging::AuditError{"corrupt round frame: bad query kind"};
  round.query.kind = static_cast<QueryKind>(kind);
  round.query.suspect = reader.node();
  round.query.subject = reader.node();
  round.query.claimed_up = reader.boolean();
  round.own_observation = reader.f64();
  const std::size_t nanswers = reader.count();
  round.answers.reserve(nanswers);
  for (std::size_t i = 0; i < nanswers; ++i) {
    RoundAnswer a;
    a.responder = reader.node();
    a.evidence = reader.f64();
    a.answered = reader.boolean();
    round.answers.push_back(a);
  }
  round.timeouts = static_cast<std::size_t>(reader.u64());
  const std::size_t ntags = reader.count();
  round.tags.reserve(ntags);
  for (std::size_t i = 0; i < ntags; ++i) {
    const auto tag = reader.u8();
    if (tag > static_cast<std::uint8_t>(EvidenceTag::kPeriodicCheck))
      throw logging::AuditError{"corrupt round frame: bad evidence tag"};
    round.tags.push_back(static_cast<EvidenceTag>(tag));
  }
  return round;
}

}  // namespace

AuditStreamReader::AuditStreamReader(const std::uint8_t* data,
                                     std::size_t size)
    : reader_{data, size}, header_{read_audit_header(reader_)} {}

bool AuditStreamReader::next(AuditEvent& out) {
  if (reader_.at_end()) return false;
  const auto frame = reader_.begin_frame();
  out.kind = frame.kind;
  out.line = {};
  out.round = {};
  out.audit = {};
  switch (frame.kind) {
    case logging::AuditFrame::kLine:
      out.line = reader_.line();
      out.time = out.line.time;
      break;
    case logging::AuditFrame::kRound:
      out.time = reader_.time();
      out.round = read_round_payload(reader_);
      break;
    case logging::AuditFrame::kDecay:
      out.time = reader_.time();
      break;
    case logging::AuditFrame::kForwardAudit:
      out.time = reader_.time();
      out.audit.mpr = reader_.node();
      out.audit.expected = reader_.u64();
      out.audit.forwarded = reader_.u64();
      break;
  }
  reader_.end_frame(frame);
  return true;
}

// -------------------------------------------------------------- CSV output

namespace {

std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string verdict_csv(const std::deque<DetectionReport>& reports) {
  std::string out =
      "time_us,suspect,subject,claimed_up,verdict,detect,cumulative_detect,"
      "interval_mean,interval_margin,answers,timeouts,cumulative_answers,"
      "suppressed,tags\n";
  for (const auto& r : reports) {
    out += std::to_string(r.time.us());
    out += ',';
    out += r.suspect.to_string();
    out += ',';
    out += r.subject.to_string();
    out += ',';
    out += r.claimed_up ? '1' : '0';
    out += ',';
    out += trust::to_string(r.verdict);
    out += ',';
    out += g17(r.detect);
    out += ',';
    out += g17(r.cumulative_detect);
    out += ',';
    out += g17(r.interval.mean);
    out += ',';
    out += g17(r.interval.margin);
    out += ',';
    out += std::to_string(r.answers);
    out += ',';
    out += std::to_string(r.timeouts);
    out += ',';
    out += std::to_string(r.cumulative_answers);
    out += ',';
    out += r.suppressed ? '1' : '0';
    out += ',';
    for (std::size_t i = 0; i < r.tags.size(); ++i) {
      if (i) out += '|';
      out += to_string(r.tags[i]);
    }
    out += '\n';
  }
  return out;
}

std::string trust_csv(const trust::TrustStore& store) {
  std::string out = "subject,trust,interactions_positive,interactions_total\n";
  const auto& trust_rows = store.trust_rows();
  const auto& inter_rows = store.interaction_rows();
  std::size_t t = 0, i = 0;
  // Both slabs are sorted by subject; merge them into one row per subject.
  while (t < trust_rows.size() || i < inter_rows.size()) {
    NodeId subject;
    if (i >= inter_rows.size() ||
        (t < trust_rows.size() && trust_rows[t].first < inter_rows[i].subject))
      subject = trust_rows[t].first;
    else
      subject = inter_rows[i].subject;
    out += subject.to_string();
    out += ',';
    if (t < trust_rows.size() && trust_rows[t].first == subject) {
      out += g17(trust_rows[t].second);
      ++t;
    } else {
      out += g17(store.params().default_trust);
    }
    out += ',';
    if (i < inter_rows.size() && inter_rows[i].subject == subject) {
      out += std::to_string(inter_rows[i].positive);
      out += ',';
      out += std::to_string(inter_rows[i].total);
      ++i;
    } else {
      out += "0,0";
    }
    out += '\n';
  }
  return out;
}

}  // namespace manet::core
