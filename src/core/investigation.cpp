#include "core/investigation.hpp"

#include <algorithm>

#include "logging/format.hpp"
#include "obs/obs.hpp"

namespace manet::core {
namespace {

// Async-span correlation id of one investigation: unique across nodes
// (each manager numbers its own investigations from 1) and a pure function
// of the run.
std::uint64_t span_id(std::uint32_t agent, std::uint32_t investigation) {
  return (static_cast<std::uint64_t>(agent) << 32) | investigation;
}

}  // namespace
}  // namespace manet::core

namespace manet::core {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

constexpr std::uint8_t kQueryTag = 1;
constexpr std::uint8_t kAnswerTag = 2;

}  // namespace

std::vector<std::uint8_t> encode_query(const LinkQuery& q) {
  std::vector<std::uint8_t> out;
  out.push_back(kQueryTag);
  out.push_back(static_cast<std::uint8_t>(q.kind));
  put_u32(out, q.investigation_id);
  put_u32(out, q.suspect.value());
  put_u32(out, q.subject.value());
  out.push_back(q.claimed_up ? 1 : 0);
  return out;
}

std::optional<LinkQuery> decode_query(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 15 || bytes[0] != kQueryTag) return std::nullopt;
  LinkQuery q;
  q.kind = static_cast<QueryKind>(bytes[1]);
  if (q.kind != QueryKind::kLinkStatus && q.kind != QueryKind::kForwarding)
    return std::nullopt;
  q.investigation_id = get_u32(bytes, 2);
  q.suspect = NodeId{get_u32(bytes, 6)};
  q.subject = NodeId{get_u32(bytes, 10)};
  q.claimed_up = bytes[14] != 0;
  return q;
}

std::vector<std::uint8_t> encode_answer(const LinkAnswer& a) {
  std::vector<std::uint8_t> out;
  out.push_back(kAnswerTag);
  put_u32(out, a.investigation_id);
  put_u32(out, a.responder.value());
  put_u32(out, a.suspect.value());
  put_u32(out, a.subject.value());
  out.push_back(a.evidence > 0 ? 1 : (a.evidence < 0 ? 2 : 0));
  return out;
}

std::optional<LinkAnswer> decode_answer(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 18 || bytes[0] != kAnswerTag) return std::nullopt;
  LinkAnswer a;
  a.investigation_id = get_u32(bytes, 1);
  a.responder = NodeId{get_u32(bytes, 5)};
  a.suspect = NodeId{get_u32(bytes, 9)};
  a.subject = NodeId{get_u32(bytes, 13)};
  a.evidence = bytes[17] == 1 ? 1.0 : (bytes[17] == 2 ? -1.0 : 0.0);
  return a;
}

bool is_query(const std::vector<std::uint8_t>& bytes) {
  return !bytes.empty() && bytes[0] == kQueryTag;
}

InvestigationManager::InvestigationManager(sim::Engine& sim,
                                           olsr::Agent& agent,
                                           InvestigationConfig config,
                                           AnswerPolicy policy)
    : sim_{sim}, agent_{agent}, config_{config}, policy_{policy} {
  agent_.set_data_handler(
      [this](const olsr::DataMessage& message) { on_data(message); });
}

void InvestigationManager::on_data(const olsr::DataMessage& message) {
  if (message.protocol != kInvestigationProtocol) {
    if (fallback_) fallback_(message);
    return;
  }
  if (is_query(message.payload)) {
    if (auto q = decode_query(message.payload))
      handle_query(message.source, *q, message.trace);
  } else {
    if (auto a = decode_answer(message.payload)) handle_answer(*a);
  }
}

double InvestigationManager::honest_observation(const LinkQuery& query) const {
  const auto now = sim_.now();

  if (query.kind == QueryKind::kForwarding) {
    // Did we select the suspect as MPR, and did it retransmit our messages?
    if (!agent_.is_mpr(query.suspect)) return 0.0;
    for (const auto& rec : agent_.log().records_with_event("own_fwd_heard")) {
      if (now - rec.time > config_.hello_freshness) continue;
      if (rec.node_field("by") == query.suspect) return +1.0;
    }
    return -1.0;  // our MPR, but no forward observed recently
  }

  // kLinkStatus: is the link suspect-subject up? Evidence must come from
  // the SUBJECT's side or third parties — the suspect's own HELLOs are the
  // very claim under dispute and must never corroborate themselves.
  if (query.subject == agent_.id()) {
    // We ARE the far end: first-hand knowledge from the link set.
    return agent_.is_symmetric_neighbor(query.suspect) ? +1.0 : -1.0;
  }

  // A down-claim (the suspect omits the subject) cannot be judged by third
  // parties: a one-sided listing is indistinguishable from a genuine link
  // break. Only the omitted subject's first-hand testimony is informative;
  // everyone else abstains.
  if (!query.claimed_up) return 0.0;

  // Consult our own audit log: the freshest HELLO heard directly from the
  // subject tells us whether it considers the suspect a neighbor; if it
  // does, the suspect's freshest HELLO must reciprocate for the link to be
  // symmetric (a one-sided listing is not an up link).
  const auto hellos = agent_.log().records_with_event("hello_recv");
  for (auto it = hellos.rbegin(); it != hellos.rend(); ++it) {
    if (now - it->time > config_.hello_freshness) break;  // older only
    if (it->node_field("from") != query.subject) continue;
    const auto sym = it->node_list_field("sym");
    const bool subject_lists =
        std::find(sym.begin(), sym.end(), query.suspect) != sym.end();
    if (!subject_lists) return -1.0;
    for (auto jt = hellos.rbegin(); jt != hellos.rend(); ++jt) {
      if (now - jt->time > config_.hello_freshness) break;
      if (jt->node_field("from") != query.suspect) continue;
      const auto ssym = jt->node_list_field("sym");
      const bool reciprocated =
          std::find(ssym.begin(), ssym.end(), query.subject) != ssym.end();
      return reciprocated ? +1.0 : -1.0;
    }
    return +1.0;  // subject vouches; suspect unheard locally
  }

  // Never heard the subject directly. Look for evidence of its existence
  // that does NOT trace back to the suspect itself: a TC it originated, a
  // TC advertising it, or a HELLO from a third node listing it. If no
  // independent trace exists, the advertised link points at a phantom.
  for (const auto& rec : agent_.log().records_with_event("tc_recv")) {
    if (rec.node_field("orig") == query.subject) return 0.0;
    const auto adv = rec.node_list_field("adv");
    if (rec.node_field("orig") != query.suspect &&
        std::find(adv.begin(), adv.end(), query.subject) != adv.end())
      return 0.0;
  }
  for (auto it = hellos.rbegin(); it != hellos.rend(); ++it) {
    const auto from = it->node_field("from");
    if (from == query.suspect || from == query.subject) continue;
    const auto sym = it->node_list_field("sym");
    if (std::find(sym.begin(), sym.end(), query.subject) != sym.end())
      return 0.0;  // a third party vouches the subject exists
  }
  return -1.0;
}

void InvestigationManager::handle_query(NodeId requester,
                                        const LinkQuery& query,
                                        const std::vector<NodeId>& trace) {
  if (policy_ == AnswerPolicy::kSilent) return;

  const double truth_observation = honest_observation(query);
  // Evidence = agreement with the suspect's claim.
  const double claim = query.claimed_up ? +1.0 : -1.0;
  double evidence = truth_observation == 0.0
                        ? 0.0
                        : (truth_observation == claim ? +1.0 : -1.0);

  switch (policy_) {
    case AnswerPolicy::kHonest:
      break;
    case AnswerPolicy::kLiar:
      // The colluder contradicts the truth: it vouches for the attacker's
      // claim, or frames an innocent suspect.
      evidence = evidence == 0.0 ? +1.0 : -evidence;
      break;
    case AnswerPolicy::kRandom:
      evidence = sim_.rng().bernoulli(0.5) ? +1.0 : -1.0;
      break;
    case AnswerPolicy::kSilent:
      return;  // unreachable, handled above
  }

  LinkAnswer answer;
  answer.investigation_id = query.investigation_id;
  answer.responder = agent_.id();
  answer.suspect = query.suspect;
  answer.subject = query.subject;
  answer.evidence = evidence;

  ++stats_.answers_sent;
  // §III-C: request and answer together must avoid the suspect. The query
  // arrived over a suspect-free path, so the answer retraces it in reverse;
  // if no trace exists (direct delivery), compute a suspect-avoiding route.
  if (!trace.empty()) {
    std::vector<NodeId> route{trace.rbegin(), trace.rend()};
    route.push_back(requester);
    agent_.send_data_via(std::move(route), kInvestigationProtocol,
                         encode_answer(answer));
  } else {
    agent_.send_data(requester, kInvestigationProtocol, encode_answer(answer),
                     {query.suspect});
  }
}

void InvestigationManager::investigate(const LinkQuery& query,
                                       std::vector<NodeId> verifiers,
                                       RoundCallback done) {
  const auto id = next_id_++;
  obs::hit(obs::Hot::kInvestigationsOpened);
  obs::async_begin(obs::SpanName::kInvestigation, sim_.now(),
                   span_id(agent_.id().value(), id));
  auto& inv = outstanding_[id];
  inv.query = query;
  inv.query.investigation_id = id;
  inv.result.id = id;
  inv.result.query = inv.query;
  inv.done = std::move(done);
  inv.timer = std::make_unique<sim::OneShotTimer>(sim_);

  for (auto v : verifiers) {
    if (v == agent_.id() || v == query.suspect) continue;
    inv.pending[v] = PendingVerifier{config_.max_retries,
                                     {query.suspect},
                                     false};
  }
  if (inv.pending.empty()) {
    finalize(id);
    return;
  }
  for (auto& [v, _] : inv.pending) send_query_to(inv, v);
  inv.timer->arm(config_.answer_timeout, [this, id] { on_timeout(id); });
}

void InvestigationManager::send_query_to(Outstanding& inv, NodeId verifier) {
  auto& p = inv.pending.at(verifier);
  ++stats_.queries_sent;
  const auto status = agent_.send_data(
      verifier, kInvestigationProtocol, encode_query(inv.query), p.avoid);
  if (status == olsr::Agent::SendStatus::kNoRoute) {
    ++stats_.route_failures;
    // No path that avoids the suspect: the paper's E3 situation. The
    // verifier stays pending; a retry may succeed after topology changes.
  }
}

void InvestigationManager::handle_answer(const LinkAnswer& answer) {
  auto it = outstanding_.find(answer.investigation_id);
  if (it == outstanding_.end()) return;
  auto& inv = it->second;
  auto p = inv.pending.find(answer.responder);
  if (p == inv.pending.end() || p->second.done) return;

  p->second.done = true;
  ++stats_.answers_received;
  inv.result.answers.push_back(
      RoundAnswer{answer.responder, answer.evidence, true});

  const bool all_done =
      std::all_of(inv.pending.begin(), inv.pending.end(),
                  [](const auto& kv) { return kv.second.done; });
  if (all_done) finalize(answer.investigation_id);
}

void InvestigationManager::on_timeout(std::uint32_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  auto& inv = it->second;

  bool any_retry = false;
  for (auto& [v, p] : inv.pending) {
    if (p.done) continue;
    if (p.retries_left > 0) {
      --p.retries_left;
      ++stats_.retries;
      // Algorithm 1: try the next covering path — grow the avoid set with
      // the first relay of the previous attempt so a different route is
      // chosen, then fall back to any multi-hop alternative.
      const auto graph = agent_.knowledge_graph();
      auto prev = olsr::RoutingTable::shortest_path(graph, agent_.id(), v,
                                                    p.avoid);
      if (prev && prev->size() > 1) {
        const auto hop = prev->front();
        auto pos = std::lower_bound(p.avoid.begin(), p.avoid.end(), hop);
        if (pos == p.avoid.end() || *pos != hop) p.avoid.insert(pos, hop);
      }
      send_query_to(inv, v);
      any_retry = true;
    } else {
      p.done = true;
      ++inv.result.timeouts;
      inv.result.answers.push_back(RoundAnswer{v, 0.0, false});
    }
  }

  if (any_retry) {
    inv.timer->arm(config_.answer_timeout, [this, id] { on_timeout(id); });
  } else {
    finalize(id);
  }
}

void InvestigationManager::finalize(std::uint32_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  // Collect any still-pending verifiers as unanswered.
  for (auto& [v, p] : it->second.pending) {
    if (!p.done) {
      it->second.result.answers.push_back(RoundAnswer{v, 0.0, false});
      ++it->second.result.timeouts;
      p.done = true;
    }
  }
  auto done = std::move(it->second.done);
  auto result = std::move(it->second.result);
  outstanding_.erase(it);
  obs::async_end(obs::SpanName::kInvestigation, sim_.now(),
                 span_id(agent_.id().value(), id));
  if (done) done(result);
}

}  // namespace manet::core
