#include "core/signature.hpp"

#include <algorithm>

namespace manet::core {

void SignatureMatcher::add_signature(Signature signature) {
  signatures_.push_back(std::move(signature));
}

std::size_t SignatureMatcher::partial_count() const { return partials_.size(); }

bool SignatureMatcher::try_extend(Partial& partial,
                                  const logging::LogRecord& record) {
  const Signature& sig = signatures_[partial.signature_index];

  for (std::size_t i = 0; i < sig.steps.size(); ++i) {
    if (partial.matched[i].has_value()) continue;
    const auto& step = sig.steps[i];
    // Partial order: all prerequisite steps must already be matched.
    const bool deps_met =
        std::all_of(step.after.begin(), step.after.end(),
                    [&](std::size_t d) { return partial.matched[d].has_value(); });
    if (!deps_met) continue;
    if (!step.pattern.match(record)) continue;

    const bool correlation_was_set = partial.has_correlated_value;
    if (sig.correlate_field) {
      const auto v = record.field(*sig.correlate_field);
      if (!v) continue;
      if (partial.has_correlated_value) {
        if (partial.correlated_value != *v) continue;
      } else {
        partial.correlated_value = std::string{*v};
        partial.has_correlated_value = true;
      }
    }

    partial.matched[i] = record;
    // The cross-record constraint gates the assignment: if accepting this
    // record would complete the signature but fail the constraint, reject
    // it and keep waiting — another record may satisfy the step later
    // (e.g. the right HELLO pairing in interleaved traffic).
    if (sig.constraint && is_complete_except_constraint(partial) &&
        !constraint_passes(partial)) {
      partial.matched[i].reset();
      if (!correlation_was_set) partial.has_correlated_value = false;
      continue;
    }
    return true;
  }
  return false;
}

bool SignatureMatcher::is_complete_except_constraint(
    const Partial& partial) const {
  const Signature& sig = signatures_[partial.signature_index];
  for (std::size_t i = 0; i < sig.steps.size(); ++i)
    if (!sig.steps[i].optional && !partial.matched[i].has_value()) return false;
  return true;
}

bool SignatureMatcher::constraint_passes(const Partial& partial) const {
  const Signature& sig = signatures_[partial.signature_index];
  if (!sig.constraint) return true;
  std::vector<const logging::LogRecord*> view(sig.steps.size(), nullptr);
  for (std::size_t i = 0; i < sig.steps.size(); ++i)
    if (partial.matched[i].has_value()) view[i] = &*partial.matched[i];
  return sig.constraint(view);
}

bool SignatureMatcher::is_complete(const Partial& partial) const {
  return is_complete_except_constraint(partial) && constraint_passes(partial);
}

std::vector<SignatureMatch> SignatureMatcher::feed(
    const logging::LogRecord& record) {
  std::vector<SignatureMatch> completed;

  // Expire partials whose window has passed.
  std::erase_if(partials_, [&](const Partial& p) {
    return record.time - p.first_event > signatures_[p.signature_index].window;
  });

  // Try to extend existing partials (each record extends each partial at
  // most once, oldest partials first so bursts complete eagerly).
  for (auto& partial : partials_) {
    if (try_extend(partial, record) && is_complete(partial)) {
      const Signature& sig = signatures_[partial.signature_index];
      SignatureMatch m;
      m.signature = sig.name;
      m.first_event = partial.first_event;
      m.last_event = record.time;
      m.correlated_value = partial.correlated_value;
      for (auto& rec : partial.matched)
        if (rec.has_value()) m.records.push_back(*rec);
      completed.push_back(std::move(m));
    }
  }
  // Remove completed partials.
  std::erase_if(partials_, [&](const Partial& p) { return is_complete(p); });

  // Try to open a new partial per signature (the record may be step 0 of a
  // fresh instance even if it extended an existing one).
  for (std::size_t s = 0; s < signatures_.size(); ++s) {
    Partial fresh;
    fresh.signature_index = s;
    fresh.matched.resize(signatures_[s].steps.size());
    fresh.first_event = record.time;
    if (try_extend(fresh, record)) {
      if (is_complete(fresh)) {
        SignatureMatch m;
        m.signature = signatures_[s].name;
        m.first_event = fresh.first_event;
        m.last_event = record.time;
        m.correlated_value = fresh.correlated_value;
        for (auto& rec : fresh.matched)
          if (rec.has_value()) m.records.push_back(*rec);
        completed.push_back(std::move(m));
      } else {
        partials_.push_back(std::move(fresh));
      }
    }
  }
  return completed;
}

std::vector<SignatureMatch> SignatureMatcher::feed_all(
    const std::vector<logging::LogRecord>& records) {
  std::vector<SignatureMatch> out;
  for (const auto& r : records) {
    auto matches = feed(r);
    out.insert(out.end(), std::make_move_iterator(matches.begin()),
               std::make_move_iterator(matches.end()));
  }
  return out;
}

}  // namespace manet::core
