#pragma once

#include <cstddef>

#include "core/signature.hpp"
#include "net/node_id.hpp"

namespace manet::core {

/// Predefined intrusion signatures over the OLSR audit log (§III of the
/// paper). Each factory returns a Signature ready for SignatureMatcher.

/// Expressions 1-2 precondition: two HELLO receptions within `window` that
/// contradict each other — a node I advertises X as symmetric while X's own
/// HELLO (heard directly) does not list I. Fires on the *local* log only;
/// the cooperative investigation then confirms or refutes.
Signature link_spoofing_claim_signature(sim::Duration window);

/// Expression 3 precondition: X's HELLO lists I as symmetric but I's own
/// HELLO omits X (the intruder shrinks connectivity).
Signature link_omission_signature(sim::Duration window);

/// Broadcast storm: `burst` TC receptions from one originator within
/// `window` (correlated on the originator field).
Signature storm_signature(std::size_t burst, sim::Duration window);

/// Drop attack (gives E2): we sent a TC and a selected MPR never
/// retransmitted it. Modeled as tc_sent followed — within the window — by a
/// mpr_fwd_timeout record that the detector synthesizes; kept as a
/// signature so drops are matched uniformly with other attacks.
Signature drop_signature(sim::Duration window);

/// MPR churn: an mpr_changed that both adds and removes nodes (E1 — an MPR
/// has been *replaced*, the paper's primary trigger for investigation).
Signature mpr_replacement_signature();

}  // namespace manet::core
