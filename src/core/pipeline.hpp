#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/audit_event.hpp"
#include "trust/detection.hpp"
#include "trust/trust_store.hpp"

namespace manet::core {

/// Outcome of one investigated claim.
struct DetectionReport {
  sim::Time time;
  NodeId suspect;
  NodeId subject;
  bool claimed_up = true;
  /// Verdict of Eq. 10 over the *cumulative* evidence pool for this
  /// disputed link (§IV-C: a too-wide interval demands more evidence, so
  /// rounds accumulate until the margin allows a decision).
  trust::Verdict verdict = trust::Verdict::kUnrecognized;
  double detect = 0.0;  ///< Eq. 8 aggregate of THIS round's answers
  double cumulative_detect = 0.0;  ///< Eq. 8 over the accumulated pool
  stats::ConfidenceInterval interval;  ///< Eq. 9 over the accumulated pool
  std::vector<EvidenceTag> tags;
  std::size_t answers = 0;   ///< this round
  std::size_t timeouts = 0;  ///< this round
  std::size_t cumulative_answers = 0;
  /// True when the evidence said kIntruder but the liveness gate downgraded
  /// the verdict because the suspect looks dead (see
  /// PipelineConfig::liveness_window).
  bool suppressed = false;
};

/// Graceful-degradation counters maintained under faults.
struct DetectorDegradation {
  /// kIntruder verdicts downgraded by the liveness gate.
  std::uint64_t suppressed_convictions = 0;
};

/// The decision-side knobs of the detector — everything the audit-event
/// consumer needs, and nothing the event *producer* (signature matching,
/// scan cadence, investigation transport) needs. A recorded audit log
/// embeds this config in its header so an offline replay is self-contained.
struct PipelineConfig {
  /// The investigating node: its first-hand answers weigh 1.0 in Eq. 8.
  NodeId self;
  trust::TrustParams trust_params;
  trust::DecisionConfig decision;
  /// Minimum |Detect| for a round to move responder trust at all; below it
  /// the aggregate is considered pure noise.
  double trust_update_min_detect = 0.1;
  /// Fault-tolerance gate (see DetectorConfig::liveness_window); zero = off.
  sim::Duration liveness_window{};
  /// Relax unresponsive responders toward default trust instead of freezing
  /// them (see DetectorConfig::decay_unresponsive).
  bool decay_unresponsive = false;
};

/// The detection back half behind an abstract audit-event stream: evidence
/// aggregation (Eq. 8), pooled decision (Eq. 9-10), liveness gating, and
/// every trust update — with no reference to the simulator, the agent, or
/// the investigation transport. The in-sim Detector is one producer of the
/// stream (it forwards its log growth and completed rounds here); the
/// tools/manet_detect replayer is another, feeding the same frames back
/// from a recorded binary audit log. Byte-identical inputs yield
/// byte-identical verdicts, trust trajectories and degradation counters.
class DetectionPipeline {
 public:
  explicit DetectionPipeline(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }

  /// Dispatches one stream event to the matching consume_* method.
  void consume(const AuditEvent& event);

  /// One audit-log line of the observed daemon. Maintains the liveness
  /// oracle (latest reception per peer) that gates convictions.
  void consume_line(const logging::LogRecord& line);

  /// One completed investigation round: Eq. 8 aggregation, pool
  /// accumulation, Eq. 9-10 decision, liveness gate, trust updates, report
  /// emission.
  void consume_round(sim::Time time, const AuditRound& round);

  /// One idle-slot forgetting sweep over all known subjects (Fig. 2).
  void consume_decay(sim::Time time);

  /// One closed forwarding-audit window tally (grayhole observability).
  /// Deliberately touches no trust state: convictions ride the ordinary
  /// kRound path, so recording/stripping these frames cannot change a
  /// replayed verdict or trust trajectory.
  void consume_forward_audit(sim::Time time, const ForwardAudit& audit);

  /// One retained forwarding-audit tally with its stream time.
  struct TimedForwardAudit {
    sim::Time time;
    ForwardAudit audit;
  };
  /// The retained tail of consumed kForwardAudit events (bounded ring,
  /// mirrors reports()).
  const std::deque<TimedForwardAudit>& forward_audits() const {
    return forward_audits_;
  }

  trust::TrustStore& trust_store() { return trust_; }
  const trust::TrustStore& trust_store() const { return trust_; }

  const std::deque<DetectionReport>& reports() const { return reports_; }
  using ReportCallback = std::function<void(const DetectionReport&)>;
  void set_report_callback(ReportCallback cb) { on_report_ = std::move(cb); }

  /// Latest time the consumed stream records a reception (HELLO heard
  /// directly, or a TC relayed to us) from `node`; Time{} when never heard.
  sim::Time last_heard_of(NodeId node) const;

  const DetectorDegradation& degradation() const { return degradation_; }

  /// Recorder mode: every consumed kRound/kDecay event is also appended to
  /// `recorder` as a frame of the binary audit-log format. kLine frames are
  /// emitted at the source by the LogStore writer mode (the line reaches
  /// the log before it reaches this pipeline), so consume_line does not
  /// re-emit them. The writer must outlive this pipeline or be detached.
  void set_recorder(logging::AuditWriter* recorder) { recorder_ = recorder; }
  logging::AuditWriter* recorder() const { return recorder_; }

  /// One pooled second-hand answer (public for checkpointing).
  struct PooledAnswer {
    NodeId responder;
    double evidence = 0.0;
    bool answered = false;
  };
  using AnswerPool =
      std::map<std::pair<NodeId, NodeId>, std::vector<PooledAnswer>>;

  /// Checkpoint surface (the Detector persists this inside its own image;
  /// the report ring is skipped — nothing trace-relevant reads old
  /// reports). Restoring clears the liveness map: the owner re-feeds the
  /// retained log window through consume_line.
  const AnswerPool& answer_pool() const { return answer_pool_; }
  void restore(AnswerPool pool, DetectorDegradation degradation);

 private:
  PipelineConfig config_;
  trust::TrustStore trust_;
  // Accumulated answers per disputed (suspect, subject) link. Evidence
  // values are stored raw; weights use the *current* trust at decision
  // time, so a liar's early answers lose influence as its trust fades.
  AnswerPool answer_pool_;
  std::map<NodeId, sim::Time> last_heard_;
  std::deque<DetectionReport> reports_;
  std::deque<TimedForwardAudit> forward_audits_;
  ReportCallback on_report_;
  DetectorDegradation degradation_;
  logging::AuditWriter* recorder_ = nullptr;
};

/// Prefix of every recorded audit log: format magic/version, the pipeline
/// config that produced the stream, and the initial trust snapshot — all a
/// replay needs to reconstruct the consumer exactly.
struct AuditHeader {
  PipelineConfig config;
  std::vector<std::pair<NodeId, double>> trust_rows;
  std::vector<trust::TrustStore::Counter> interaction_rows;
};

/// Writes the header (magic + version + config + snapshot) at the current
/// writer position — call before the first frame.
void write_audit_header(logging::AuditWriter& writer, const AuditHeader& header);

/// Reads and validates the header; throws logging::AuditError on a bad
/// magic, a version other than kAuditVersion, or truncation.
AuditHeader read_audit_header(logging::AuditReader& reader);

/// Builds the replay-side pipeline a header describes: config applied,
/// trust snapshot restored.
DetectionPipeline pipeline_from_header(const AuditHeader& header);

/// Appends one kRound frame for a completed round (the recorder path).
void write_round_frame(logging::AuditWriter& writer, sim::Time time,
                       const AuditRound& round);
/// Appends one kDecay frame for an idle sweep.
void write_decay_frame(logging::AuditWriter& writer, sim::Time time);
/// Appends one kForwardAudit frame for a closed forwarding-audit window.
void write_forward_audit_frame(logging::AuditWriter& writer, sim::Time time,
                               const ForwardAudit& audit);

/// Streaming decoder over a complete audit log (header + frames), e.g. an
/// mmapped file. Every read is bounds-checked; corruption anywhere —
/// unknown frame kind, size prefix past the buffer, payload drift,
/// trailing garbage — throws logging::AuditError.
class AuditStreamReader {
 public:
  AuditStreamReader(const std::uint8_t* data, std::size_t size);
  explicit AuditStreamReader(const std::vector<std::uint8_t>& data)
      : AuditStreamReader{data.data(), data.size()} {}

  const AuditHeader& header() const { return header_; }

  /// Decodes the next frame into `out`; false at a clean end of stream.
  bool next(AuditEvent& out);

 private:
  logging::AuditReader reader_;
  AuditHeader header_;
};

/// Canonical CSV of a report sequence — the byte-exact equivalence surface
/// between a live run and an offline replay (doubles printed with %.17g,
/// so every bit of the value is on the wire).
std::string verdict_csv(const std::deque<DetectionReport>& reports);

/// Canonical CSV of the final trust state: one row per known subject with
/// trust value and interaction counters.
std::string trust_csv(const trust::TrustStore& store);

}  // namespace manet::core
