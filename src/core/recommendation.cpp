#include "core/recommendation.hpp"

#include <cmath>

#include "trust/propagation.hpp"

namespace manet::core {
namespace {

constexpr std::uint8_t kReqTag = 3;
constexpr std::uint8_t kReplyTag = 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

// Trust in [0,1] encoded in a byte (256 levels — plenty for a judgment).
std::uint8_t encode_trust(double t) {
  return static_cast<std::uint8_t>(std::lround(std::clamp(t, 0.0, 1.0) * 255));
}
double decode_trust(std::uint8_t b) { return static_cast<double>(b) / 255.0; }

}  // namespace

std::vector<std::uint8_t> encode_recommendation_request(
    std::uint32_t request_id, const std::vector<net::NodeId>& subjects) {
  std::vector<std::uint8_t> out{kReqTag};
  put_u32(out, request_id);
  out.push_back(static_cast<std::uint8_t>(subjects.size()));
  for (auto s : subjects) put_u32(out, s.value());
  return out;
}

std::optional<std::vector<net::NodeId>> decode_recommendation_request(
    const std::vector<std::uint8_t>& bytes, std::uint32_t& request_id) {
  if (bytes.size() < 6 || bytes[0] != kReqTag) return std::nullopt;
  request_id = get_u32(bytes, 1);
  const std::size_t count = bytes[5];
  if (bytes.size() != 6 + 4 * count) return std::nullopt;
  std::vector<net::NodeId> subjects;
  for (std::size_t i = 0; i < count; ++i)
    subjects.push_back(net::NodeId{get_u32(bytes, 6 + 4 * i)});
  return subjects;
}

std::vector<std::uint8_t> encode_recommendation_reply(
    const RecommendationReply& reply) {
  std::vector<std::uint8_t> out{kReplyTag};
  put_u32(out, reply.request_id);
  put_u32(out, reply.recommender.value());
  out.push_back(static_cast<std::uint8_t>(reply.trusts.size()));
  for (const auto& [subject, trust] : reply.trusts) {
    put_u32(out, subject.value());
    out.push_back(encode_trust(trust));
  }
  return out;
}

std::optional<RecommendationReply> decode_recommendation_reply(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 10 || bytes[0] != kReplyTag) return std::nullopt;
  RecommendationReply reply;
  reply.request_id = get_u32(bytes, 1);
  reply.recommender = net::NodeId{get_u32(bytes, 5)};
  const std::size_t count = bytes[9];
  if (bytes.size() != 10 + 5 * count) return std::nullopt;
  for (std::size_t i = 0; i < count; ++i) {
    const auto subject = net::NodeId{get_u32(bytes, 10 + 5 * i)};
    const auto trust = decode_trust(bytes[10 + 5 * i + 4]);
    reply.trusts.emplace_back(subject, trust);
  }
  return reply;
}

bool is_recommendation_request(const std::vector<std::uint8_t>& bytes) {
  return !bytes.empty() && bytes[0] == kReqTag;
}

RecommendationExchange::RecommendationExchange(sim::Engine& sim,
                                               olsr::Agent& agent,
                                               trust::TrustStore& store)
    : sim_{sim}, agent_{agent}, store_{store} {}

void RecommendationExchange::bootstrap(
    const std::vector<net::NodeId>& subjects,
    const std::vector<net::NodeId>& recommenders, sim::Duration timeout,
    Done done) {
  const auto id = next_id_++;
  auto& pending = outstanding_[id];
  pending.subjects = subjects;
  pending.done = std::move(done);
  pending.timer = std::make_unique<sim::OneShotTimer>(sim_);

  const auto payload = encode_recommendation_request(id, subjects);
  for (auto r : recommenders) {
    if (r == agent_.id()) continue;
    agent_.send_data(r, kRecommendationProtocol, payload);
  }
  pending.timer->arm(timeout, [this, id] { finalize(id); });
}

bool RecommendationExchange::on_data(const olsr::DataMessage& message) {
  if (message.protocol != kRecommendationProtocol) return false;

  if (is_recommendation_request(message.payload)) {
    std::uint32_t request_id = 0;
    const auto subjects =
        decode_recommendation_request(message.payload, request_id);
    if (!subjects) return true;
    RecommendationReply reply;
    reply.request_id = request_id;
    reply.recommender = agent_.id();
    for (auto s : *subjects) reply.trusts.emplace_back(s, store_.trust(s));
    agent_.send_data(message.source, kRecommendationProtocol,
                     encode_recommendation_reply(reply));
    return true;
  }

  const auto reply = decode_recommendation_reply(message.payload);
  if (!reply) return true;
  auto it = outstanding_.find(reply->request_id);
  if (it != outstanding_.end()) it->second.replies.push_back(*reply);
  return true;
}

void RecommendationExchange::finalize(std::uint32_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  auto pending = std::move(it->second);
  outstanding_.erase(it);

  // Eq. 7: Tm^{A,I} = sum_i w_i R^{A,Si} T^{Si,I}, w_i = 1 / sum_j R^{A,Sj},
  // with R from the entropy-based recommendation history. Results land in
  // [-1,1]; map to the store's [0,1] scale around the default anchor.
  std::map<net::NodeId, double> merged;
  for (auto subject : pending.subjects) {
    std::vector<trust::RecommendationPath> paths;
    for (const auto& reply : pending.replies) {
      for (const auto& [s, t] : reply.trusts) {
        if (s != subject) continue;
        // The recommender reported store-scale trust [0,1]; recenter to
        // [-1,1] around the neutral default for propagation.
        const double centered =
            (t - store_.params().default_trust) /
            std::max(store_.params().max_trust - store_.params().default_trust,
                     store_.params().default_trust - store_.params().min_trust);
        paths.push_back(trust::RecommendationPath{
            reply.recommender, store_.recommendation_trust(reply.recommender),
            centered});
      }
    }
    if (paths.empty()) continue;
    const double tm = trust::multipath_trust(paths);
    const double store_scale =
        store_.params().default_trust +
        tm * (tm >= 0 ? store_.params().max_trust - store_.params().default_trust
                      : store_.params().default_trust - store_.params().min_trust);
    merged[subject] = store_scale;
    if (!store_.known(subject)) store_.set_trust(subject, store_scale);
  }
  if (pending.done) pending.done(merged);
}

}  // namespace manet::core
