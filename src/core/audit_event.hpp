#pragma once

#include <string>
#include <vector>

#include "core/investigation.hpp"
#include "core/signatures_forwarding.hpp"
#include "logging/audit_log.hpp"
#include "logging/record.hpp"
#include "sim/time.hpp"

namespace manet::core {

/// Evidence taxonomy of §III-B.
enum class EvidenceTag {
  kE1MprReplaced,
  kE2MprMisbehaving,
  kE3SoleProvider,
  kE4NotCoveringNeighbor,
  kE5AdvertisesNonNeighbor,
  kSignatureMatch,
  /// §III-B: triggers "not necessarily event-driven... handled by launching
  /// periodical/random checks" — the per-scan MPR audit.
  kPeriodicCheck,
};

std::string to_string(EvidenceTag tag);

/// One completed investigation round as it enters the detection pipeline:
/// everything the Eq. 8-10 evidence evaluation consumes that the network
/// produced. `own_observation` is the investigator's first-hand answer to
/// its own query at decision time (Property 5 privileges it over
/// second-hand evidence); it is captured by the producer because it reads
/// live protocol state that an offline replay no longer has.
struct AuditRound {
  LinkQuery query;
  double own_observation = 0.0;
  std::vector<RoundAnswer> answers;
  std::size_t timeouts = 0;
  std::vector<EvidenceTag> tags;
};

/// One record of the abstract audit-event stream the detection pipeline
/// consumes (tentpole seam of the offline/online split):
///  - kLine  — one audit-log line of the observed node's routing daemon
///             (feeds the liveness oracle of the conviction gate),
///  - kRound — one completed investigation round (feeds the Eq. 8-10
///             evidence evaluation and the trust updates),
///  - kDecay — one idle-slot forgetting sweep (Fig. 2 semantics),
///  - kForwardAudit — one closed forwarding-audit window tally for an
///             audited MPR (grayhole observability; convictions flow
///             through kRound like every other attack, so this frame
///             carries no trust updates on replay).
/// The in-sim detector is one producer of this stream; a recorded binary
/// audit log replayed by tools/manet_detect is another.
struct AuditEvent {
  logging::AuditFrame kind = logging::AuditFrame::kLine;
  sim::Time time;
  logging::LogRecord line;  ///< kLine payload
  AuditRound round;         ///< kRound payload
  ForwardAudit audit;       ///< kForwardAudit payload
};

}  // namespace manet::core
