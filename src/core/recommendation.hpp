#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "olsr/agent.hpp"
#include "sim/timer.hpp"
#include "trust/trust_store.hpp"

namespace manet::core {

/// DATA-message protocol id for recommendation exchange.
inline constexpr std::uint16_t kRecommendationProtocol = 43;

/// A recommender's reply: its direct trust T^{S,I} for each queried subject.
struct RecommendationReply {
  std::uint32_t request_id = 0;
  net::NodeId recommender;
  std::vector<std::pair<net::NodeId, double>> trusts;
};

std::vector<std::uint8_t> encode_recommendation_request(
    std::uint32_t request_id, const std::vector<net::NodeId>& subjects);
std::vector<std::uint8_t> encode_recommendation_reply(
    const RecommendationReply& reply);
std::optional<std::vector<net::NodeId>> decode_recommendation_request(
    const std::vector<std::uint8_t>& bytes, std::uint32_t& request_id);
std::optional<RecommendationReply> decode_recommendation_reply(
    const std::vector<std::uint8_t>& bytes);
bool is_recommendation_request(const std::vector<std::uint8_t>& bytes);

/// Implements the paper's trust propagation (§IV-A): when A has no history
/// about subjects, it asks recommenders S1..Sm for their direct trust
/// T^{Si,I} and merges the answers via multipath propagation (Eq. 7), each
/// path weighted by A's entropy-based recommendation trust R^{A,Si}. A
/// single recommender degenerates to concatenated propagation (Eq. 6).
///
/// Both sides of the exchange; shares the agent's DATA handler with the
/// investigation manager through a dispatcher callback, so construct it
/// with the InvestigationManager's handler chained (see Network).
class RecommendationExchange {
 public:
  /// `store` is the local trust store (answers are served from it, and
  /// merged bootstraps are written into it).
  RecommendationExchange(sim::Engine& sim, olsr::Agent& agent,
                         trust::TrustStore& store);

  using Done = std::function<void(const std::map<net::NodeId, double>&)>;

  /// Asks `recommenders` for their trust in `subjects`; after the timeout,
  /// merges everything received via Eq. 7 and (a) writes the merged values
  /// into the local store for subjects with no prior state, (b) reports the
  /// merged map through `done`.
  void bootstrap(const std::vector<net::NodeId>& subjects,
                 const std::vector<net::NodeId>& recommenders,
                 sim::Duration timeout, Done done);

  /// Handles one DATA message; returns true if it consumed it. Chain this
  /// from the agent's data handler before/after other protocols.
  bool on_data(const olsr::DataMessage& message);

  std::size_t outstanding() const { return outstanding_.size(); }

 private:
  struct Pending {
    std::vector<net::NodeId> subjects;
    std::vector<RecommendationReply> replies;
    Done done;
    std::unique_ptr<sim::OneShotTimer> timer;
  };

  void finalize(std::uint32_t id);

  sim::Engine& sim_;
  olsr::Agent& agent_;
  trust::TrustStore& store_;
  std::uint32_t next_id_ = 1;
  std::map<std::uint32_t, Pending> outstanding_;
};

}  // namespace manet::core
