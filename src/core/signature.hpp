#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "logging/record.hpp"
#include "sim/time.hpp"

namespace manet::core {

/// Predicate over one audit-log record.
struct EventPattern {
  std::string name;
  std::function<bool(const logging::LogRecord&)> match;
};

/// One step of a signature. `after` lists indices of steps that must have
/// matched earlier — the paper defines a signature as a *partially ordered*
/// sequence of events, so steps without mutual ordering may interleave.
struct SignatureStep {
  EventPattern pattern;
  std::vector<std::size_t> after;
  bool optional = false;
};

/// An intrusion signature: steps + time window + optional correlation.
struct Signature {
  std::string name;
  /// All matched records must fall within this window.
  sim::Duration window = sim::Duration::from_seconds(10.0);
  std::vector<SignatureStep> steps;
  /// When set, every matched record must carry this field with one shared
  /// value (e.g. correlate "from" to tie a burst to one originator).
  std::optional<std::string> correlate_field;
  /// Cross-record constraint evaluated on completion (records indexed by
  /// step; optional unmatched steps hold nullptr).
  std::function<bool(const std::vector<const logging::LogRecord*>&)> constraint;
};

/// A completed signature match.
struct SignatureMatch {
  std::string signature;
  std::vector<logging::LogRecord> records;  ///< in match order
  sim::Time first_event;
  sim::Time last_event;
  std::string correlated_value;  ///< value of correlate_field, if any
};

/// Streaming matcher: feed parsed log records in time order; completed
/// matches accumulate and can be drained. Partial matches expire once their
/// window passes, so memory stays bounded.
class SignatureMatcher {
 public:
  void add_signature(Signature signature);

  /// Feeds one record; returns matches completed by this record.
  std::vector<SignatureMatch> feed(const logging::LogRecord& record);

  /// Feeds a batch (convenience for scan-based detectors).
  std::vector<SignatureMatch> feed_all(
      const std::vector<logging::LogRecord>& records);

  std::size_t signature_count() const { return signatures_.size(); }
  std::size_t partial_count() const;

 private:
  struct Partial {
    std::size_t signature_index;
    /// Matched record per step (nullopt until the step matches).
    std::vector<std::optional<logging::LogRecord>> matched;
    sim::Time first_event;
    std::string correlated_value;
    bool has_correlated_value = false;
  };

  bool try_extend(Partial& partial, const logging::LogRecord& record);
  bool is_complete(const Partial& partial) const;
  bool is_complete_except_constraint(const Partial& partial) const;
  bool constraint_passes(const Partial& partial) const;

  std::vector<Signature> signatures_;
  std::vector<Partial> partials_;
};

}  // namespace manet::core
