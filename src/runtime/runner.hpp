#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/experiment_spec.hpp"

namespace manet::runtime {

/// Parallel replication executor over two orthogonal axes.
///
/// Inter-replication: every ReplicationTask owns a private engine stack and
/// RNG streams, and the Runner shards the task list across worker threads
/// with work stealing (each worker drains its own deque front-to-back and
/// steals from the back of the fullest victim when it runs dry).
///
/// Intra-replication: tasks that select the psim sharded engine can spend
/// several workers *inside* one replication. Because sharded results are
/// invariant to the worker and shard counts (the psim determinism
/// contract), the Runner freely splits its thread budget: replications
/// outnumbering the budget run with one thread each (inter wins); a few
/// huge replications — the N >= kIntraNodeThreshold regime where a single
/// dense replication is the wall-clock bottleneck — get the leftover
/// workers as shard lanes instead.
///
/// Results land in slots keyed by task index, so the output order — and
/// therefore every downstream aggregate — is identical for any thread
/// count, on either axis.
class Runner {
 public:
  struct Config {
    /// 0 = std::thread::hardware_concurrency().
    unsigned threads = 0;
  };

  /// Called after each finished replication with (done, total). May be
  /// invoked from worker threads, but never concurrently.
  using ProgressFn = std::function<void(std::size_t, std::size_t)>;

  Runner() = default;
  explicit Runner(Config config) : config_{config} {}

  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Expands the spec and runs every replication. Rethrows the first
  /// exception any worker hit (after all workers have stopped).
  std::vector<ReplicationResult> run(const ExperimentSpec& spec);

  /// Same over an explicit task list (results ordered by position in
  /// `tasks`, regardless of which thread ran what).
  std::vector<ReplicationResult> run(const std::vector<ReplicationTask>& tasks,
                                     const trust::TrustParams& trust_params = {},
                                     const trust::DecisionConfig& decision = {});

  /// Threads a run with this config will actually use for `task_count` tasks.
  unsigned effective_threads(std::size_t task_count) const;

  /// Node count from which a sharded replication is worth worker threads of
  /// its own (below it, per-window work cannot amortize the barriers).
  static constexpr std::size_t kIntraNodeThreshold = 64;

 private:
  Config config_{};
  ProgressFn progress_;
};

}  // namespace manet::runtime
