#include "runtime/experiment_spec.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace manet::runtime {

std::string to_string(MobilityPreset preset) {
  switch (preset) {
    case MobilityPreset::kStatic:
      return "static";
    case MobilityPreset::kLowChurn:
      return "low";
    case MobilityPreset::kHighChurn:
      return "high";
  }
  return "?";
}

bool parse_mobility_preset(const std::string& text, MobilityPreset& out) {
  if (text == "static" || text == "kStatic") {
    out = MobilityPreset::kStatic;
  } else if (text == "low" || text == "kLowChurn") {
    out = MobilityPreset::kLowChurn;
  } else if (text == "high" || text == "kHighChurn") {
    out = MobilityPreset::kHighChurn;
  } else {
    return false;
  }
  return true;
}

double preset_loss_probability(MobilityPreset preset) {
  switch (preset) {
    case MobilityPreset::kStatic:
      return 0.0;
    case MobilityPreset::kLowChurn:
      return 0.05;
    case MobilityPreset::kHighChurn:
      return 0.15;
  }
  return 0.0;
}

std::size_t GridPoint::num_liars() const {
  if (num_nodes < 2) return 0;
  const auto bystanders = num_nodes - 2;  // minus attacker and investigator
  const double want = attacker_fraction * static_cast<double>(bystanders);
  const auto rounded = static_cast<std::size_t>(std::lround(std::max(want, 0.0)));
  return std::min(rounded, bystanders);
}

scenario::TrustExperiment::Config ReplicationTask::to_config() const {
  scenario::TrustExperiment::Config cfg;
  cfg.num_nodes = point.num_nodes;
  cfg.num_liars = point.num_liars();
  cfg.seed = seed;
  cfg.rounds = rounds;
  cfg.attack = attack;
  cfg.drop_fraction = drop_fraction;
  cfg.radio_loss = preset_loss_probability(point.mobility);
  cfg.engine = engine;
  cfg.engine_threads = engine_threads;
  cfg.shards = shards;
  if (chaos) {
    // Chaos window: opens after the 15 s OLSR warm-up, sized to the round
    // budget so restarts land while rounds are still being driven. The
    // arena edge mirrors scenario/grid_layout's 50 m spacing.
    const auto cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(point.num_nodes))));
    cfg.fault_plan = faults::FaultPlan::chaos(
        seed, point.num_nodes, static_cast<double>(cols) * 50.0,
        sim::Time::from_seconds(20.0),
        sim::Time::from_seconds(20.0 + 5.0 * static_cast<double>(rounds)));
  } else {
    cfg.fault_plan = fault_plan;
  }
  return cfg;
}

std::vector<GridPoint> ExperimentSpec::grid() const {
  std::vector<GridPoint> points;
  points.reserve(node_counts.size() * attacker_fractions.size() *
                 mobility_presets.size());
  for (auto nodes : node_counts)
    for (auto fraction : attacker_fractions)
      for (auto preset : mobility_presets)
        points.push_back(GridPoint{nodes, fraction, preset});
  return points;
}

std::vector<ReplicationTask> ExperimentSpec::expand() const {
  const auto points = grid();
  std::vector<ReplicationTask> tasks;
  tasks.reserve(points.size() * seeds.size());
  std::size_t index = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (auto seed : seeds) {
      ReplicationTask task;
      task.index = index++;
      task.point_index = p;
      task.point = points[p];
      task.seed = seed;
      task.rounds = rounds;
      task.attack = attack;
      task.drop_fraction = drop_fraction;
      task.engine = engine;
      task.shards = shards;
      task.chaos = chaos;
      task.fault_plan = fault_plan;
      task.metrics = metrics;
      task.tracing = tracing;
      task.trace_wallclock = trace_wallclock;
      tasks.push_back(task);
    }
  }
  return tasks;
}

std::vector<std::uint64_t> ExperimentSpec::seed_range(std::uint64_t base,
                                                      std::size_t count) {
  // SplitMix64: the classic stream used to seed xoshiro generators; distinct
  // outputs for distinct counters, so replications never share a stream.
  std::vector<std::uint64_t> out;
  out.reserve(count);
  std::uint64_t state = base;
  for (std::size_t i = 0; i < count; ++i) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z = z ^ (z >> 31);
    out.push_back(z == 0 ? 1 : z);  // Rng treats seeds verbatim; avoid 0
  }
  return out;
}

ReplicationResult run_replication(const ReplicationTask& task,
                                  const trust::TrustParams& trust_params,
                                  const trust::DecisionConfig& decision) {
  // Zero rounds would yield an all-default result indistinguishable from a
  // legitimate "no conviction" run; fail loudly like TrustExperiment does
  // for an unconstructible topology.
  if (task.rounds <= 0)
    throw std::invalid_argument{"replication needs at least one round"};
  auto cfg = task.to_config();
  cfg.trust_params = trust_params;
  cfg.decision = decision;

  // Observability arena for this replication: created only on request, and
  // bound to this thread (psim worker lanes inherit it at each window) for
  // the whole setup + rounds drive. With no Context the handles below are
  // dead and every instrumented site stays a single untaken branch.
  std::unique_ptr<obs::Context> obs_ctx;
  if (task.observed()) {
    obs::Context::Config oc;
    oc.tracing = task.tracing;
    oc.wallclock = task.trace_wallclock;
    obs_ctx = std::make_unique<obs::Context>(oc);
  }
  obs::Scope obs_scope{obs_ctx.get()};
  const auto detect_hist = obs::histogram("manet_round_detect", -1.0, 1.0, 16);
  const auto round_sim_s =
      obs::histogram("manet_round_duration_sim_seconds", 0.0, 30.0, 30);
  const auto rounds_gauge = obs::gauge("manet_replication_rounds");

  scenario::TrustExperiment exp{cfg};
  exp.setup();

  ReplicationResult result;
  result.task_index = task.index;
  result.point_index = task.point_index;
  result.point = task.point;
  result.seed = task.seed;
  result.detect_per_round.reserve(static_cast<std::size_t>(task.rounds));

  const bool faulted = task.faulted();
  std::vector<sim::Time> round_ends;
  scenario::TrustExperiment::RoundSnapshot last;
  sim::Time prev_at = exp.network().now();
  for (int r = 0; r < task.rounds; ++r) {
    last = faulted ? exp.run_churn_round() : exp.run_round();
    detect_hist.observe(last.detect);
    round_sim_s.observe((last.at - prev_at).seconds());
    prev_at = last.at;
    result.detect_per_round.push_back(last.detect);
    if (faulted) {
      result.down_per_round.push_back(last.down);
      result.false_conv_per_round.push_back(last.false_convictions);
      result.suppressed_per_round.push_back(last.suppressed);
      result.converged_per_round.push_back(last.converged);
      round_ends.push_back(last.at);
    }
    if (result.conviction_round < 0 &&
        last.verdict == trust::Verdict::kIntruder) {
      result.conviction_round = last.round;
    }
  }

  if (faulted) {
    result.invariant_violations = exp.invariants()->violations().size();
    // Re-convergence latency: rounds from the plan's last heal to the
    // first round that ended converged after it.
    const auto heal = exp.injector()->last_heal();
    if (heal > sim::Time{}) {
      std::size_t first_after = round_ends.size();
      for (std::size_t i = 0; i < round_ends.size(); ++i) {
        if (round_ends[i] >= heal) {
          first_after = i;
          break;
        }
      }
      for (std::size_t i = first_after; i < round_ends.size(); ++i) {
        if (result.converged_per_round[i]) {
          result.reconverge_rounds = static_cast<int>(i - first_after);
          break;
        }
      }
    }
  }

  result.final_verdict = last.verdict;
  result.final_detect = last.detect;
  result.final_margin = last.margin;
  result.false_convictions = last.false_convictions;
  result.attacker_trust = last.trust[exp.attacker()];

  stats::RunningStats liar_trust, honest_trust;
  for (auto id : exp.liars()) liar_trust.add(last.trust[id]);
  for (auto id : exp.honest()) honest_trust.add(last.trust[id]);
  result.mean_liar_trust = liar_trust.count() ? liar_trust.mean() : 0.0;
  result.mean_honest_trust = honest_trust.count() ? honest_trust.mean() : 0.0;

  auto& net = exp.network();
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& s = net.agent(i).stats();
    result.control_messages += s.hello_sent + s.tc_sent + s.msgs_forwarded;
  }

  if (obs_ctx) {
    rounds_gauge.set(static_cast<double>(task.rounds));
    if (task.metrics) result.metrics = obs_ctx->snapshot();
    if (task.tracing) {
      result.trace = obs_ctx->trace();
      result.trace_dropped = obs_ctx->trace_dropped();
    }
  }
  return result;
}

}  // namespace manet::runtime
