#pragma once

#include <span>
#include <string>
#include <vector>

#include "runtime/experiment_spec.hpp"
#include "stats/confidence.hpp"

namespace manet::runtime {

/// Per-grid-point summary: every metric as mean ± Eq. 9 confidence margin
/// over the point's replications.
struct AggregateRow {
  std::size_t point_index = 0;
  GridPoint point;
  std::size_t replications = 0;

  double detection_rate = 0.0;  ///< fraction of replications convicting
  stats::ConfidenceInterval final_detect;
  /// Over convicted replications only; mean is -1 when none convicted.
  stats::ConfidenceInterval conviction_round;
  std::size_t convicted = 0;
  stats::ConfidenceInterval attacker_trust;
  stats::ConfidenceInterval liar_trust;
  stats::ConfidenceInterval honest_trust;
  stats::ConfidenceInterval control_messages;
};

/// One (grid point, round) cell of the Fig. 3 style trajectory.
struct RoundRow {
  std::size_t point_index = 0;
  GridPoint point;
  int round = 0;
  stats::ConfidenceInterval detect;
};

/// One (grid point, round) cell of the graceful-degradation trajectory of
/// a faulted sweep. Means are over the point's faulted replications; the
/// re-convergence latency is a per-replication scalar, repeated on every
/// round row of its point for a flat CSV.
struct DegradationRow {
  std::size_t point_index = 0;
  GridPoint point;
  int round = 0;
  double down_mean = 0.0;        ///< nodes down at round end
  double false_conv_mean = 0.0;  ///< cumulative false convictions
  double suppressed_mean = 0.0;  ///< cumulative liveness-gate suppressions
  double converged_frac = 0.0;   ///< fraction of replications converged
  /// Mean rounds-to-reconverge after the last heal, over replications that
  /// did re-converge; -1 when none did (or the plans had no heal).
  double reconverge_mean = -1.0;
};

/// Folds per-replication results into per-point statistics with the
/// existing stats/ layer. Input order does not matter beyond tie-breaking:
/// rows come out sorted by point_index, so any thread interleaving of the
/// Runner produces byte-identical CSV/JSON.
class Aggregator {
 public:
  explicit Aggregator(double confidence_level = 0.95)
      : level_{confidence_level} {}

  std::vector<AggregateRow> aggregate(
      std::span<const ReplicationResult> results) const;

  /// Round-by-round Eq. 8 trajectory per grid point (Fig. 3).
  std::vector<RoundRow> per_round(
      std::span<const ReplicationResult> results) const;

  /// Round-by-round degradation trajectory per grid point; only results
  /// with a degradation trajectory (faulted tasks) contribute.
  std::vector<DegradationRow> degradation(
      std::span<const ReplicationResult> results) const;

  static std::string to_csv(std::span<const AggregateRow> rows);
  static std::string to_json(std::span<const AggregateRow> rows);
  static std::string per_round_csv(std::span<const RoundRow> rows);
  static std::string degradation_csv(std::span<const DegradationRow> rows);

 private:
  double level_;
};

}  // namespace manet::runtime
