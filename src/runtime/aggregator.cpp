#include "runtime/aggregator.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "stats/descriptive.hpp"

namespace manet::runtime {
namespace {

std::string fmt(double x) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", x);
  return buf;
}

void append_point_columns(std::string& out, const GridPoint& point) {
  out += std::to_string(point.num_nodes);
  out += ',';
  out += fmt(point.attacker_fraction);
  out += ',';
  out += std::to_string(point.num_liars());
  out += ',';
  out += to_string(point.mobility);
}

void append_ci(std::string& out, const stats::ConfidenceInterval& ci) {
  out += fmt(ci.mean);
  out += ',';
  out += fmt(ci.margin);
}

// stats::confidence_interval's default max_margin=2.0 is an Eq. 9 sentinel
// sized for Detect's [-1, 1] domain; aggregate metrics live in arbitrary
// units (messages, rounds, trust), so under-sampled groups report margin 0
// instead — the replications/convicted columns tell the reader how thin the
// sample is.
stats::ConfidenceInterval interval_or_zero(const stats::RunningStats& stats,
                                           double level) {
  return stats::confidence_interval(stats, level, /*max_margin=*/0.0);
}

}  // namespace

std::vector<AggregateRow> Aggregator::aggregate(
    std::span<const ReplicationResult> results) const {
  struct Accum {
    GridPoint point;
    stats::RunningStats detect, attacker, liar, honest, overhead, round;
    std::size_t total = 0, convicted = 0, with_liars = 0;
  };
  std::map<std::size_t, Accum> groups;

  for (const auto& r : results) {
    auto& g = groups[r.point_index];
    g.point = r.point;
    ++g.total;
    g.detect.add(r.final_detect);
    g.attacker.add(r.attacker_trust);
    g.honest.add(r.mean_honest_trust);
    g.overhead.add(static_cast<double>(r.control_messages));
    if (r.point.num_liars() > 0) {
      g.liar.add(r.mean_liar_trust);
      ++g.with_liars;
    }
    if (r.conviction_round >= 0) {
      ++g.convicted;
      g.round.add(static_cast<double>(r.conviction_round));
    }
  }

  std::vector<AggregateRow> rows;
  rows.reserve(groups.size());
  for (const auto& [point_index, g] : groups) {
    AggregateRow row;
    row.point_index = point_index;
    row.point = g.point;
    row.replications = g.total;
    row.detection_rate =
        g.total ? static_cast<double>(g.convicted) / static_cast<double>(g.total)
                : 0.0;
    row.convicted = g.convicted;
    row.final_detect = interval_or_zero(g.detect, level_);
    row.attacker_trust = interval_or_zero(g.attacker, level_);
    row.honest_trust = interval_or_zero(g.honest, level_);
    row.control_messages = interval_or_zero(g.overhead, level_);
    if (g.with_liars > 0)
      row.liar_trust = interval_or_zero(g.liar, level_);
    if (g.convicted > 0) {
      row.conviction_round = interval_or_zero(g.round, level_);
    } else {
      row.conviction_round.mean = -1.0;
      row.conviction_round.margin = 0.0;
    }
    row.conviction_round.level = level_;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<RoundRow> Aggregator::per_round(
    std::span<const ReplicationResult> results) const {
  struct Accum {
    GridPoint point;
    std::vector<stats::RunningStats> rounds;
  };
  std::map<std::size_t, Accum> groups;
  for (const auto& r : results) {
    auto& g = groups[r.point_index];
    g.point = r.point;
    if (g.rounds.size() < r.detect_per_round.size())
      g.rounds.resize(r.detect_per_round.size());
    for (std::size_t i = 0; i < r.detect_per_round.size(); ++i)
      g.rounds[i].add(r.detect_per_round[i]);
  }

  std::vector<RoundRow> rows;
  for (const auto& [point_index, g] : groups) {
    for (std::size_t i = 0; i < g.rounds.size(); ++i) {
      RoundRow row;
      row.point_index = point_index;
      row.point = g.point;
      row.round = static_cast<int>(i) + 1;
      row.detect = interval_or_zero(g.rounds[i], level_);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<DegradationRow> Aggregator::degradation(
    std::span<const ReplicationResult> results) const {
  struct Accum {
    GridPoint point;
    std::vector<stats::RunningStats> down, false_conv, suppressed;
    std::vector<std::size_t> converged, total;
    stats::RunningStats reconverge;
  };
  std::map<std::size_t, Accum> groups;
  for (const auto& r : results) {
    if (r.down_per_round.empty()) continue;  // pristine replication
    auto& g = groups[r.point_index];
    g.point = r.point;
    const auto rounds = r.down_per_round.size();
    if (g.down.size() < rounds) {
      g.down.resize(rounds);
      g.false_conv.resize(rounds);
      g.suppressed.resize(rounds);
      g.converged.resize(rounds);
      g.total.resize(rounds);
    }
    for (std::size_t i = 0; i < rounds; ++i) {
      g.down[i].add(static_cast<double>(r.down_per_round[i]));
      g.false_conv[i].add(static_cast<double>(r.false_conv_per_round[i]));
      g.suppressed[i].add(static_cast<double>(r.suppressed_per_round[i]));
      if (r.converged_per_round[i]) ++g.converged[i];
      ++g.total[i];
    }
    if (r.reconverge_rounds >= 0)
      g.reconverge.add(static_cast<double>(r.reconverge_rounds));
  }

  std::vector<DegradationRow> rows;
  for (const auto& [point_index, g] : groups) {
    const double reconverge_mean =
        g.reconverge.count() ? g.reconverge.mean() : -1.0;
    for (std::size_t i = 0; i < g.down.size(); ++i) {
      DegradationRow row;
      row.point_index = point_index;
      row.point = g.point;
      row.round = static_cast<int>(i) + 1;
      row.down_mean = g.down[i].mean();
      row.false_conv_mean = g.false_conv[i].mean();
      row.suppressed_mean = g.suppressed[i].mean();
      row.converged_frac = g.total[i] ? static_cast<double>(g.converged[i]) /
                                            static_cast<double>(g.total[i])
                                      : 0.0;
      row.reconverge_mean = reconverge_mean;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string Aggregator::to_csv(std::span<const AggregateRow> rows) {
  std::string out =
      "nodes,liar_fraction,liars,mobility,replications,detection_rate,"
      "convicted,detect_mean,detect_margin,conviction_round_mean,"
      "conviction_round_margin,attacker_trust_mean,attacker_trust_margin,"
      "liar_trust_mean,liar_trust_margin,honest_trust_mean,"
      "honest_trust_margin,control_msgs_mean,control_msgs_margin\n";
  for (const auto& row : rows) {
    append_point_columns(out, row.point);
    out += ',';
    out += std::to_string(row.replications);
    out += ',';
    out += fmt(row.detection_rate);
    out += ',';
    out += std::to_string(row.convicted);
    out += ',';
    append_ci(out, row.final_detect);
    out += ',';
    append_ci(out, row.conviction_round);
    out += ',';
    append_ci(out, row.attacker_trust);
    out += ',';
    append_ci(out, row.liar_trust);
    out += ',';
    append_ci(out, row.honest_trust);
    out += ',';
    append_ci(out, row.control_messages);
    out += '\n';
  }
  return out;
}

std::string Aggregator::to_json(std::span<const AggregateRow> rows) {
  auto ci_json = [](const stats::ConfidenceInterval& ci) {
    return "{\"mean\":" + fmt(ci.mean) + ",\"margin\":" + fmt(ci.margin) + "}";
  };
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out += "  {\"nodes\":" + std::to_string(row.point.num_nodes) +
           ",\"liar_fraction\":" + fmt(row.point.attacker_fraction) +
           ",\"liars\":" + std::to_string(row.point.num_liars()) +
           ",\"mobility\":\"" + to_string(row.point.mobility) + "\"" +
           ",\"replications\":" + std::to_string(row.replications) +
           ",\"detection_rate\":" + fmt(row.detection_rate) +
           ",\"convicted\":" + std::to_string(row.convicted) +
           ",\"detect\":" + ci_json(row.final_detect) +
           ",\"conviction_round\":" + ci_json(row.conviction_round) +
           ",\"attacker_trust\":" + ci_json(row.attacker_trust) +
           ",\"liar_trust\":" + ci_json(row.liar_trust) +
           ",\"honest_trust\":" + ci_json(row.honest_trust) +
           ",\"control_msgs\":" + ci_json(row.control_messages) + "}";
    out += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

std::string Aggregator::per_round_csv(std::span<const RoundRow> rows) {
  std::string out =
      "nodes,liar_fraction,liars,mobility,round,detect_mean,detect_margin\n";
  for (const auto& row : rows) {
    append_point_columns(out, row.point);
    out += ',';
    out += std::to_string(row.round);
    out += ',';
    append_ci(out, row.detect);
    out += '\n';
  }
  return out;
}

std::string Aggregator::degradation_csv(std::span<const DegradationRow> rows) {
  // Deliberately a separate table from per_round_csv: the golden Fig. 3
  // fixtures pin that header byte for byte, so degradation metrics get
  // their own file instead of new columns there.
  std::string out =
      "nodes,liar_fraction,liars,mobility,round,down_mean,false_conv_mean,"
      "suppressed_mean,converged_frac,reconverge_mean\n";
  for (const auto& row : rows) {
    append_point_columns(out, row.point);
    out += ',';
    out += std::to_string(row.round);
    out += ',';
    out += fmt(row.down_mean);
    out += ',';
    out += fmt(row.false_conv_mean);
    out += ',';
    out += fmt(row.suppressed_mean);
    out += ',';
    out += fmt(row.converged_frac);
    out += ',';
    // -1 is the "no replication re-converged" sentinel, not a mean of
    // rounds; emitting it as a number poisons downstream averaging, so the
    // cell stays empty instead.
    if (row.reconverge_mean >= 0.0) out += fmt(row.reconverge_mean);
    out += '\n';
  }
  return out;
}

}  // namespace manet::runtime
