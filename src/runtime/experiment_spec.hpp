#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "obs/obs.hpp"
#include "scenario/trust_experiment.hpp"
#include "trust/detection.hpp"

namespace manet::runtime {

/// Link-churn presets for scenario sweeps. The §V experiment keeps every
/// node inside radio range, so mobility manifests to the investigator as
/// verifiers intermittently failing to hear or answer — modeled here as
/// radio loss probability on the shared medium (the same knob Table C's
/// random-waypoint runs end up exercising through link breakage).
enum class MobilityPreset {
  kStatic,    ///< loss 0 — the paper's baseline cluster
  kLowChurn,  ///< loss 5% — pedestrian-speed waypoint churn
  kHighChurn, ///< loss 15% — vehicular churn, frequent answer timeouts
};

std::string to_string(MobilityPreset preset);
/// Parses "static" / "low" / "high" (also accepts the full enum spellings).
bool parse_mobility_preset(const std::string& text, MobilityPreset& out);
double preset_loss_probability(MobilityPreset preset);

/// One cell of the sweep grid: everything that varies between scenario
/// configurations except the replication seed.
struct GridPoint {
  std::size_t num_nodes = 16;
  /// Fraction of the n-2 bystanders that collude with the attacker.
  double attacker_fraction = 0.0;
  MobilityPreset mobility = MobilityPreset::kStatic;

  /// Liar head-count this fraction means at this node count (rounded to
  /// nearest, clamped so the experiment stays constructible).
  std::size_t num_liars() const;
};

/// One unit of work for the Runner: a grid point bound to a concrete seed.
struct ReplicationTask {
  std::size_t index = 0;        ///< position in the expanded grid (stable)
  std::size_t point_index = 0;  ///< which GridPoint this replication belongs to
  GridPoint point;
  std::uint64_t seed = 1;
  int rounds = 12;
  /// Attack family for this replication. Rides the task, not GridPoint:
  /// a sweep is either all-spoof or all-grayhole, and keeping it off the
  /// grid keeps the aggregator's pinned CSV headers untouched.
  scenario::TrustExperiment::AttackKind attack =
      scenario::TrustExperiment::AttackKind::kSpoof;
  /// Grayhole drop probability (kGrayhole only): 1.0 = blackhole.
  double drop_fraction = 1.0;
  /// Engine driving this replication. Sharded results are invariant to
  /// engine_threads and shards (the psim determinism contract), so the
  /// Runner is free to rewrite those two for load-balancing without
  /// changing any output byte.
  sim::EngineKind engine = sim::EngineKind::kSequential;
  unsigned engine_threads = 1;  ///< sharded workers; 0 = hardware
  unsigned shards = 0;          ///< sharded spatial shards; 0 = auto
  /// Chaos mode: derive a seeded FaultPlan from this task (node churn,
  /// brown-out, netsplit — see faults::FaultPlan::chaos) so every
  /// replication gets its own deterministic disturbance schedule.
  bool chaos = false;
  /// Explicit fault schedule (used when `chaos` is false); empty = pristine.
  faults::FaultPlan fault_plan;

  /// Observability: collect a metrics snapshot for this replication. Off
  /// by default — the disabled path is a no-op branch per record site.
  bool metrics = false;
  /// Record flight-recorder trace spans (implies a bound obs::Context).
  bool tracing = false;
  /// Stamp wall-clock durations on trace events (profiling overlay; makes
  /// the trace non-deterministic, never touches metrics or goldens).
  bool trace_wallclock = false;

  bool faulted() const { return chaos || !fault_plan.empty(); }
  bool observed() const { return metrics || tracing; }

  /// The scenario config this task denotes, ready for TrustExperiment.
  scenario::TrustExperiment::Config to_config() const;
};

/// Everything a replication run yields; the Aggregator folds these per
/// grid point. All fields are deterministic functions of the task.
struct ReplicationResult {
  std::size_t task_index = 0;
  std::size_t point_index = 0;
  GridPoint point;
  std::uint64_t seed = 0;

  trust::Verdict final_verdict = trust::Verdict::kUnrecognized;
  double final_detect = 0.0;        ///< Eq. 8 of the last round
  double final_margin = 0.0;        ///< Eq. 9 epsilon of the last round
  int conviction_round = -1;        ///< first round with an intruder verdict; -1 = never
  double attacker_trust = 0.0;      ///< investigator's trust in the attacker, final
  double mean_liar_trust = 0.0;     ///< 0 when the point has no liars
  double mean_honest_trust = 0.0;
  std::vector<double> detect_per_round;  ///< Eq. 8 trajectory (Fig. 3)
  std::uint64_t control_messages = 0;    ///< HELLO+TC sent network-wide (overhead)

  // --- graceful-degradation trajectory (faulted tasks only; empty else) ---
  std::vector<std::size_t> down_per_round;  ///< nodes down at round end
  /// Cumulative false convictions of crashed-but-honest bystanders.
  std::vector<std::uint64_t> false_conv_per_round;
  /// Cumulative liveness-gate suppressions by the detector.
  std::vector<std::uint64_t> suppressed_per_round;
  std::vector<bool> converged_per_round;  ///< up-aware convergence flag
  /// Rounds from the plan's last heal event to the first converged round
  /// after it: 0 = converged at the first post-heal check, -1 = the run
  /// never re-converged (or the plan had no heal).
  int reconverge_rounds = -1;
  /// Safety-rule violations flagged by the invariant checker (should be 0).
  std::uint64_t invariant_violations = 0;
  /// Cumulative kIntruder verdicts against honest nodes (grayhole and
  /// faulted runs; 0 on pristine spoof runs). manet_experiments exits 3
  /// when a grayhole sweep records any.
  std::uint64_t false_convictions = 0;

  // --- observability harvest (task.observed() runs only; empty else) ---
  /// Merged metrics snapshot of the replication (task.metrics).
  obs::MetricsSnapshot metrics;
  /// Flight-recorder dump, deterministically ordered (task.tracing).
  std::vector<obs::TraceEvent> trace;
  /// Trace events lost to ring wrap across all recording threads.
  std::uint64_t trace_dropped = 0;
};

/// Declarative description of a full sweep: the cartesian grid
/// seeds x node_counts x attacker_fractions x mobility_presets.
struct ExperimentSpec {
  std::vector<std::uint64_t> seeds{1};
  std::vector<std::size_t> node_counts{16};
  std::vector<double> attacker_fractions{0.25};
  std::vector<MobilityPreset> mobility_presets{MobilityPreset::kStatic};
  int rounds = 12;
  /// Attack family for every replication (see ReplicationTask::attack).
  scenario::TrustExperiment::AttackKind attack =
      scenario::TrustExperiment::AttackKind::kSpoof;
  /// Grayhole drop probability (kGrayhole only).
  double drop_fraction = 1.0;
  /// Engine for every replication of the sweep (--engine on the CLI). The
  /// Runner decides intra- vs inter-replication parallelism; see
  /// Runner::run.
  sim::EngineKind engine = sim::EngineKind::kSequential;
  unsigned shards = 0;  ///< sharded spatial shards per replication; 0 = auto
  /// Chaos mode for every replication (the `chaos` CLI preset): each task
  /// derives its own seeded fault plan. Mutually exclusive with fault_plan.
  bool chaos = false;
  /// One explicit fault schedule shared by every replication (--faults FILE).
  faults::FaultPlan fault_plan;
  trust::TrustParams trust_params;
  trust::DecisionConfig decision;
  /// Observability toggles applied to every task (see ReplicationTask).
  bool metrics = false;
  bool tracing = false;
  bool trace_wallclock = false;

  /// Grid points in declaration order (node count, fraction, preset).
  std::vector<GridPoint> grid() const;

  /// The full task list: every grid point under every seed, with stable
  /// indices so a parallel run reassembles into a deterministic order.
  std::vector<ReplicationTask> expand() const;

  std::size_t replication_count() const {
    return seeds.size() * grid().size();
  }

  /// `count` well-spread deterministic seeds derived from `base`
  /// (SplitMix64), for "--seeds N" style invocations.
  static std::vector<std::uint64_t> seed_range(std::uint64_t base,
                                               std::size_t count);
};

/// Runs one replication synchronously: builds the TrustExperiment, drives
/// `rounds` investigation rounds, extracts the metrics. Deterministic given
/// the task. Thread-safe: each call owns its entire simulator stack.
ReplicationResult run_replication(const ReplicationTask& task,
                                  const trust::TrustParams& trust_params = {},
                                  const trust::DecisionConfig& decision = {});

}  // namespace manet::runtime
