#include "runtime/runner.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

namespace manet::runtime {
namespace {

/// Per-worker task deque. The owner pops from the front; thieves take from
/// the back, so a victim keeps the cache-warm head of its own run while
/// surrendering the work it is furthest from reaching.
class WorkDeque {
 public:
  void push_back(std::size_t task) {
    std::lock_guard lock{mutex_};
    tasks_.push_back(task);
  }

  std::optional<std::size_t> pop_front() {
    std::lock_guard lock{mutex_};
    if (tasks_.empty()) return std::nullopt;
    auto t = tasks_.front();
    tasks_.pop_front();
    return t;
  }

  std::optional<std::size_t> steal_back() {
    std::lock_guard lock{mutex_};
    if (tasks_.empty()) return std::nullopt;
    auto t = tasks_.back();
    tasks_.pop_back();
    return t;
  }

  std::size_t size() const {
    std::lock_guard lock{mutex_};
    return tasks_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<std::size_t> tasks_;
};

}  // namespace

unsigned Runner::effective_threads(std::size_t task_count) const {
  unsigned threads = config_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (task_count < threads) threads = static_cast<unsigned>(task_count);
  return std::max(threads, 1u);
}

std::vector<ReplicationResult> Runner::run(const ExperimentSpec& spec) {
  return run(spec.expand(), spec.trust_params, spec.decision);
}

std::vector<ReplicationResult> Runner::run(
    const std::vector<ReplicationTask>& tasks_in,
    const trust::TrustParams& trust_params,
    const trust::DecisionConfig& decision) {
  std::vector<ReplicationResult> results(tasks_in.size());
  if (tasks_in.empty()) return results;

  // Intra- vs inter-replication split for sharded tasks: give each
  // replication floor(budget / concurrent replications) workers, but only
  // when the replications are big enough (>= kIntraNodeThreshold nodes)
  // for shard windows to amortize their barriers. Rewriting engine_threads
  // cannot change any output byte — sharded results are thread- and
  // shard-count invariant by contract (tests/psim_test.cpp).
  std::vector<ReplicationTask> tasks = tasks_in;
  {
    unsigned budget = config_.threads;
    if (budget == 0) budget = std::thread::hardware_concurrency();
    if (budget == 0) budget = 1;
    const unsigned outer =
        static_cast<unsigned>(std::min<std::size_t>(tasks.size(), budget));
    const unsigned inner = std::max(1u, budget / std::max(outer, 1u));
    for (auto& task : tasks) {
      if (task.engine != sim::EngineKind::kSharded) continue;
      task.engine_threads =
          task.point.num_nodes >= kIntraNodeThreshold ? inner : 1;
    }
  }

  const unsigned threads = effective_threads(tasks.size());
  if (threads == 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      results[i] = run_replication(tasks[i], trust_params, decision);
      if (progress_) progress_(i + 1, tasks.size());
    }
    return results;
  }

  // Round-robin initial shards; stealing rebalances from there.
  std::vector<WorkDeque> deques(threads);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    deques[i % threads].push_back(i);

  std::mutex progress_mutex;
  std::size_t done = 0;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&](unsigned self) {
    for (;;) {
      {
        std::lock_guard lock{error_mutex};
        if (first_error) return;  // some replication failed: drain and stop
      }
      auto task_index = deques[self].pop_front();
      if (!task_index) {
        // Steal from the victim with the most queued work.
        std::size_t best = 0, best_size = 0;
        for (unsigned v = 0; v < threads; ++v) {
          if (v == self) continue;
          const auto size = deques[v].size();
          if (size > best_size) {
            best_size = size;
            best = v;
          }
        }
        if (best_size == 0) return;  // everything is taken: we are done
        task_index = deques[best].steal_back();
        if (!task_index) continue;  // lost the race; look again
      }
      try {
        results[*task_index] =
            run_replication(tasks[*task_index], trust_params, decision);
      } catch (...) {
        std::lock_guard lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
        return;
      }
      if (progress_) {
        std::lock_guard lock{progress_mutex};
        progress_(++done, tasks.size());
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace manet::runtime
