#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace manet::obs {

/// Provenance stamp of one tool invocation: an ordered key/value list
/// (tool, version, engine, seed grid, thread/shard counts, ...) rendered
/// into whatever output the run produces — `#`-comment lines ahead of a
/// CSV table or a Prometheus page, an object inside a JSON document — so
/// every BENCH/fixture artifact is self-describing. Values are plain
/// strings; every field is a deterministic function of the invocation
/// (never a timestamp), so two runs of the same command produce the same
/// manifest byte for byte.
class RunManifest {
 public:
  explicit RunManifest(std::string tool);

  RunManifest& add(const std::string& key, const std::string& value);
  RunManifest& add(const std::string& key, std::uint64_t value);
  RunManifest& add(const std::string& key, double value);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// "# manifest key=value" lines (one per entry, newline-terminated) —
  /// the header stamped ahead of CSV tables and Prometheus text.
  std::string comment_header() const;

  /// The manifest as a JSON object, e.g. {"tool":"manet_experiments",...}.
  std::string json_object() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// The build's `git describe` stamp (configure-time; "unknown" outside a
/// git checkout). Stale until CMake re-runs — good enough for provenance.
std::string build_version();

}  // namespace manet::obs
