#include "obs/manifest.hpp"

#include <cinttypes>
#include <cstdio>

namespace manet::obs {

RunManifest::RunManifest(std::string tool) {
  add("tool", tool);
  add("version", build_version());
}

RunManifest& RunManifest::add(const std::string& key,
                              const std::string& value) {
  entries_.emplace_back(key, value);
  return *this;
}

RunManifest& RunManifest::add(const std::string& key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return add(key, std::string{buf});
}

RunManifest& RunManifest::add(const std::string& key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return add(key, std::string{buf});
}

std::string RunManifest::comment_header() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += "# manifest ";
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string RunManifest::json_object() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : entries_) {
    if (!first) out += ",";
    first = false;
    append_json_string(out, key);
    out += ":";
    append_json_string(out, value);
  }
  out += "}";
  return out;
}

std::string build_version() {
#ifdef MANET_GIT_DESCRIBE
  return MANET_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

}  // namespace manet::obs
