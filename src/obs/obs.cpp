#include "obs/obs.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <tuple>

namespace manet::obs {

namespace detail {
thread_local TlsBinding tls;
}  // namespace detail

const char* hot_name(Hot h) {
  switch (h) {
    case Hot::kMediumBroadcasts:
      return "manet_medium_broadcasts_total";
    case Hot::kMediumBatchedBroadcasts:
      return "manet_medium_batched_broadcasts_total";
    case Hot::kMediumUnicasts:
      return "manet_medium_unicasts_total";
    case Hot::kRouteRecomputes:
      return "manet_olsr_route_recomputes_total";
    case Hot::kMprRecomputes:
      return "manet_olsr_mpr_recomputes_total";
    case Hot::kPipelineLines:
      return "manet_pipeline_lines_total";
    case Hot::kPipelineRounds:
      return "manet_pipeline_rounds_total";
    case Hot::kPipelineDecays:
      return "manet_pipeline_decays_total";
    case Hot::kPipelineForwardAudits:
      return "manet_pipeline_forward_audits_total";
    case Hot::kPipelineReports:
      return "manet_pipeline_reports_total";
    case Hot::kPipelineConvictions:
      return "manet_pipeline_convictions_total";
    case Hot::kPipelineSuppressed:
      return "manet_pipeline_suppressed_convictions_total";
    case Hot::kInvestigationsOpened:
      return "manet_investigations_opened_total";
    case Hot::kCheckpointSaves:
      return "manet_checkpoint_saves_total";
    case Hot::kCheckpointRestores:
      return "manet_checkpoint_restores_total";
    case Hot::kFaultEvents:
      return "manet_fault_events_total";
    case Hot::kInvariantViolations:
      return "manet_invariant_violations_total";
    case Hot::kPsimWindows:
      return "manet_psim_windows_total";
    case Hot::kCount:
      break;
  }
  return "manet_unknown_total";
}

const char* span_name(SpanName n) {
  switch (n) {
    case SpanName::kSetupConverge:
      return "setup_converge";
    case SpanName::kRound:
      return "round";
    case SpanName::kIdleRound:
      return "idle_round";
    case SpanName::kInvestigation:
      return "investigation";
    case SpanName::kConviction:
      return "conviction";
    case SpanName::kSuppressed:
      return "suppressed_conviction";
    case SpanName::kRoutingRecompute:
      return "routing_recompute";
    case SpanName::kPipelineRound:
      return "pipeline_round";
    case SpanName::kCheckpointSave:
      return "checkpoint_save";
    case SpanName::kCheckpointRestore:
      return "checkpoint_restore";
    case SpanName::kFaultEvent:
      return "fault_event";
    case SpanName::kInvariantViolation:
      return "invariant_violation";
    case SpanName::kPsimWindow:
      return "psim_window";
    case SpanName::kCount:
      break;
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::record(const TraceEvent& event) {
  if (size_ == ring_.size()) ++dropped_;  // overwriting the oldest entry
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

Shard& Context::bind_thread() {
  const auto self = std::this_thread::get_id();
  std::lock_guard lock{mutex_};
  for (auto& [id, shard] : shards_)
    if (id == self) return *shard;
  shards_.emplace_back(self, std::make_unique<Shard>(config_.ring_capacity));
  return *shards_.back().second;
}

std::uint32_t Context::intern(const std::string& name, MetricKind kind,
                              double lo, double hi, std::size_t bins) {
  std::lock_guard lock{mutex_};
  for (const auto& def : defs_) {
    if (def.name != name) continue;
    if (def.kind != kind ||
        (kind == MetricKind::kHistogram &&
         (def.lo != lo || def.hi != hi || def.bins != bins)))
      throw std::invalid_argument{"obs: metric '" + name +
                                  "' re-registered with a different shape"};
    return def.slot;
  }
  MetricDef def;
  def.name = name;
  def.kind = kind;
  def.lo = lo;
  def.hi = hi;
  def.bins = bins;
  switch (kind) {
    case MetricKind::kCounter:
      def.slot = counter_slots_++;
      break;
    case MetricKind::kGauge:
      def.slot = gauge_slots_++;
      break;
    case MetricKind::kHistogram:
      def.slot = histogram_slots_++;
      break;
  }
  defs_.push_back(def);
  return def.slot;
}

MetricsSnapshot Context::snapshot() const {
  std::lock_guard lock{mutex_};
  MetricsSnapshot snap;

  // Hot counters first, under their fixed names.
  std::array<std::uint64_t, static_cast<std::size_t>(Hot::kCount)> hot{};
  for (const auto& [id, shard] : shards_)
    for (std::size_t i = 0; i < hot.size(); ++i) hot[i] += shard->hot[i];
  for (std::size_t i = 0; i < hot.size(); ++i)
    snap.counters.push_back(
        MetricsSnapshot::Counter{hot_name(static_cast<Hot>(i)), hot[i]});

  for (const auto& def : defs_) {
    switch (def.kind) {
      case MetricKind::kCounter: {
        std::uint64_t sum = 0;
        for (const auto& [id, shard] : shards_)
          if (def.slot < shard->counters.size()) sum += shard->counters[def.slot];
        snap.counters.push_back(MetricsSnapshot::Counter{def.name, sum});
        break;
      }
      case MetricKind::kGauge: {
        double value = 0.0;
        bool set = false;
        for (const auto& [id, shard] : shards_) {
          if (def.slot >= shard->gauges.size()) continue;
          const auto& [v, was_set] = shard->gauges[def.slot];
          if (!was_set) continue;
          value = set ? std::max(value, v) : v;
          set = true;
        }
        if (set) snap.gauges.push_back(MetricsSnapshot::Gauge{def.name, value});
        break;
      }
      case MetricKind::kHistogram: {
        stats::Histogram merged{def.lo, def.hi, def.bins};
        for (const auto& [id, shard] : shards_) {
          if (def.slot >= shard->histograms.size()) continue;
          if (const auto* h = shard->histograms[def.slot].get())
            merged.merge(*h);
        }
        snap.histograms.push_back(MetricsSnapshot::Hist{def.name, merged});
        break;
      }
    }
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::vector<TraceEvent> Context::trace() const {
  std::lock_guard lock{mutex_};
  std::vector<TraceEvent> out;
  for (const auto& [id, shard] : shards_) {
    auto events = shard->recorder.events();
    out.insert(out.end(), events.begin(), events.end());
  }
  // Deterministic order regardless of which worker thread recorded what:
  // the key is pure sim-state. Events identical in every key field are
  // interchangeable, so the sort fully determines the dump.
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return std::tie(a.begin_us, a.end_us, a.name, a.phase, a.lane, a.id) <
           std::tie(b.begin_us, b.end_us, b.name, b.phase, b.lane, b.id);
  });
  return out;
}

std::uint64_t Context::trace_dropped() const {
  std::lock_guard lock{mutex_};
  std::uint64_t dropped = 0;
  for (const auto& [id, shard] : shards_) dropped += shard->recorder.dropped();
  return dropped;
}

Scope::Scope(Context* ctx, std::uint32_t lane) : saved_{detail::tls} {
  TlsBinding next;
  if (ctx != nullptr) {
    next.ctx = ctx;
    next.shard = &ctx->bind_thread();
    next.lane = lane;
    next.tracing = ctx->config().tracing;
    next.wallclock = ctx->config().wallclock;
  }
  detail::tls = next;
}

Scope::~Scope() { detail::tls = saved_; }

namespace detail {

void record_event(SpanName name, EventPhase phase, sim::Time begin,
                  sim::Time end, std::uint64_t id, std::uint64_t wall_ns) {
  Shard* shard = tls.shard;
  if (shard == nullptr) return;
  TraceEvent event;
  event.begin_us = begin.us();
  event.end_us = end.us();
  event.id = id;
  event.wall_ns = tls.wallclock ? wall_ns : 0;
  event.name = name;
  event.phase = phase;
  event.lane = tls.lane;
  shard->recorder.record(event);
}

}  // namespace detail

void Counter::inc(std::uint64_t n) const {
  Shard* shard = detail::tls.shard;
  if (shard == nullptr || slot_ == UINT32_MAX) return;
  if (shard->counters.size() <= slot_) shard->counters.resize(slot_ + 1, 0);
  shard->counters[slot_] += n;
}

void Gauge::set(double value) const {
  Shard* shard = detail::tls.shard;
  if (shard == nullptr || slot_ == UINT32_MAX) return;
  if (shard->gauges.size() <= slot_)
    shard->gauges.resize(slot_ + 1, {0.0, false});
  shard->gauges[slot_] = {value, true};
}

void HistogramHandle::observe(double x) const {
  Shard* shard = detail::tls.shard;
  if (shard == nullptr || slot_ == UINT32_MAX) return;
  if (shard->histograms.size() <= slot_) shard->histograms.resize(slot_ + 1);
  if (!shard->histograms[slot_])
    shard->histograms[slot_] =
        std::make_unique<stats::Histogram>(lo_, hi_, bins_);
  shard->histograms[slot_]->add(x);
}

Counter counter(const std::string& name) {
  Context* ctx = detail::tls.ctx;
  if (ctx == nullptr) return Counter{};
  return Counter{ctx->intern(name, MetricKind::kCounter)};
}

Gauge gauge(const std::string& name) {
  Context* ctx = detail::tls.ctx;
  if (ctx == nullptr) return Gauge{};
  return Gauge{ctx->intern(name, MetricKind::kGauge)};
}

HistogramHandle histogram(const std::string& name, double lo, double hi,
                          std::size_t bins) {
  Context* ctx = detail::tls.ctx;
  if (ctx == nullptr) return HistogramHandle{};
  return HistogramHandle{ctx->intern(name, MetricKind::kHistogram, lo, hi, bins),
                         lo, hi, bins};
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  auto merge_sorted = [](auto& mine, const auto& theirs, auto fold) {
    for (const auto& t : theirs) {
      auto it = std::lower_bound(
          mine.begin(), mine.end(), t,
          [](const auto& a, const auto& b) { return a.name < b.name; });
      if (it != mine.end() && it->name == t.name) {
        fold(*it, t);
      } else {
        mine.insert(it, t);
      }
    }
  };
  merge_sorted(counters, other.counters,
               [](Counter& a, const Counter& b) { a.value += b.value; });
  merge_sorted(gauges, other.gauges, [](Gauge& a, const Gauge& b) {
    a.value = std::max(a.value, b.value);
  });
  merge_sorted(histograms, other.histograms, [](Hist& a, const Hist& b) {
    a.histogram.merge(b.histogram);
  });
}

namespace {

void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof buf - 1));
}

}  // namespace

std::string MetricsSnapshot::to_prometheus(const std::string& header) const {
  std::string out;
  if (!header.empty()) {
    out += header;
    if (out.back() != '\n') out += '\n';
  }
  for (const auto& c : counters) {
    append_f(out, "# TYPE %s counter\n", c.name.c_str());
    append_f(out, "%s %" PRIu64 "\n", c.name.c_str(), c.value);
  }
  for (const auto& g : gauges) {
    append_f(out, "# TYPE %s gauge\n", g.name.c_str());
    append_f(out, "%s %.17g\n", g.name.c_str(), g.value);
  }
  for (const auto& h : histograms) {
    append_f(out, "# TYPE %s histogram\n", h.name.c_str());
    // add() clamps out-of-range samples into the edge bins, so the bin
    // counts already cover every sample; the cumulative series ends at
    // count() and +Inf repeats it, as the exposition format requires.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.histogram.bins(); ++b) {
      cumulative += h.histogram.bin_count(b);
      append_f(out, "%s_bucket{le=\"%.17g\"} %" PRIu64 "\n", h.name.c_str(),
               h.histogram.bin_upper(b), cumulative);
    }
    append_f(out, "%s_bucket{le=\"+Inf\"} %zu\n", h.name.c_str(),
             h.histogram.count());
    append_f(out, "%s_sum %.17g\n", h.name.c_str(), h.histogram.sum());
    append_f(out, "%s_count %zu\n", h.name.c_str(), h.histogram.count());
  }
  return out;
}

std::string MetricsSnapshot::counters_text(const std::string& prefix) const {
  std::string out;
  for (const auto& c : counters) {
    if (c.name.compare(0, prefix.size(), prefix) != 0) continue;
    append_f(out, "%s %" PRIu64 "\n", c.name.c_str(), c.value);
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

namespace {

void append_event_json(std::string& out, const TraceEvent& e,
                       std::uint64_t pid, bool& first) {
  if (!first) out += ",\n";
  first = false;
  const char* name = span_name(e.name);
  switch (e.phase) {
    case EventPhase::kComplete:
      append_f(out,
               "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%" PRId64
               ",\"dur\":%" PRId64 ",\"pid\":%" PRIu64 ",\"tid\":%u",
               name, e.begin_us, e.end_us - e.begin_us, pid, e.lane);
      break;
    case EventPhase::kInstant:
      append_f(out,
               "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%" PRId64
               ",\"pid\":%" PRIu64 ",\"tid\":%u",
               name, e.begin_us, pid, e.lane);
      break;
    case EventPhase::kAsyncBegin:
    case EventPhase::kAsyncEnd:
      append_f(out,
               "{\"name\":\"%s\",\"ph\":\"%s\",\"cat\":\"manet\",\"id\":%" PRIu64
               ",\"ts\":%" PRId64 ",\"pid\":%" PRIu64 ",\"tid\":%u",
               name, e.phase == EventPhase::kAsyncBegin ? "b" : "e", e.id,
               e.begin_us, pid, e.lane);
      break;
  }
  // One args object at most: the free id (except async phases, where the
  // id is already a top-level field) and the wall-clock profiling overlay.
  const bool want_id = e.id != 0 && e.phase != EventPhase::kAsyncBegin &&
                       e.phase != EventPhase::kAsyncEnd;
  if (want_id || e.wall_ns != 0) {
    out += ",\"args\":{";
    if (want_id) append_f(out, "\"id\":%" PRIu64, e.id);
    if (e.wall_ns != 0)
      append_f(out, "%s\"wall_ns\":%" PRIu64, want_id ? "," : "", e.wall_ns);
    out += "}";
  }
  out += "}";
}

}  // namespace

std::string trace_json(const std::vector<TraceEvent>& events,
                       std::uint64_t pid) {
  return trace_json_multi({{pid, events}});
}

std::string trace_json_multi(
    const std::vector<std::pair<std::uint64_t, std::vector<TraceEvent>>>&
        groups) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, events] : groups)
    for (const auto& e : events) append_event_json(out, e, pid, first);
  out += "\n]}\n";
  return out;
}

}  // namespace manet::obs
