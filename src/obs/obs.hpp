#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"

/// Deterministic observability layer: a metrics registry (named counters,
/// gauges, histograms) and a sim-time flight recorder, threaded through the
/// whole stack via a thread-local binding so the instrumented code never
/// holds an obs reference, never draws from a simulation RNG, and — with no
/// Context bound — compiles down to one predicted-not-taken branch per
/// record site (pinned by bench/micro_obs.cpp's BM_CounterInc/disabled).
///
/// Determinism contract: everything recorded on a deterministic path is a
/// pure function of the run (sim-time stamps, integer counts). Wall-clock
/// is confined to the opt-in profiling overlay (Config::wallclock), which
/// annotates trace events without changing their deterministic identity.
/// Counters merge by sum, gauges by max, histograms bin-wise — all
/// commutative, so the merged snapshot is identical for any worker-thread
/// or shard-lane interleaving of the same run.
namespace manet::obs {

/// Hot-path counters: enum-indexed into a per-thread array so a record is
/// `shard->hot[i] += n` with zero name lookup. Exposed in Prometheus text
/// under the names in hot_name().
enum class Hot : std::uint32_t {
  kMediumBroadcasts,         ///< per-sender transmit() calls
  kMediumBatchedBroadcasts,  ///< snapshot fast-path broadcasts
  kMediumUnicasts,           ///< routed unicast frames
  kRouteRecomputes,          ///< olsr::Agent routing recomputes that changed
  kMprRecomputes,            ///< olsr::Agent MPR-set recomputes that changed
  kPipelineLines,            ///< audit-stream kLine frames consumed
  kPipelineRounds,           ///< audit-stream kRound frames consumed
  kPipelineDecays,           ///< audit-stream kDecay frames consumed
  kPipelineForwardAudits,    ///< audit-stream kForwardAudit frames consumed
  kPipelineReports,          ///< detection reports emitted
  kPipelineConvictions,      ///< kIntruder verdicts emitted
  kPipelineSuppressed,       ///< convictions downgraded by the liveness gate
  kInvestigationsOpened,     ///< investigations launched by the detector
  kCheckpointSaves,
  kCheckpointRestores,
  kFaultEvents,              ///< fault-plan events applied by the injector
  kInvariantViolations,      ///< safety rules broken (exit-3 surface)
  kPsimWindows,              ///< (lane, window) executions under psim
  kCount,
};

/// Prometheus-style metric name of a hot counter (e.g.
/// "manet_pipeline_rounds_total").
const char* hot_name(Hot h);

/// Interned span/instant names of the flight recorder. Fixed enum — no
/// string interning on a hot path, and the Chrome trace dump maps them
/// back through span_name().
enum class SpanName : std::uint32_t {
  kSetupConverge,       ///< build_network + OLSR warm-up drive
  kRound,               ///< one investigation round (attack active)
  kIdleRound,           ///< one idle forgetting round
  kInvestigation,       ///< async: signature fired -> query -> verdict
  kConviction,          ///< instant: kIntruder verdict emitted
  kSuppressed,          ///< instant: conviction downgraded (liveness gate)
  kRoutingRecompute,    ///< instant: routing table changed
  kPipelineRound,       ///< instant: one kRound frame consumed
  kCheckpointSave,
  kCheckpointRestore,
  kFaultEvent,          ///< instant: one fault-plan event applied
  kInvariantViolation,  ///< instant: safety rule broken
  kPsimWindow,          ///< one conservative window on one shard lane
  kCount,
};

/// Trace-dump name of a span (e.g. "investigation").
const char* span_name(SpanName n);

/// Chrome trace_event phase of a recorded event.
enum class EventPhase : std::uint8_t {
  kComplete,    ///< "X": [begin, end] span
  kInstant,     ///< "i": point event at begin
  kAsyncBegin,  ///< "b": start of an id-correlated async span
  kAsyncEnd,    ///< "e": end of an id-correlated async span
};

/// One flight-recorder entry. All timestamps are sim-time microseconds
/// (deterministic); wall_ns is the optional profiling overlay and is zero
/// unless Config::wallclock is on.
struct TraceEvent {
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  std::uint64_t id = 0;       ///< async correlation id / free argument
  std::uint64_t wall_ns = 0;  ///< profiling overlay; 0 in deterministic mode
  SpanName name = SpanName::kCount;
  EventPhase phase = EventPhase::kInstant;
  std::uint32_t lane = 0;  ///< shard lane (deterministic), 0 sequential
};

/// Bounded ring of TraceEvents: the newest `capacity` events survive, the
/// rest are dropped oldest-first with a running drop count — so a crash
/// dump (exit-3 paths) always holds the events leading up to the failure.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(const TraceEvent& event);
  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  /// Events overwritten by ring wrap since construction.
  std::uint64_t dropped() const { return dropped_; }
  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// What kind of metric a registered name denotes.
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric definition in a Context's intern table.
struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t slot = 0;  ///< index within the kind's per-shard vector
  // Histogram shape (kHistogram only).
  double lo = 0.0, hi = 1.0;
  std::size_t bins = 1;
};

/// Per-thread recording shard: the hot counter array, the dynamic metric
/// vectors, and this thread's slice of the flight-recorder ring. Never
/// locked on the record path — each worker thread owns exactly one.
struct Shard {
  explicit Shard(std::size_t ring_capacity) : recorder{ring_capacity} {}

  std::array<std::uint64_t, static_cast<std::size_t>(Hot::kCount)> hot{};
  std::vector<std::uint64_t> counters;
  /// (value, was-set): an untouched gauge slot contributes nothing.
  std::vector<std::pair<double, bool>> gauges;
  std::vector<std::unique_ptr<stats::Histogram>> histograms;
  FlightRecorder recorder;
};

/// Deterministic merged view of a Context at a barrier: metric names with
/// values, sorted by name, plus the merged trace. Counters sum, gauges
/// max, histograms merge bin-wise — commutative folds, so the snapshot is
/// byte-identical for any thread count.
class MetricsSnapshot {
 public:
  /// One named sample.
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  /// One named gauge sample.
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  /// One named histogram with its merged bins.
  struct Hist {
    std::string name;
    stats::Histogram histogram{0.0, 1.0, 1};
  };

  std::vector<Counter> counters;  ///< sorted by name
  std::vector<Gauge> gauges;      ///< sorted by name
  std::vector<Hist> histograms;   ///< sorted by name

  /// Folds `other` in: counters sum, gauges max, histograms merge.
  /// Metrics absent on one side are carried through.
  void merge(const MetricsSnapshot& other);

  /// Prometheus text exposition (HELP/TYPE + samples; histograms as
  /// cumulative _bucket/_sum/_count series). `header` lines (already
  /// "#"-prefixed, e.g. a run manifest) are emitted first.
  std::string to_prometheus(const std::string& header = {}) const;

  /// Flat deterministic "name value" listing of every counter whose name
  /// starts with `prefix` — the record-vs-replay diff surface of
  /// manet_detect.
  std::string counters_text(const std::string& prefix = {}) const;

  /// Value of a named counter (hot counters use hot_name()); 0 if absent.
  std::uint64_t counter_value(const std::string& name) const;
};

/// One replication's (or one CLI run's) observability arena: owns the
/// per-thread shards, the metric intern table, and the trace
/// configuration. Created only when the run asked for metrics or tracing;
/// instrumented code reaches it through the thread-local Scope binding and
/// records nothing when no Context is bound.
class Context {
 public:
  /// Observability knobs of one Context.
  struct Config {
    bool tracing = false;  ///< record flight-recorder events
    /// Flight-recorder ring capacity per recording thread.
    std::size_t ring_capacity = 8192;
    /// Profiling overlay: stamp wall-clock durations on spans. Never
    /// deterministic — off everywhere a golden trace is compared.
    bool wallclock = false;
  };

  Context() : Context(Config{}) {}
  explicit Context(Config config) : config_{config} {}

  const Config& config() const { return config_; }

  /// The calling thread's shard, created on first use (locked; record
  /// paths cache the result in the Scope binding).
  Shard& bind_thread();

  /// Interns a metric definition (idempotent by name) and returns its
  /// slot. Throws std::invalid_argument on a kind/shape conflict.
  std::uint32_t intern(const std::string& name, MetricKind kind,
                       double lo = 0.0, double hi = 1.0, std::size_t bins = 1);

  /// Merged deterministic snapshot of every shard (see MetricsSnapshot).
  MetricsSnapshot snapshot() const;

  /// Merged trace of every shard's ring, sorted by the deterministic key
  /// (begin, end, name, phase, lane, id); drop counts summed.
  std::vector<TraceEvent> trace() const;
  /// Total events lost to ring wrap across all shards.
  std::uint64_t trace_dropped() const;

 private:
  Config config_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<Shard>>> shards_;
  std::vector<MetricDef> defs_;
  std::uint32_t counter_slots_ = 0;
  std::uint32_t gauge_slots_ = 0;
  std::uint32_t histogram_slots_ = 0;
};

/// The thread's current binding: which Context (if any) records for this
/// thread, its pre-resolved Shard, and the deterministic lane id stamped
/// on trace events. All record helpers read this and no-op on null.
struct TlsBinding {
  Context* ctx = nullptr;
  Shard* shard = nullptr;
  std::uint32_t lane = 0;
  bool tracing = false;
  bool wallclock = false;
};

namespace detail {
extern thread_local TlsBinding tls;
}

/// RAII binding of a Context (or nullptr) to the current thread. Nests:
/// the previous binding is restored on destruction. The psim engine opens
/// one per lane execution so worker threads inherit the replication's
/// Context with their shard lane stamped on every event.
class Scope {
 public:
  explicit Scope(Context* ctx, std::uint32_t lane = 0);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  TlsBinding saved_;
};

/// True when a Context is bound to this thread (metrics are recording).
inline bool active() { return detail::tls.shard != nullptr; }

/// Records `n` into a hot counter; single predicted branch when unbound.
inline void hit(Hot h, std::uint64_t n = 1) {
  if (Shard* s = detail::tls.shard)
    s->hot[static_cast<std::size_t>(h)] += n;
}

namespace detail {
void record_event(SpanName name, EventPhase phase, sim::Time begin,
                  sim::Time end, std::uint64_t id, std::uint64_t wall_ns);
}

/// Records a completed [begin, end] sim-time span.
inline void span(SpanName name, sim::Time begin, sim::Time end,
                 std::uint64_t id = 0, std::uint64_t wall_ns = 0) {
  if (detail::tls.tracing)
    detail::record_event(name, EventPhase::kComplete, begin, end, id, wall_ns);
}

/// Records an instant event at sim-time `at`.
inline void instant(SpanName name, sim::Time at, std::uint64_t id = 0) {
  if (detail::tls.tracing)
    detail::record_event(name, EventPhase::kInstant, at, at, id, 0);
}

/// Opens an id-correlated async span (e.g. one investigation lifecycle).
inline void async_begin(SpanName name, sim::Time at, std::uint64_t id) {
  if (detail::tls.tracing)
    detail::record_event(name, EventPhase::kAsyncBegin, at, at, id, 0);
}

/// Closes the async span opened under (name, id).
inline void async_end(SpanName name, sim::Time at, std::uint64_t id) {
  if (detail::tls.tracing)
    detail::record_event(name, EventPhase::kAsyncEnd, at, at, id, 0);
}

/// Named counter handle bound to the interning Context. Safe to copy;
/// records only while its Context is the thread's bound Context.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const;

 private:
  friend Counter counter(const std::string& name);
  explicit Counter(std::uint32_t slot) : slot_{slot} {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Named gauge handle (merge-by-max across shards).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const;

 private:
  friend Gauge gauge(const std::string& name);
  explicit Gauge(std::uint32_t slot) : slot_{slot} {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Named histogram handle (fixed [lo, hi) x bins shape, merged bin-wise).
class HistogramHandle {
 public:
  HistogramHandle() = default;
  void observe(double x) const;

 private:
  friend HistogramHandle histogram(const std::string& name, double lo,
                                   double hi, std::size_t bins);
  HistogramHandle(std::uint32_t slot, double lo, double hi, std::size_t bins)
      : slot_{slot}, lo_{lo}, hi_{hi}, bins_{bins} {}
  std::uint32_t slot_ = UINT32_MAX;
  double lo_ = 0.0, hi_ = 1.0;
  std::size_t bins_ = 1;
};

/// Interns `name` as a counter in the thread's bound Context; a dead
/// handle (every operation a no-op) when none is bound.
Counter counter(const std::string& name);
/// Interns `name` as a gauge in the thread's bound Context.
Gauge gauge(const std::string& name);
/// Interns `name` as a histogram over [lo, hi) with `bins` bins.
HistogramHandle histogram(const std::string& name, double lo, double hi,
                          std::size_t bins);

/// Chrome trace_event JSON ("traceEvents" array form) of a merged trace.
/// ts/dur are sim-time microseconds; pid is `pid` (task index under a
/// sweep), tid the deterministic lane.
std::string trace_json(const std::vector<TraceEvent>& events,
                       std::uint64_t pid = 0);

/// Multi-process variant: one (pid, events) group per replication,
/// concatenated into a single JSON document.
std::string trace_json_multi(
    const std::vector<std::pair<std::uint64_t, std::vector<TraceEvent>>>&
        groups);

}  // namespace manet::obs
