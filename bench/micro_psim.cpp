// Micro-benchmarks of the psim sharded parallel engine against the
// sequential Simulator.
//
// Two layers of gauge:
//
// - BM_SequentialSlab / BM_ShardedSlab: two simulated seconds (one full
//   HELLO interval, so every node fires) of full-stack OLSR control-plane
//   traffic (HELLO + TC floods over a multi-hop grid) at N=256, after
//   convergence warm-up. This is the real workload the
//   engine exists for; N=1024 full-stack slabs are minutes of CPU per
//   fixture (the scale-1024 regime, see docs/BENCHMARKING.md) and live in
//   the manet_experiments presets, not in a micro gauge.
// - BM_SequentialWindows / BM_ShardedWindows: synthetic window throughput
//   at N in {256, 1024} — every node re-arms a periodic self event and
//   fires a lookahead-distance delivery to a spatial neighbor, so the
//   gauge isolates the engine machinery (queues, windows, barriers,
//   mailboxes, per-node streams) from OLSR parsing.
//
// The sharded runs report the serial-fraction gauges:
//   windows_per_s — barrier frequency (each window is one serial sync),
//   cross_frac    — fraction of events that crossed a shard boundary,
//   imbalance     — busiest lane events / mean lane events (1.0 = even).
// On this repo's 1-CPU reference container no wall-clock speedup is
// measurable (docs/BENCHMARKING.md): the committed numbers record the
// *overhead* of sharding at threads=1 — the price of lanes + barriers +
// mailboxes — and the gauges that bound what a multicore host can extract.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "psim/engine.hpp"
#include "scenario/network.hpp"
#include "sim/simulator.hpp"

using namespace manet;

namespace {

/// 150 m spacing at 250 m range: a genuinely multi-hop grid (MPRs, TC
/// floods, forwarding) — the control-plane shape of the scale presets.
std::unique_ptr<scenario::Network> make_network(std::size_t n,
                                                sim::EngineKind kind,
                                                unsigned threads,
                                                unsigned shards) {
  scenario::Network::Config nc;
  nc.seed = 42;
  nc.radio.range_m = 250.0;
  nc.positions = net::grid_layout(n, 150.0);
  nc.engine = kind;
  nc.engine_threads = threads;
  nc.shards = shards;
  auto network = std::make_unique<scenario::Network>(std::move(nc));
  network->start_all();
  // Warm up past link sensing / MPR churn so the slab is steady state.
  network->run_for(sim::Duration::from_seconds(6.0));
  return network;
}

constexpr auto kLookahead = sim::Duration::from_us(500);  // radio base delay
constexpr auto kRearm = sim::Duration::from_ms(10);

void report_sharded_counters(benchmark::State& state, const psim::Engine& eng,
                             const psim::EngineStats& warm) {
  const auto stats = eng.stats();
  const auto events = stats.executed_events - warm.executed_events;
  const auto windows = stats.windows - warm.windows;
  const auto crossed = stats.cross_shard_events - warm.cross_shard_events;
  // Each full-stack iteration simulates 2 s, each synthetic iteration 1 s;
  // report barriers per *iteration* — the comparable serial-sync count.
  const double iters = static_cast<double>(state.iterations());
  state.counters["windows_per_iter"] =
      iters > 0 ? static_cast<double>(windows) / iters : 0.0;
  state.counters["cross_frac"] =
      events > 0 ? static_cast<double>(crossed) / static_cast<double>(events)
                 : 0.0;
  // Imbalance over the measured phase only: diff each lane against its
  // warm-up snapshot, so convergence traffic cannot skew the gauge.
  std::uint64_t max_lane = 0;
  for (std::size_t lane = 0; lane < stats.lane_events.size(); ++lane) {
    const std::uint64_t before =
        lane < warm.lane_events.size() ? warm.lane_events[lane] : 0;
    max_lane = std::max(max_lane, stats.lane_events[lane] - before);
  }
  const double mean_lane =
      static_cast<double>(events) / static_cast<double>(eng.shards());
  state.counters["imbalance"] =
      mean_lane > 0 ? static_cast<double>(max_lane) / mean_lane : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

}  // namespace

// ------------------------------------------------ full-stack slabs (N=256)

static void BM_SequentialSlab(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto network = make_network(n, sim::EngineKind::kSequential, 0, 0);
  const auto warm = network->sim().executed_events();
  for (auto _ : state)
    network->run_for(sim::Duration::from_seconds(2.0));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(network->sim().executed_events() - warm));
}
BENCHMARK(BM_SequentialSlab)->Arg(256)->Unit(benchmark::kMillisecond);

static void BM_ShardedSlab(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const auto shards = static_cast<unsigned>(state.range(2));
  auto network = make_network(n, sim::EngineKind::kSharded, threads, shards);
  const auto warm = network->sharded()->stats();
  for (auto _ : state)
    network->run_for(sim::Duration::from_seconds(2.0));
  report_sharded_counters(state, *network->sharded(), warm);
}
BENCHMARK(BM_ShardedSlab)
    ->Args({256, 1, 2})
    ->Args({256, 1, 4})
    ->Unit(benchmark::kMillisecond);

// --------------------------------- synthetic window throughput (N=256/1024)

// Every node re-arms itself every kRearm and fires one lookahead-distance
// delivery to its east neighbor — guaranteed cross-stripe traffic at every
// shard boundary, with zero protocol cost on top of the engine machinery.

static void BM_SequentialWindows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim{42};
  std::uint64_t fired = 0;
  // Self-contained recursive event: deliver + re-arm, like the engine-side
  // twin below (the delivery itself is a no-op callback).
  struct Node {
    sim::Simulator& sim;
    std::uint64_t& fired;
    void fire() {
      ++fired;
      sim.schedule(kLookahead, [f = &fired] { ++*f; });
      sim.schedule(kRearm, [this] { fire(); });
    }
  };
  std::vector<Node> nodes(n, Node{sim, fired});
  for (auto& node : nodes) node.fire();
  for (auto _ : state) sim.run_until(sim.now() + sim::Duration::from_seconds(1.0));
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.executed_events()));
}
BENCHMARK(BM_SequentialWindows)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

static void BM_ShardedWindows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const auto shards = static_cast<unsigned>(state.range(2));
  const auto layout = net::grid_layout(n, 150.0);

  psim::Engine::Config pc;
  pc.seed = 42;
  pc.threads = threads;
  pc.shards = shards;
  pc.lookahead = kLookahead;
  pc.cell_size = 250.0;
  psim::Engine engine{pc, layout};

  std::vector<std::uint64_t> fired(n, 0);
  // Node i's periodic event: a no-op delivery to node (i+1) mod n — its
  // east neighbor in stripe order, so stripe-boundary nodes produce real
  // mailbox traffic — then re-arm.
  struct Node {
    psim::Engine& engine;
    std::uint64_t* fired;
    std::uint32_t self;
    std::uint32_t peer;
    void fire() {
      ++fired[self];
      engine.schedule_delivery(net::NodeId{peer},
                               engine.shard_engine(net::NodeId{self}).now() +
                                   kLookahead,
                               [f = &fired[peer]] { ++*f; });
      engine.shard_engine(net::NodeId{self})
          .schedule(kRearm, [this] { fire(); });
    }
  };
  std::vector<Node> nodes;
  nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    nodes.push_back(Node{engine, fired.data(), i,
                         static_cast<std::uint32_t>((i + 1) % n)});
  for (std::uint32_t i = 0; i < n; ++i)
    engine.run_as(net::NodeId{i}, [&] { nodes[i].fire(); });

  const auto warm = engine.stats();
  for (auto _ : state)
    engine.run_until(engine.now() + sim::Duration::from_seconds(1.0));
  report_sharded_counters(state, engine, warm);
}
BENCHMARK(BM_ShardedWindows)
    ->Args({256, 1, 2})
    ->Args({256, 1, 4})
    ->Args({1024, 1, 4})
    ->Args({1024, 1, 8})
    ->Unit(benchmark::kMillisecond);
