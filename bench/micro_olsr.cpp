// Micro-benchmarks of the OLSR substrate: MPR selection, routing-table
// computation, wire (de)serialization and audit-log parsing throughput.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "logging/format.hpp"
#include "olsr/link_set.hpp"
#include "olsr/mpr_selection.hpp"
#include "olsr/routing_table.hpp"
#include "olsr/wire.hpp"
#include "sim/rng.hpp"

using namespace manet;
using olsr::NodeId;

namespace {

olsr::MprInputs random_mpr_inputs(std::size_t n1, std::size_t n2,
                                  std::uint64_t seed) {
  sim::Rng rng{seed};
  olsr::MprInputs in;
  for (std::size_t i = 1; i <= n1; ++i)
    in.neighbors.emplace_back(NodeId{static_cast<std::uint32_t>(i)},
                              olsr::Willingness::kDefault);
  in.reach.resize(n1);
  for (std::size_t i = 0; i < n1; ++i)
    in.reach[i].first = NodeId{static_cast<std::uint32_t>(i + 1)};
  for (std::size_t j = 0; j < n2; ++j) {
    const NodeId two_hop{static_cast<std::uint32_t>(1000 + j)};
    const auto providers = rng.uniform_int(1, static_cast<std::int64_t>(n1));
    for (std::int64_t k = 0; k < providers; ++k) {
      const auto via = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(n1)) - 1);
      in.reach[via].second.push_back(two_hop);
    }
  }
  for (auto& [via, ths] : in.reach) {
    std::sort(ths.begin(), ths.end());
    ths.erase(std::unique(ths.begin(), ths.end()), ths.end());
  }
  std::erase_if(in.reach, [](const auto& p) { return p.second.empty(); });
  return in;
}

olsr::KnowledgeGraph random_graph(std::size_t nodes, std::size_t degree,
                                  std::uint64_t seed) {
  sim::Rng rng{seed};
  olsr::KnowledgeGraph g;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t d = 0; d < degree; ++d) {
      const auto j = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
      if (j == i) continue;
      g.add_edge(NodeId{static_cast<std::uint32_t>(i)}, NodeId{j});
    }
  }
  return g;
}

}  // namespace

static void BM_MprSelection(benchmark::State& state) {
  const auto in = random_mpr_inputs(static_cast<std::size_t>(state.range(0)),
                                    static_cast<std::size_t>(state.range(1)),
                                    42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(olsr::select_mprs(in));
  }
}
BENCHMARK(BM_MprSelection)->Args({8, 20})->Args({16, 60})->Args({32, 200});

static void BM_RoutingRecompute(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)), 4, 7);
  for (auto _ : state) {
    // Fresh table per iteration: recompute now short-circuits an unchanged
    // graph, so reusing one table would measure the no-op check only.
    olsr::RoutingTable rt;
    benchmark::DoNotOptimize(rt.recompute(NodeId{0}, g));
  }
}
BENCHMARK(BM_RoutingRecompute)->Arg(16)->Arg(64)->Arg(256);

// The dense-cluster regime of the scale presets: every node sees ~70+
// neighbors, so the knowledge graph is near-complete and the BFS frontier
// is maximal. This is the control-plane profiling target ROADMAP promotes
// after the medium fast paths (see micro_psim for the engine side);
// BENCH_5.json recorded the std::map baseline, BENCH_6.json the flat-slab
// CSR rebuild. A fresh table per iteration pins the full-rebuild path.
static void BM_RoutingRecomputeDense(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 7);
  for (auto _ : state) {
    olsr::RoutingTable rt;
    benchmark::DoNotOptimize(rt.recompute(NodeId{0}, g));
  }
}
BENCHMARK(BM_RoutingRecomputeDense)->Args({256, 70})->Args({1024, 78});

// Steady-state control plane, identical graph: the most common recompute
// in a converged network is a refresh that changes nothing; the table
// answers it with the snapshot compare alone.
static void BM_RoutingRecomputeSame(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 7);
  olsr::RoutingTable rt;
  rt.recompute(NodeId{0}, g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.recompute(NodeId{0}, g));
  }
}
BENCHMARK(BM_RoutingRecomputeSame)->Args({256, 70})->Args({1024, 78});

// Edge-addition churn: alternating between a graph and a one-edge superset
// exercises the incremental relaxation (base -> grown) and the full-rebuild
// fallback (grown -> base, a removal) in equal measure.
static void BM_RoutingRecomputeIncremental(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto base = random_graph(nodes, static_cast<std::size_t>(state.range(1)), 7);
  auto grown = base;
  // One extra edge touching fresh nodes: the superset fast path relaxes
  // outward from just this arc pair.
  grown.add_edge(NodeId{static_cast<std::uint32_t>(nodes)},
                 NodeId{static_cast<std::uint32_t>(nodes / 2)});
  olsr::RoutingTable rt;
  rt.recompute(NodeId{0}, base);
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.recompute(NodeId{0}, flip ? grown : base));
    flip = !flip;
  }
}
BENCHMARK(BM_RoutingRecomputeIncremental)->Args({256, 70})->Args({1024, 78});

// Link-set scans run on every HELLO build (symmetric + asymmetric
// enumeration) and on every HELLO receipt (is_symmetric); at >= 70
// neighbors per node they are the hottest OLSR table walk.
static void BM_LinkSetScan(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  olsr::LinkSet links;
  const auto hold = sim::Duration::from_seconds(6.0);
  for (std::uint32_t i = 0; i < degree; ++i)
    links.on_hello(sim::Time{}, NodeId{i + 1}, /*lists_us=*/true,
                   /*lost_us=*/false, hold);
  const auto now = sim::Duration::from_ms(1);
  std::vector<NodeId> sym, asym;
  for (auto _ : state) {
    links.symmetric_neighbors(now, sym);
    benchmark::DoNotOptimize(sym);
    links.asymmetric_neighbors(now, asym);
    benchmark::DoNotOptimize(asym);
    benchmark::DoNotOptimize(links.is_symmetric(now, NodeId{degree / 2}));
  }
  state.SetItemsProcessed(state.iterations() * degree);
}
BENCHMARK(BM_LinkSetScan)->Arg(16)->Arg(70)->Arg(150);

static void BM_ShortestPathAvoiding(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)), 4, 7);
  const std::vector<NodeId> avoid{NodeId{1}, NodeId{2}};  // sorted
  for (auto _ : state) {
    benchmark::DoNotOptimize(olsr::RoutingTable::shortest_path(
        g, NodeId{0}, NodeId{static_cast<std::uint32_t>(state.range(0) - 1)},
        avoid));
  }
}
BENCHMARK(BM_ShortestPathAvoiding)->Arg(64)->Arg(256);

static void BM_HelloSerializeParse(benchmark::State& state) {
  olsr::HelloMessage h;
  for (std::uint32_t i = 0; i < 16; ++i)
    h.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, NodeId{i});
  olsr::Message m;
  m.header.type = olsr::MessageType::kHello;
  m.header.originator = NodeId{0};
  m.body = h;
  olsr::OlsrPacket p;
  p.messages.push_back(m);
  for (auto _ : state) {
    const auto bytes = olsr::serialize_packet(p);
    benchmark::DoNotOptimize(olsr::parse_packet(bytes));
  }
}
BENCHMARK(BM_HelloSerializeParse);

static void BM_LogParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    logging::LogRecord r;
    r.time = sim::Time::from_us(i * 1000);
    r.node = net::NodeId{3};
    r.event = "hello_recv";
    r.with("from", net::NodeId{5}).with("sym", "n1|n2|n4|n7");
    text += logging::format_record(r);
    text += '\n';
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(logging::parse_log(text));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LogParse);
