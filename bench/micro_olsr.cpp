// Micro-benchmarks of the OLSR substrate: MPR selection, routing-table
// computation, wire (de)serialization and audit-log parsing throughput.

#include <benchmark/benchmark.h>

#include "logging/format.hpp"
#include "olsr/link_set.hpp"
#include "olsr/mpr_selection.hpp"
#include "olsr/routing_table.hpp"
#include "olsr/wire.hpp"
#include "sim/rng.hpp"

using namespace manet;
using olsr::NodeId;

namespace {

olsr::MprInputs random_mpr_inputs(std::size_t n1, std::size_t n2,
                                  std::uint64_t seed) {
  sim::Rng rng{seed};
  olsr::MprInputs in;
  for (std::size_t i = 1; i <= n1; ++i)
    in.neighbors[NodeId{static_cast<std::uint32_t>(i)}] =
        olsr::Willingness::kDefault;
  for (std::size_t j = 0; j < n2; ++j) {
    const NodeId two_hop{static_cast<std::uint32_t>(1000 + j)};
    const auto providers = rng.uniform_int(1, static_cast<std::int64_t>(n1));
    for (std::int64_t k = 0; k < providers; ++k) {
      const NodeId via{static_cast<std::uint32_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(n1)))};
      in.reach[via].insert(two_hop);
    }
  }
  return in;
}

olsr::KnowledgeGraph random_graph(std::size_t nodes, std::size_t degree,
                                  std::uint64_t seed) {
  sim::Rng rng{seed};
  olsr::KnowledgeGraph g;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t d = 0; d < degree; ++d) {
      const auto j = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
      if (j == i) continue;
      g[NodeId{static_cast<std::uint32_t>(i)}].insert(NodeId{j});
      g[NodeId{j}].insert(NodeId{static_cast<std::uint32_t>(i)});
    }
  }
  return g;
}

}  // namespace

static void BM_MprSelection(benchmark::State& state) {
  const auto in = random_mpr_inputs(static_cast<std::size_t>(state.range(0)),
                                    static_cast<std::size_t>(state.range(1)),
                                    42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(olsr::select_mprs(in));
  }
}
BENCHMARK(BM_MprSelection)->Args({8, 20})->Args({16, 60})->Args({32, 200});

static void BM_RoutingRecompute(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)), 4, 7);
  olsr::RoutingTable rt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.recompute(NodeId{0}, g));
  }
}
BENCHMARK(BM_RoutingRecompute)->Arg(16)->Arg(64)->Arg(256);

// The dense-cluster regime of the scale presets: every node sees ~70+
// neighbors, so the knowledge graph is near-complete and Dijkstra's
// frontier is maximal. This is the control-plane profiling target ROADMAP
// promotes after the medium fast paths (see micro_psim for the engine
// side); BENCH_5.json is its recorded baseline.
static void BM_RoutingRecomputeDense(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)),
                              static_cast<std::size_t>(state.range(1)), 7);
  olsr::RoutingTable rt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.recompute(NodeId{0}, g));
  }
}
BENCHMARK(BM_RoutingRecomputeDense)->Args({256, 70})->Args({1024, 78});

// Link-set scans run on every HELLO build (symmetric + asymmetric
// enumeration) and on every HELLO receipt (is_symmetric); at >= 70
// neighbors per node they are the hottest OLSR table walk.
static void BM_LinkSetScan(benchmark::State& state) {
  const auto degree = static_cast<std::uint32_t>(state.range(0));
  olsr::LinkSet links;
  const auto hold = sim::Duration::from_seconds(6.0);
  for (std::uint32_t i = 0; i < degree; ++i)
    links.on_hello(sim::Time{}, NodeId{i + 1}, /*lists_us=*/true,
                   /*lost_us=*/false, hold);
  const auto now = sim::Duration::from_ms(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(links.symmetric_neighbors(now));
    benchmark::DoNotOptimize(links.asymmetric_neighbors(now));
    benchmark::DoNotOptimize(links.is_symmetric(now, NodeId{degree / 2}));
  }
  state.SetItemsProcessed(state.iterations() * degree);
}
BENCHMARK(BM_LinkSetScan)->Arg(16)->Arg(70)->Arg(150);

static void BM_ShortestPathAvoiding(benchmark::State& state) {
  const auto g = random_graph(static_cast<std::size_t>(state.range(0)), 4, 7);
  const std::set<NodeId> avoid{NodeId{1}, NodeId{2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(olsr::RoutingTable::shortest_path(
        g, NodeId{0}, NodeId{static_cast<std::uint32_t>(state.range(0) - 1)},
        avoid));
  }
}
BENCHMARK(BM_ShortestPathAvoiding)->Arg(64)->Arg(256);

static void BM_HelloSerializeParse(benchmark::State& state) {
  olsr::HelloMessage h;
  for (std::uint32_t i = 0; i < 16; ++i)
    h.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, NodeId{i});
  olsr::Message m;
  m.header.type = olsr::MessageType::kHello;
  m.header.originator = NodeId{0};
  m.body = h;
  olsr::OlsrPacket p;
  p.messages.push_back(m);
  for (auto _ : state) {
    const auto bytes = olsr::serialize_packet(p);
    benchmark::DoNotOptimize(olsr::parse_packet(bytes));
  }
}
BENCHMARK(BM_HelloSerializeParse);

static void BM_LogParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 1000; ++i) {
    logging::LogRecord r;
    r.time = sim::Time::from_us(i * 1000);
    r.node = net::NodeId{3};
    r.event = "hello_recv";
    r.with("from", net::NodeId{5}).with("sym", "n1|n2|n4|n7");
    text += logging::format_record(r);
    text += '\n';
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(logging::parse_log(text));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LogParse);
