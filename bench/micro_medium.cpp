// Micro-benchmarks of the simulation hot path: medium broadcast rounds
// (spatial-grid index vs a replica of the seed's O(N^2) full scan),
// event-queue churn, and unit-disk adjacency construction. These are the
// gauges recorded in BENCH_2.json by tools/bench_report.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/medium.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

using namespace manet;

namespace {

// Grid layout with ~8 in-range neighbors per node at the default 250 m
// range: per-node density stays constant as N grows, so the seed scan's
// O(N^2) cost is isolated from delivery work.
std::vector<net::Position> bench_layout(std::size_t n) {
  return net::grid_layout(n, 180.0);
}

net::Bytes hello_sized_payload() { return net::Bytes(60, 0xAB); }

/// Replica of the seed Medium::transmit: every broadcast scans the whole
/// std::map of hosts and deep-copies the payload once per receiver. Kept as
/// the baseline the spatial index is gauged against (acceptance: >=5x
/// broadcast throughput at N=1024).
class SeedScanMedium {
 public:
  SeedScanMedium(sim::Simulator& sim, net::RadioConfig config)
      : sim_{sim}, config_{config} {}

  void attach(net::NodeId id, net::Position pos) {
    hosts_.emplace(id, Host{pos, true});
  }

  void broadcast(net::NodeId sender, const net::Bytes& payload,
                 std::uint64_t& delivered) {
    const Host& tx = hosts_.at(sender);
    if (!tx.up) return;
    for (const auto& [id, rx] : hosts_) {
      if (id == sender || !rx.up) continue;
      if (net::distance(tx.pos, rx.pos) > config_.range_m) continue;
      if (sim_.rng().bernoulli(config_.loss_probability)) continue;
      sim::Duration delay = config_.base_delay;
      if (config_.delay_jitter > sim::Duration{}) {
        delay += sim::Duration::from_us(
            sim_.rng().uniform_int(0, config_.delay_jitter.us()));
      }
      net::Bytes copy = payload;  // the seed's per-receiver deep copy
      sim_.schedule(delay, [&delivered, copy = std::move(copy)] {
        delivered += copy.size();
      });
    }
  }

 private:
  struct Host {
    net::Position pos;
    bool up = true;
  };
  sim::Simulator& sim_;
  net::RadioConfig config_;
  std::map<net::NodeId, Host> hosts_;
};

}  // namespace

// One broadcast round: every node transmits one HELLO-sized frame, then the
// queue drains. Items processed = broadcasts.
static void BM_MediumBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim{42};
  net::Medium medium{sim, net::RadioConfig{}};
  const auto layout = bench_layout(n);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    medium.attach(net::NodeId{static_cast<std::uint32_t>(i)}, layout[i],
                  [&delivered](const net::Packet& p) {
                    delivered += p.payload().size();
                  });
  }
  const auto payload = hello_sized_payload();
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i)
      medium.broadcast(net::NodeId{static_cast<std::uint32_t>(i)}, payload);
    sim.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MediumBroadcast)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

static void BM_MediumBroadcastSeed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim{42};
  SeedScanMedium medium{sim, net::RadioConfig{}};
  const auto layout = bench_layout(n);
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(net::NodeId{static_cast<std::uint32_t>(i)}, layout[i]);
  const auto payload = hello_sized_payload();
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i)
      medium.broadcast(net::NodeId{static_cast<std::uint32_t>(i)}, payload,
                       delivered);
    sim.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MediumBroadcastSeed)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Schedule a batch at random times, cancel half, drain — the allocation and
// heap churn pattern of OLSR timers and investigation timeouts.
static void BM_EventQueueChurn(benchmark::State& state) {
  constexpr int kBatch = 1024;
  sim::Rng rng{7};
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      ids.push_back(q.schedule(sim::Time::from_us(rng.uniform_int(0, 1000000)),
                               [&fired] { ++fired; }));
    }
    for (int i = 0; i < kBatch; i += 2) q.cancel(ids[i]);
    while (!q.empty()) q.run_next();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventQueueChurn);

static void BM_Adjacency(benchmark::State& state) {
  const auto layout = bench_layout(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::adjacency(layout, 250.0));
  }
}
BENCHMARK(BM_Adjacency)->Arg(256)->Arg(1024);

static void BM_RandomLayoutMinSep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Rng rng{seed++};
    benchmark::DoNotOptimize(
        net::random_layout(n, 5000.0, 5000.0, 30.0, rng));
  }
}
BENCHMARK(BM_RandomLayoutMinSep)->Arg(256)->Arg(1024);
