// Micro-benchmarks of the audit-event detection pipeline: in-memory
// consumption throughput (records/s into Eq. 8-10 + trust updates),
// end-to-end offline replay (binary decode + consume) over the recorded
// audit-log format — the gauges behind the manet_detect offline path —
// plus the forwarding-audit frame path and the end-to-end grayhole round
// (flood accumulation + drop + scan + pooled investigation).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/pipeline.hpp"
#include "logging/audit_log.hpp"
#include "scenario/trust_experiment.hpp"

using namespace manet;

namespace {

// A synthetic stream over `peers` distinct nodes: bursts of HELLO/TC lines
// interleaved with investigation rounds of 12 answers each, shaped like
// the live detector's feed (many lines per round).
std::vector<core::AuditEvent> synth_events(std::uint32_t peers,
                                           std::size_t rounds) {
  std::vector<core::AuditEvent> events;
  events.reserve(rounds * 17);
  std::int64_t t_us = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (int k = 0; k < 16; ++k) {
      t_us += 1000;
      const net::NodeId from{
          1 + static_cast<std::uint32_t>((r * 16 + k) % peers)};
      core::AuditEvent e;
      e.kind = logging::AuditFrame::kLine;
      e.time = sim::Time::from_us(t_us);
      e.line.time = e.time;
      e.line.node = net::NodeId{0};
      if (k % 4 == 0) {
        e.line.event = "tc_recv";
        e.line.with("orig", from).with("via", from);
      } else {
        e.line.event = "hello_recv";
        e.line.with("from", from).with("sym", std::string{});
      }
      events.push_back(std::move(e));
    }
    t_us += 1000;
    core::AuditEvent e;
    e.kind = logging::AuditFrame::kRound;
    e.time = sim::Time::from_us(t_us);
    e.round.query.investigation_id = static_cast<std::uint32_t>(r + 1);
    e.round.query.suspect = net::NodeId{1 + static_cast<std::uint32_t>(r % peers)};
    e.round.query.subject = net::NodeId{1 + static_cast<std::uint32_t>((r + 1) % peers)};
    e.round.query.claimed_up = true;
    e.round.own_observation = -1.0;
    for (int j = 0; j < 12; ++j) {
      const net::NodeId responder{
          2 + static_cast<std::uint32_t>((r * 7 + j) % peers)};
      e.round.answers.push_back(
          core::RoundAnswer{responder, j % 3 == 0 ? +1.0 : -1.0, true});
    }
    e.round.tags.push_back(core::EvidenceTag::kSignatureMatch);
    events.push_back(std::move(e));
  }
  return events;
}

core::PipelineConfig synth_config(std::uint32_t peers) {
  core::PipelineConfig config;
  config.self = net::NodeId{0};
  config.liveness_window = sim::Duration::from_seconds(10.0);
  (void)peers;
  return config;
}

std::vector<std::uint8_t> synth_log(std::uint32_t peers, std::size_t rounds) {
  logging::AuditWriter writer;
  core::AuditHeader header;
  header.config = synth_config(peers);
  for (std::uint32_t i = 1; i <= peers; ++i)
    header.trust_rows.emplace_back(net::NodeId{i}, 0.4);
  core::write_audit_header(writer, header);
  for (const auto& e : synth_events(peers, rounds)) {
    if (e.kind == logging::AuditFrame::kLine)
      writer.line(e.line);
    else
      core::write_round_frame(writer, e.time, e.round);
  }
  return writer.take();
}

}  // namespace

// In-memory consumption: pre-built events stream into a fresh pipeline.
// items/s == audit records/s through the full detection path.
static void BM_DetectConsume(benchmark::State& state) {
  const auto peers = static_cast<std::uint32_t>(state.range(0));
  constexpr std::size_t kRounds = 64;
  const auto events = synth_events(peers, kRounds);
  for (auto _ : state) {
    core::DetectionPipeline pipeline{synth_config(peers)};
    for (const auto& e : events) pipeline.consume(e);
    benchmark::DoNotOptimize(pipeline.reports().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_DetectConsume)->Arg(256)->Arg(1024);

// Offline replay: decode the binary log (header + frames) and consume, the
// manet_detect replay path minus the mmap.
static void BM_AuditReplay(benchmark::State& state) {
  const auto peers = static_cast<std::uint32_t>(state.range(0));
  constexpr std::size_t kRounds = 64;
  const auto bytes = synth_log(peers, kRounds);
  std::size_t frames = 0;
  for (auto _ : state) {
    core::AuditStreamReader stream{bytes};
    auto pipeline = core::pipeline_from_header(stream.header());
    core::AuditEvent event;
    frames = 0;
    while (stream.next(event)) {
      pipeline.consume(event);
      ++frames;
    }
    benchmark::DoNotOptimize(pipeline.reports().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frames));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_AuditReplay)->Arg(256)->Arg(1024);

// Forwarding-audit frame consumption: the kForwardAudit path is recorder
// write + bounded telemetry append, deliberately touching no trust state —
// this gauge keeps it honest (it should sit far above the kRound rate).
static void BM_ForwardAuditConsume(benchmark::State& state) {
  const auto peers = static_cast<std::uint32_t>(state.range(0));
  std::vector<core::AuditEvent> events;
  events.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    core::AuditEvent e;
    e.kind = logging::AuditFrame::kForwardAudit;
    e.time = sim::Time::from_us(static_cast<std::int64_t>(i) * 1000);
    e.audit.mpr = net::NodeId{1 + static_cast<std::uint32_t>(i) % peers};
    e.audit.expected = 8;
    e.audit.forwarded = i % 2 ? 8 : 0;
    events.push_back(std::move(e));
  }
  for (auto _ : state) {
    core::DetectionPipeline pipeline{synth_config(peers)};
    for (const auto& e : events) pipeline.consume(e);
    benchmark::DoNotOptimize(pipeline.forward_audits().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_ForwardAuditConsume)->Arg(256)->Arg(1024);

// End-to-end grayhole detection round: 5 s of simulated flood traffic on
// the 16-node grid (the attacker dropping everything it attracted), one
// detector scan and the pooled investigations it launches — the wall-clock
// unit of manet_experiments --sweep grayhole.
static void BM_GrayholeRound(benchmark::State& state) {
  scenario::TrustExperiment::Config config;
  config.attack = scenario::TrustExperiment::AttackKind::kGrayhole;
  config.seed = 1;
  config.num_nodes = 16;
  config.num_liars = 0;
  scenario::TrustExperiment exp{config};
  exp.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp.run_round().at.us());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrayholeRound)->Unit(benchmark::kMillisecond);

// Decode-only: frame walk + payload decode with no pipeline behind it —
// isolates the codec cost from the detection math.
static void BM_AuditDecode(benchmark::State& state) {
  const auto bytes = synth_log(256, 64);
  for (auto _ : state) {
    core::AuditStreamReader stream{bytes};
    core::AuditEvent event;
    std::size_t frames = 0;
    while (stream.next(event)) ++frames;
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_AuditDecode);
