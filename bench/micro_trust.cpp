// Micro-benchmarks of the trust system: Eq. 5 updates, Eq. 8 aggregation,
// the entropy mapping and the inverse-normal quantile behind Eq. 9.

#include <benchmark/benchmark.h>

#include "stats/entropy.hpp"
#include "stats/normal.hpp"
#include "trust/detection.hpp"
#include "trust/trust_store.hpp"

using namespace manet;

static void BM_TrustUpdate(benchmark::State& state) {
  trust::TrustStore store;
  const auto ev = trust::lie_evidence(0.3);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.apply_evidence(net::NodeId{i++ % 64}, ev));
  }
}
BENCHMARK(BM_TrustUpdate);

// Slab-scale gauges: the trust store is one flat sorted vector per table,
// so point updates among >= 10k known subjects are two binary searches and
// the idle sweep is one contiguous pass. Exercises the PR-6 slab layout at
// fleet sizes far above the simulated networks.
static void BM_TrustUpdateLarge(benchmark::State& state) {
  const auto subjects = static_cast<std::uint32_t>(state.range(0));
  trust::TrustStore store;
  for (std::uint32_t i = 0; i < subjects; ++i)
    store.set_trust(net::NodeId{i}, 0.4);
  const auto ev = trust::lie_evidence(0.3);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.apply_evidence(net::NodeId{(i++ * 2654435761u) % subjects}, ev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrustUpdateLarge)->Arg(10000)->Arg(40000);

static void BM_TrustDecayAllLarge(benchmark::State& state) {
  const auto subjects = static_cast<std::uint32_t>(state.range(0));
  trust::TrustStore store;
  for (std::uint32_t i = 0; i < subjects; ++i)
    store.set_trust(net::NodeId{i}, i % 2 == 0 ? 0.9 : 0.1);
  for (auto _ : state) {
    store.decay_all_idle();
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * subjects);
}
BENCHMARK(BM_TrustDecayAllLarge)->Arg(10000)->Arg(40000);

static void BM_AggregateDetection(benchmark::State& state) {
  std::vector<trust::WeightedAnswer> answers;
  for (int i = 0; i < state.range(0); ++i)
    answers.push_back({net::NodeId{static_cast<std::uint32_t>(i)}, 0.5,
                       i % 3 == 0 ? 1.0 : -1.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trust::aggregate_detection(answers));
  }
}
BENCHMARK(BM_AggregateDetection)->Arg(16)->Arg(128)->Arg(1024);

static void BM_Decide(benchmark::State& state) {
  std::vector<trust::WeightedAnswer> answers;
  for (int i = 0; i < 64; ++i)
    answers.push_back({net::NodeId{static_cast<std::uint32_t>(i)}, 0.5,
                       i % 4 == 0 ? 1.0 : -1.0});
  const trust::DecisionConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trust::decide(answers, cfg));
  }
}
BENCHMARK(BM_Decide);

static void BM_EntropyTrust(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::entropy_trust(p));
    p += 0.001;
    if (p >= 1.0) p = 0.001;
  }
}
BENCHMARK(BM_EntropyTrust);

static void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::normal_quantile(p));
    p += 0.001;
    if (p >= 1.0) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile);

static void BM_RecommendationTrust(benchmark::State& state) {
  trust::TrustStore store;
  for (int i = 0; i < 50; ++i)
    store.record_interaction(net::NodeId{1}, i % 3 != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.recommendation_trust(net::NodeId{1}));
  }
}
BENCHMARK(BM_RecommendationTrust);
