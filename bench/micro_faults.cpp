// Checkpoint codec throughput: serialize and restore the per-node state
// a fault-tolerant run snapshots — the trust store (trust rows +
// interaction counters), one RNG cursor per node, and the Medium's radio
// state (up/down, brown-out overrides, partition ids) with an in-flight
// frame registry — at N in {256, 1024} nodes.
//
// The gauge drives the component codecs (faults/checkpoint.hpp) over
// synthetically populated state rather than a live TrustExperiment: a
// converged dense-cluster experiment at N=256 already carries ~160 MB of
// OLSR topology and takes minutes of CPU to set up, which would gauge
// protocol convergence, not the codec. Here every byte is written and
// read back under the benchmark clock, so bytes_per_second is the honest
// save/restore throughput of the wire format itself.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/checkpoint.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "trust/trust_store.hpp"

using namespace manet;

namespace {

constexpr std::size_t kFlightsPerNode = 4;
constexpr std::size_t kPayloadBytes = 128;  // a typical HELLO wire size

std::vector<sim::Rng::State> make_cursors(std::size_t n) {
  std::vector<sim::Rng::State> cursors(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < 4; ++j)
      cursors[i].s[j] = 0x9E3779B97F4A7C15ull * (4 * i + j + 1);
    cursors[i].has_cached_normal = (i % 2) == 0;
    cursors[i].cached_normal = static_cast<double>(i) * 0.25;
  }
  return cursors;
}

trust::TrustStore make_trust(std::size_t n) {
  trust::TrustStore store;
  std::vector<std::pair<net::NodeId, double>> trust;
  std::vector<trust::TrustStore::Counter> counters;
  trust.reserve(n);
  counters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    trust.emplace_back(id, 0.05 + 0.9 * static_cast<double>(i % 97) / 97.0);
    counters.push_back(
        {id, static_cast<int>(i % 13), static_cast<int>(i % 13 + i % 7)});
  }
  store.restore(std::move(trust), std::move(counters));
  return store;
}

/// A Medium with N attached hosts in a mid-fault-plan world: a quarter of
/// the fleet browned out, half partitioned, a few hosts down, and
/// kFlightsPerNode airborne frames per node in the in-flight registry.
std::unique_ptr<net::Medium> make_medium(sim::Simulator& sim, std::size_t n) {
  net::RadioConfig rc;
  rc.range_m = 250.0;
  // 300 m spacing: no host in range of another, so injected flights are
  // the only traffic and the registry size is exactly what we set.
  const auto layout = net::grid_layout(n, 300.0);
  auto medium = std::make_unique<net::Medium>(sim, rc);
  medium->set_track_in_flight(true);
  for (std::size_t i = 0; i < n; ++i)
    medium->attach(net::NodeId{static_cast<std::uint32_t>(i)}, layout[i]);
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    if (i % 4 == 0) medium->set_loss_override(id, 0.6);
    if (i % 2 == 0) medium->set_partition(id, 1);
    if (i % 16 == 0) medium->set_up(id, false);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kFlightsPerNode; ++k) {
      net::InFlightFrame f;
      f.receiver = net::NodeId{static_cast<std::uint32_t>(i)};
      f.transmitter = net::NodeId{static_cast<std::uint32_t>((i + 1) % n)};
      f.link_dest = f.receiver;
      f.payload.assign(kPayloadBytes, static_cast<std::uint8_t>(i + k));
      f.sent_at = sim::Time::from_us(static_cast<std::int64_t>(i));
      f.arrival = sim::Time::from_ms(1 + static_cast<std::int64_t>(k));
      f.seq = i * kFlightsPerNode + k;
      medium->restore_in_flight(f);
    }
  }
  return medium;
}

std::vector<std::uint8_t> encode_snapshot(
    const trust::TrustStore& store,
    const std::vector<sim::Rng::State>& cursors, const net::Medium& medium) {
  faults::CheckpointWriter w;
  w.u32(faults::kCheckpointMagic);
  w.u32(faults::kCheckpointVersion);
  faults::encode_trust(w, store);
  w.count(cursors.size());
  for (const auto& st : cursors) faults::encode_rng(w, st);
  faults::encode_medium(w, medium);
  return w.take();
}

}  // namespace

static void BM_CheckpointSave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto store = make_trust(n);
  const auto cursors = make_cursors(n);
  sim::Simulator sim{42};
  const auto medium = make_medium(sim, n);

  std::size_t bytes = 0;
  for (auto _ : state) {
    auto snapshot = encode_snapshot(store, cursors, *medium);
    bytes = snapshot.size();
    benchmark::DoNotOptimize(snapshot.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(bytes * static_cast<std::size_t>(state.iterations())));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CheckpointSave)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

static void BM_CheckpointRestore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bytes = [&] {
    sim::Simulator sim{42};
    const auto medium = make_medium(sim, n);
    return encode_snapshot(make_trust(n), make_cursors(n), *medium);
  }();

  // Decode targets: a cold store and a Medium with the hosts attached but
  // no fault state — decode applies per-host state in place, so reusing
  // the same target across iterations mirrors the restore path exactly.
  trust::TrustStore target_store;
  sim::Simulator sim{43};
  net::RadioConfig rc;
  rc.range_m = 250.0;
  const auto layout = net::grid_layout(n, 300.0);
  net::Medium target{sim, rc};
  for (std::size_t i = 0; i < n; ++i)
    target.attach(net::NodeId{static_cast<std::uint32_t>(i)}, layout[i]);

  for (auto _ : state) {
    faults::CheckpointReader r{bytes};
    if (r.u32() != faults::kCheckpointMagic) state.SkipWithError("bad magic");
    if (r.u32() != faults::kCheckpointVersion)
      state.SkipWithError("bad version");
    faults::decode_trust(r, target_store);
    const auto cursor_count = r.count();
    for (std::size_t i = 0; i < cursor_count; ++i) {
      auto st = faults::decode_rng(r);
      benchmark::DoNotOptimize(st);
    }
    auto image = faults::decode_medium(r, target);
    benchmark::DoNotOptimize(image.flights.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes.size() * static_cast<std::size_t>(state.iterations())));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_CheckpointRestore)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);
