// Table B — message overhead of the cooperative investigation vs network
// size (resource consumption is listed as future work in the paper; this
// quantifies it). Grid networks; one detector runs autonomously against a
// phantom-advertising attacker; we count investigation queries/answers,
// retries and total frames on the medium.

#include <cmath>
#include <cstdio>

#include "attacks/link_spoofing.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

using namespace manet;
using scenario::Network;

int main() {
  std::printf(
      "Table B — investigation overhead vs network size (60 s of detection, "
      "phantom link spoofing)\n\n");
  std::printf("%-8s %-10s %-10s %-10s %-10s %-12s %-14s\n", "nodes",
              "queries", "answers", "retries", "route_fail", "frames_total",
              "bytes_total");

  for (std::size_t n : {9, 16, 25, 36}) {
    Network::Config c;
    c.seed = 11;
    c.radio.range_m = 160.0;
    c.positions = net::grid_layout(n, 100.0);
    Network net{c};

    // Second row/column: always adjacent (diagonally) to the detector at
    // the origin corner, in every grid size.
    const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(n)));
    const std::size_t attacker = side + 1;
    net.set_hooks(attacker,
                  std::make_unique<attacks::LinkSpoofingAttack>(
                      attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                      std::set<net::NodeId>{net::NodeId{999}}));
    auto& detector = net.add_detector(0);
    net.start_all();
    net.run_for(sim::Duration::from_seconds(25.0));
    net.medium().reset_stats();
    detector.start();
    net.run_for(sim::Duration::from_seconds(60.0));

    const auto& inv = net.investigations(0).stats();
    const auto& med = net.medium().stats();
    std::printf("%-8zu %-10llu %-10llu %-10llu %-10llu %-12llu %-14llu\n", n,
                static_cast<unsigned long long>(inv.queries_sent),
                static_cast<unsigned long long>(inv.answers_received),
                static_cast<unsigned long long>(inv.retries),
                static_cast<unsigned long long>(inv.route_failures),
                static_cast<unsigned long long>(med.frames_sent),
                static_cast<unsigned long long>(med.bytes_sent));
  }

  std::printf(
      "\nshape: investigation traffic grows with the suspect's neighborhood "
      "size, not with n;\nthe dominant cost stays the periodic OLSR control "
      "traffic.\n");
  return 0;
}
