// Micro-benchmarks of batched HELLO broadcast rounds: the BroadcastBatch
// fast path (one candidate gather + ascending-NodeId sort per occupied grid
// cell per round, shared across all senders in the cell) against the
// per-sender Medium::broadcast it replaces (one gather + sort per sender).
//
// A "round" is one HELLO jitter window at full participation: every node
// broadcasts one HELLO-sized frame, so every cell holds >= 8 senders per
// window at the dense spacing and N/round >= 8 senders everywhere. The
// *_Round benches time the Medium's transmit work (receiver computation,
// RNG draws, delivery scheduling); the queue drain that follows is
// identical for both paths — it executes the exact same delivery events —
// and is timed separately by BM_RoundWithDrain for the end-to-end figure.
// Acceptance (BENCH_4.json): batched >= 2x per-sender round throughput at
// N=1024.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "net/medium.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

using namespace manet;

namespace {

// 180 m spacing ~= the micro_medium layout (~8 in-range neighbors, ~2
// senders per 250 m cell); 88 m spacing is the dense variant (~8 senders
// per cell, ~24 in-range neighbors) where per-sender sorts are heaviest.
std::vector<net::Position> layout_for(std::size_t n, double spacing) {
  return net::grid_layout(n, spacing);
}

net::PayloadPtr hello_sized_payload() {
  return net::make_payload(net::Bytes(60, 0xAB));
}

struct RoundFixture {
  sim::Simulator sim{42};
  net::Medium medium;
  std::size_t n;
  std::uint64_t delivered = 0;

  RoundFixture(std::size_t n_, double spacing)
      : medium{sim, net::RadioConfig{}}, n{n_} {
    const auto layout = layout_for(n, spacing);
    for (std::size_t i = 0; i < n; ++i) {
      medium.attach(net::NodeId{static_cast<std::uint32_t>(i)}, layout[i],
                    [this](const net::Packet& p) {
                      delivered += p.payload().size();
                    });
    }
  }
};

}  // namespace

// One batched HELLO round: every node enrolls and broadcasts through the
// BroadcastBatch; the queue drain runs untimed (identical in both paths).
static void BM_BatchedRound(benchmark::State& state) {
  RoundFixture f{static_cast<std::size_t>(state.range(0)),
                 static_cast<double>(state.range(1))};
  const auto payload = hello_sized_payload();
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.n; ++i) {
      const net::NodeId id{static_cast<std::uint32_t>(i)};
      f.medium.hello_batch().enroll(id);
      f.medium.hello_batch().broadcast(id, payload);
    }
    state.PauseTiming();
    f.sim.run_all();
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(f.delivered);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.n));
}
BENCHMARK(BM_BatchedRound)
    ->Args({256, 180})
    ->Args({1024, 180})
    ->Args({1024, 88});

// The per-sender baseline: identical round, every broadcast does its own
// 3x3 gather + receiver sort.
static void BM_PerSenderRound(benchmark::State& state) {
  RoundFixture f{static_cast<std::size_t>(state.range(0)),
                 static_cast<double>(state.range(1))};
  const auto payload = hello_sized_payload();
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.n; ++i)
      f.medium.broadcast(net::NodeId{static_cast<std::uint32_t>(i)}, payload);
    state.PauseTiming();
    f.sim.run_all();
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(f.delivered);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.n));
}
BENCHMARK(BM_PerSenderRound)
    ->Args({256, 180})
    ->Args({1024, 180})
    ->Args({1024, 88});

// End-to-end round including the event-queue drain (delivery execution),
// for both paths — the wall-clock a replication actually sees.
static void BM_RoundWithDrain(benchmark::State& state) {
  const bool batched = state.range(2) != 0;
  RoundFixture f{static_cast<std::size_t>(state.range(0)),
                 static_cast<double>(state.range(1))};
  const auto payload = hello_sized_payload();
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.n; ++i) {
      const net::NodeId id{static_cast<std::uint32_t>(i)};
      if (batched) {
        f.medium.hello_batch().enroll(id);
        f.medium.hello_batch().broadcast(id, payload);
      } else {
        f.medium.broadcast(id, payload);
      }
    }
    f.sim.run_all();
  }
  benchmark::DoNotOptimize(f.delivered);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.n));
}
BENCHMARK(BM_RoundWithDrain)
    ->Args({1024, 180, 0})
    ->Args({1024, 180, 1})
    ->Args({1024, 88, 0})
    ->Args({1024, 88, 1});
