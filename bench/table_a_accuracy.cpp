// Table A (companion-tech-report-style) — detection accuracy vs liar ratio,
// with and without trust weighting. For each ratio we run several seeds of
// the §V experiment for 12 rounds and classify the attacker using Eq. 10
// over the accumulated pool (trust-weighted) and over a plain unweighted
// majority (the no-trust baseline the paper argues against).

#include <cstdio>
#include <vector>

#include "scenario/trust_experiment.hpp"
#include "trust/detection.hpp"

using namespace manet;

int main() {
  constexpr int kSeeds = 5;
  constexpr int kRounds = 12;

  std::printf(
      "Table A — verdict against the attacker after %d rounds (%d seeds "
      "each)\n\n", kRounds, kSeeds);
  std::printf("%-12s %-28s %-28s\n", "liar_ratio", "with_trust(Eq.8)",
              "without_trust(majority)");

  for (std::size_t liars : {0u, 2u, 4u, 6u}) {
    int trust_intruder = 0, trust_unrecognized = 0, trust_wrong = 0;
    int plain_intruder = 0, plain_unrecognized = 0, plain_wrong = 0;

    for (int seed = 1; seed <= kSeeds; ++seed) {
      scenario::TrustExperiment::Config cfg;
      cfg.seed = static_cast<std::uint64_t>(seed) * 101;
      cfg.num_nodes = 16;
      cfg.num_liars = liars;
      scenario::TrustExperiment exp{cfg};
      exp.setup();

      scenario::TrustExperiment::RoundSnapshot last;
      std::vector<trust::WeightedAnswer> unweighted_pool;
      for (int r = 0; r < kRounds; ++r) {
        last = exp.run_round();
        // The no-trust baseline sees the same per-round answers but weighs
        // every responder equally, with no memory of who lied before.
        for (auto l : exp.liars())
          unweighted_pool.push_back({l, 1.0, +1.0});
        for (auto h : exp.honest())
          unweighted_pool.push_back({h, 1.0, -1.0});
      }

      switch (last.verdict) {
        case trust::Verdict::kIntruder:
          ++trust_intruder;
          break;
        case trust::Verdict::kUnrecognized:
          ++trust_unrecognized;
          break;
        case trust::Verdict::kWellBehaving:
          ++trust_wrong;
          break;
      }

      trust::DecisionConfig plain_cfg;
      const auto plain = trust::decide(unweighted_pool, plain_cfg);
      switch (plain.verdict) {
        case trust::Verdict::kIntruder:
          ++plain_intruder;
          break;
        case trust::Verdict::kUnrecognized:
          ++plain_unrecognized;
          break;
        case trust::Verdict::kWellBehaving:
          ++plain_wrong;
          break;
      }
    }

    const double ratio =
        static_cast<double>(liars) / 14.0 * 100.0;  // of the verifiers
    char with_buf[64], without_buf[64];
    std::snprintf(with_buf, sizeof(with_buf), "detect=%d unrec=%d wrong=%d",
                  trust_intruder, trust_unrecognized, trust_wrong);
    std::snprintf(without_buf, sizeof(without_buf),
                  "detect=%d unrec=%d wrong=%d", plain_intruder,
                  plain_unrecognized, plain_wrong);
    std::printf("%-11.1f%% %-28s %-28s\n", ratio, with_buf, without_buf);
  }

  std::printf(
      "\nshape: trust weighting keeps convicting the attacker as the liar "
      "ratio grows; the\nunweighted baseline loses decisiveness because "
      "liars never lose influence.\n");
  return 0;
}
