// Table C — impact of mobility on detection (the paper's stated future
// work): random-waypoint speeds vs whether/when the phantom link spoofer is
// convicted, plus how often investigations time out because verifiers moved
// out of reach.

#include <cstdio>

#include "attacks/link_spoofing.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

using namespace manet;
using scenario::Network;

int main() {
  std::printf(
      "Table C — detection under random-waypoint mobility (16 nodes, "
      "phantom spoofer, 120 s)\n\n");
  std::printf("%-12s %-12s %-16s %-12s %-12s\n", "speed_mps", "convicted",
              "latency_s", "reports", "timeouts");

  for (double speed : {0.0, 1.0, 2.0, 5.0}) {
    Network::Config c;
    c.seed = 21;
    c.radio.range_m = 200.0;
    c.positions = net::grid_layout(16, 90.0);
    Network net{c};

    net.set_hooks(5, std::make_unique<attacks::LinkSpoofingAttack>(
                         attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                         std::set<net::NodeId>{net::NodeId{999}}));
    if (speed > 0.0) {
      net::RandomWaypoint::Config mc;
      mc.area_width = 3 * 90.0;
      mc.area_height = 3 * 90.0;
      mc.speed_min_mps = speed * 0.5;
      mc.speed_max_mps = speed;
      for (std::size_t i = 0; i < 16; ++i) {
        net.set_mobility(i, std::make_unique<net::RandomWaypoint>(
                                net.medium().position(Network::id_of(i)), mc));
      }
    }

    auto& detector = net.add_detector(0);
    net.start_all();
    net.run_for(sim::Duration::from_seconds(25.0));
    detector.start();
    const double t0 = net.sim().now().seconds();
    net.run_for(sim::Duration::from_seconds(120.0));

    double latency = -1.0;
    std::size_t timeouts = 0;
    for (const auto& r : detector.reports()) {
      timeouts += r.timeouts;
      if (latency < 0 && r.verdict == trust::Verdict::kIntruder &&
          r.suspect == Network::id_of(5))
        latency = r.time.seconds() - t0;
    }
    std::printf("%-12.1f %-12s %-16.1f %-12zu %-12zu\n", speed,
                latency >= 0 ? "yes" : "no", latency,
                detector.reports().size(), timeouts);
  }

  std::printf(
      "\nshape: detection survives moderate mobility; higher speeds add "
      "answer timeouts and\nlengthen (or prevent) conviction as the "
      "evidence pool churns.\n");
  return 0;
}
