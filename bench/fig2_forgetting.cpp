// Figure 2 — "Impact of the Forgetting Factor on the Trustworthiness":
// after 25 attack rounds the attack and the lying cease; with no fresh
// evidence the forgetting factor relaxes every trust value toward the
// default (0.4). The paper's shape: nodes with high/medium values reach the
// default within the window; former liars (very low trust) recover slowly
// and do not reach it — the system "demands a long misconduct-less duration
// before trusting a former liar".

#include <cstdio>

#include "scenario/trust_experiment.hpp"
#include "stats/time_series.hpp"

using namespace manet;

int main() {
  scenario::TrustExperiment::Config cfg;
  cfg.seed = 3;
  cfg.num_nodes = 16;
  cfg.num_liars = 4;
  scenario::TrustExperiment exp{cfg};
  exp.setup();

  // Phase 1: the attack runs for 25 rounds (as in Figure 1) so liars sit
  // near zero and honest nodes above the default.
  exp.run_attack_rounds(25);
  exp.cease_attack();

  stats::TimeSeries series;
  auto& store = exp.detector().trust_store();
  const auto liar = exp.liars().front();
  const auto honest = exp.honest().front();
  double honest_hi_t = -1;
  net::NodeId honest_hi;
  for (auto h : exp.honest()) {
    if (store.trust(h) > honest_hi_t) {
      honest_hi_t = store.trust(h);
      honest_hi = h;
    }
  }

  series.add("former_liar", 0, store.trust(liar));
  series.add("honest", 0, store.trust(honest));
  series.add("honest_high", 0, store.trust(honest_hi));

  for (int round = 1; round <= 25; ++round) {
    const auto snap = exp.run_idle_round();
    series.add("former_liar", round, snap.trust.at(liar));
    series.add("honest", round, snap.trust.at(honest));
    series.add("honest_high", round, snap.trust.at(honest_hi));
  }

  std::printf(
      "Figure 2 — Impact of the forgetting factor after the attack ceases "
      "(default trust = 0.4)\n\n%s\n",
      series.to_table("idle_round").c_str());
  std::printf(
      "paper shape: high/medium trust values relax to the default 0.4 in the "
      "last rounds;\nformer liars recover slowly from below and may not "
      "reach it.\n");
  return 0;
}
