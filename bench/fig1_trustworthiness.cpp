// Figure 1 — "Trustworthiness": trust values as seen by the attacked node
// over 25 investigation rounds. 16 nodes, 1 link-spoofing attacker, 4
// colluding liars, random initial trust. The paper's shape: liar trust
// decays steeply regardless of its initial value; honest nodes gain a
// little; ordering honest > liar holds from early rounds on.

#include <cstdio>

#include "scenario/trust_experiment.hpp"
#include "stats/time_series.hpp"

using namespace manet;

int main() {
  scenario::TrustExperiment::Config cfg;
  cfg.seed = 3;
  cfg.num_nodes = 16;
  cfg.num_liars = 4;  // the paper's 26.3%
  cfg.rounds = 25;
  scenario::TrustExperiment exp{cfg};
  exp.setup();

  stats::TimeSeries series;
  auto label = [&](net::NodeId id, double initial) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s(%s,T0=%.2f)", id.to_string().c_str(),
                  exp.is_liar(id) ? "liar" : "honest", initial);
    return std::string{buf};
  };

  // Track two liars and two honest nodes with contrasting initial trust.
  std::map<net::NodeId, std::string> tracked;
  {
    auto& store = exp.detector().trust_store();
    net::NodeId liar_hi, liar_lo, honest_hi, honest_lo;
    double lh = -1, ll = 2, hh = -1, hl = 2;
    for (auto l : exp.liars()) {
      const double t = store.trust(l);
      if (t > lh) lh = t, liar_hi = l;
      if (t < ll) ll = t, liar_lo = l;
    }
    for (auto h : exp.honest()) {
      const double t = store.trust(h);
      if (t > hh) hh = t, honest_hi = h;
      if (t < hl) hl = t, honest_lo = h;
    }
    tracked[liar_hi] = label(liar_hi, lh);
    tracked[liar_lo] = label(liar_lo, ll);
    tracked[honest_hi] = label(honest_hi, hh);
    tracked[honest_lo] = label(honest_lo, hl);
    for (const auto& [id, name] : tracked)
      series.add(name, 0, store.trust(id));
  }

  for (int round = 1; round <= cfg.rounds; ++round) {
    const auto snap = exp.run_round();
    for (const auto& [id, name] : tracked)
      series.add(name, round, snap.trust.at(id));
  }

  std::printf(
      "Figure 1 — Trustworthiness seen by the attacked node (16 nodes, 1 "
      "attacker, 4 liars=26.3%%, 25 rounds)\n\n%s\n",
      series.to_table("round").c_str());

  std::printf(
      "paper shape: liars decay steeply regardless of initial trust; honest "
      "nodes with low\ninitial trust gain a little over the 25 rounds.\n");
  return 0;
}
