// Table D — ablation of the confidence-interval gate (Eq. 9/10, the paper's
// §IV-C contribution). We replay identical evidence pools with and without
// the margin gate and count premature convictions of innocents in noisy
// low-sample regimes, and how many samples each configuration needs before
// convicting a real attacker.

#include <cstdio>
#include <vector>

#include "sim/rng.hpp"
#include "trust/detection.hpp"

using namespace manet;
using trust::WeightedAnswer;

namespace {

// Draw n answers about an INNOCENT suspect in a noisy environment: honest
// answers +1 but each flips with probability `noise` (collisions, stale
// views).
std::vector<WeightedAnswer> innocent_sample(int n, double noise,
                                            sim::Rng& rng) {
  std::vector<WeightedAnswer> out;
  for (int i = 0; i < n; ++i) {
    const double e = rng.bernoulli(noise) ? -1.0 : +1.0;
    out.push_back({net::NodeId{static_cast<std::uint32_t>(i)}, 0.5, e});
  }
  return out;
}

std::vector<WeightedAnswer> guilty_sample(int n, double noise, sim::Rng& rng) {
  auto out = innocent_sample(n, 1.0 - noise, rng);
  return out;
}

}  // namespace

int main() {
  constexpr int kTrials = 2000;
  sim::Rng rng{99};

  std::printf(
      "Table D — confidence-interval ablation (gamma=0.6, cl=0.95, %d "
      "trials per cell)\n\n", kTrials);
  std::printf("%-10s %-8s %-22s %-22s\n", "samples", "noise",
              "false_convictions", "detections_of_guilty");
  std::printf("%-10s %-8s %-11s %-11s %-11s %-11s\n", "", "", "gated",
              "ungated", "gated", "ungated");

  trust::DecisionConfig gated;
  trust::DecisionConfig ungated;
  ungated.use_confidence_interval = false;

  for (int n : {4, 8, 16, 32}) {
    for (double noise : {0.2, 0.35}) {
      int false_gated = 0, false_ungated = 0;
      int hit_gated = 0, hit_ungated = 0;
      for (int t = 0; t < kTrials; ++t) {
        const auto innocent = innocent_sample(n, noise, rng);
        if (trust::decide(innocent, gated).verdict ==
            trust::Verdict::kIntruder)
          ++false_gated;
        if (trust::decide(innocent, ungated).verdict ==
            trust::Verdict::kIntruder)
          ++false_ungated;

        const auto guilty = guilty_sample(n, noise, rng);
        if (trust::decide(guilty, gated).verdict == trust::Verdict::kIntruder)
          ++hit_gated;
        if (trust::decide(guilty, ungated).verdict ==
            trust::Verdict::kIntruder)
          ++hit_ungated;
      }
      std::printf("%-10d %-8.2f %-11d %-11d %-11d %-11d\n", n, noise,
                  false_gated, false_ungated, hit_gated, hit_ungated);
    }
  }

  std::printf(
      "\nshape: the Eq. 9 gate suppresses premature convictions at small n "
      "(the paper's point)\nat the cost of needing more evidence before "
      "convicting real intruders; the gap closes\nas n grows since eps ~ "
      "1/sqrt(n).\n");
  return 0;
}
