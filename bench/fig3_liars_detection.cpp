// Figure 3 — "Impact of liars on the detection": the Eq. 8 investigation
// result over 25 rounds for increasing liar ratios. The paper's shape: the
// more liars, the slower the descent, but by round 10 the result is below
// -0.4 even at 43.2% liars, and all ratios converge strongly negative as
// liar trust fades to nothing.

#include <cstdio>

#include "scenario/trust_experiment.hpp"
#include "stats/time_series.hpp"

using namespace manet;

int main() {
  stats::TimeSeries series;

  // Liar counts out of the 14 verifiers: ~7%, ~26% (the paper's headline
  // ratio) and ~43%.
  const struct {
    std::size_t liars;
    const char* label;
  } sweeps[] = {{1, "7.1%_liars"}, {4, "28.6%_liars"}, {6, "42.9%_liars"}};

  for (const auto& sweep : sweeps) {
    scenario::TrustExperiment::Config cfg;
    cfg.seed = 3;
    cfg.num_nodes = 16;
    cfg.num_liars = sweep.liars;
    scenario::TrustExperiment exp{cfg};
    exp.setup();
    for (int round = 1; round <= 25; ++round) {
      const auto snap = exp.run_round();
      series.add(sweep.label, round, snap.detect);
    }
  }

  std::printf(
      "Figure 3 — Impact of liars on the detection (Eq. 8 investigation "
      "result per round)\n\n%s\n",
      series.to_table("round").c_str());
  std::printf(
      "paper shape: below -0.4 by round 10 even with ~43%% liars; converges "
      "strongly negative\nfor every ratio as liar trust fades (the paper "
      "reports ~-0.8; here liars bottom out at\ntrust 0 so the result "
      "approaches -1).\n");
  return 0;
}
