// Micro-benchmarks of the observability layer. The load-bearing gauge is
// BM_CounterInc/disabled: with no Context bound, a hot-counter record site
// must cost one predicted-not-taken branch (~sub-ns), because the entire
// simulation stack is instrumented unconditionally and golden-trace runs
// ship with observability off.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/obs.hpp"
#include "sim/time.hpp"

using namespace manet;

// Hot-counter increment. Arg 0: unbound thread (the disabled no-op path).
// Arg 1: bound Context shard (enabled: one TLS load + array add).
static void BM_CounterInc(benchmark::State& state) {
  obs::Context ctx;
  const bool enabled = state.range(0) != 0;
  if (enabled) {
    obs::Scope scope{&ctx};
    for (auto _ : state) {
      obs::hit(obs::Hot::kMediumBroadcasts);
      benchmark::ClobberMemory();
    }
  } else {
    for (auto _ : state) {
      obs::hit(obs::Hot::kMediumBroadcasts);
      benchmark::ClobberMemory();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_CounterInc)->Arg(0)->Arg(1);

// Complete-span record into the flight-recorder ring (tracing on), steady
// state with the ring wrapping — the cost added to a round/window boundary.
static void BM_SpanEnterExit(benchmark::State& state) {
  obs::Context::Config config;
  config.tracing = true;
  config.ring_capacity = 1024;
  obs::Context ctx{config};
  obs::Scope scope{&ctx};
  std::int64_t t = 0;
  for (auto _ : state) {
    const auto begin = sim::Time::from_us(t);
    const auto end = sim::Time::from_us(t + 500);
    obs::span(obs::SpanName::kRound, begin, end);
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExit);

// Span record with no Context bound — the disabled tracing path.
static void BM_SpanDisabled(benchmark::State& state) {
  std::int64_t t = 0;
  for (auto _ : state) {
    obs::span(obs::SpanName::kRound, sim::Time::from_us(t),
              sim::Time::from_us(t + 500));
    benchmark::ClobberMemory();
    t += 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

// Merged snapshot of a populated registry: range(0) named counters plus
// the hot array, folded across one shard and name-sorted — the per-barrier
// harvest cost in the Runner.
static void BM_RegistrySnapshot(benchmark::State& state) {
  obs::Context ctx;
  obs::Scope scope{&ctx};
  const auto names = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < names; ++i) {
    auto c = obs::counter("manet_bench_counter_" + std::to_string(i));
    c.inc(i);
  }
  for (std::size_t h = 0; h < static_cast<std::size_t>(obs::Hot::kCount); ++h)
    obs::hit(static_cast<obs::Hot>(h), 3);
  for (auto _ : state) {
    auto snap = ctx.snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrySnapshot)->Arg(8)->Arg(64);
