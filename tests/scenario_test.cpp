// Tests for the §V experiment harness: the TrustExperiment must reproduce
// the qualitative properties behind the paper's Figures 1-3.

#include <gtest/gtest.h>

#include "scenario/trust_experiment.hpp"

namespace manet::scenario {
namespace {

TrustExperiment::Config base_config(std::uint64_t seed = 3) {
  TrustExperiment::Config c;
  c.seed = seed;
  c.num_nodes = 16;
  c.num_liars = 4;
  c.rounds = 25;
  return c;
}

TEST(TrustExperiment, SetupValidatesConfig) {
  auto c = base_config();
  c.num_nodes = 3;
  EXPECT_THROW(TrustExperiment{c}, std::invalid_argument);
  c = base_config();
  c.num_liars = 15;
  EXPECT_THROW(TrustExperiment{c}, std::invalid_argument);
}

TEST(TrustExperiment, RolesArePartitioned) {
  TrustExperiment exp{base_config()};
  exp.setup();
  EXPECT_EQ(exp.liars().size(), 4u);
  EXPECT_EQ(exp.honest().size(), 10u);  // 16 - investigator - attacker - 4
  for (auto liar : exp.liars()) {
    EXPECT_TRUE(exp.is_liar(liar));
    EXPECT_NE(liar, exp.investigator());
    EXPECT_NE(liar, exp.attacker());
  }
}

TEST(TrustExperiment, Figure1LiarTrustCollapsesHonestGains) {
  TrustExperiment exp{base_config()};
  exp.setup();
  const auto snaps = exp.run_attack_rounds(25);
  ASSERT_EQ(snaps.size(), 25u);
  const auto& last = snaps.back();

  // Every liar ends with very low trust regardless of initial value.
  for (auto liar : exp.liars())
    EXPECT_LT(last.trust.at(liar), 0.1) << liar.to_string();
  // Honest nodes end above every liar.
  double min_honest = 1.0, max_liar = 0.0;
  for (auto h : exp.honest()) min_honest = std::min(min_honest, last.trust.at(h));
  for (auto l : exp.liars()) max_liar = std::max(max_liar, last.trust.at(l));
  EXPECT_GT(min_honest, max_liar);
}

TEST(TrustExperiment, Figure3DetectConvergesNegative) {
  TrustExperiment exp{base_config()};
  exp.setup();
  const auto snaps = exp.run_attack_rounds(25);
  // After 10 rounds the investigation leans clearly negative...
  EXPECT_LT(snaps[9].detect, -0.4);
  // ...and converges strongly by round 25.
  EXPECT_LT(snaps.back().detect, -0.8);
  // The final verdict is "intruder".
  EXPECT_EQ(snaps.back().verdict, trust::Verdict::kIntruder);
}

TEST(TrustExperiment, Figure3HoldsWithManyLiars) {
  auto c = base_config(11);
  c.num_liars = 6;  // 42.9% of the 14 verifiers
  TrustExperiment exp{c};
  exp.setup();
  const auto snaps = exp.run_attack_rounds(25);
  EXPECT_LT(snaps[9].detect, -0.4);
  EXPECT_LT(snaps.back().detect, -0.7);
}

TEST(TrustExperiment, Figure2ForgettingRelaxesTowardDefault) {
  TrustExperiment exp{base_config()};
  exp.setup();
  exp.run_attack_rounds(25);
  exp.cease_attack();
  TrustExperiment::RoundSnapshot last;
  for (int i = 0; i < 25; ++i) last = exp.run_idle_round();

  // Honest nodes (above default after the attack) relax down to ~0.4.
  for (auto h : exp.honest())
    EXPECT_NEAR(last.trust.at(h), 0.4, 0.05) << h.to_string();
  // Former liars recover slowly and stay below the default.
  for (auto l : exp.liars()) {
    EXPECT_LT(last.trust.at(l), 0.38) << l.to_string();
    EXPECT_GT(last.trust.at(l), 0.05) << l.to_string();
  }
}

TEST(TrustExperiment, DeterministicAcrossRuns) {
  auto run = [&] {
    TrustExperiment exp{base_config(42)};
    exp.setup();
    return exp.run_attack_rounds(5);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].detect, b[i].detect);
    EXPECT_EQ(a[i].trust, b[i].trust);
  }
}

TEST(TrustExperiment, LossyRadioStillConverges) {
  auto c = base_config(5);
  c.radio_loss = 0.1;  // the paper's "high level of collisions" environment
  TrustExperiment exp{c};
  exp.setup();
  const auto snaps = exp.run_attack_rounds(25);
  EXPECT_LT(snaps.back().detect, -0.6);
}

}  // namespace
}  // namespace manet::scenario
