// The sharded parallel engine's determinism contract, pinned three ways:
//
// 1. Unit invariants: the spatial ShardMap is a pure function of
//    (positions, cell size, shard count); the ShardQueue pops in global
//    (time, origin node, origin seq) order; misuse (out-of-context draws,
//    unsupported radio configs) fails loudly.
// 2. Invariance: one fixed-seed replication produces *identical* results —
//    detect trajectories, verdicts, conviction rounds, per-node trust,
//    control-message counts — for every (worker threads, shards)
//    combination, including against the committed sharded golden fixture
//    (tests/fixtures/golden_per_round_16node_sharded.csv).
// 3. Behavioural equivalence: across many seeds, the sharded engine reaches
//    the same conviction rounds and verdicts as the sequential engine (the
//    two draw from different RNG stream layouts, so traces are equivalent,
//    not byte-identical — see docs/ARCHITECTURE.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "psim/engine.hpp"
#include "psim/shard_map.hpp"
#include "psim/shard_queue.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/runner.hpp"
#include "scenario/trust_experiment.hpp"

namespace {

using namespace manet;

// ---------------------------------------------------------------- units

TEST(ShardMap, IsBalancedAndDeterministic) {
  std::vector<net::Position> layout;
  sim::Rng rng{7};
  for (int i = 0; i < 103; ++i)
    layout.push_back(net::Position{rng.uniform_real(0, 2000.0),
                                   rng.uniform_real(0, 1500.0)});

  const psim::ShardMap a{layout, 250.0, 4};
  const psim::ShardMap b{layout, 250.0, 4};
  ASSERT_EQ(a.count(), 4u);
  std::size_t total = 0;
  for (unsigned s = 0; s < a.count(); ++s) {
    // Near-equal cut: 103 nodes over 4 shards is 26/26/26/25.
    EXPECT_GE(a.members(s).size(), 25u);
    EXPECT_LE(a.members(s).size(), 26u);
    total += a.members(s).size();
    EXPECT_EQ(a.members(s), b.members(s));
  }
  EXPECT_EQ(total, layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i)
    EXPECT_EQ(a.shard_of_index(i), b.shard_of_index(i));
}

TEST(ShardMap, StripesFollowX) {
  // Nodes on a west-to-east line: stripe s must hold smaller x than s+1.
  std::vector<net::Position> layout;
  for (int i = 0; i < 40; ++i)
    layout.push_back(net::Position{static_cast<double>(i) * 100.0, 0.0});
  const psim::ShardMap map{layout, 250.0, 4};
  for (unsigned s = 0; s + 1 < map.count(); ++s) {
    for (auto lo : map.members(s))
      for (auto hi : map.members(s + 1))
        EXPECT_LT(layout[lo].x, layout[hi].x);
  }
}

TEST(ShardMap, MoreShardsThanNodesCollapses) {
  const std::vector<net::Position> layout{{0, 0}, {1, 1}, {2, 2}};
  const psim::ShardMap map{layout, 250.0, 16};
  EXPECT_EQ(map.count(), 3u);
}

TEST(ShardQueue, PopsInGlobalOriginKeyOrder) {
  psim::ShardQueue q;
  std::vector<int> ran;
  auto ev = [&](int tag) { return [&ran, tag] { ran.push_back(tag); }; };
  // Same time, different origins / sequences, pushed out of order.
  q.push({sim::Time::from_us(10), 5, 2, 0, 1, ev(3)});
  q.push({sim::Time::from_us(10), 2, 9, 0, 2, ev(1)});
  q.push({sim::Time::from_us(5), 9, 1, 0, 3, ev(0)});
  q.push({sim::Time::from_us(10), 5, 1, 0, 4, ev(2)});
  q.push({sim::Time::from_us(11), 1, 1, 0, 5, ev(4)});
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShardQueue, CancelIsLazyAndExact) {
  psim::ShardQueue q;
  int ran = 0;
  q.push({sim::Time::from_us(1), 0, 1, 0, 11, [&] { ++ran; }});
  q.push({sim::Time::from_us(2), 0, 2, 0, 12, [&] { ++ran; }});
  q.cancel(11);
  EXPECT_EQ(q.pending(), 1u);
  ASSERT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), sim::Time::from_us(2));
  q.pop().cb();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------- engine guard rails

TEST(ShardedEngine, RejectsCollisionModel) {
  // The collision model needs cross-shard receiver bookkeeping at transmit
  // time; Network must refuse rather than race.
  scenario::Network::Config nc;
  nc.engine = sim::EngineKind::kSharded;
  nc.radio.collision_window = sim::Duration::from_us(300);
  nc.positions = net::grid_layout(8, 50.0);
  EXPECT_THROW(scenario::Network{std::move(nc)}, std::invalid_argument);
}

TEST(ShardedEngine, RejectsZeroLookahead) {
  scenario::Network::Config nc;
  nc.engine = sim::EngineKind::kSharded;
  nc.radio.base_delay = sim::Duration{};
  nc.positions = net::grid_layout(8, 50.0);
  EXPECT_THROW(scenario::Network{std::move(nc)}, std::invalid_argument);
}

TEST(ShardedEngine, RejectsMobility) {
  scenario::Network::Config nc;
  nc.engine = sim::EngineKind::kSharded;
  nc.positions = net::grid_layout(8, 50.0);
  scenario::Network network{std::move(nc)};
  EXPECT_THROW(
      network.set_mobility(0, std::make_unique<net::RandomWaypoint>(
                                  net::Position{},
                                  net::RandomWaypoint::Config{})),
      std::invalid_argument);
}

TEST(ShardedEngine, RunAsNestsOnTheSameLane) {
  // Two nodes forced onto one lane: the inner run_as must hand the outer
  // node context back, so the outer body can keep drawing and scheduling.
  psim::Engine::Config pc;
  pc.seed = 9;
  pc.threads = 1;
  pc.shards = 1;
  pc.lookahead = sim::Duration::from_us(500);
  psim::Engine engine{pc, net::grid_layout(2, 50.0)};

  bool inner_ran = false;
  engine.run_as(net::NodeId{0}, [&] {
    auto& outer = engine.shard_engine(net::NodeId{0});
    (void)outer.rng().next_u64();
    engine.run_as(net::NodeId{1}, [&] {
      (void)engine.shard_engine(net::NodeId{1}).rng().next_u64();
      inner_ran = true;
    });
    // Back in node 0's context: these must not throw.
    (void)outer.rng().next_u64();
    outer.schedule(sim::Duration::from_ms(1), [] {});
  });
  EXPECT_TRUE(inner_ran);
  engine.run_until(sim::Duration::from_ms(2));
  EXPECT_EQ(engine.stats().executed_events, 1u);
}

// ------------------------------------------------- invariance contract

runtime::ReplicationTask sharded_task(std::uint64_t seed, unsigned threads,
                                      unsigned shards) {
  runtime::ReplicationTask task;
  task.point = runtime::GridPoint{16, 0.29, runtime::MobilityPreset::kStatic};
  task.seed = seed;
  task.rounds = 4;
  task.engine = sim::EngineKind::kSharded;
  task.engine_threads = threads;
  task.shards = shards;
  return task;
}

void expect_identical(const runtime::ReplicationResult& a,
                      const runtime::ReplicationResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.final_verdict, b.final_verdict) << what;
  EXPECT_EQ(a.conviction_round, b.conviction_round) << what;
  EXPECT_EQ(a.control_messages, b.control_messages) << what;
  EXPECT_EQ(a.final_detect, b.final_detect) << what;          // bit-exact
  EXPECT_EQ(a.final_margin, b.final_margin) << what;          // bit-exact
  EXPECT_EQ(a.attacker_trust, b.attacker_trust) << what;      // bit-exact
  EXPECT_EQ(a.mean_liar_trust, b.mean_liar_trust) << what;
  EXPECT_EQ(a.mean_honest_trust, b.mean_honest_trust) << what;
  EXPECT_EQ(a.detect_per_round, b.detect_per_round) << what;  // bit-exact
}

TEST(ShardedEngine, ThreadAndShardCountInvariance) {
  const auto reference = runtime::run_replication(sharded_task(2024, 1, 2));
  // Detection must actually engage for this to pin anything interesting.
  EXPECT_EQ(reference.final_verdict, trust::Verdict::kIntruder);
  const std::pair<unsigned, unsigned> grid[] = {
      {1, 1}, {2, 2}, {4, 2}, {1, 4}, {2, 4}, {4, 4}, {4, 8}};
  for (const auto& [threads, shards] : grid) {
    const auto result =
        runtime::run_replication(sharded_task(2024, threads, shards));
    expect_identical(reference, result,
                     "threads=" + std::to_string(threads) +
                         " shards=" + std::to_string(shards));
  }
}

// --------------------------------------------- sharded golden fixture

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The exact spec the sharded fixture was recorded with. Keep in sync with
/// tests/fixtures/README.md.
runtime::ExperimentSpec golden_sharded_spec() {
  runtime::ExperimentSpec spec;
  spec.seeds = runtime::ExperimentSpec::seed_range(2024, 2);
  spec.node_counts = {16};
  spec.attacker_fractions = {0.0, 0.29};
  spec.mobility_presets = {runtime::MobilityPreset::kStatic,
                           runtime::MobilityPreset::kLowChurn};
  spec.rounds = 5;
  spec.engine = sim::EngineKind::kSharded;
  spec.shards = 4;
  return spec;
}

std::string sharded_fixture_path() {
  return std::string{MANET_FIXTURE_DIR} +
         "/golden_per_round_16node_sharded.csv";
}

std::string run_sharded_spec_per_round(unsigned threads, unsigned shards) {
  const auto spec = golden_sharded_spec();
  std::vector<runtime::ReplicationResult> results;
  for (auto task : spec.expand()) {
    task.engine_threads = threads;
    task.shards = shards;
    results.push_back(
        runtime::run_replication(task, spec.trust_params, spec.decision));
  }
  const runtime::Aggregator aggregator{0.95};
  return runtime::Aggregator::per_round_csv(aggregator.per_round(results));
}

// The hard determinism contract of the sharded engine, pinned against a
// committed artifact rather than a sibling run: the per-round CSV is
// byte-identical for every (worker threads, shards) combination.
TEST(ShardedGoldenTrace, PerRoundCsvMatchesFixtureForAnyThreadAndShardCount) {
  const auto expected = read_file(sharded_fixture_path());
  ASSERT_FALSE(expected.empty());
  const std::pair<unsigned, unsigned> grid[] = {
      {1, 4}, {4, 4}, {2, 2}, {1, 1}};
  for (const auto& [threads, shards] : grid) {
    EXPECT_EQ(run_sharded_spec_per_round(threads, shards), expected)
        << "sharded trace diverged from the committed fixture at threads="
        << threads << " shards=" << shards
        << "; if this change is intentionally trace-altering, regenerate "
           "per tests/fixtures/README.md";
  }
}

// The Runner's outer (replication-level) parallelism composes with the
// engine's inner parallelism without moving a byte either.
TEST(ShardedGoldenTrace, RunnerThreadCountDoesNotChangeTheTrace) {
  const auto expected = read_file(sharded_fixture_path());
  for (const unsigned threads : {1u, 4u}) {
    runtime::Runner runner{runtime::Runner::Config{threads}};
    const auto results = runner.run(golden_sharded_spec());
    const runtime::Aggregator aggregator{0.95};
    EXPECT_EQ(
        runtime::Aggregator::per_round_csv(aggregator.per_round(results)),
        expected)
        << "runner threads=" << threads;
  }
}

// ------------------------------------- sequential/sharded equivalence

// Across 50 seeds of the paper's §V scenario, the sharded engine must reach
// the same detection verdicts in the same conviction rounds as the
// sequential engine. The engines lay out RNG streams differently (one root
// stream vs per-node streams), so jitter timings — and under radio loss,
// loss patterns — differ; with a lossless preset the investigation protocol
// sees identical answers and must land identical decisions.
TEST(ShardedEngine, BehaviouralEquivalenceWithSequentialOver50Seeds) {
  const auto seeds = runtime::ExperimentSpec::seed_range(97, 50);
  int convictions = 0;
  for (const auto seed : seeds) {
    runtime::ReplicationTask task;
    task.point =
        runtime::GridPoint{16, 0.29, runtime::MobilityPreset::kStatic};
    task.seed = seed;
    task.rounds = 4;
    const auto sequential = runtime::run_replication(task);
    task.engine = sim::EngineKind::kSharded;
    task.engine_threads = 2;
    task.shards = 3;
    const auto sharded = runtime::run_replication(task);
    EXPECT_EQ(sequential.final_verdict, sharded.final_verdict)
        << "seed " << seed;
    EXPECT_EQ(sequential.conviction_round, sharded.conviction_round)
        << "seed " << seed;
    EXPECT_EQ(sequential.detect_per_round.size(),
              sharded.detect_per_round.size())
        << "seed " << seed;
    if (sharded.final_verdict == trust::Verdict::kIntruder) ++convictions;
  }
  // The scenario is the paper's detectable regime: equivalence over a pile
  // of never-convicting runs would pin nothing.
  EXPECT_GE(convictions, 45);
}

// Same output schema on both engines: downstream tooling cannot tell the
// CSVs apart structurally.
TEST(ShardedEngine, CsvSchemaMatchesSequential) {
  runtime::ExperimentSpec spec;
  spec.seeds = {11};
  spec.attacker_fractions = {0.29};
  spec.rounds = 2;
  runtime::Runner runner{runtime::Runner::Config{1}};
  const runtime::Aggregator aggregator{0.95};

  const auto seq_results = runner.run(spec);
  spec.engine = sim::EngineKind::kSharded;
  spec.shards = 2;
  const auto sh_results = runner.run(spec);

  auto header = [](const std::string& csv) {
    return csv.substr(0, csv.find('\n'));
  };
  auto lines = [](const std::string& csv) {
    return std::count(csv.begin(), csv.end(), '\n');
  };
  const auto seq_rows = runtime::Aggregator::to_csv(
      aggregator.aggregate(seq_results));
  const auto sh_rows = runtime::Aggregator::to_csv(
      aggregator.aggregate(sh_results));
  EXPECT_EQ(header(seq_rows), header(sh_rows));
  EXPECT_EQ(lines(seq_rows), lines(sh_rows));

  const auto seq_rounds = runtime::Aggregator::per_round_csv(
      aggregator.per_round(seq_results));
  const auto sh_rounds = runtime::Aggregator::per_round_csv(
      aggregator.per_round(sh_results));
  EXPECT_EQ(header(seq_rounds), header(sh_rounds));
  EXPECT_EQ(lines(seq_rounds), lines(sh_rounds));
}

}  // namespace
