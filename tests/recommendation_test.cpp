// Tests for the recommendation exchange — the paper's trust propagation
// (Eqs. 6-7) exercised over the real data plane: codec round-trips, the
// request/reply protocol, Eq. 7 merging with entropy-based recommendation
// weights, and bootstrap semantics.

#include <gtest/gtest.h>

#include "core/recommendation.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

namespace manet::core {
namespace {

using scenario::Network;

TEST(RecommendationCodec, RequestRoundTrip) {
  const std::vector<net::NodeId> subjects{net::NodeId{3}, net::NodeId{7}};
  const auto bytes = encode_recommendation_request(42, subjects);
  EXPECT_TRUE(is_recommendation_request(bytes));
  std::uint32_t id = 0;
  const auto decoded = decode_recommendation_request(bytes, id);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(*decoded, subjects);
}

TEST(RecommendationCodec, ReplyRoundTrip) {
  RecommendationReply reply;
  reply.request_id = 7;
  reply.recommender = net::NodeId{2};
  reply.trusts = {{net::NodeId{3}, 0.75}, {net::NodeId{9}, 0.0}};
  const auto decoded = decode_recommendation_reply(
      encode_recommendation_reply(reply));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->recommender, net::NodeId{2});
  ASSERT_EQ(decoded->trusts.size(), 2u);
  EXPECT_NEAR(decoded->trusts[0].second, 0.75, 1.0 / 255.0);
  EXPECT_NEAR(decoded->trusts[1].second, 0.0, 1.0 / 255.0);
}

TEST(RecommendationCodec, MalformedRejected) {
  std::uint32_t id = 0;
  EXPECT_FALSE(decode_recommendation_request({}, id).has_value());
  EXPECT_FALSE(decode_recommendation_reply({}).has_value());
  auto bytes = encode_recommendation_request(1, {net::NodeId{1}});
  bytes.pop_back();
  EXPECT_FALSE(decode_recommendation_request(bytes, id).has_value());
}

Network::Config cluster(std::size_t n) {
  Network::Config c;
  c.seed = 9;
  c.radio.range_m = 400.0;
  c.positions = net::grid_layout(n, 50.0);
  return c;
}

TEST(RecommendationExchange, BootstrapMergesViaEquation7) {
  Network net{cluster(5)};
  auto& d0 = net.add_detector(0);
  auto& d1 = net.add_detector(1);
  auto& d2 = net.add_detector(2);
  auto& ex0 = net.add_recommendations(0);
  net.add_recommendations(1);
  net.add_recommendations(2);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  // Recommenders hold strong direct opinions about the unknown subject n4.
  const auto subject = Network::id_of(4);
  d1.trust_store().set_trust(subject, 0.9);
  d2.trust_store().set_trust(subject, 0.8);

  // The investigator has a long positive history with both recommenders,
  // so its entropy-based R is high.
  for (int i = 0; i < 20; ++i) {
    d0.trust_store().record_interaction(Network::id_of(1), true);
    d0.trust_store().record_interaction(Network::id_of(2), true);
  }

  std::map<net::NodeId, double> merged;
  ex0.bootstrap({subject}, {Network::id_of(1), Network::id_of(2)},
                sim::Duration::from_seconds(3.0),
                [&](const std::map<net::NodeId, double>& m) { merged = m; });
  net.run_for(sim::Duration::from_seconds(5.0));

  ASSERT_TRUE(merged.contains(subject));
  // Both recommenders vouch above the default -> merged lands above it,
  // and the previously-unknown subject is now seeded in the store.
  EXPECT_GT(merged[subject], d0.trust_store().params().default_trust);
  EXPECT_TRUE(d0.trust_store().known(subject));
  EXPECT_NEAR(d0.trust_store().trust(subject), merged[subject], 1e-9);
}

TEST(RecommendationExchange, UntrustedRecommendersCarryNoWeight) {
  Network net{cluster(4)};
  auto& d0 = net.add_detector(0);
  auto& d1 = net.add_detector(1);
  auto& ex0 = net.add_recommendations(0);
  net.add_recommendations(1);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  const auto subject = Network::id_of(3);
  d1.trust_store().set_trust(subject, 1.0);
  // The investigator's history with the recommender is consistently BAD:
  // entropy-based R is negative, so Eq. 7's denominator is non-positive and
  // the recommendation must be discarded (no usable information).
  for (int i = 0; i < 20; ++i)
    d0.trust_store().record_interaction(Network::id_of(1), false);

  std::map<net::NodeId, double> merged;
  ex0.bootstrap({subject}, {Network::id_of(1)},
                sim::Duration::from_seconds(3.0),
                [&](const std::map<net::NodeId, double>& m) { merged = m; });
  net.run_for(sim::Duration::from_seconds(5.0));

  ASSERT_TRUE(merged.contains(subject));
  EXPECT_NEAR(merged[subject], d0.trust_store().params().default_trust, 1e-9);
}

TEST(RecommendationExchange, BootstrapDoesNotOverwriteDirectExperience) {
  Network net{cluster(4)};
  auto& d0 = net.add_detector(0);
  auto& d1 = net.add_detector(1);
  auto& ex0 = net.add_recommendations(0);
  net.add_recommendations(1);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  const auto subject = Network::id_of(3);
  d0.trust_store().set_trust(subject, 0.05);  // first-hand: distrusted
  d1.trust_store().set_trust(subject, 0.95);  // recommender disagrees
  for (int i = 0; i < 20; ++i)
    d0.trust_store().record_interaction(Network::id_of(1), true);

  ex0.bootstrap({subject}, {Network::id_of(1)},
                sim::Duration::from_seconds(3.0), {});
  net.run_for(sim::Duration::from_seconds(5.0));

  // Property 5: first-hand knowledge is privileged — second-hand
  // recommendations never clobber existing direct state.
  EXPECT_NEAR(d0.trust_store().trust(subject), 0.05, 1e-9);
}

TEST(RecommendationExchange, TimeoutWithNoRepliesYieldsNothing) {
  Network net{cluster(3)};
  auto& d0 = net.add_detector(0);
  (void)d0;
  auto& ex0 = net.add_recommendations(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(10.0));

  // Node 1 has no detector/exchange: requests land in its investigation
  // manager's fallback (none) and vanish.
  bool called = false;
  std::map<net::NodeId, double> merged;
  ex0.bootstrap({Network::id_of(2)}, {Network::id_of(1)},
                sim::Duration::from_seconds(2.0),
                [&](const std::map<net::NodeId, double>& m) {
                  called = true;
                  merged = m;
                });
  net.run_for(sim::Duration::from_seconds(4.0));
  EXPECT_TRUE(called);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(ex0.outstanding(), 0u);
}

}  // namespace
}  // namespace manet::core
