// Integration tests for the OLSR agent: link sensing through real HELLO
// exchange, MPR selection/flooding, TC-driven routing convergence, data
// plane, audit-log contents.

#include <gtest/gtest.h>

#include "logging/format.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

namespace manet::olsr {
namespace {

using scenario::Network;

Network::Config chain_config(std::size_t n, std::uint64_t seed = 1) {
  Network::Config c;
  c.seed = seed;
  c.radio.range_m = 120.0;
  c.positions = net::chain_layout(n, 100.0);
  return c;
}

Network::Config grid_config(std::size_t n, std::uint64_t seed = 1) {
  Network::Config c;
  c.seed = seed;
  c.radio.range_m = 160.0;
  c.positions = net::grid_layout(n, 100.0);
  return c;
}

TEST(Agent, TwoNodesBecomeSymmetric) {
  Network net{chain_config(2)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(6.0));
  EXPECT_TRUE(net.agent(0).is_symmetric_neighbor(Network::id_of(1)));
  EXPECT_TRUE(net.agent(1).is_symmetric_neighbor(Network::id_of(0)));
}

TEST(Agent, OutOfRangeNodesNeverLink) {
  Network::Config c;
  c.radio.range_m = 50.0;
  c.positions = {{0, 0}, {500, 0}};
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_FALSE(net.agent(0).is_symmetric_neighbor(Network::id_of(1)));
}

TEST(Agent, ChainConvergesToMultiHopRoutes) {
  Network net{chain_config(5)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  ASSERT_TRUE(net.converged());
  const auto route = net.agent(0).routes().route_to(Network::id_of(4));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->distance, 4);
  EXPECT_EQ(route->next_hop, Network::id_of(1));
}

TEST(Agent, ChainMiddleNodesAreMprs) {
  Network net{chain_config(3)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  // n1 must be the MPR of both ends (sole provider of the other end).
  EXPECT_TRUE(net.agent(0).is_mpr(Network::id_of(1)));
  EXPECT_TRUE(net.agent(2).is_mpr(Network::id_of(1)));
  // ...and n1 must know it was selected.
  const auto selectors = net.agent(1).mpr_selectors();
  EXPECT_EQ(selectors.size(), 2u);
}

TEST(Agent, MprCoversAllTwoHops) {
  Network net{grid_config(9)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  for (std::size_t i = 0; i < 9; ++i) {
    const auto& agent = net.agent(i);
    const auto strict = agent.neighbors().strict_two_hops(agent.id());
    // Every strict 2-hop node must be reachable through some selected MPR.
    std::set<NodeId> covered;
    for (auto mpr : agent.mpr_set()) {
      const auto via = agent.neighbors().two_hops_via(mpr);
      covered.insert(via.begin(), via.end());
    }
    for (auto th : strict)
      EXPECT_TRUE(covered.contains(th))
          << "node " << i << " 2-hop " << th.to_string() << " uncovered";
  }
}

TEST(Agent, TcFloodingBuildsTopology) {
  Network net{chain_config(4)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  // n0 must have learned, via flooded TCs, an edge involving n2<->n3.
  const auto tuples = net.agent(0).topology().tuples();
  const bool knows_far_edge =
      std::any_of(tuples.begin(), tuples.end(), [](const TopologyTuple& t) {
        return (t.last_hop == Network::id_of(2) &&
                t.dest == Network::id_of(3)) ||
               (t.last_hop == Network::id_of(3) && t.dest == Network::id_of(2));
      });
  EXPECT_TRUE(knows_far_edge);
}

TEST(Agent, LinkLossDetectedAfterNodeDies) {
  Network net{chain_config(3)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(15.0));
  ASSERT_TRUE(net.agent(0).is_symmetric_neighbor(Network::id_of(1)));
  net.agent(1).stop();
  // Link times out after NEIGHB_HOLD (6 s); stale TC tuples must not keep
  // the route alive through a dead first hop.
  net.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_FALSE(net.agent(0).is_symmetric_neighbor(Network::id_of(1)));
  EXPECT_FALSE(net.agent(0).routes().route_to(Network::id_of(2)).has_value());
}

TEST(Agent, DataPlaneDeliversAcrossChain) {
  Network net{chain_config(4)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  ASSERT_TRUE(net.converged());

  NodeId got_source{};
  std::vector<std::uint8_t> got_payload;
  net.agent(3).set_data_handler([&](const DataMessage& m) {
    got_source = m.source;
    got_payload = m.payload;
    // The relay trace names the intermediate hops in order.
    EXPECT_EQ(m.trace, (std::vector<NodeId>{Network::id_of(1), Network::id_of(2)}));
  });
  const auto status =
      net.agent(0).send_data(Network::id_of(3), 7, {1, 2, 3});
  EXPECT_EQ(status, Agent::SendStatus::kSent);
  net.run_for(sim::Duration::from_seconds(2.0));
  EXPECT_EQ(got_source, Network::id_of(0));
  EXPECT_EQ(got_payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GE(net.agent(1).stats().data_relayed, 1u);
}

TEST(Agent, DataAvoidSetForcesDetour) {
  // 2x2 grid fully meshed except the diagonal: avoid the direct neighbor.
  Network net{grid_config(4)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  ASSERT_TRUE(net.converged());

  bool delivered = false;
  net.agent(3).set_data_handler(
      [&](const DataMessage&) { delivered = true; });
  // Path n0->n3 avoiding n1 must go through n2.
  const auto status = net.agent(0).send_data(Network::id_of(3), 7, {9},
                                             {Network::id_of(1)});
  EXPECT_EQ(status, Agent::SendStatus::kSent);
  net.run_for(sim::Duration::from_seconds(2.0));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.agent(1).stats().data_relayed, 0u);
}

TEST(Agent, NoRouteReportedWhenAvoidDisconnects) {
  Network net{chain_config(3)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  const auto status = net.agent(0).send_data(Network::id_of(2), 7, {1},
                                             {Network::id_of(1)});
  EXPECT_EQ(status, Agent::SendStatus::kNoRoute);
}

TEST(Agent, AuditLogContainsProtocolEvents) {
  Network net{chain_config(3)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  const auto& log = net.agent(0).log();
  EXPECT_FALSE(log.records_with_event("hello_sent").empty());
  EXPECT_FALSE(log.records_with_event("hello_recv").empty());
  EXPECT_FALSE(log.records_with_event("link_sym").empty());
  EXPECT_FALSE(log.records_with_event("mpr_changed").empty());
  EXPECT_FALSE(log.records_with_event("tc_recv").empty());
  EXPECT_FALSE(log.records_with_event("routes_changed").empty());
}

TEST(Agent, AuditLogTextRoundTrips) {
  Network net{chain_config(3)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  const auto text = net.agent(1).log().text_since(sim::Time{});
  const auto parsed = logging::parse_log(text);
  EXPECT_EQ(parsed.size(), net.agent(1).log().size());
  for (const auto& rec : parsed) EXPECT_EQ(rec.node, Network::id_of(1));
}

TEST(Agent, OwnForwardHeardLogged) {
  // In a 4-chain, n1 and n2 both originate TCs (each has MPR selectors) and
  // each must retransmit the other's: n1 overhears n2 forwarding its TC.
  Network net{chain_config(4)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(40.0));
  const auto heard = net.agent(1).log().records_with_event("own_fwd_heard");
  ASSERT_FALSE(heard.empty());
  EXPECT_EQ(heard.front().node_field("by"), Network::id_of(2));
}

TEST(Agent, MidMessagesAdvertiseExtraInterfaces) {
  Network::Config c = chain_config(2);
  c.agent.extra_interfaces = {NodeId{200}};
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  EXPECT_EQ(net.agent(1).mid_set().main_address_of(NodeId{200}),
            Network::id_of(0));
}

TEST(Agent, HnaMessagesPropagateGateways) {
  Network::Config c = chain_config(3);
  c.agent.hna_networks = {{0x0A000000u, 8}};
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  // Every node gateways the same network; n2 must have learned n0's HNA
  // through flooding (2 hops away).
  const auto gws = net.agent(2).hna_set().gateways_for(0x0A000000u, 8);
  EXPECT_NE(std::find(gws.begin(), gws.end(), Network::id_of(0)), gws.end());
}

TEST(Agent, WillNeverNodeNotSelectedAsMpr) {
  Network::Config c = chain_config(3);
  Network net{c};
  // Make the middle node unwilling AFTER construction is impossible (config
  // is per-network here), so instead verify the config plumbing per-agent:
  // a separate network where all nodes are WILL_NEVER must select no MPRs.
  Network::Config c2 = chain_config(3);
  c2.agent.willingness = Willingness::kNever;
  Network net2{c2};
  net2.start_all();
  net2.run_for(sim::Duration::from_seconds(30.0));
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(net2.agent(i).mpr_set().empty());
}

TEST(Agent, StatsCountTraffic) {
  Network net{chain_config(4)};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  const auto& s = net.agent(2).stats();
  EXPECT_GT(s.hello_sent, 10u);
  EXPECT_GT(s.hello_recv, 20u);     // two neighbors
  EXPECT_GT(s.msgs_forwarded, 0u);  // n2 floods n1's TCs toward n3
  EXPECT_EQ(s.parse_errors, 0u);
}

// Property sweep: convergence holds across seeds and packet-loss levels.
struct ConvergenceParam {
  std::uint64_t seed;
  double loss;
};

class AgentConvergence : public ::testing::TestWithParam<ConvergenceParam> {};

TEST_P(AgentConvergence, GridConverges) {
  Network::Config c = grid_config(9, GetParam().seed);
  c.radio.loss_probability = GetParam().loss;
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(60.0));
  EXPECT_TRUE(net.converged())
      << "seed=" << GetParam().seed << " loss=" << GetParam().loss;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoss, AgentConvergence,
    ::testing::Values(ConvergenceParam{1, 0.0}, ConvergenceParam{2, 0.0},
                      ConvergenceParam{3, 0.05}, ConvergenceParam{4, 0.10},
                      ConvergenceParam{5, 0.20}));

}  // namespace
}  // namespace manet::olsr
