// Randomized equivalence of the spatial-indexed Medium against a verbatim
// port of the seed implementation (std::map storage, O(N) full scan per
// transmit, per-receiver payload copy). For 50 seeds x random layouts the
// two must produce identical neighbors_in_range sets and an identical
// delivery/loss/collision trace — same receivers, same arrival times, same
// bytes — including under mobility (set_position), radio down/up toggles,
// loss, jitter and collisions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/medium.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace manet;
using net::Bytes;
using net::NodeId;
using net::Position;

/// One observed delivery, comparable across implementations.
struct Delivery {
  std::int64_t at_us;
  std::uint32_t receiver;
  std::uint32_t transmitter;
  Bytes payload;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// The seed Medium, kept as the brute-force reference: every transmit scans
/// all hosts in ascending NodeId order (std::map) and deep-copies the
/// payload per receiver. Draws from the same Simulator Rng in the same
/// order as the indexed implementation must.
class BruteForceMedium {
 public:
  using ReceiveHandler = std::function<void(NodeId transmitter, const Bytes&)>;

  BruteForceMedium(sim::Simulator& sim, net::RadioConfig config)
      : sim_{sim}, config_{config} {}

  void attach(NodeId id, Position pos, ReceiveHandler handler) {
    hosts_.emplace(id, Host{pos, std::move(handler), true, {}});
  }

  void set_position(NodeId id, Position pos) { hosts_.at(id).pos = pos; }
  void set_up(NodeId id, bool up) { hosts_.at(id).up = up; }

  void broadcast(NodeId sender, Bytes payload) {
    const Host& tx = hosts_.at(sender);
    if (!tx.up) return;
    ++stats_.frames_sent;
    stats_.bytes_sent += payload.size();
    for (const auto& [id, rx] : hosts_) {
      if (id == sender || !rx.up) continue;
      if (net::distance(tx.pos, rx.pos) > config_.range_m) continue;
      deliver_to(sender, id, payload);
    }
  }

  std::vector<NodeId> neighbors_in_range(NodeId id) const {
    const Host& me = hosts_.at(id);
    std::vector<NodeId> out;
    for (const auto& [other, h] : hosts_) {
      if (other == id || !h.up) continue;
      if (net::distance(me.pos, h.pos) <= config_.range_m) out.push_back(other);
    }
    return out;
  }

  const net::MediumStats& stats() const { return stats_; }

 private:
  struct Host {
    Position pos;
    ReceiveHandler handler;
    bool up = true;
    std::vector<std::pair<sim::Time, std::shared_ptr<bool>>> arrivals;
  };

  void deliver_to(NodeId sender, NodeId receiver, const Bytes& payload) {
    if (sim_.rng().bernoulli(config_.loss_probability)) {
      ++stats_.losses;
      return;
    }
    sim::Duration delay = config_.base_delay;
    if (config_.delay_jitter > sim::Duration{}) {
      delay += sim::Duration::from_us(
          sim_.rng().uniform_int(0, config_.delay_jitter.us()));
    }
    const sim::Time arrival = sim_.now() + delay;

    Host& rx = hosts_.at(receiver);
    auto corrupted = std::make_shared<bool>(false);
    if (config_.collision_window > sim::Duration{}) {
      std::erase_if(rx.arrivals, [&](const auto& a) {
        return a.first + config_.collision_window < sim_.now();
      });
      for (auto& [at, flag] : rx.arrivals) {
        const auto gap = arrival >= at ? arrival - at : at - arrival;
        if (gap < config_.collision_window) {
          *flag = true;
          *corrupted = true;
        }
      }
      rx.arrivals.emplace_back(arrival, corrupted);
    }

    Bytes copy = payload;  // the seed's per-receiver deep copy
    sim_.schedule_at(arrival, [this, sender, receiver, corrupted,
                               copy = std::move(copy), arrival] {
      auto it = hosts_.find(receiver);
      if (it == hosts_.end() || !it->second.up) return;
      std::erase_if(it->second.arrivals,
                    [&](const auto& a) { return a.first <= arrival; });
      if (*corrupted) {
        ++stats_.collisions;
        return;
      }
      ++stats_.deliveries;
      if (it->second.handler) it->second.handler(sender, copy);
    });
  }

  sim::Simulator& sim_;
  net::RadioConfig config_;
  std::map<NodeId, Host> hosts_;
  net::MediumStats stats_;
};

std::vector<NodeId> sorted_ids(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Drives the indexed Medium and the brute-force reference through the same
/// randomized script (broadcasts, node moves, radio toggles) and compares
/// neighbor sets, stats and the full delivery trace.
void run_equivalence_round(std::uint64_t seed) {
  sim::Rng script{seed * 7919 + 17};

  const auto n = static_cast<std::size_t>(script.uniform_int(8, 96));
  const double width = 1200.0;
  const double height = 900.0;
  net::RadioConfig config;
  config.range_m = 250.0;
  config.loss_probability = 0.15 * static_cast<double>(seed % 3);
  config.delay_jitter =
      seed % 2 == 0 ? sim::Duration::from_us(500) : sim::Duration{};
  config.collision_window =
      seed % 4 == 0 ? sim::Duration::from_us(300) : sim::Duration{};

  std::vector<Position> layout;
  layout.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    layout.push_back(Position{script.uniform_real(0.0, width),
                              script.uniform_real(0.0, height)});

  sim::Simulator sim_a{seed + 1};
  sim::Simulator sim_b{seed + 1};
  net::Medium indexed{sim_a, config};
  BruteForceMedium brute{sim_b, config};

  std::vector<Delivery> trace_a;
  std::vector<Delivery> trace_b;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    indexed.attach(id, layout[i], [&trace_a, id, &sim_a](const net::Packet& p) {
      trace_a.push_back(Delivery{sim_a.now().us(), id.value(),
                                 p.transmitter.value(), p.payload()});
    });
    brute.attach(id, layout[i],
                 [&trace_b, id, &sim_b](NodeId from, const Bytes& payload) {
                   trace_b.push_back(Delivery{sim_b.now().us(), id.value(),
                                              from.value(), payload});
                 });
  }

  // Script: interleaved broadcasts, moves and radio toggles at increasing
  // times, mirrored into both simulators.
  sim::Time t;
  for (int step = 0; step < 60; ++step) {
    t += sim::Duration::from_us(script.uniform_int(0, 2000));
    const auto node =
        static_cast<std::uint32_t>(script.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const NodeId id{node};
    const auto action = script.uniform_int(0, 9);
    if (action < 6) {
      Bytes payload(static_cast<std::size_t>(script.uniform_int(1, 80)));
      for (auto& b : payload)
        b = static_cast<std::uint8_t>(script.uniform_int(0, 255));
      sim_a.schedule_at(t, [&indexed, id, payload] {
        indexed.broadcast(id, payload);
      });
      sim_b.schedule_at(t, [&brute, id, payload] {
        brute.broadcast(id, payload);
      });
    } else if (action < 8) {
      const Position pos{script.uniform_real(0.0, width),
                         script.uniform_real(0.0, height)};
      sim_a.schedule_at(t, [&indexed, id, pos] {
        indexed.set_position(id, pos);
      });
      sim_b.schedule_at(t, [&brute, id, pos] { brute.set_position(id, pos); });
    } else {
      const bool up = script.bernoulli(0.7);
      sim_a.schedule_at(t, [&indexed, id, up] { indexed.set_up(id, up); });
      sim_b.schedule_at(t, [&brute, id, up] { brute.set_up(id, up); });
    }
  }

  sim_a.run_all();
  sim_b.run_all();

  ASSERT_EQ(trace_a.size(), trace_b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < trace_a.size(); ++i)
    ASSERT_EQ(trace_a[i], trace_b[i]) << "seed " << seed << " delivery " << i;

  EXPECT_EQ(indexed.stats().frames_sent, brute.stats().frames_sent);
  EXPECT_EQ(indexed.stats().deliveries, brute.stats().deliveries);
  EXPECT_EQ(indexed.stats().losses, brute.stats().losses);
  EXPECT_EQ(indexed.stats().collisions, brute.stats().collisions);
  EXPECT_EQ(indexed.stats().bytes_sent, brute.stats().bytes_sent);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(indexed.neighbors_in_range(id),
              sorted_ids(brute.neighbors_in_range(id)))
        << "seed " << seed << " node " << i;
  }
}

class MediumIndexEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MediumIndexEquivalence, MatchesBruteForceReference) {
  run_equivalence_round(GetParam());
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, MediumIndexEquivalence,
                         ::testing::Range<std::uint64_t>(0, 50));

// Detach compacts the dense host storage (swap with the last slot); the
// grid index must keep tracking the moved host.
TEST(MediumIndex, DetachKeepsIndexConsistent) {
  sim::Simulator sim{3};
  net::RadioConfig config;
  config.range_m = 100.0;
  config.delay_jitter = sim::Duration{};
  net::Medium m{sim, config};

  int received = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    m.attach(NodeId{i}, Position{static_cast<double>(i) * 50.0, 0.0},
             [&received](const net::Packet&) { ++received; });
  }
  m.detach(NodeId{2});
  EXPECT_FALSE(m.attached(NodeId{2}));
  EXPECT_EQ(m.neighbors_in_range(NodeId{1}),
            (std::vector<NodeId>{NodeId{0}, NodeId{3}}));

  // The swapped slot (node 4) must still receive and still move correctly.
  m.broadcast(NodeId{3}, Bytes{1});  // reaches nodes 1 (100 m) and 4 (50 m)
  sim.run_all();
  EXPECT_EQ(received, 2);

  m.set_position(NodeId{4}, Position{1000.0, 1000.0});
  EXPECT_TRUE(m.neighbors_in_range(NodeId{4}).empty());
  m.set_position(NodeId{4}, Position{150.0, 0.0});
  EXPECT_EQ(m.neighbors_in_range(NodeId{4}),
            (std::vector<NodeId>{NodeId{1}, NodeId{3}}));
}

// The topology helpers share the grid index; their results must match the
// quadratic definitions exactly.
TEST(MediumIndex, AdjacencyMatchesPairScan) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Rng rng{seed};
    std::vector<Position> pts;
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 200));
    for (std::size_t i = 0; i < n; ++i)
      pts.push_back(Position{rng.uniform_real(0.0, 2000.0),
                             rng.uniform_real(0.0, 2000.0)});
    const double range = rng.uniform_real(50.0, 400.0);

    std::vector<std::vector<std::size_t>> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (net::distance(pts[i], pts[j]) <= range) {
          expected[i].push_back(j);
          expected[j].push_back(i);
        }
      }
    }
    EXPECT_EQ(net::adjacency(pts, range), expected) << "seed " << seed;
  }
}

TEST(MediumIndex, RandomLayoutHonorsMinSeparation) {
  sim::Rng rng{11};
  const auto pts = net::random_layout(200, 2000.0, 2000.0, 60.0, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      ASSERT_GE(net::distance(pts[i], pts[j]), 60.0);
}

}  // namespace
