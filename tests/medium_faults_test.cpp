// Radio-fault semantics of the Medium: the drop-on-arrival rule for down
// hosts (up/down is evaluated when a frame lands, never retroactively
// against frames already in flight), brown-out loss overrides (max over
// config, sender and receiver), netsplit partitions (decided at transmit
// time, before any RNG draw), and the opt-in in-flight registry the
// checkpoint machinery reads. Pins the contract documented in
// ARCHITECTURE.md, "Fault model & checkpoint format".

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"

namespace manet::net {
namespace {

class MediumFaultsTest : public ::testing::Test {
 protected:
  MediumFaultsTest() : sim_{7}, medium_{sim_, radio()} {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const NodeId id{i};
      medium_.attach(id, Position{static_cast<double>(i) * 50.0, 0.0},
                     [this, id](const Packet& p) {
                       received_[id].push_back(p.transmitter);
                     });
    }
  }

  static RadioConfig radio() {
    RadioConfig rc;
    rc.range_m = 250.0;
    rc.loss_probability = 0.0;  // deterministic deliveries by default
    return rc;
  }

  void run_ms(std::int64_t ms) {
    sim_.run_until(sim_.now() + sim::Duration::from_ms(ms));
  }

  std::size_t deliveries_to(NodeId id) const {
    const auto it = received_.find(id);
    return it == received_.end() ? 0 : it->second.size();
  }

  sim::Simulator sim_;
  Medium medium_;
  std::map<NodeId, std::vector<NodeId>> received_;
};

// --- drop-on-arrival -----------------------------------------------------

TEST_F(MediumFaultsTest, DownHostNeitherSendsNorReceives) {
  medium_.set_up(NodeId{1}, false);
  EXPECT_FALSE(medium_.is_up(NodeId{1}));

  medium_.broadcast(NodeId{0}, Bytes{1, 2, 3});
  medium_.broadcast(NodeId{1}, Bytes{4, 5});  // down sender: swallowed
  run_ms(10);

  EXPECT_EQ(deliveries_to(NodeId{1}), 0u);
  EXPECT_EQ(deliveries_to(NodeId{2}), 1u);  // only node 0's frame
  EXPECT_EQ(deliveries_to(NodeId{0}), 0u);
}

TEST_F(MediumFaultsTest, InFlightFrameTowardHostThatWentDownIsDropped) {
  // The frame is transmitted (loss/jitter draws consumed) while node 1 is
  // up; node 1 goes down before the ~1 ms arrival. Drop-on-arrival: the
  // frame is discarded and counted, not delivered retroactively.
  medium_.broadcast(NodeId{0}, Bytes{9});
  medium_.set_up(NodeId{1}, false);
  run_ms(10);

  EXPECT_EQ(deliveries_to(NodeId{1}), 0u);
  EXPECT_EQ(deliveries_to(NodeId{2}), 1u);
  EXPECT_EQ(medium_.stats().dropped_down, 1u);
}

TEST_F(MediumFaultsTest, InFlightFrameDeliveredWhenHostIsBackUpBeforeArrival) {
  // Down-up flap entirely within the frame's flight time: the host is up
  // when the frame lands, so it is delivered normally.
  medium_.broadcast(NodeId{0}, Bytes{9});
  medium_.set_up(NodeId{1}, false);
  medium_.set_up(NodeId{1}, true);
  run_ms(10);

  EXPECT_EQ(deliveries_to(NodeId{1}), 1u);
  EXPECT_EQ(medium_.stats().dropped_down, 0u);
}

// --- brown-out loss overrides --------------------------------------------

TEST_F(MediumFaultsTest, ReceiverLossOverrideAppliesOnlyToThatHost) {
  medium_.set_loss_override(NodeId{1}, 1.0);  // total brown-out at node 1
  EXPECT_DOUBLE_EQ(medium_.loss_override(NodeId{1}), 1.0);

  medium_.broadcast(NodeId{0}, Bytes{1});
  run_ms(10);
  EXPECT_EQ(deliveries_to(NodeId{1}), 0u);
  EXPECT_EQ(deliveries_to(NodeId{2}), 1u);
  EXPECT_EQ(medium_.stats().losses, 1u);
}

TEST_F(MediumFaultsTest, SenderLossOverrideAppliesToAllItsFrames) {
  medium_.set_loss_override(NodeId{0}, 1.0);
  medium_.broadcast(NodeId{0}, Bytes{1});
  medium_.broadcast(NodeId{2}, Bytes{2});
  run_ms(10);

  // Node 0's frame is lost toward both receivers. The override is
  // per-host, not per-direction: node 2's frame also dies on the leg
  // toward node 0 (three losses total) but reaches node 1 untouched.
  EXPECT_EQ(deliveries_to(NodeId{1}), 1u);
  EXPECT_EQ(received_[NodeId{1}].front(), NodeId{2});
  EXPECT_EQ(deliveries_to(NodeId{0}), 0u);
  EXPECT_EQ(medium_.stats().losses, 3u);
}

TEST_F(MediumFaultsTest, EffectiveLossIsTheMaxNotTheOverrideAlone) {
  // A negative-from-zero override must not *lower* the configured loss:
  // with config loss 1.0, an override of 0.0 still loses every frame.
  sim::Simulator sim{7};
  auto rc = radio();
  rc.loss_probability = 1.0;
  Medium lossy{sim, rc};
  std::size_t delivered = 0;
  lossy.attach(NodeId{0}, {0.0, 0.0});
  lossy.attach(NodeId{1}, {50.0, 0.0}, [&](const Packet&) { ++delivered; });
  lossy.set_loss_override(NodeId{1}, 0.0);

  lossy.broadcast(NodeId{0}, Bytes{1});
  sim.run_until(sim.now() + sim::Duration::from_ms(10));
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(lossy.stats().losses, 1u);
}

TEST_F(MediumFaultsTest, NegativeOverrideClearsTheBrownout) {
  medium_.set_loss_override(NodeId{1}, 1.0);
  medium_.set_loss_override(NodeId{1}, -1.0);
  EXPECT_LT(medium_.loss_override(NodeId{1}), 0.0);

  medium_.broadcast(NodeId{0}, Bytes{1});
  run_ms(10);
  EXPECT_EQ(deliveries_to(NodeId{1}), 1u);
}

// --- netsplit partitions -------------------------------------------------

TEST_F(MediumFaultsTest, FramesDoNotCrossPartitions) {
  medium_.set_partition(NodeId{2}, 1);
  EXPECT_EQ(medium_.partition(NodeId{2}), 1u);
  EXPECT_EQ(medium_.partition(NodeId{0}), 0u);

  medium_.broadcast(NodeId{0}, Bytes{1});
  run_ms(10);
  EXPECT_EQ(deliveries_to(NodeId{1}), 1u);
  EXPECT_EQ(deliveries_to(NodeId{2}), 0u);
  // Decided before any draw: a partitioned receiver is skipped like an
  // out-of-range one, so it shows up in no loss counter either.
  EXPECT_EQ(medium_.stats().losses, 0u);
}

TEST_F(MediumFaultsTest, PartitionSkipConsumesNoRngDraws) {
  // Two runs with the same seed: one where node 1 is partitioned away,
  // one where it does not exist at all. Receivers draw in ascending
  // NodeId order, so if the partition skip consumed loss/jitter draws for
  // node 1, node 2's jittered arrival would differ between the runs.
  auto arrival_with = [](bool partitioned) {
    sim::Simulator sim{11};
    auto rc = radio();
    rc.loss_probability = 0.2;  // force a loss draw per candidate receiver
    Medium m{sim, rc};
    sim::Time arrival{};
    m.attach(NodeId{0}, {0.0, 0.0});
    if (partitioned) {
      m.attach(NodeId{1}, {25.0, 0.0});
      m.set_partition(NodeId{1}, 7);
    }
    m.attach(NodeId{2}, {50.0, 0.0},
             [&](const Packet&) { arrival = sim.now(); });
    m.broadcast(NodeId{0}, Bytes{1});
    sim.run_until(sim.now() + sim::Duration::from_ms(10));
    return arrival;
  };
  EXPECT_EQ(arrival_with(true).us(), arrival_with(false).us());
}

TEST_F(MediumFaultsTest, HealRestoresCrossPartitionTraffic) {
  medium_.set_partition(NodeId{2}, 1);
  medium_.broadcast(NodeId{0}, Bytes{1});
  run_ms(10);
  ASSERT_EQ(deliveries_to(NodeId{2}), 0u);

  medium_.set_partition(NodeId{2}, 0);
  medium_.broadcast(NodeId{0}, Bytes{2});
  run_ms(10);
  EXPECT_EQ(deliveries_to(NodeId{2}), 1u);
}

// --- in-flight tracking (checkpoint support) -----------------------------

TEST_F(MediumFaultsTest, InFlightRegistryTracksAirborneFramesOnly) {
  medium_.set_track_in_flight(true);
  EXPECT_TRUE(medium_.track_in_flight());

  medium_.broadcast(NodeId{0}, Bytes{1, 2});
  const auto airborne = medium_.in_flight();
  ASSERT_EQ(airborne.size(), 2u);  // receivers 1 and 2
  // Ascending (arrival, seq) order.
  EXPECT_LE(airborne[0].arrival.us(), airborne[1].arrival.us());
  for (const auto& f : airborne) {
    EXPECT_EQ(f.transmitter, NodeId{0});
    EXPECT_EQ(f.payload, (Bytes{1, 2}));
    EXPECT_GT(f.arrival.us(), sim_.now().us());
  }

  run_ms(10);
  EXPECT_TRUE(medium_.in_flight().empty());
  EXPECT_EQ(deliveries_to(NodeId{1}), 1u);
  EXPECT_EQ(deliveries_to(NodeId{2}), 1u);
}

TEST_F(MediumFaultsTest, RestoredFlightDeliversAtItsRecordedArrival) {
  medium_.set_track_in_flight(true);
  medium_.broadcast(NodeId{0}, Bytes{5});
  auto flights = medium_.in_flight();
  ASSERT_FALSE(flights.empty());

  // Mirror the checkpoint restore: a fresh medium over the same hosts,
  // re-arming the saved frames instead of re-broadcasting.
  sim::Simulator sim{7};
  Medium fresh{sim, radio()};
  fresh.set_track_in_flight(true);
  std::map<NodeId, sim::Time> arrivals;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const NodeId id{i};
    fresh.attach(id, Position{static_cast<double>(i) * 50.0, 0.0},
                 [&arrivals, &sim, id](const Packet&) {
                   arrivals[id] = sim.now();
                 });
  }
  for (const auto& f : flights) fresh.restore_in_flight(f);
  sim.run_until(sim.now() + sim::Duration::from_ms(10));

  for (const auto& f : flights) {
    ASSERT_TRUE(arrivals.count(f.receiver)) << f.receiver.to_string();
    EXPECT_EQ(arrivals[f.receiver].us(), f.arrival.us());
  }
}

}  // namespace
}  // namespace manet::net
