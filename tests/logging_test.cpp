// Unit tests for the audit-log substrate: record fields, text format
// round-trip, log store retention and queries.

#include <gtest/gtest.h>

#include "logging/format.hpp"
#include "logging/log_store.hpp"
#include "logging/record.hpp"

namespace manet::logging {
namespace {

using net::NodeId;

LogRecord sample_record() {
  LogRecord r;
  r.time = sim::Time::from_us(1'234'567);
  r.node = NodeId{3};
  r.event = "hello_recv";
  r.with("from", NodeId{5})
      .with("sym", join_node_list({NodeId{1}, NodeId{2}}))
      .with("seq", std::int64_t{42});
  return r;
}

TEST(Record, FieldAccessors) {
  const auto r = sample_record();
  EXPECT_EQ(r.field("from"), "n5");
  EXPECT_FALSE(r.field("missing").has_value());
  EXPECT_EQ(r.node_field("from"), NodeId{5});
  EXPECT_EQ(r.int_field("seq"), 42);
  EXPECT_EQ(r.node_list_field("sym"),
            (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
}

TEST(Record, MissingFieldThrows) {
  const auto r = sample_record();
  EXPECT_THROW(r.field_or_throw("nope"), std::invalid_argument);
  EXPECT_THROW(r.node_field("nope"), std::invalid_argument);
  EXPECT_THROW(r.int_field("from"), std::invalid_argument);
}

TEST(Record, JoinAndSplitNodeList) {
  EXPECT_EQ(join_node_list({}), "");
  EXPECT_EQ(join_node_list({NodeId{7}}), "n7");
  EXPECT_EQ(join_node_list({NodeId{1}, NodeId{2}}), "n1|n2");
  EXPECT_EQ(split_list(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_list("a|b|c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("solo"), (std::vector<std::string>{"solo"}));
}

TEST(Format, FormatsCanonicalLine) {
  const auto line = format_record(sample_record());
  EXPECT_EQ(line, "t=1.234567s node=n3 event=hello_recv from=n5 sym=n1|n2 seq=42");
}

TEST(Format, EmptyValueUsesDashPlaceholder) {
  LogRecord r;
  r.time = sim::Time{};
  r.node = NodeId{0};
  r.event = "mpr_changed";
  r.with("added", "");
  const auto line = format_record(r);
  EXPECT_NE(line.find("added=-"), std::string::npos);
  const auto back = parse_record(line);
  EXPECT_EQ(back.field("added"), "");
}

TEST(Format, RoundTripPreservesEverything) {
  const auto original = sample_record();
  const auto back = parse_record(format_record(original));
  EXPECT_EQ(back.time, original.time);
  EXPECT_EQ(back.node, original.node);
  EXPECT_EQ(back.event, original.event);
  EXPECT_EQ(back.fields, original.fields);
}

TEST(Format, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_record(""), std::invalid_argument);
  EXPECT_THROW(parse_record("node=n1 event=x"), std::invalid_argument);
  EXPECT_THROW(parse_record("t=1.000000s event=x"), std::invalid_argument);
  EXPECT_THROW(parse_record("t=1.000000s node=n1"), std::invalid_argument);
  EXPECT_THROW(parse_record("t=bogus node=n1 event=x"), std::invalid_argument);
  EXPECT_THROW(parse_record("t=1.0s node=n1 event=x"), std::invalid_argument);
  EXPECT_THROW(parse_record("t=1.000000s node=n1 event=x ="),
               std::invalid_argument);
}

TEST(Format, ParseLogSkipsBlankLines) {
  const auto text = format_record(sample_record()) + "\n\n" +
                    format_record(sample_record()) + "\n";
  const auto records = parse_log(text);
  EXPECT_EQ(records.size(), 2u);
}

TEST(Format, ForwardingAuditRecordsRoundTrip) {
  // The forwarding-audit records introduced with audit-log version 2:
  // fwd_echo (agent overhears an MPR re-broadcast) and fwd_audit_fail
  // (synthesized by the auditor's sweep). Both must survive the canonical
  // text format, since manet_parse replays logs through it.
  LogRecord echo;
  echo.time = sim::Time::from_seconds(21.5);
  echo.node = NodeId{0};
  echo.event = "fwd_echo";
  echo.with("by", NodeId{1}).with("orig", NodeId{5}).with("seq",
                                                          std::int64_t{1040});
  auto back = parse_record(format_record(echo));
  EXPECT_EQ(back.node_field("by"), NodeId{1});
  EXPECT_EQ(back.node_field("orig"), NodeId{5});
  EXPECT_EQ(back.int_field("seq"), 1040);

  LogRecord fail;
  fail.time = sim::Time::from_seconds(25.0);
  fail.node = NodeId{0};
  fail.event = "fwd_audit_fail";
  fail.with("mpr", NodeId{1})
      .with("expected", std::int64_t{6})
      .with("forwarded", std::int64_t{0});
  back = parse_record(format_record(fail));
  EXPECT_EQ(back.event, "fwd_audit_fail");
  EXPECT_EQ(back.node_field("mpr"), NodeId{1});
  EXPECT_EQ(back.int_field("expected"), 6);
  EXPECT_EQ(back.int_field("forwarded"), 0);
}

TEST(Format, NegativeTimeRejected) {
  // Times are since simulation start; "-1.000000s" must not parse.
  EXPECT_THROW(parse_record("t=-1.000000s node=n1 event=x"),
               std::invalid_argument);
}

TEST(LogStore, AppendsInOrderAndQueries) {
  LogStore store;
  for (int i = 0; i < 5; ++i) {
    LogRecord r;
    r.time = sim::Time::from_seconds(i);
    r.node = NodeId{0};
    r.event = i % 2 ? "odd" : "even";
    store.append(std::move(r));
  }
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.records_since(sim::Time::from_seconds(3)).size(), 2u);
  EXPECT_EQ(store.records_with_event("even").size(), 3u);
  EXPECT_EQ(store.total_appended(), 5u);
}

TEST(LogStore, BoundedRetentionDropsOldest) {
  LogStore store{3};
  for (int i = 0; i < 10; ++i) {
    LogRecord r;
    r.time = sim::Time::from_seconds(i);
    r.node = NodeId{0};
    r.event = "e";  // += dodges GCC 12's -Wrestrict false positive
    r.event += std::to_string(i);
    store.append(std::move(r));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.dropped(), 7u);
  EXPECT_EQ(store.at(0).event, "e7");
}

TEST(LogStore, TextSinceIsParseable) {
  LogStore store;
  for (int i = 0; i < 4; ++i) {
    auto r = sample_record();
    r.time = sim::Time::from_seconds(i);
    store.append(std::move(r));
  }
  const auto text = store.text_since(sim::Time::from_seconds(2));
  const auto parsed = parse_log(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].time, sim::Time::from_seconds(2));
}

TEST(LogStore, ObserverSeesEveryAppend) {
  LogStore store;
  int seen = 0;
  store.set_observer([&](const LogRecord&) { ++seen; });
  store.append(sample_record());
  store.append(sample_record());
  EXPECT_EQ(seen, 2);
}

// Property: format/parse round-trip over a variety of field shapes.
class FormatRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FormatRoundTrip, Holds) {
  LogRecord r;
  r.time = sim::Time::from_us(GetParam() * 997);
  r.node = NodeId{static_cast<std::uint32_t>(GetParam())};
  r.event = "event_" + std::to_string(GetParam());
  for (int f = 0; f < GetParam() % 7; ++f)
    r.with("k" + std::to_string(f), std::int64_t{f * 13});
  const auto back = parse_record(format_record(r));
  EXPECT_EQ(back.time, r.time);
  EXPECT_EQ(back.node, r.node);
  EXPECT_EQ(back.event, r.event);
  EXPECT_EQ(back.fields, r.fields);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FormatRoundTrip,
                         ::testing::Values(0, 1, 2, 5, 13, 100, 12345));

}  // namespace
}  // namespace manet::logging
