// Randomized equivalence of the BroadcastBatch fast path against the
// per-sender Medium::broadcast it replaces for HELLO rounds. For 50 seeds x
// random layouts, a Medium whose broadcasts all go through hello_batch()
// and a Medium using the plain per-sender path must produce identical
// delivery/loss/collision traces — same receivers, same arrival times, same
// bytes — including under mobility (set_position), radio down/up toggles,
// detach/attach churn, loss, jitter and collisions. This is the same
// equivalence argument tests/medium_index_test.cpp made for the PR-2
// spatial index, one layer up.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/medium.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace manet;
using net::Bytes;
using net::NodeId;
using net::Position;

/// One observed delivery, comparable across the two paths.
struct Delivery {
  std::int64_t at_us;
  std::uint32_t receiver;
  std::uint32_t transmitter;
  Bytes payload;

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// Drives a batched Medium and a per-sender Medium through the same
/// randomized script and compares the full delivery trace and stats.
void run_equivalence_round(std::uint64_t seed) {
  sim::Rng script{seed * 6271 + 29};

  const auto n = static_cast<std::size_t>(script.uniform_int(8, 96));
  const double width = 1200.0;
  const double height = 900.0;
  net::RadioConfig config;
  config.range_m = 250.0;
  config.loss_probability = 0.15 * static_cast<double>(seed % 3);
  config.delay_jitter =
      seed % 2 == 0 ? sim::Duration::from_us(500) : sim::Duration{};
  config.collision_window =
      seed % 4 == 0 ? sim::Duration::from_us(300) : sim::Duration{};

  std::vector<Position> layout;
  layout.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    layout.push_back(Position{script.uniform_real(0.0, width),
                              script.uniform_real(0.0, height)});

  sim::Simulator sim_a{seed + 1};
  sim::Simulator sim_b{seed + 1};
  net::Medium batched{sim_a, config};
  net::Medium per_sender{sim_b, config};

  std::vector<Delivery> trace_a;
  std::vector<Delivery> trace_b;
  auto attach_both = [&](NodeId id, Position pos) {
    batched.attach(id, pos, [&trace_a, id, &sim_a](const net::Packet& p) {
      trace_a.push_back(Delivery{sim_a.now().us(), id.value(),
                                 p.transmitter.value(), p.payload()});
    });
    per_sender.attach(id, pos, [&trace_b, id, &sim_b](const net::Packet& p) {
      trace_b.push_back(Delivery{sim_b.now().us(), id.value(),
                                 p.transmitter.value(), p.payload()});
    });
  };
  for (std::size_t i = 0; i < n; ++i)
    attach_both(NodeId{static_cast<std::uint32_t>(i)}, layout[i]);

  // Script: HELLO-round-style broadcast bursts interleaved with moves,
  // radio toggles and detach/attach churn, mirrored into both simulators.
  // Bursts exercise the snapshot sharing; the mutations exercise the
  // generation invalidation.
  sim::Time t;
  for (int step = 0; step < 40; ++step) {
    t += sim::Duration::from_us(script.uniform_int(0, 2000));
    const auto action = script.uniform_int(0, 9);
    if (action < 6) {
      // A burst of broadcasts inside one jitter window: several senders
      // fire within 100 us of each other, like a HELLO round.
      const auto burst = script.uniform_int(1, 8);
      sim::Time fire = t;
      for (std::int64_t b = 0; b < burst; ++b) {
        const NodeId id{static_cast<std::uint32_t>(
            script.uniform_int(0, static_cast<std::int64_t>(n) - 1))};
        fire += sim::Duration::from_us(script.uniform_int(0, 100));
        Bytes payload(static_cast<std::size_t>(script.uniform_int(1, 80)));
        for (auto& byte : payload)
          byte = static_cast<std::uint8_t>(script.uniform_int(0, 255));
        batched.hello_batch().enroll(id);
        sim_a.schedule_at(fire, [&batched, id, payload] {
          if (batched.attached(id)) batched.hello_batch().broadcast(id, payload);
        });
        sim_b.schedule_at(fire, [&per_sender, id, payload] {
          if (per_sender.attached(id)) per_sender.broadcast(id, payload);
        });
      }
      t = fire;
    } else if (action < 8) {
      const NodeId id{static_cast<std::uint32_t>(
          script.uniform_int(0, static_cast<std::int64_t>(n) - 1))};
      const Position pos{script.uniform_real(0.0, width),
                         script.uniform_real(0.0, height)};
      sim_a.schedule_at(t, [&batched, id, pos] {
        if (batched.attached(id)) batched.set_position(id, pos);
      });
      sim_b.schedule_at(t, [&per_sender, id, pos] {
        if (per_sender.attached(id)) per_sender.set_position(id, pos);
      });
    } else if (action == 8) {
      const NodeId id{static_cast<std::uint32_t>(
          script.uniform_int(0, static_cast<std::int64_t>(n) - 1))};
      const bool up = script.bernoulli(0.7);
      sim_a.schedule_at(t, [&batched, id, up] {
        if (batched.attached(id)) batched.set_up(id, up);
      });
      sim_b.schedule_at(t, [&per_sender, id, up] {
        if (per_sender.attached(id)) per_sender.set_up(id, up);
      });
    } else {
      // Detach + re-attach at a fresh position: exercises the slot
      // compaction (grid replace) under live snapshots.
      const NodeId id{static_cast<std::uint32_t>(
          script.uniform_int(0, static_cast<std::int64_t>(n) - 1))};
      const Position pos{script.uniform_real(0.0, width),
                         script.uniform_real(0.0, height)};
      sim_a.schedule_at(t, [&batched, &trace_a, &sim_a, id, pos] {
        batched.detach(id);
        batched.attach(id, pos, [&trace_a, id, &sim_a](const net::Packet& p) {
          trace_a.push_back(Delivery{sim_a.now().us(), id.value(),
                                     p.transmitter.value(), p.payload()});
        });
      });
      sim_b.schedule_at(t, [&per_sender, &trace_b, &sim_b, id, pos] {
        per_sender.detach(id);
        per_sender.attach(id, pos,
                          [&trace_b, id, &sim_b](const net::Packet& p) {
                            trace_b.push_back(Delivery{sim_b.now().us(),
                                                       id.value(),
                                                       p.transmitter.value(),
                                                       p.payload()});
                          });
      });
    }
  }

  sim_a.run_all();
  sim_b.run_all();

  ASSERT_EQ(trace_a.size(), trace_b.size()) << "seed " << seed;
  for (std::size_t i = 0; i < trace_a.size(); ++i)
    ASSERT_EQ(trace_a[i], trace_b[i]) << "seed " << seed << " delivery " << i;

  EXPECT_EQ(batched.stats().frames_sent, per_sender.stats().frames_sent);
  EXPECT_EQ(batched.stats().deliveries, per_sender.stats().deliveries);
  EXPECT_EQ(batched.stats().losses, per_sender.stats().losses);
  EXPECT_EQ(batched.stats().collisions, per_sender.stats().collisions);
  EXPECT_EQ(batched.stats().bytes_sent, per_sender.stats().bytes_sent);

  // Every broadcast that reached a live sender went through the batch.
  EXPECT_EQ(batched.batch_stats().batched_broadcasts,
            batched.stats().frames_sent);
  EXPECT_EQ(per_sender.batch_stats().batched_broadcasts, 0u);
}

class MediumBatchEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MediumBatchEquivalence, MatchesPerSenderPath) {
  run_equivalence_round(GetParam());
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, MediumBatchEquivalence,
                         ::testing::Range<std::uint64_t>(0, 50));

// A static round shares one snapshot per occupied cell: S senders over C
// occupied cells must cost exactly C builds and S - C hits, and a second
// round must be all hits.
TEST(MediumBatch, StaticRoundSharesSnapshotsPerCell) {
  sim::Simulator sim{5};
  net::RadioConfig config;
  config.range_m = 250.0;
  net::Medium m{sim, config};

  // Two clusters well inside one cell each (cell size = 250 m).
  for (std::uint32_t i = 0; i < 8; ++i) {
    const double x = (i < 4) ? 40.0 + 10.0 * i : 1540.0 + 10.0 * (i - 4);
    m.attach(NodeId{i}, Position{x, 40.0}, {});
  }

  for (std::uint32_t i = 0; i < 8; ++i) {
    m.hello_batch().enroll(NodeId{i});
    m.hello_batch().broadcast(NodeId{i}, Bytes{0x01});
  }
  sim.run_all();
  EXPECT_EQ(m.batch_stats().enrolled, 8u);
  EXPECT_EQ(m.batch_stats().batched_broadcasts, 8u);
  EXPECT_EQ(m.batch_stats().snapshot_builds, 2u);  // one per occupied cell
  EXPECT_EQ(m.batch_stats().snapshot_hits, 6u);

  // No topology mutation in between: the next round reuses both snapshots.
  for (std::uint32_t i = 0; i < 8; ++i)
    m.hello_batch().broadcast(NodeId{i}, Bytes{0x02});
  sim.run_all();
  EXPECT_EQ(m.batch_stats().snapshot_builds, 2u);
  EXPECT_EQ(m.batch_stats().snapshot_hits, 14u);

  // A single position change stales every snapshot.
  m.set_position(NodeId{0}, Position{45.0, 40.0});
  for (std::uint32_t i = 0; i < 8; ++i)
    m.hello_batch().broadcast(NodeId{i}, Bytes{0x03});
  sim.run_all();
  EXPECT_EQ(m.batch_stats().snapshot_builds, 4u);
}

// TC/forwarded-flood batching (Agent::Config::batched_floods): a full OLSR
// network over a multi-hop grid — MPR selection, TC emission, duplicate-
// window forwarding storms — must produce byte-identical audit logs on
// every node whether the TC flood goes through the shared per-cell
// snapshots or the per-sender path. This is the agent-level analogue of
// the Medium-level equivalence above: timestamps, sequence numbers,
// receiver sets and forwarding decisions all pinned at once.
void run_flood_equivalence(std::uint64_t seed) {
  auto build = [&](bool batched_floods) {
    scenario::Network::Config nc;
    nc.seed = seed + 11;
    nc.radio.range_m = 250.0;
    // A 150 m grid spacing makes the 24-node network genuinely multi-hop,
    // so TCs are emitted and forwarded (a full mesh has no MPRs at all).
    nc.positions = net::grid_layout(24, 150.0);
    nc.agent.batched_floods = batched_floods;
    return std::make_unique<scenario::Network>(std::move(nc));
  };

  auto batched = build(true);
  auto per_sender = build(false);
  batched->start_all();
  per_sender->start_all();
  batched->run_for(sim::Duration::from_seconds(20.0));
  per_sender->run_for(sim::Duration::from_seconds(20.0));

  for (std::size_t i = 0; i < batched->size(); ++i) {
    ASSERT_EQ(batched->agent(i).log().text_since(sim::Time{}),
              per_sender->agent(i).log().text_since(sim::Time{}))
        << "seed " << seed << " node " << i;
    const auto& a = batched->agent(i).stats();
    const auto& b = per_sender->agent(i).stats();
    EXPECT_EQ(a.tc_sent, b.tc_sent) << "seed " << seed << " node " << i;
    EXPECT_EQ(a.tc_recv, b.tc_recv) << "seed " << seed << " node " << i;
    EXPECT_EQ(a.msgs_forwarded, b.msgs_forwarded)
        << "seed " << seed << " node " << i;
  }
  EXPECT_EQ(batched->medium().stats().deliveries,
            per_sender->medium().stats().deliveries);
  EXPECT_EQ(batched->medium().stats().frames_sent,
            per_sender->medium().stats().frames_sent);

  // With batched_floods on, TC emissions and forwards join the batch on
  // top of the HELLOs, so strictly more broadcasts ride the snapshots.
  std::uint64_t hello_sent = 0;
  for (std::size_t i = 0; i < batched->size(); ++i)
    hello_sent += batched->agent(i).stats().hello_sent;
  EXPECT_GT(batched->medium().batch_stats().batched_broadcasts, hello_sent);
}

class FloodBatchEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FloodBatchEquivalence, TcAndForwardsMatchPerSenderPath) {
  run_flood_equivalence(GetParam());
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, FloodBatchEquivalence,
                         ::testing::Range<std::uint64_t>(0, 10));

// Radio state is baked into the snapshot, so set_up must invalidate it:
// a down receiver stops hearing batched broadcasts immediately.
TEST(MediumBatch, SetUpInvalidatesSnapshots) {
  sim::Simulator sim{7};
  net::RadioConfig config;
  config.range_m = 100.0;
  config.delay_jitter = sim::Duration{};
  net::Medium m{sim, config};

  int received = 0;
  m.attach(NodeId{0}, Position{0.0, 0.0}, {});
  m.attach(NodeId{1}, Position{50.0, 0.0},
           [&received](const net::Packet&) { ++received; });

  m.hello_batch().broadcast(NodeId{0}, Bytes{1});
  sim.run_all();
  EXPECT_EQ(received, 1);

  m.set_up(NodeId{1}, false);
  m.hello_batch().broadcast(NodeId{0}, Bytes{2});
  sim.run_all();
  EXPECT_EQ(received, 1);

  m.set_up(NodeId{1}, true);
  m.hello_batch().broadcast(NodeId{0}, Bytes{3});
  sim.run_all();
  EXPECT_EQ(received, 2);
}

}  // namespace
