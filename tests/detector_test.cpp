// End-to-end tests for the Detector: Expression 4 logic over real audit
// logs, all three link-spoofing variants, drop (E2) detection, false-
// positive behaviour on clean networks, and trust dynamics.

#include <gtest/gtest.h>

#include "attacks/drop.hpp"
#include "attacks/forge.hpp"
#include "attacks/link_spoofing.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

namespace manet::core {
namespace {

using scenario::Network;

Network::Config grid_config(std::size_t n, std::uint64_t seed = 7) {
  Network::Config c;
  c.seed = seed;
  c.radio.range_m = 160.0;
  c.positions = net::grid_layout(n, 100.0);
  return c;
}

std::size_t intruder_reports_against(const Detector& d, NodeId suspect) {
  std::size_t count = 0;
  for (const auto& r : d.reports())
    if (r.verdict == trust::Verdict::kIntruder && r.suspect == suspect)
      ++count;
  return count;
}

TEST(Detector, DetectsPhantomLinkSpoofing) {
  Network net{grid_config(9)};
  const NodeId phantom{77};
  net.set_hooks(4, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(70.0));

  EXPECT_GT(intruder_reports_against(detector, Network::id_of(4)), 0u);
  // The confirmed report carries the E5 tag (advertises a non-neighbor).
  bool saw_e5 = false;
  for (const auto& r : detector.reports())
    for (auto tag : r.tags)
      if (tag == EvidenceTag::kE5AdvertisesNonNeighbor) saw_e5 = true;
  EXPECT_TRUE(saw_e5);
  // Trust in the attacker collapses below the default.
  EXPECT_LT(detector.trust_store().trust(Network::id_of(4)), 0.2);
}

TEST(Detector, CleanNetworkProducesNoIntruderVerdicts) {
  Network net{grid_config(9)};
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(60.0));
  for (const auto& r : detector.reports())
    EXPECT_NE(r.verdict, trust::Verdict::kIntruder)
        << "false positive against " << r.suspect.to_string();
}

TEST(Detector, DetectsExistingNodeSpoofing) {
  // Expression 2: in a 4x4 grid the attacker n5 claims a symmetric link to
  // the real-but-distant n15. The detection is distributed: the
  // contradiction is visible at nodes hearing BOTH HELLOs (n5's claims
  // n15, n15's omits n5) — n10 is adjacent to both.
  Network::Config c = grid_config(16);
  Network net16{c};
  net16.set_hooks(5, std::make_unique<attacks::LinkSpoofingAttack>(
                         attacks::LinkSpoofingAttack::Mode::kAddExisting,
                         std::set<NodeId>{Network::id_of(15)}));
  DetectorConfig dc;
  dc.suspect_cooldown = sim::Duration::from_seconds(5.0);
  auto& detector = net16.add_detector(10, dc);
  net16.start_all();
  net16.run_for(sim::Duration::from_seconds(25.0));
  detector.start();
  net16.run_for(sim::Duration::from_seconds(150.0));
  EXPECT_GT(intruder_reports_against(detector, Network::id_of(5)), 0u);
}

TEST(Detector, DetectsLinkOmission) {
  // Expression 3: n4 omits its real neighbor n1 from HELLOs while n1 keeps
  // claiming the link. OLSR's bidirectionality check makes the omission
  // self-concealing within NEIGHB_HOLD (~6 s): n1 stops claiming once its
  // sym timer expires. Detection is therefore transient by nature; the
  // autonomous scan must notice the contradiction, and an investigation
  // launched inside the window must convict with E4.
  Network net{grid_config(9)};
  auto spoof = std::make_unique<attacks::LinkSpoofingAttack>(
      attacks::LinkSpoofingAttack::Mode::kOmitNeighbor,
      std::set<NodeId>{Network::id_of(1)});
  auto* spoof_ptr = spoof.get();
  spoof_ptr->set_active(false);
  net.set_hooks(4, std::move(spoof));
  DetectorConfig dc;
  dc.scan_interval = sim::Duration::from_seconds(2.0);
  dc.investigation.answer_timeout = sim::Duration::from_seconds(1.0);
  auto& detector = net.add_detector(0, dc);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(2.0));
  spoof_ptr->set_active(true);  // the transient contradiction window opens
  net.run_for(sim::Duration::from_seconds(1.5));

  // Inside the window: a direct investigation of the omitted link convicts
  // the omitter with E4 (the verifiers still see n1 claiming the link and
  // n1 itself answers first-hand).
  // Two rounds: the subject's consistent first-hand denial gives a
  // zero-spread pool, collapsing the Eq. 9 margin.
  for (int round = 0; round < 2; ++round) {
    detector.investigate_claim(
        Network::id_of(4), Network::id_of(1), /*claimed_up=*/false, {},
        {Network::id_of(1), Network::id_of(2), Network::id_of(3),
         Network::id_of(5)});
    net.run_for(sim::Duration::from_seconds(1.5));
  }

  bool saw_e4 = false;
  for (const auto& r : detector.reports()) {
    if (r.verdict == trust::Verdict::kIntruder &&
        r.suspect == Network::id_of(4) && !r.claimed_up) {
      for (auto tag : r.tags)
        if (tag == EvidenceTag::kE4NotCoveringNeighbor) saw_e4 = true;
    }
  }
  EXPECT_TRUE(saw_e4);

  // The autonomous scan also noticed the omission on its own.
  net.run_for(sim::Duration::from_seconds(30.0));
  bool scan_noticed = false;
  for (const auto& r : detector.reports())
    if (r.suspect == Network::id_of(4) && r.subject == Network::id_of(1) &&
        !r.claimed_up)
      scan_noticed = true;
  EXPECT_TRUE(scan_noticed);
  // ...and the honest far end n1 is never convicted.
  EXPECT_EQ(intruder_reports_against(detector, Network::id_of(1)), 0u);
}

TEST(Detector, FindDisputedLinksFlagsPhantomOnly) {
  Network net{grid_config(9)};
  const NodeId phantom{77};
  net.set_hooks(4, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  auto& detector = net.add_detector(8);  // corner opposite: hears n4 too
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));

  const auto disputed = detector.find_disputed_links(Network::id_of(4), 10);
  EXPECT_NE(std::find(disputed.begin(), disputed.end(), phantom),
            disputed.end());
  // Genuine neighbors that n8 can corroborate (e.g. n5, n7 — its own
  // neighbors) must not be disputed.
  EXPECT_EQ(std::find(disputed.begin(), disputed.end(), Network::id_of(5)),
            disputed.end());
  EXPECT_EQ(std::find(disputed.begin(), disputed.end(), Network::id_of(7)),
            disputed.end());
}

TEST(Detector, BelievedNeighborsFromLog) {
  Network net{grid_config(9)};
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  // n4 is adjacent to everyone in a 3x3 grid; n0's believed list for n4
  // must contain n0's own neighbors that advertise n4.
  const auto believed = detector.believed_neighbors_of(Network::id_of(4));
  EXPECT_NE(std::find(believed.begin(), believed.end(), Network::id_of(1)),
            believed.end());
  EXPECT_NE(std::find(believed.begin(), believed.end(), Network::id_of(3)),
            believed.end());
  // Never the investigator or the suspect itself.
  EXPECT_EQ(std::find(believed.begin(), believed.end(), Network::id_of(0)),
            believed.end());
  EXPECT_EQ(std::find(believed.begin(), believed.end(), Network::id_of(4)),
            believed.end());
}

TEST(Detector, ScanOnceIsIncremental) {
  Network net{grid_config(9)};
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  detector.scan_once();
  // Immediately rescanning with no new log growth finds nothing new.
  EXPECT_EQ(detector.scan_once(), 0u);
}

TEST(Detector, StormTriggersInvestigation) {
  Network net{grid_config(9)};
  attacks::StormAttack::Config sc;
  sc.messages_per_tick = 15;
  sc.advertised = {NodeId{50}};
  auto storm = std::make_unique<attacks::StormAttack>(sc);
  auto* storm_ptr = storm.get();
  net.set_hooks(4, std::move(storm));
  DetectorConfig dc;
  dc.storm_burst = 10;
  auto& detector = net.add_detector(0, dc);
  net.start_all();
  storm_ptr->bind(net.agent(4));
  net.run_for(sim::Duration::from_seconds(15.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(30.0));

  bool investigated_storm = false;
  for (const auto& r : detector.reports())
    for (auto tag : r.tags)
      if (tag == EvidenceTag::kE2MprMisbehaving) investigated_storm = true;
  EXPECT_TRUE(investigated_storm);
}

TEST(Detector, TrustOfHonestVerifiersGrows) {
  Network net{grid_config(9)};
  const NodeId phantom{77};
  net.set_hooks(4, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  const double before = detector.trust_store().trust(Network::id_of(1));
  detector.start();
  net.run_for(sim::Duration::from_seconds(70.0));
  EXPECT_GT(detector.trust_store().trust(Network::id_of(1)), before);
}

TEST(Detector, ReportsCarryCumulativeEvidence) {
  Network net{grid_config(9)};
  const NodeId phantom{77};
  net.set_hooks(4, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(70.0));

  std::size_t prev_cumulative = 0;
  for (const auto& r : detector.reports()) {
    if (r.subject != phantom) continue;
    EXPECT_GE(r.cumulative_answers, prev_cumulative);
    prev_cumulative = r.cumulative_answers;
    // The margin shrinks as evidence accumulates (Eq. 9: eps ~ 1/sqrt(n)).
    EXPECT_GT(r.cumulative_answers, 0u);
  }
  EXPECT_GT(prev_cumulative, 8u);  // several rounds accumulated
}

}  // namespace
}  // namespace manet::core
