// Tests for the attack library: each misbehaviour measurably perverts the
// protocol state of well-behaving nodes, which is exactly what the IDS
// later has to detect.

#include <gtest/gtest.h>

#include "attacks/composite.hpp"
#include "attacks/drop.hpp"
#include "attacks/forge.hpp"
#include "attacks/link_spoofing.hpp"
#include "attacks/wormhole.hpp"
#include "net/topology.hpp"
#include "scenario/network.hpp"

namespace manet::attacks {
namespace {

using olsr::NodeId;
using scenario::Network;

Network::Config chain_config(std::size_t n, std::uint64_t seed = 1) {
  Network::Config c;
  c.seed = seed;
  c.radio.range_m = 120.0;
  c.positions = net::chain_layout(n, 100.0);
  return c;
}

TEST(LinkSpoofing, AddNonExistentMutatesHello) {
  LinkSpoofingAttack attack{LinkSpoofingAttack::Mode::kAddNonExistent,
                            {NodeId{99}}};
  olsr::HelloMessage h;
  h.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, NodeId{1});
  attack.on_build_hello(h);
  const auto sym = h.symmetric_neighbors();
  EXPECT_NE(std::find(sym.begin(), sym.end(), NodeId{99}), sym.end());
  EXPECT_EQ(attack.forged_count(), 1u);
}

TEST(LinkSpoofing, OmitRemovesNeighbor) {
  LinkSpoofingAttack attack{LinkSpoofingAttack::Mode::kOmitNeighbor,
                            {NodeId{1}}};
  olsr::HelloMessage h;
  h.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, NodeId{1});
  h.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh, NodeId{2});
  attack.on_build_hello(h);
  const auto sym = h.symmetric_neighbors();
  EXPECT_EQ(sym, (std::vector<NodeId>{NodeId{2}}));
}

TEST(LinkSpoofing, InactiveAttackIsNoop) {
  LinkSpoofingAttack attack{LinkSpoofingAttack::Mode::kAddNonExistent,
                            {NodeId{99}}};
  attack.set_active(false);
  olsr::HelloMessage h;
  attack.on_build_hello(h);
  EXPECT_TRUE(h.symmetric_neighbors().empty());
  EXPECT_EQ(attack.forged_count(), 0u);
}

TEST(LinkSpoofing, PhantomNeighborPropagatesIntoVictimTables) {
  // End-to-end: the victim's 2-hop table ends up containing the phantom —
  // the corruption of "the topology seen by S" from the paper's §III-A.
  Network net{chain_config(2)};
  const NodeId phantom{99};
  net.set_hooks(1, std::make_unique<LinkSpoofingAttack>(
                       LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<NodeId>{phantom}));
  net.start_all();
  net.run_for(sim::Duration::from_seconds(15.0));
  const auto two_hops = net.agent(0).neighbors().two_hops_via(Network::id_of(1));
  EXPECT_TRUE(std::binary_search(two_hops.begin(), two_hops.end(), phantom));
  // ...and forces the attacker into the victim's MPR set (Expression 1).
  EXPECT_TRUE(net.agent(0).is_mpr(Network::id_of(1)));
}

TEST(Drop, BlackholePreventsFloodingAcrossRelay) {
  // Chain n0-n1-n2-n3 where n2 blackholes: n1-originated TCs flooded via n2
  // never reach n3, so n3 cannot learn the n0-n1 edge.
  Network net{chain_config(4)};
  net.set_hooks(2, std::make_unique<DropAttack>(sim::Rng{1}, 1.0));
  net.start_all();
  net.run_for(sim::Duration::from_seconds(40.0));
  const auto tuples = net.agent(3).topology().tuples();
  const bool knows_far_edge =
      std::any_of(tuples.begin(), tuples.end(), [](const auto& t) {
        return t.last_hop == Network::id_of(1) &&
               std::set<NodeId>{Network::id_of(0), Network::id_of(2)}.contains(
                   t.dest);
      });
  EXPECT_FALSE(knows_far_edge);
  EXPECT_FALSE(net.agent(3).routes().route_to(Network::id_of(0)).has_value());
}

TEST(Drop, GrayholeDropsFraction) {
  DropAttack gray{sim::Rng{7}, 0.5};
  olsr::Message m;
  int forwarded = 0;
  const int total = 2000;
  for (int i = 0; i < total; ++i)
    if (gray.should_forward(m)) ++forwarded;
  EXPECT_NEAR(static_cast<double>(forwarded) / total, 0.5, 0.05);
  EXPECT_EQ(gray.dropped_control() + static_cast<std::uint64_t>(forwarded),
            static_cast<std::uint64_t>(total));
}

TEST(Drop, DataDroppingStarvesDelivery) {
  Network net{chain_config(3)};
  net.set_hooks(1, std::make_unique<DropAttack>(sim::Rng{1}, 1.0,
                                                /*drop_control=*/false,
                                                /*drop_data=*/true));
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  bool delivered = false;
  net.agent(2).set_data_handler(
      [&](const olsr::DataMessage&) { delivered = true; });
  net.agent(0).send_data(Network::id_of(2), 7, {1});
  net.run_for(sim::Duration::from_seconds(3.0));
  EXPECT_FALSE(delivered);
}

TEST(Storm, FloodsForgedTcs) {
  Network net{chain_config(2)};
  StormAttack::Config sc;
  sc.messages_per_tick = 5;
  sc.advertised = {NodeId{50}, NodeId{51}};
  auto storm = std::make_unique<StormAttack>(sc);
  auto* storm_ptr = storm.get();
  net.set_hooks(1, std::move(storm));
  net.start_all();
  storm_ptr->bind(net.agent(1));
  net.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_GE(storm_ptr->forged_count(), 20u);
  // The victim's log shows the burst of TC receptions.
  EXPECT_GT(net.agent(0).log().records_with_event("tc_recv").size(), 15u);
}

TEST(IdentitySpoofing, VictimIdentityMasqueraded) {
  Network net{chain_config(2)};
  auto spoof = std::make_unique<IdentitySpoofingAttack>(
      NodeId{7}, std::vector<NodeId>{NodeId{0}});
  auto* ptr = spoof.get();
  net.set_hooks(1, std::move(spoof));
  net.start_all();
  ptr->bind(net.agent(1));
  net.run_for(sim::Duration::from_seconds(10.0));
  EXPECT_GT(ptr->forged_count(), 0u);
  // n0 believes it heard HELLOs from the non-attached identity n7.
  const auto hellos = net.agent(0).log().records_with_event("hello_recv");
  const bool heard_ghost =
      std::any_of(hellos.begin(), hellos.end(), [](const auto& r) {
        return r.node_field("from") == NodeId{7};
      });
  EXPECT_TRUE(heard_ghost);
}

TEST(SequenceInflation, InflatesRelayedTcs) {
  SequenceInflationAttack attack{100};
  olsr::Message m;
  m.header.type = olsr::MessageType::kTc;
  m.header.seq_num = 10;
  m.body = olsr::TcMessage{5, {}};
  attack.on_forward(m);
  EXPECT_EQ(m.header.seq_num, 110);
  EXPECT_EQ(std::get<olsr::TcMessage>(m.body).ansn, 105);
  EXPECT_EQ(attack.tampered_count(), 1u);
  // Non-TC messages untouched.
  olsr::Message hello;
  hello.header.type = olsr::MessageType::kHello;
  hello.header.seq_num = 3;
  hello.body = olsr::HelloMessage{};
  attack.on_forward(hello);
  EXPECT_EQ(hello.header.seq_num, 3);
}

TEST(Willingness, ForcedAlwaysWinsMprSelection) {
  WillingnessAttack attack{olsr::Willingness::kAlways};
  olsr::HelloMessage h;
  h.willingness = olsr::Willingness::kDefault;
  attack.on_build_hello(h);
  EXPECT_EQ(h.willingness, olsr::Willingness::kAlways);
}

TEST(Wormhole, ReplaysCapturedTrafficAtRemoteEnd) {
  // Two disjoint 2-node islands; the wormhole tunnels n0's TC traffic from
  // island A (captured by n1) to island B (replayed by n2).
  Network::Config c;
  c.radio.range_m = 120.0;
  c.positions = {{0, 0}, {100, 0}, {1000, 0}, {1100, 0}};
  Network net{c};

  auto channel =
      std::make_shared<WormholeChannel>(sim::Duration::from_ms(50));
  auto capture = std::make_unique<WormholeEndpoint>(
      net.sim(), channel, WormholeEndpoint::Role::kCapture);
  auto replay = std::make_unique<WormholeEndpoint>(
      net.sim(), channel, WormholeEndpoint::Role::kReplay);
  auto* capture_ptr = capture.get();
  auto* replay_ptr = replay.get();
  net.set_hooks(1, std::move(capture));
  net.set_hooks(2, std::move(replay));
  net.start_all();
  capture_ptr->bind(net.agent(1));
  replay_ptr->bind(net.agent(2));
  net.run_for(sim::Duration::from_seconds(30.0));

  EXPECT_GT(capture_ptr->captured_count(), 0u);
  EXPECT_GT(replay_ptr->replayed_count(), 0u);
  // n3 (island B) hears displaced HELLOs originated by island-A nodes.
  const auto hellos = net.agent(3).log().records_with_event("hello_recv");
  const bool ghost = std::any_of(hellos.begin(), hellos.end(), [](const auto& r) {
    return r.node_field("from") == Network::id_of(0) ||
           r.node_field("from") == Network::id_of(1);
  });
  EXPECT_TRUE(ghost);
}

TEST(Composite, ChainsSpoofingAndDropping) {
  CompositeHooks composite;
  LinkSpoofingAttack spoof{LinkSpoofingAttack::Mode::kAddNonExistent,
                           {NodeId{99}}};
  DropAttack drop{sim::Rng{1}, 1.0};
  composite.add(spoof);
  composite.add(drop);

  olsr::HelloMessage h;
  composite.on_build_hello(h);
  EXPECT_FALSE(h.symmetric_neighbors().empty());

  olsr::Message m;
  EXPECT_FALSE(composite.should_forward(m));
  olsr::DataMessage d;
  EXPECT_FALSE(composite.should_relay_data(d));
}

}  // namespace
}  // namespace manet::attacks
