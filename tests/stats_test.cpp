// Unit tests for the statistics substrate: descriptive stats, entropy,
// normal quantiles, confidence intervals, time series, histogram.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/entropy.hpp"
#include "stats/histogram.hpp"
#include "stats/normal.hpp"
#include "stats/time_series.hpp"

namespace manet::stats {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Descriptive, MedianOddEven) {
  std::vector<double> odd{5, 1, 3};
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Descriptive, Percentiles) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Descriptive, PercentileValidation) {
  std::vector<double> xs;
  EXPECT_THROW(percentile(xs, 50), std::invalid_argument);
  std::vector<double> one{1.0};
  EXPECT_THROW(percentile(one, -1), std::invalid_argument);
  EXPECT_THROW(percentile(one, 101), std::invalid_argument);
}

TEST(Entropy, BinaryEntropyEndpointsAndPeak) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_THROW(binary_entropy(-0.1), std::invalid_argument);
  EXPECT_THROW(binary_entropy(1.1), std::invalid_argument);
}

TEST(Entropy, BinaryEntropySymmetric) {
  for (double p : {0.1, 0.25, 0.4}) {
    EXPECT_NEAR(binary_entropy(p), binary_entropy(1.0 - p), 1e-12);
  }
}

TEST(Entropy, ShannonUniform) {
  std::vector<double> uniform{1, 1, 1, 1};
  EXPECT_NEAR(shannon_entropy(uniform), 2.0, 1e-12);
  std::vector<double> certain{1, 0, 0};
  EXPECT_DOUBLE_EQ(shannon_entropy(certain), 0.0);
  std::vector<double> bad{0, 0};
  EXPECT_THROW(shannon_entropy(bad), std::invalid_argument);
}

TEST(Entropy, TrustMappingShape) {
  // Sun et al. mapping: T(1)=1, T(0)=-1, T(0.5)=0, increasing in p.
  EXPECT_DOUBLE_EQ(entropy_trust(1.0), 1.0);
  EXPECT_DOUBLE_EQ(entropy_trust(0.0), -1.0);
  EXPECT_DOUBLE_EQ(entropy_trust(0.5), 0.0);
  double prev = -1.1;
  for (double p = 0.0; p <= 1.0001; p += 0.05) {
    const double t = entropy_trust(std::min(p, 1.0));
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
}

TEST(Entropy, TrustInverseRoundTrip) {
  for (double p : {0.05, 0.3, 0.5, 0.7, 0.95}) {
    EXPECT_NEAR(entropy_trust_inverse(entropy_trust(p)), p, 1e-9);
  }
  EXPECT_THROW(entropy_trust_inverse(1.5), std::invalid_argument);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normal_quantile(0.01), -2.326348, 1e-5);
}

TEST(Normal, QuantileInvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.037) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(Normal, QuantileValidation) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(Normal, ZForConfidence) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(z_for_confidence(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(z_for_confidence(0.90), 1.644854, 1e-5);
}

TEST(Confidence, MarginFollowsEquation9) {
  // eps = z * sigma / sqrt(n), the paper's Eq. 9.
  std::vector<double> samples{-1, -1, -1, 1, -1, -1, 1, -1, -1, -1};
  const auto ci = confidence_interval(samples, 0.95);
  const double sigma = sample_stddev(samples);
  EXPECT_NEAR(ci.margin, 1.959964 * sigma / std::sqrt(10.0), 1e-6);
  EXPECT_NEAR(ci.mean, -0.6, 1e-12);
  EXPECT_TRUE(ci.contains(-0.6));
  EXPECT_FALSE(ci.contains(0.5));
}

TEST(Confidence, HigherLevelWiderInterval) {
  std::vector<double> samples{-1, 1, -1, 1, -1, -1, -1, 1};
  const auto lo = confidence_interval(samples, 0.90);
  const auto hi = confidence_interval(samples, 0.99);
  EXPECT_LT(lo.margin, hi.margin);
}

TEST(Confidence, MoreSamplesNarrowerInterval) {
  std::vector<double> small, large;
  for (int i = 0; i < 8; ++i) small.push_back(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 128; ++i) large.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(confidence_interval(small, 0.95).margin,
            confidence_interval(large, 0.95).margin);
}

TEST(Confidence, TooFewSamplesMaxMargin) {
  std::vector<double> one{0.5};
  const auto ci = confidence_interval(one, 0.95, 2.0);
  EXPECT_DOUBLE_EQ(ci.margin, 2.0);
}

TEST(TimeSeries, RecordsAndReadsBack) {
  TimeSeries ts;
  ts.add("a", 1, 10);
  ts.add("a", 2, 20);
  ts.add("b", 1, -5);
  EXPECT_TRUE(ts.has("a"));
  EXPECT_FALSE(ts.has("c"));
  EXPECT_DOUBLE_EQ(ts.last("a"), 20);
  EXPECT_DOUBLE_EQ(ts.at_or_after("a", 2), 20);
  EXPECT_EQ(ts.series_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(ts.samples("zzz"), std::out_of_range);
}

TEST(TimeSeries, TableContainsAllSeries) {
  TimeSeries ts;
  ts.add("alpha", 1, 0.5);
  ts.add("beta", 2, 0.25);
  const auto table = ts.to_table("round");
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("0.5000"), std::string::npos);
  // beta has no sample at x=1 -> a "-" placeholder exists.
  EXPECT_NE(table.find('-'), std::string::npos);
}

TEST(TimeSeries, CsvRoundTripShape) {
  TimeSeries ts;
  ts.add("s", 0, 1.5);
  ts.add("s", 1, 2.5);
  const auto csv = ts.to_csv("x");
  EXPECT_EQ(csv, "x,s\n0,1.5\n1,2.5\n");
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(2), 6.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, TracksSumUnderflowOverflow) {
  Histogram h{0.0, 10.0, 5};
  h.add(-3.0);  // underflow, clamped to bin 0
  h.add(42.0);  // overflow, clamped to bin 4
  h.add(10.0);  // hi itself is out of [lo, hi) -> overflow
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 42.0 + 10.0 + 5.0);  // pre-clamp values
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, MergeMatchesBulk) {
  Histogram a{0.0, 10.0, 5}, b{0.0, 10.0, 5}, all{0.0, 10.0, 5};
  for (int i = 0; i < 40; ++i) {
    const double x = -2.0 + 0.4 * i;  // spans underflow, bins, overflow
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.underflow(), all.underflow());
  EXPECT_EQ(a.overflow(), all.overflow());
  for (std::size_t bin = 0; bin < all.bins(); ++bin)
    EXPECT_EQ(a.bin_count(bin), all.bin_count(bin)) << "bin=" << bin;
}

TEST(Histogram, MergeOfEmptyIsIdentity) {
  Histogram a{0.0, 4.0, 4}, empty{0.0, 4.0, 4};
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bin_count(1), 1u);
  EXPECT_EQ(a.bin_count(3), 1u);
  // The other direction too: folding into an empty histogram copies.
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.sum(), a.sum());
}

TEST(Histogram, MergeShapeMismatchThrows) {
  Histogram a{0.0, 10.0, 5};
  Histogram different_bins{0.0, 10.0, 4};
  Histogram different_range{0.0, 12.0, 5};
  EXPECT_THROW(a.merge(different_bins), std::invalid_argument);
  EXPECT_THROW(a.merge(different_range), std::invalid_argument);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(i * 0.1);  // ~uniform on [0, 10)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.5);
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0; p += 0.1) {
    const double q = h.quantile(p);
    EXPECT_GE(q, prev);  // monotone in p
    prev = q;
  }
}

TEST(Histogram, QuantileClampedEdges) {
  // Every sample out of range: all mass sits in the edge bins, and the
  // quantiles stay inside [lo, hi].
  Histogram h{0.0, 1.0, 4};
  h.add(-100.0);
  h.add(100.0);
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 1.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, QuantileValidation) {
  Histogram h{0.0, 1.0, 2};
  EXPECT_THROW(h.quantile(0.5), std::logic_error);  // empty
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, RenderShowsCounts) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

// Property: the entropy-trust of complementary probabilities is
// antisymmetric: T(p) = -T(1-p).
class EntropyAntisymmetry : public ::testing::TestWithParam<double> {};

TEST_P(EntropyAntisymmetry, Holds) {
  const double p = GetParam();
  EXPECT_NEAR(entropy_trust(p), -entropy_trust(1.0 - p), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, EntropyAntisymmetry,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.8, 0.9, 1.0));

}  // namespace
}  // namespace manet::stats
