// Robustness and failure-injection tests: wire/log fuzzing (malformed
// input must never crash, only throw or reject), node death mid-
// investigation, heavy radio loss, log-capacity pressure, and colluding
// attacker+liar coalitions.

#include <gtest/gtest.h>

#include "attacks/composite.hpp"
#include "attacks/drop.hpp"
#include "attacks/link_spoofing.hpp"
#include "core/investigation.hpp"
#include "logging/format.hpp"
#include "net/topology.hpp"
#include "olsr/wire.hpp"
#include "scenario/network.hpp"
#include "scenario/trust_experiment.hpp"

namespace manet {
namespace {

using scenario::Network;

// --- fuzzing -------------------------------------------------------------

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBytesNeverCrash) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 120));
    net::Bytes bytes(len);
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      const auto packet = olsr::parse_packet(bytes);
      // If it parsed, re-serialization must not crash either.
      olsr::serialize_packet(packet);
    } catch (const olsr::WireError&) {
      // rejected — fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range<std::uint64_t>(1, 9));

class WireMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireMutationFuzz, BitFlippedValidPacketsNeverCrash) {
  olsr::HelloMessage h;
  for (std::uint32_t i = 0; i < 6; ++i)
    h.add(olsr::LinkType::kSym, olsr::NeighborType::kSymNeigh,
          net::NodeId{i});
  olsr::Message m;
  m.header.type = olsr::MessageType::kHello;
  m.header.originator = net::NodeId{9};
  m.body = h;
  olsr::OlsrPacket p;
  p.messages.push_back(m);
  const auto valid = olsr::serialize_packet(p);

  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = valid;
    const auto flips = rng.uniform_int(1, 4);
    for (std::int64_t f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[at] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    }
    try {
      olsr::parse_packet(mutated);
    } catch (const olsr::WireError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireMutationFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(LogFuzz, RandomTextNeverCrashesParser) {
  sim::Rng rng{77};
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789=|.- \nt";
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const auto len = rng.uniform_int(0, 80);
    for (std::int64_t i = 0; i < len; ++i)
      line += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    try {
      logging::parse_record(line);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(InvestigationFuzz, GarbagePayloadsIgnored) {
  Network::Config c;
  c.radio.range_m = 200.0;
  c.positions = net::grid_layout(3, 50.0);
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(10.0));

  sim::Rng rng{5};
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 40)));
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    net.agent(1).send_data(Network::id_of(0), core::kInvestigationProtocol,
                           junk);
  }
  net.run_for(sim::Duration::from_seconds(5.0));
  // The endpoint survived and kept no bogus outstanding state.
  EXPECT_EQ(net.investigations(0).outstanding(), 0u);
}

// --- failure injection ---------------------------------------------------

TEST(FailureInjection, VerifierDiesMidInvestigation) {
  Network::Config c;
  c.radio.range_m = 400.0;
  c.positions = net::grid_layout(5, 50.0);
  Network net{c};
  net.start_all();
  net.run_for(sim::Duration::from_seconds(12.0));

  core::LinkQuery q;
  q.suspect = Network::id_of(1);
  q.subject = Network::id_of(4);
  q.claimed_up = true;

  std::optional<core::RoundResult> result;
  net.investigations(0).investigate(q, {Network::id_of(2), Network::id_of(3)},
                                    [&](const core::RoundResult& r) {
                                      result = r;
                                    });
  net.agent(2).stop();  // dies before it can answer
  net.run_for(sim::Duration::from_seconds(15.0));

  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->answers.size(), 2u);
  std::size_t answered = 0;
  for (const auto& a : result->answers)
    if (a.answered) ++answered;
  EXPECT_EQ(answered, 1u);  // the survivor
  EXPECT_EQ(result->timeouts, 1u);
}

TEST(FailureInjection, DetectionSurvivesHeavyLoss) {
  Network::Config c;
  c.seed = 31;
  c.radio.range_m = 160.0;
  // 10% per frame per hop compounds steeply over multi-hop query+answer
  // paths. At ~15% the timeout-discounted aggregate (paper §IV-B: absent
  // answers enter Eq. 8 as e=0) stalls at the gamma boundary and conviction
  // plateaus — measured and documented in EXPERIMENTS.md.
  c.radio.loss_probability = 0.10;
  c.positions = net::grid_layout(9, 100.0);
  Network net{c};
  net.set_hooks(4, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<net::NodeId>{net::NodeId{77}}));
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(30.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(180.0));

  std::size_t intruder = 0;
  for (const auto& r : detector.reports())
    if (r.verdict == trust::Verdict::kIntruder &&
        r.suspect == Network::id_of(4))
      ++intruder;
  EXPECT_GT(intruder, 0u);
}

TEST(FailureInjection, CollusionOfSpooferAndDataDropper) {
  // The attacker spoofs AND blackholes investigation data through itself;
  // the suspect-avoiding routing plus retries must still collect answers.
  Network::Config c;
  c.seed = 13;
  c.radio.range_m = 160.0;
  c.positions = net::grid_layout(9, 100.0);
  Network net{c};

  auto composite = std::make_unique<attacks::CompositeHooks>();
  auto spoof = std::make_unique<attacks::LinkSpoofingAttack>(
      attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
      std::set<net::NodeId>{net::NodeId{77}});
  auto drop = std::make_unique<attacks::DropAttack>(
      sim::Rng{1}, 1.0, /*drop_control=*/false, /*drop_data=*/true);
  composite->add(*spoof);
  composite->add(*drop);
  net.set_hooks(4, std::move(composite));

  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(25.0));
  detector.start();
  net.run_for(sim::Duration::from_seconds(90.0));

  std::size_t intruder = 0;
  for (const auto& r : detector.reports())
    if (r.verdict == trust::Verdict::kIntruder &&
        r.suspect == Network::id_of(4))
      ++intruder;
  EXPECT_GT(intruder, 0u);
  (void)spoof;
  (void)drop;
}

TEST(FailureInjection, LogCapacityPressureKeepsDetectorSane) {
  // A tiny log forces aggressive retention; the detector must keep working
  // on the surviving suffix without throwing.
  Network::Config c;
  c.seed = 3;
  c.radio.range_m = 160.0;
  c.positions = net::grid_layout(9, 100.0);
  c.agent.log_capacity = 200;
  Network net{c};
  net.set_hooks(4, std::make_unique<attacks::LinkSpoofingAttack>(
                       attacks::LinkSpoofingAttack::Mode::kAddNonExistent,
                       std::set<net::NodeId>{net::NodeId{77}}));
  auto& detector = net.add_detector(0);
  net.start_all();
  net.run_for(sim::Duration::from_seconds(20.0));
  detector.start();
  EXPECT_NO_THROW(net.run_for(sim::Duration::from_seconds(60.0)));
  EXPECT_GT(net.agent(0).log().dropped(), 0u);
}

TEST(FailureInjection, CollusionBoundaryAtHalfTheVerifiers) {
  // 7 of 14 verifiers lie (exactly half): the investigator's own
  // first-hand denial (Property 5, full weight) is the tie-breaker that
  // keeps the aggregate negative, so the coalition cannot capture the
  // verdict. Beyond 50% the system can be captured — a documented limit
  // shared with every majority-voting scheme (see EXPERIMENTS.md).
  scenario::TrustExperiment::Config cfg;
  cfg.seed = 19;
  cfg.num_nodes = 16;
  cfg.num_liars = 7;
  scenario::TrustExperiment exp{cfg};
  exp.setup();
  const auto snaps = exp.run_attack_rounds(15);
  EXPECT_LT(snaps.back().detect, 0.0);
  EXPECT_NE(snaps.back().verdict, trust::Verdict::kWellBehaving);
}

}  // namespace
}  // namespace manet
