// Unit tests for RFC 3626 wire (de)serialization, including the
// mantissa/exponent Vtime encoding and malformed-packet rejection.

#include <gtest/gtest.h>

#include "olsr/wire.hpp"
#include "sim/rng.hpp"

namespace manet::olsr {
namespace {

TEST(Vtime, EncodeDecodeMonotone) {
  // The encoding rounds UP to the next representable value, never down
  // (validity times must not shrink).
  for (double s : {0.1, 0.5, 1.0, 2.0, 6.0, 15.0, 30.0, 120.0}) {
    const auto enc = encode_vtime(sim::Duration::from_seconds(s));
    const auto dec = decode_vtime(enc);
    EXPECT_GE(dec.seconds() + 1e-6, s) << "s=" << s;
    EXPECT_LE(dec.seconds(), s * 1.15 + 0.1) << "s=" << s;
  }
}

TEST(Vtime, KnownEncodings) {
  // C=1/16s: encoding 0 decodes to exactly 1/16 s.
  EXPECT_NEAR(decode_vtime(0).seconds(), 0.0625, 1e-9);
  // a=0,b=5 -> 2 s exactly: value C*(1+0)*2^5.
  EXPECT_NEAR(decode_vtime(0x05).seconds(), 2.0, 1e-9);
  EXPECT_EQ(encode_vtime(sim::Duration::from_seconds(2.0)), 0x05);
  // 6 s = C*(1+8/16)*2^6 -> a=8,b=6.
  EXPECT_NEAR(decode_vtime(0x86).seconds(), 6.0, 1e-9);
  EXPECT_EQ(encode_vtime(sim::Duration::from_seconds(6.0)), 0x86);
}

Message make_hello_message() {
  HelloMessage h;
  h.htime = sim::Duration::from_seconds(2.0);
  h.willingness = Willingness::kHigh;
  h.add(LinkType::kSym, NeighborType::kMprNeigh, NodeId{2});
  h.add(LinkType::kSym, NeighborType::kSymNeigh, NodeId{3});
  h.add(LinkType::kSym, NeighborType::kSymNeigh, NodeId{4});
  h.add(LinkType::kAsym, NeighborType::kNotNeigh, NodeId{9});
  Message m;
  m.header.type = MessageType::kHello;
  m.header.vtime = sim::Duration::from_seconds(6.0);
  m.header.originator = NodeId{1};
  m.header.ttl = 1;
  m.header.hop_count = 0;
  m.header.seq_num = 77;
  m.body = h;
  return m;
}

TEST(Wire, HelloRoundTrip) {
  OlsrPacket p;
  p.seq_num = 1234;
  p.messages.push_back(make_hello_message());
  const auto bytes = serialize_packet(p);
  const auto back = parse_packet(bytes);

  EXPECT_EQ(back.seq_num, 1234);
  ASSERT_EQ(back.messages.size(), 1u);
  const auto& m = back.messages[0];
  EXPECT_EQ(m.header.type, MessageType::kHello);
  EXPECT_EQ(m.header.originator, NodeId{1});
  EXPECT_EQ(m.header.seq_num, 77);
  const auto* h = m.as_hello();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->willingness, Willingness::kHigh);
  EXPECT_NEAR(h->htime.seconds(), 2.0, 1e-9);
  const auto sym = h->symmetric_neighbors();
  EXPECT_EQ(sym.size(), 3u);
  EXPECT_EQ(h->all_neighbors().size(), 4u);
}

TEST(Wire, TcRoundTrip) {
  TcMessage tc;
  tc.ansn = 999;
  tc.advertised = {NodeId{5}, NodeId{6}, NodeId{7}};
  Message m;
  m.header.type = MessageType::kTc;
  m.header.originator = NodeId{2};
  m.header.ttl = 255;
  m.header.hop_count = 3;
  m.header.seq_num = 1;
  m.body = tc;

  OlsrPacket p;
  p.messages.push_back(m);
  const auto back = parse_packet(serialize_packet(p));
  const auto* t = back.messages.at(0).as_tc();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->ansn, 999);
  EXPECT_EQ(t->advertised, tc.advertised);
  EXPECT_EQ(back.messages[0].header.hop_count, 3);
}

TEST(Wire, MidAndHnaRoundTrip) {
  Message mid;
  mid.header.type = MessageType::kMid;
  mid.header.originator = NodeId{3};
  mid.header.seq_num = 2;
  mid.body = MidMessage{{NodeId{30}, NodeId{31}}};

  Message hna;
  hna.header.type = MessageType::kHna;
  hna.header.originator = NodeId{3};
  hna.header.seq_num = 3;
  hna.body = HnaMessage{{{0x0A000000u, 8}, {0xC0A80000u, 16}}};

  OlsrPacket p;
  p.messages.push_back(mid);
  p.messages.push_back(hna);
  const auto back = parse_packet(serialize_packet(p));
  ASSERT_EQ(back.messages.size(), 2u);
  EXPECT_EQ(back.messages[0].as_mid()->interfaces,
            (std::vector<NodeId>{NodeId{30}, NodeId{31}}));
  const auto* h = back.messages[1].as_hna();
  ASSERT_EQ(h->entries.size(), 2u);
  EXPECT_EQ(h->entries[0].network, 0x0A000000u);
  EXPECT_EQ(h->entries[0].prefix_len, 8);
  EXPECT_EQ(h->entries[1].prefix_len, 16);
}

TEST(Wire, DataRoundTrip) {
  DataMessage d;
  d.source = NodeId{1};
  d.destination = NodeId{9};
  d.route = {NodeId{4}, NodeId{9}};
  d.protocol = 42;
  d.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  Message m;
  m.header.type = MessageType::kData;
  m.header.originator = NodeId{1};
  m.header.seq_num = 4;
  m.body = d;

  OlsrPacket p;
  p.messages.push_back(m);
  const auto back = parse_packet(serialize_packet(p));
  const auto* dd = back.messages.at(0).as_data();
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(dd->source, d.source);
  EXPECT_EQ(dd->destination, d.destination);
  EXPECT_EQ(dd->route, d.route);
  EXPECT_EQ(dd->protocol, 42);
  EXPECT_EQ(dd->payload, d.payload);
}

TEST(Wire, MultiMessagePacket) {
  OlsrPacket p;
  p.seq_num = 5;
  p.messages.push_back(make_hello_message());
  Message tc;
  tc.header.type = MessageType::kTc;
  tc.header.originator = NodeId{1};
  tc.header.seq_num = 78;
  tc.body = TcMessage{10, {NodeId{2}}};
  p.messages.push_back(tc);

  const auto back = parse_packet(serialize_packet(p));
  ASSERT_EQ(back.messages.size(), 2u);
  EXPECT_NE(back.messages[0].as_hello(), nullptr);
  EXPECT_NE(back.messages[1].as_tc(), nullptr);
}

TEST(Wire, TruncatedPacketThrows) {
  OlsrPacket p;
  p.messages.push_back(make_hello_message());
  auto bytes = serialize_packet(p);
  for (std::size_t cut : {1ul, 5ul, bytes.size() / 2, bytes.size() - 1}) {
    net::Bytes truncated{bytes.begin(),
                         bytes.begin() + static_cast<std::ptrdiff_t>(cut)};
    EXPECT_THROW(parse_packet(truncated), WireError) << "cut=" << cut;
  }
}

TEST(Wire, LengthMismatchThrows) {
  OlsrPacket p;
  p.messages.push_back(make_hello_message());
  auto bytes = serialize_packet(p);
  bytes.push_back(0);  // trailing garbage breaks the declared length
  EXPECT_THROW(parse_packet(bytes), WireError);
}

TEST(Wire, UnknownMessageTypeThrows) {
  OlsrPacket p;
  p.messages.push_back(make_hello_message());
  auto bytes = serialize_packet(p);
  bytes[4] = 99;  // message type byte of the first message
  EXPECT_THROW(parse_packet(bytes), WireError);
}

TEST(Wire, EmptyPacketRoundTrips) {
  OlsrPacket p;
  p.seq_num = 7;
  const auto back = parse_packet(serialize_packet(p));
  EXPECT_EQ(back.seq_num, 7);
  EXPECT_TRUE(back.messages.empty());
}

TEST(Wire, WireSizeMatchesSerialization) {
  const auto m = make_hello_message();
  OlsrPacket p;
  p.messages.push_back(m);
  EXPECT_EQ(wire_size(m) + 4, serialize_packet(p).size());
}

// Property: round-trip over randomized hello shapes.
class WireHelloProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireHelloProperty, RoundTrips) {
  sim::Rng rng{GetParam()};
  HelloMessage h;
  h.willingness = Willingness::kDefault;
  const int groups = static_cast<int>(rng.uniform_int(0, 3));
  for (int g = 0; g < groups; ++g) {
    const auto lt = static_cast<LinkType>(rng.uniform_int(0, 3));
    const auto nt = static_cast<NeighborType>(rng.uniform_int(0, 2));
    const int count = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < count; ++i)
      h.add(lt, nt, NodeId{static_cast<std::uint32_t>(rng.uniform_int(0, 200))});
  }
  Message m;
  m.header.type = MessageType::kHello;
  m.header.originator = NodeId{0};
  m.header.seq_num = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  m.body = h;
  OlsrPacket p;
  p.messages.push_back(m);
  const auto back = parse_packet(serialize_packet(p));
  const auto* hh = back.messages.at(0).as_hello();
  ASSERT_NE(hh, nullptr);
  EXPECT_EQ(hh->link_groups, h.link_groups);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireHelloProperty,
                         ::testing::Range<std::uint64_t>(1, 20));

}  // namespace
}  // namespace manet::olsr
