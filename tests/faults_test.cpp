// Unit tests for the fault-injection subsystem: FaultPlan's text format
// and seeded chaos generator, the FaultInjector's cursor pattern (armed
// event-queue replay and quiescent-barrier step mode) and down/heal
// timeline, and the InvariantChecker's safety rules.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/detector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/invariants.hpp"
#include "net/medium.hpp"
#include "olsr/routing_table.hpp"
#include "sim/simulator.hpp"
#include "trust/trust_store.hpp"

namespace manet::faults {
namespace {

sim::Time at_s(double s) { return sim::Time::from_seconds(s); }

// --- FaultPlan text format -----------------------------------------------

FaultPlan sample_plan() {
  return FaultPlan::parse(
      "1000 crash n3\n"
      "2000 brownout 0 0 100 100 0.75\n"
      "2500 partition 50\n"
      "3000 restart n3\n"
      "3500 brownout_clear 0 0 100 100\n"
      "4000 heal\n"
      "5000 crash n4\n"
      "6000 restart_amnesia n4\n");
}

TEST(FaultPlan, FormatParseRoundTrip) {
  const auto plan = sample_plan();
  ASSERT_EQ(plan.events.size(), 8u);
  const auto reparsed = FaultPlan::parse(plan.format());
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const auto& a = plan.events[i];
    const auto& b = reparsed.events[i];
    EXPECT_EQ(a.at.us(), b.at.us()) << i;
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.node, b.node) << i;
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << i;
    EXPECT_DOUBLE_EQ(a.cut_x, b.cut_x) << i;
  }
}

TEST(FaultPlan, ParseToleratesCommentsAndBlankLines) {
  const auto plan = FaultPlan::parse(
      "# a comment line\n"
      "\n"
      "1000 crash n2  # trailing comment\n");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].node, NodeId{2});
}

TEST(FaultPlan, ParseSortsOutOfOrderEvents) {
  const auto plan = FaultPlan::parse("3000 heal\n1000 crash n2\n");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kHeal);
}

TEST(FaultPlan, ParseRejectsMalformedLines) {
  EXPECT_THROW(FaultPlan::parse("1000 explode n2\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("1000 crash\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("1000 brownout 0 0 100 100 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("1000 partition\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("1000 heal n2\n"), std::invalid_argument);
}

// Captures the exception message, or "" if the text parsed cleanly.
std::string parse_error(const std::string& text) {
  try {
    FaultPlan::parse(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(FaultPlan, ParseRejectsNegativeTimestamps) {
  // Time::from_ms would happily produce a pre-t0 event; the parser must
  // refuse it with the offending line in the message.
  const auto msg = parse_error("1000 crash n2\n-500 restart n2\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative timestamp"), std::string::npos) << msg;
}

TEST(FaultPlan, ParseRejectsDuplicatePartition) {
  // A second cut before the heal would silently overwrite the first in the
  // medium; the error names the line that declared the duplicate, even
  // though the check runs after time-sorting.
  const auto msg = parse_error(
      "1000 partition 50\n"
      "2000 crash n2\n"
      "1500 partition 75\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate partition"), std::string::npos) << msg;
}

TEST(FaultPlan, ParseRejectsOutOfOrderDuplicatePartition) {
  // Textually the heal comes first, but in time order both cuts land before
  // it — still a duplicate.
  const auto msg = parse_error(
      "3000 heal\n"
      "1000 partition 50\n"
      "2000 partition 75\n");
  EXPECT_NE(msg.find("duplicate partition"), std::string::npos) << msg;
}

TEST(FaultPlan, ParseAllowsPartitionAfterHeal) {
  const auto plan = FaultPlan::parse(
      "1000 partition 50\n"
      "2000 heal\n"
      "3000 partition 75\n"
      "4000 heal\n");
  EXPECT_EQ(plan.events.size(), 4u);
}

// --- chaos generator -----------------------------------------------------

TEST(FaultPlan, ChaosIsDeterministicInTheSeed) {
  const auto a = FaultPlan::chaos(99, 16, 200.0, at_s(20.0), at_s(80.0));
  const auto b = FaultPlan::chaos(99, 16, 200.0, at_s(20.0), at_s(80.0));
  EXPECT_EQ(a.format(), b.format());
  const auto c = FaultPlan::chaos(100, 16, 200.0, at_s(20.0), at_s(80.0));
  EXPECT_NE(a.format(), c.format());
}

TEST(FaultPlan, ChaosNeverChurnsInvestigatorOrAttacker) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto plan = FaultPlan::chaos(seed, 16, 200.0, at_s(20.0), at_s(80.0));
    for (const auto& e : plan.events) {
      if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kRestart ||
          e.kind == FaultKind::kRestartAmnesia) {
        EXPECT_GE(e.node.value(), 2u) << "seed " << seed;
      }
      EXPECT_GE(e.at.us(), at_s(20.0).us()) << "seed " << seed;
      EXPECT_LT(e.at.us(), at_s(80.0).us()) << "seed " << seed;
    }
  }
}

TEST(FaultPlan, ChaosOnDegenerateWindowIsEmpty) {
  EXPECT_TRUE(FaultPlan::chaos(1, 16, 200.0, at_s(20.0), at_s(20.0)).empty());
  EXPECT_TRUE(FaultPlan::chaos(1, 3, 200.0, at_s(20.0), at_s(80.0)).empty());
}

// --- FaultInjector -------------------------------------------------------

struct InjectorHarness {
  sim::Simulator sim{5};
  net::Medium medium;
  std::vector<std::string> ops_log;

  explicit InjectorHarness(std::size_t nodes = 6)
      : medium{sim, net::RadioConfig{}} {
    for (std::uint32_t i = 0; i < nodes; ++i)
      medium.attach(NodeId{i},
                    net::Position{static_cast<double>(i % 4) * 50.0,
                                  static_cast<double>(i / 4) * 50.0});
  }

  FaultInjector::NodeOps ops() {
    FaultInjector::NodeOps o;
    o.crash = [this](NodeId n) { ops_log.push_back("crash " + n.to_string()); };
    o.restart = [this](NodeId n) {
      ops_log.push_back("restart " + n.to_string());
    };
    o.restart_amnesia = [this](NodeId n) {
      ops_log.push_back("amnesia " + n.to_string());
    };
    return o;
  }

  void run_to(double s) { sim.run_until(at_s(s)); }
};

TEST(FaultInjector, ArmedReplayExecutesEventsAtExactTimes) {
  InjectorHarness h;
  FaultInjector inj{h.sim, h.medium,
                    FaultPlan::parse("1000 crash n3\n3000 restart n3\n"),
                    h.ops()};
  inj.arm();
  EXPECT_TRUE(inj.armed());
  EXPECT_EQ(inj.cursor(), 0u);

  h.run_to(2.0);
  EXPECT_EQ(inj.cursor(), 1u);
  EXPECT_TRUE(inj.is_down(NodeId{3}));
  EXPECT_EQ(inj.down_since(NodeId{3}).us(), at_s(1.0).us());
  EXPECT_FALSE(h.medium.is_up(NodeId{3}));
  EXPECT_EQ(inj.last_disruption().us(), at_s(1.0).us());

  h.run_to(4.0);
  EXPECT_EQ(inj.cursor(), 2u);
  EXPECT_FALSE(inj.is_down(NodeId{3}));
  EXPECT_TRUE(h.medium.is_up(NodeId{3}));
  EXPECT_EQ(inj.last_heal().us(), at_s(3.0).us());
  EXPECT_FALSE(inj.armed());  // plan exhausted

  EXPECT_EQ(h.ops_log,
            (std::vector<std::string>{"crash n3", "restart n3"}));
}

TEST(FaultInjector, StepModeExecutesDueEventsInPlanOrder) {
  InjectorHarness h;
  FaultInjector inj{
      h.sim, h.medium,
      FaultPlan::parse("1000 crash n2\n1500 crash n4\n3000 restart_amnesia n2\n"),
      h.ops()};
  inj.run_until(at_s(2.0));
  EXPECT_EQ(inj.cursor(), 2u);
  EXPECT_EQ(inj.down_count(), 2u);
  inj.run_until(at_s(2.0));  // idempotent at the same instant
  EXPECT_EQ(inj.cursor(), 2u);
  inj.run_until(at_s(10.0));
  EXPECT_EQ(inj.cursor(), 3u);
  EXPECT_EQ(h.ops_log, (std::vector<std::string>{"crash n2", "crash n4",
                                                 "amnesia n2"}));
  EXPECT_EQ(inj.down_count(), 1u);  // n4 still down
}

TEST(FaultInjector, StepModeOnAnArmedInjectorThrows) {
  InjectorHarness h;
  FaultInjector inj{h.sim, h.medium, FaultPlan::parse("1000 crash n2\n"),
                    h.ops()};
  inj.arm();
  EXPECT_THROW(inj.run_until(at_s(2.0)), std::logic_error);
}

TEST(FaultInjector, BrownoutAppliesRegionalLossOverrides) {
  InjectorHarness h;
  // Nodes 0..3 sit at y=0, x = 0,50,100,150; the rectangle covers x<=60.
  FaultInjector inj{
      h.sim, h.medium,
      FaultPlan::parse("1000 brownout 0 0 60 10 0.8\n"
                       "2000 brownout_clear 0 0 60 10\n"),
      h.ops()};
  inj.run_until(at_s(1.0));
  EXPECT_DOUBLE_EQ(h.medium.loss_override(NodeId{0}), 0.8);
  EXPECT_DOUBLE_EQ(h.medium.loss_override(NodeId{1}), 0.8);
  EXPECT_LT(h.medium.loss_override(NodeId{2}), 0.0);

  inj.run_until(at_s(2.0));
  EXPECT_LT(h.medium.loss_override(NodeId{0}), 0.0);
  EXPECT_LT(h.medium.loss_override(NodeId{1}), 0.0);
}

TEST(FaultInjector, PartitionSplitsAtTheCutAndHealReunites) {
  InjectorHarness h;
  FaultInjector inj{h.sim, h.medium,
                    FaultPlan::parse("1000 partition 75\n2000 heal\n"),
                    h.ops()};
  inj.run_until(at_s(1.0));
  // x <= 75 on one side (nodes 0, 1, 4, 5), x > 75 on the other (2, 3).
  EXPECT_EQ(h.medium.partition(NodeId{0}), h.medium.partition(NodeId{1}));
  EXPECT_EQ(h.medium.partition(NodeId{2}), h.medium.partition(NodeId{3}));
  EXPECT_NE(h.medium.partition(NodeId{0}), h.medium.partition(NodeId{2}));

  inj.run_until(at_s(2.0));
  EXPECT_EQ(h.medium.partition(NodeId{0}), h.medium.partition(NodeId{2}));
  EXPECT_EQ(inj.last_heal().us(), at_s(2.0).us());
}

TEST(FaultInjector, RestoreRewindsCursorAndTimeline) {
  InjectorHarness h;
  const auto plan_text = "1000 crash n2\n3000 restart n2\n";
  FaultInjector inj{h.sim, h.medium, FaultPlan::parse(plan_text), h.ops()};
  inj.run_until(at_s(2.0));
  ASSERT_EQ(inj.cursor(), 1u);

  // A second injector over the same plan, restored to the first one's
  // position, must agree on the timeline and continue identically.
  InjectorHarness h2;
  FaultInjector inj2{h2.sim, h2.medium, FaultPlan::parse(plan_text), h2.ops()};
  inj2.restore(inj.cursor(), inj.down_nodes(), inj.last_disruption(),
               inj.last_heal());
  EXPECT_TRUE(inj2.is_down(NodeId{2}));
  EXPECT_EQ(inj2.down_since(NodeId{2}).us(), at_s(1.0).us());

  inj2.run_until(at_s(5.0));
  EXPECT_EQ(inj2.cursor(), 2u);
  EXPECT_FALSE(inj2.is_down(NodeId{2}));
  // Only the un-executed suffix replays: no duplicate crash op.
  EXPECT_EQ(h2.ops_log, (std::vector<std::string>{"restart n2"}));
}

// --- InvariantChecker ----------------------------------------------------

struct CheckerHarness : InjectorHarness {
  FaultInjector injector;
  InvariantChecker checker;

  CheckerHarness()
      : InjectorHarness{6},
        injector{sim, medium, FaultPlan::parse("1000 crash n3\n"), ops()},
        checker{medium, injector} {
    injector.run_until(at_s(1.0));  // n3 down since t=1s
  }
};

core::DetectionReport intruder_report(NodeId suspect, sim::Time at) {
  core::DetectionReport r;
  r.time = at;
  r.suspect = suspect;
  r.verdict = trust::Verdict::kIntruder;
  return r;
}

TEST(InvariantChecker, ConvictionOfLongDeadNodeIsAViolation) {
  CheckerHarness h;
  // Within the 15 s grace: ambiguous, allowed.
  h.checker.check_conviction(at_s(10.0), intruder_report(NodeId{3}, at_s(10.0)));
  EXPECT_TRUE(h.checker.clean());
  // Past the grace: a corpse was convicted.
  h.checker.check_conviction(at_s(30.0), intruder_report(NodeId{3}, at_s(30.0)));
  ASSERT_EQ(h.checker.violations().size(), 1u);
  EXPECT_EQ(h.checker.violations()[0].rule, "convict-down");
  EXPECT_NE(h.checker.format().find("convict-down"), std::string::npos);
}

TEST(InvariantChecker, ConvictionOfUpNodeIsAllowed) {
  CheckerHarness h;
  h.checker.check_conviction(at_s(30.0), intruder_report(NodeId{2}, at_s(30.0)));
  EXPECT_TRUE(h.checker.clean());
}

TEST(InvariantChecker, NonIntruderVerdictsNeverViolate) {
  CheckerHarness h;
  auto r = intruder_report(NodeId{3}, at_s(30.0));
  r.verdict = trust::Verdict::kWellBehaving;
  h.checker.check_conviction(at_s(30.0), r);
  EXPECT_TRUE(h.checker.clean());
}

TEST(InvariantChecker, OutOfBoundsTrustIsAViolation) {
  CheckerHarness h;
  trust::TrustStore store;  // default params: [0, 1]
  store.set_trust(NodeId{2}, 0.5);
  h.checker.check_trust_bounds(at_s(5.0), NodeId{0}, store);
  EXPECT_TRUE(h.checker.clean());

  // The public API clamps, so inject a corrupt row through the checkpoint
  // restore surface — exactly the path the checker guards.
  store.restore({{NodeId{2}, 1.5}}, {});
  h.checker.check_trust_bounds(at_s(5.0), NodeId{0}, store);
  ASSERT_EQ(h.checker.violations().size(), 1u);
  EXPECT_EQ(h.checker.violations()[0].rule, "trust-bounds");
}

TEST(InvariantChecker, RouteViaLongDeadNextHopIsAViolation) {
  CheckerHarness h;
  olsr::KnowledgeGraph graph;
  graph.add_edge(NodeId{0}, NodeId{3});
  graph.add_edge(NodeId{3}, NodeId{5});
  olsr::RoutingTable routes;
  routes.recompute(NodeId{0}, graph);

  // Within the 20 s routing grace the stale route is expected.
  h.checker.check_routing(at_s(10.0), NodeId{0}, routes);
  EXPECT_TRUE(h.checker.clean());
  // Past it, OLSR hold times have long expired: the route is a bug.
  h.checker.check_routing(at_s(40.0), NodeId{0}, routes);
  EXPECT_FALSE(h.checker.clean());
  for (const auto& v : h.checker.violations())
    EXPECT_EQ(v.rule, "route-down-hop");
}

TEST(InvariantChecker, RouteAcrossSettledPartitionIsAViolation) {
  InjectorHarness h;
  FaultInjector injector{h.sim, h.medium,
                         FaultPlan::parse("1000 partition 75\n"), h.ops()};
  InvariantChecker checker{h.medium, injector};
  injector.run_until(at_s(1.0));

  olsr::KnowledgeGraph graph;
  graph.add_edge(NodeId{0}, NodeId{2});  // node 2 is across the cut
  olsr::RoutingTable routes;
  routes.recompute(NodeId{0}, graph);

  checker.check_routing(at_s(10.0), NodeId{0}, routes);  // settling
  EXPECT_TRUE(checker.clean());
  checker.check_routing(at_s(40.0), NodeId{0}, routes);
  ASSERT_FALSE(checker.clean());
  EXPECT_EQ(checker.violations()[0].rule, "route-partition");
}

}  // namespace
}  // namespace manet::faults
