// Tests for the deterministic observability layer (src/obs): the metrics
// registry (counters, gauges, histograms merged across per-thread shards),
// the flight-recorder ring, trace export, run manifests — and the golden
// guard that pins the determinism contract: enabling metrics and tracing
// must not change a single byte of the simulation's own outputs (per-round
// CSVs, audit logs), at any Runner thread count, under either engine.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/runner.hpp"
#include "scenario/trust_experiment.hpp"

namespace {

using namespace manet;

// --- flight recorder -------------------------------------------------------

obs::TraceEvent instant_at(std::int64_t us) {
  obs::TraceEvent e;
  e.begin_us = e.end_us = us;
  e.name = obs::SpanName::kPipelineRound;
  e.phase = obs::EventPhase::kInstant;
  return e;
}

TEST(FlightRecorder, RetainsNewestAndCountsDropped) {
  obs::FlightRecorder ring{4};
  for (std::int64_t i = 0; i < 10; ++i) ring.record(instant_at(i));
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first of the newest four: 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].begin_us, static_cast<std::int64_t>(6 + i));
}

TEST(FlightRecorder, ExactCapacityDropsNothing) {
  obs::FlightRecorder ring{3};
  for (std::int64_t i = 0; i < 3; ++i) ring.record(instant_at(i));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().begin_us, 0);
  EXPECT_EQ(events.back().begin_us, 2);
}

// --- registry: recording and merging ---------------------------------------

TEST(Registry, UnboundThreadRecordsNothing) {
  EXPECT_FALSE(obs::active());
  obs::hit(obs::Hot::kPipelineLines, 100);  // must be a no-op, not a crash
  const auto c = obs::counter("manet_dead");
  const auto g = obs::gauge("manet_dead_gauge");
  const auto h = obs::histogram("manet_dead_hist", 0.0, 1.0, 4);
  c.inc();
  g.set(1.0);
  h.observe(0.5);
  obs::span(obs::SpanName::kRound, sim::Time{}, sim::Time::from_ms(1));
  obs::instant(obs::SpanName::kConviction, sim::Time{});
}

TEST(Registry, HotCountersSumAcrossThreads) {
  obs::Context ctx;
  {
    obs::Scope scope{&ctx};
    obs::hit(obs::Hot::kPipelineLines, 3);
  }
  std::thread worker{[&ctx] {
    obs::Scope scope{&ctx, 1};
    obs::hit(obs::Hot::kPipelineLines, 4);
    obs::hit(obs::Hot::kPipelineRounds);
  }};
  worker.join();
  const auto snap = ctx.snapshot();
  EXPECT_EQ(snap.counter_value(obs::hot_name(obs::Hot::kPipelineLines)), 7u);
  EXPECT_EQ(snap.counter_value(obs::hot_name(obs::Hot::kPipelineRounds)), 1u);
  EXPECT_EQ(snap.counter_value("manet_never_registered"), 0u);
}

TEST(Registry, NamedMetricsMergeAcrossShards) {
  obs::Context ctx;
  obs::Counter events;
  obs::Gauge high_water;
  obs::HistogramHandle latency;
  {
    obs::Scope scope{&ctx};
    events = obs::counter("manet_test_events_total");
    high_water = obs::gauge("manet_test_high_water");
    latency = obs::histogram("manet_test_latency", 0.0, 10.0, 5);
    events.inc(2);
    high_water.set(3.0);
    latency.observe(1.0);
  }
  std::thread worker{[&] {
    obs::Scope scope{&ctx, 1};
    events.inc(5);
    high_water.set(7.0);  // gauges merge by max
    latency.observe(9.0);
    latency.observe(-1.0);  // underflow must survive the merge
  }};
  worker.join();

  const auto snap = ctx.snapshot();
  EXPECT_EQ(snap.counter_value("manet_test_events_total"), 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "manet_test_high_water");
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& merged = snap.histograms[0].histogram;
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.underflow(), 1u);
  EXPECT_EQ(merged.bin_count(0), 2u);  // 1.0 and the clamped -1.0
  EXPECT_EQ(merged.bin_count(4), 1u);  // 9.0
}

TEST(Registry, InternShapeConflictThrows) {
  obs::Context ctx;
  obs::Scope scope{&ctx};
  obs::counter("manet_test_name");
  EXPECT_THROW(obs::gauge("manet_test_name"), std::invalid_argument);
  obs::histogram("manet_test_hist", 0.0, 1.0, 4);
  EXPECT_THROW(obs::histogram("manet_test_hist", 0.0, 2.0, 4),
               std::invalid_argument);
  // Identical re-registration is idempotent, not an error.
  const auto again = obs::counter("manet_test_name");
  again.inc();
  EXPECT_EQ(ctx.snapshot().counter_value("manet_test_name"), 1u);
}

TEST(Registry, ScopeNestingRestoresPreviousBinding) {
  obs::Context outer_ctx, inner_ctx;
  obs::Scope outer{&outer_ctx};
  {
    obs::Scope inner{&inner_ctx};
    obs::hit(obs::Hot::kPipelineLines);
  }
  obs::hit(obs::Hot::kPipelineRounds);
  EXPECT_EQ(
      inner_ctx.snapshot().counter_value(obs::hot_name(obs::Hot::kPipelineLines)),
      1u);
  const auto outer_snap = outer_ctx.snapshot();
  EXPECT_EQ(outer_snap.counter_value(obs::hot_name(obs::Hot::kPipelineLines)),
            0u);
  EXPECT_EQ(outer_snap.counter_value(obs::hot_name(obs::Hot::kPipelineRounds)),
            1u);
}

TEST(Registry, SnapshotMergeFoldsDisjointAndShared) {
  obs::MetricsSnapshot a, b;
  a.counters.push_back({"alpha", 1});
  a.counters.push_back({"both", 10});
  a.gauges.push_back({"g", 2.0});
  b.counters.push_back({"both", 5});
  b.counters.push_back({"zeta", 3});
  b.gauges.push_back({"g", 9.0});
  a.merge(b);
  ASSERT_EQ(a.counters.size(), 3u);
  EXPECT_EQ(a.counter_value("alpha"), 1u);
  EXPECT_EQ(a.counter_value("both"), 15u);
  EXPECT_EQ(a.counter_value("zeta"), 3u);
  EXPECT_DOUBLE_EQ(a.gauges[0].value, 9.0);
}

TEST(Registry, CountersTextFiltersByPrefix) {
  obs::Context ctx;
  obs::Scope scope{&ctx};
  obs::hit(obs::Hot::kPipelineLines, 2);
  obs::hit(obs::Hot::kMediumUnicasts, 9);
  const auto snap = ctx.snapshot();
  const auto text = snap.counters_text("manet_pipeline_");
  EXPECT_NE(text.find("manet_pipeline_lines_total 2"), std::string::npos);
  EXPECT_EQ(text.find("manet_medium"), std::string::npos);
}

TEST(Registry, PrometheusExposition) {
  obs::Context ctx;
  obs::Scope scope{&ctx};
  obs::hit(obs::Hot::kPipelineConvictions, 4);
  const auto h = obs::histogram("manet_test_seconds", 0.0, 2.0, 2);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);  // overflow, clamped into the last bucket
  const auto text = ctx.snapshot().to_prometheus("# manifest tool=test\n");
  EXPECT_EQ(text.rfind("# manifest tool=test\n", 0), 0u);  // header first
  EXPECT_NE(text.find("# TYPE manet_pipeline_convictions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("manet_pipeline_convictions_total 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE manet_test_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" holds 1 sample, le="2" and +Inf hold all 3
  // (the overflow sample was clamped into the top bin by Histogram::add).
  EXPECT_NE(text.find("manet_test_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("manet_test_seconds_count 3"), std::string::npos);
}

// --- tracing ---------------------------------------------------------------

TEST(Tracing, EventsSortedByDeterministicKey) {
  obs::Context::Config cfg;
  cfg.tracing = true;
  obs::Context ctx{cfg};
  {
    obs::Scope scope{&ctx};
    obs::span(obs::SpanName::kRound, sim::Time::from_ms(20),
              sim::Time::from_ms(25), 2);
    obs::instant(obs::SpanName::kConviction, sim::Time::from_ms(10), 7);
    obs::async_begin(obs::SpanName::kInvestigation, sim::Time::from_ms(5), 42);
    obs::async_end(obs::SpanName::kInvestigation, sim::Time::from_ms(15), 42);
  }
  const auto events = ctx.trace();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].begin_us, events[i].begin_us);
  EXPECT_EQ(events.front().name, obs::SpanName::kInvestigation);
  EXPECT_EQ(events.front().phase, obs::EventPhase::kAsyncBegin);
  EXPECT_EQ(ctx.trace_dropped(), 0u);
}

TEST(Tracing, DisabledContextRecordsNoEvents) {
  obs::Context ctx;  // tracing defaults to off; metrics still record
  obs::Scope scope{&ctx};
  obs::span(obs::SpanName::kRound, sim::Time{}, sim::Time::from_ms(1));
  obs::instant(obs::SpanName::kConviction, sim::Time{});
  EXPECT_TRUE(ctx.trace().empty());
}

TEST(Tracing, RingWrapReportsDropped) {
  obs::Context::Config cfg;
  cfg.tracing = true;
  cfg.ring_capacity = 8;
  obs::Context ctx{cfg};
  {
    obs::Scope scope{&ctx};
    for (int i = 0; i < 20; ++i)
      obs::instant(obs::SpanName::kPipelineRound, sim::Time::from_us(i),
                   static_cast<std::uint64_t>(i));
  }
  const auto events = ctx.trace();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(ctx.trace_dropped(), 12u);
  // The newest events survive the wrap.
  EXPECT_EQ(events.back().id, 19u);
}

TEST(Tracing, TraceJsonSmoke) {
  obs::Context::Config cfg;
  cfg.tracing = true;
  obs::Context ctx{cfg};
  {
    obs::Scope scope{&ctx};
    obs::span(obs::SpanName::kSetupConverge, sim::Time{},
              sim::Time::from_seconds(15.0));
    obs::async_begin(obs::SpanName::kInvestigation, sim::Time::from_ms(1), 9);
    obs::async_end(obs::SpanName::kInvestigation, sim::Time::from_ms(2), 9);
  }
  const auto json = obs::trace_json(ctx.trace(), 3);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"setup_converge\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15000000"), std::string::npos);

  const auto multi = obs::trace_json_multi({{0, ctx.trace()}, {1, {}}});
  EXPECT_EQ(multi.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(multi.find("\"pid\":0"), std::string::npos);
}

// --- run manifest ----------------------------------------------------------

TEST(Manifest, CommentHeaderAndJson) {
  obs::RunManifest m{"obs_test"};
  m.add("seed", std::uint64_t{42});
  m.add("fraction", 0.25);
  const auto header = m.comment_header();
  EXPECT_EQ(header.rfind("# manifest tool=obs_test\n", 0), 0u);
  EXPECT_NE(header.find("# manifest version="), std::string::npos);
  EXPECT_NE(header.find("# manifest seed=42\n"), std::string::npos);
  EXPECT_NE(header.find("# manifest fraction=0.25\n"), std::string::npos);
  const auto json = m.json_object();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"tool\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"42\""), std::string::npos);
  EXPECT_FALSE(obs::build_version().empty());
}

// --- golden guard: observability must not change simulation output ---------

runtime::ExperimentSpec guard_spec(bool observed, sim::EngineKind engine) {
  runtime::ExperimentSpec spec;
  spec.seeds = runtime::ExperimentSpec::seed_range(7, 2);
  spec.node_counts = {16};
  spec.attacker_fractions = {0.29};
  spec.rounds = 4;
  spec.engine = engine;
  spec.metrics = observed;
  spec.tracing = observed;
  return spec;
}

std::string per_round_csv(const runtime::ExperimentSpec& spec,
                          unsigned threads) {
  runtime::Runner::Config rc;
  rc.threads = threads;
  runtime::Runner runner{rc};
  const auto results = runner.run(spec);
  const runtime::Aggregator aggregator{0.95};
  return runtime::Aggregator::per_round_csv(aggregator.per_round(results));
}

TEST(GoldenGuard, SequentialCsvIdenticalWithObservabilityOn) {
  const auto engine = sim::EngineKind::kSequential;
  const auto off = per_round_csv(guard_spec(false, engine), 1);
  EXPECT_EQ(per_round_csv(guard_spec(true, engine), 1), off)
      << "enabling metrics+tracing changed the per-round CSV (threads 1)";
  EXPECT_EQ(per_round_csv(guard_spec(true, engine), 4), off)
      << "enabling metrics+tracing changed the per-round CSV (threads 4)";
}

TEST(GoldenGuard, ShardedCsvIdenticalWithObservabilityOn) {
  const auto engine = sim::EngineKind::kSharded;
  const auto off = per_round_csv(guard_spec(false, engine), 1);
  EXPECT_EQ(per_round_csv(guard_spec(true, engine), 1), off)
      << "metrics+tracing changed the sharded per-round CSV (threads 1)";
  EXPECT_EQ(per_round_csv(guard_spec(true, engine), 4), off)
      << "metrics+tracing changed the sharded per-round CSV (threads 4)";
}

TEST(GoldenGuard, MetricsSnapshotIdenticalAcrossRunnerThreads) {
  const auto spec = guard_spec(true, sim::EngineKind::kSequential);
  const auto run = [&spec](unsigned threads) {
    runtime::Runner::Config rc;
    rc.threads = threads;
    runtime::Runner runner{rc};
    const auto results = runner.run(spec);
    obs::MetricsSnapshot merged;
    for (const auto& r : results) merged.merge(r.metrics);
    return merged.to_prometheus();
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(GoldenGuard, AuditLogIdenticalWithObservabilityOn) {
  const auto record = [](bool observed) {
    scenario::TrustExperiment::Config config;
    config.seed = 7;
    config.rounds = 3;
    config.record_audit = true;
    obs::Context::Config oc;
    oc.tracing = true;
    obs::Context ctx{oc};
    obs::Scope scope{observed ? &ctx : nullptr};
    scenario::TrustExperiment exp{config};
    exp.setup();
    exp.run_attack_rounds(3);
    return exp.audit_log();
  };
  EXPECT_EQ(record(true), record(false))
      << "observability changed the recorded audit-log bytes";
}

}  // namespace
