// Long-downtime expiry semantics (satellite of the fault-injection PR):
// a node that crashes and stays down must age out of its peers' OLSR
// state (link set, neighbor table, routing table) once the hold times
// expire, its trust at the investigator must keep decaying instead of
// freezing at the pre-crash value, and after a restart the same NodeId
// must be re-learned from scratch and routed to again.

#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "scenario/trust_experiment.hpp"

namespace manet::scenario {
namespace {

constexpr std::uint32_t kVictim = 5;

TrustExperiment::Config downtime_config() {
  TrustExperiment::Config c;
  c.seed = 17;
  c.num_nodes = 16;
  c.num_liars = 4;
  // Node 5 is down from t=20 s to t=43 s — far beyond every OLSR hold
  // time (links ~6 s, TC topology ~15 s), then comes back with its state
  // intact (the amnesia variant is exercised by the chaos sweeps).
  c.fault_plan = faults::FaultPlan::parse(
      "20000 crash n5\n"
      "43000 restart n5\n");
  return c;
}

TEST(ExpiryDowntime, DownNodeAgesOutOfTablesAndTrustKeepsDecaying) {
  TrustExperiment exp{downtime_config()};
  exp.setup();
  const NodeId victim{kVictim};

  // Rounds run on the 5 s churn cadence: round k ends no earlier than
  // t = 15 + 5k seconds. Round 1 ends right at the crash instant; its
  // trust snapshot is the pre-decay baseline (the round's investigation
  // ran before t=20 s, while the victim could still answer).
  const auto r1 = exp.run_churn_round();
  const double trust_before = r1.trust.at(victim);

  auto& investigator = exp.network().agent(0);

  TrustExperiment::RoundSnapshot r4;
  for (int r = 1; r < 4; ++r) r4 = exp.run_churn_round();
  // Four rounds in: t ≥ 35 s, the victim has been dark for ≥ 15 s — past
  // every OLSR hold time (links ~6 s, TC topology ~15 s). Round 5 is too
  // late to observe the downtime: its false-conviction probe of the corpse
  // runs into answer timeouts and overshoots the 43 s restart.
  ASSERT_GE(r4.at.us(), sim::Time::from_seconds(35.0).us());
  ASSERT_EQ(r4.down, 1u);

  // Swept from the OLSR tables: no live link, no neighbor entry, no route.
  const auto now = exp.network().now();
  EXPECT_FALSE(investigator.links().is_symmetric(now, victim));
  EXPECT_FALSE(investigator.neighbors().neighbor(victim).has_value());
  EXPECT_FALSE(investigator.routes().route_to(victim).has_value());

  // Trust decays while the victim cannot answer investigations — it must
  // not freeze at the last pre-crash value (DetectorConfig's
  // decay_unresponsive, enabled for faulted runs).
  EXPECT_LT(r4.trust.at(victim), trust_before);

  // No false conviction of the corpse, and no safety-rule violations.
  EXPECT_EQ(r4.false_convictions, 0u);
  EXPECT_TRUE(exp.invariants()->clean());

  // Restart at 43 s; by round 11 (t ≥ 70 s) the same NodeId has been
  // re-learned end to end: link, neighbor entry, route, and the up-aware
  // convergence criterion includes it again.
  TrustExperiment::RoundSnapshot last;
  for (int r = 4; r < 11; ++r) last = exp.run_churn_round();
  EXPECT_EQ(last.down, 0u);
  EXPECT_TRUE(last.converged);
  const auto later = exp.network().now();
  EXPECT_TRUE(investigator.links().is_symmetric(later, victim));
  EXPECT_TRUE(investigator.neighbors().neighbor(victim).has_value());
  ASSERT_TRUE(investigator.routes().route_to(victim).has_value());
  EXPECT_TRUE(exp.invariants()->clean());
}

TEST(ExpiryDowntime, VictimRoutesToPeersAgainAfterRestart) {
  // The restarted node itself (state intact, not amnesiac) must also
  // re-converge: its own routing table names every peer again.
  TrustExperiment exp{downtime_config()};
  exp.setup();
  TrustExperiment::RoundSnapshot last;
  for (int r = 0; r < 11; ++r) last = exp.run_churn_round();
  ASSERT_TRUE(last.converged);

  auto& victim_agent = exp.network().agent(kVictim);
  EXPECT_TRUE(victim_agent.running());
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < exp.network().size(); ++i) {
    if (i == kVictim) continue;
    if (victim_agent.routes().route_to(Network::id_of(i))) ++reachable;
  }
  EXPECT_EQ(reachable, exp.network().size() - 1);
}

TEST(ExpiryDowntime, AmnesiacRestartColdTablesAlsoReconverge) {
  // The amnesia variant: tables are reset before the restart, so the node
  // rejoins as a cold stranger and must re-learn everything.
  auto c = downtime_config();
  c.fault_plan = faults::FaultPlan::parse(
      "20000 crash n5\n"
      "43000 restart_amnesia n5\n");
  TrustExperiment exp{c};
  exp.setup();
  TrustExperiment::RoundSnapshot last;
  for (int r = 0; r < 11; ++r) last = exp.run_churn_round();
  EXPECT_EQ(last.down, 0u);
  EXPECT_TRUE(last.converged);
  EXPECT_TRUE(
      exp.network().agent(0).routes().route_to(NodeId{kVictim}).has_value());
  EXPECT_TRUE(exp.invariants()->clean());
}

}  // namespace
}  // namespace manet::scenario
